/**
 * @file
 * Design-choice ablations beyond the paper's evaluation:
 *
 * 1. Four-state MLC policy (Section IV-B3 notes the state count can
 *    grow by widening the PVT bits): does adding a quarter-ways state
 *    between half and one buy power at acceptable slowdown?
 * 2. Translation granularity: the HTB's phase signatures are built
 *    from translation heads; multi-block traces coarsen that
 *    granularity. How do trace lengths 1/2/4 affect phase detection
 *    and results?
 */

#include "bench_util.hh"

using namespace powerchop;
using namespace powerchop::bench;

namespace
{

struct Outcome
{
    double slowdown;
    double power;
    double leakage;
    double pvtMiss;
};

Outcome
evaluate(const MachineConfig &m, const WorkloadSpec &w, InsnCount insns)
{
    SimOptions opts;
    opts.maxInstructions = insns;
    opts.mode = SimMode::FullPower;
    SimResult full = simulate(m, w, opts);
    opts.mode = SimMode::PowerChop;
    SimResult pc = simulate(m, w, opts);
    return Outcome{pc.slowdownVs(full), pc.powerReductionVs(full),
                   pc.leakageReductionVs(full),
                   pc.pvtMissPerTranslation};
}

const std::vector<std::string> apps = {"gobmk", "gems", "namd",
                                       "hmmer", "msn"};

} // namespace

int
main()
{
    const InsnCount insns = insnBudget(6'000'000);

    banner("Ablation 1: three-state vs four-state MLC policy",
           "Section IV-B3 extension (wider policy vectors)");
    std::printf("config        avg_slowdown  avg_power_red  "
                "avg_leak_red\n");
    for (bool quarter : {false, true}) {
        std::vector<double> slow, power, leak;
        for (const auto &name : apps) {
            WorkloadSpec w = findWorkload(name);
            MachineConfig m = machineFor(w);
            m.powerChop.cde.enableQuarterWays = quarter;
            Outcome o = evaluate(m, w, insns);
            slow.push_back(o.slowdown);
            power.push_back(o.power);
            leak.push_back(o.leakage);
        }
        std::printf("%-12s  %s  %s  %s\n",
                    quarter ? "four-state" : "three-state",
                    pct(mean(slow)).c_str(), pct(mean(power)).c_str(),
                    pct(mean(leak)).c_str());
        progress(quarter ? "four-state done" : "three-state done");
    }
    std::printf("expected: the quarter state squeezes extra leakage "
                "from half-band phases\nwhose sets fit a quarter of "
                "the ways, at little or no slowdown.\n\n");

    banner("Ablation 2: translation trace length vs phase detection",
           "Section IV-B2 (translation granularity)");
    std::printf("trace_blocks  avg_slowdown  avg_power_red  "
                "pvt_miss/trans\n");
    for (unsigned blocks : {1u, 2u, 4u}) {
        std::vector<double> slow, power, miss;
        for (const auto &name : apps) {
            WorkloadSpec w = findWorkload(name);
            MachineConfig m = machineFor(w);
            m.bt.translator.maxTraceBlocks = blocks;
            Outcome o = evaluate(m, w, insns);
            slow.push_back(o.slowdown);
            power.push_back(o.power);
            miss.push_back(o.pvtMiss);
        }
        std::printf("%12u  %s  %s  %13.5f%%\n", blocks,
                    pct(mean(slow)).c_str(), pct(mean(power)).c_str(),
                    100 * mean(miss));
        progress("trace length " + std::to_string(blocks) + " done");
    }
    std::printf("expected: longer traces coarsen the HTB's view; "
                "signatures stay usable\nbut phase attribution "
                "degrades slightly.\n\n");

    banner("Ablation 3: large-BPU organization",
           "Section III (tournament / agree / neural families)");
    std::printf("organization  avg_slowdown  avg_power_red  "
                "avg_bpu_gated\n");
    for (LargePredictorKind kind :
         {LargePredictorKind::Tournament, LargePredictorKind::Agree,
          LargePredictorKind::Perceptron}) {
        std::vector<double> slow, power, gated;
        for (const auto &name : apps) {
            WorkloadSpec w = findWorkload(name);
            MachineConfig m = machineFor(w);
            m.bpu.largeKind = kind;

            SimOptions opts;
            opts.maxInstructions = insns;
            opts.mode = SimMode::FullPower;
            SimResult full = simulate(m, w, opts);
            opts.mode = SimMode::PowerChop;
            SimResult pc = simulate(m, w, opts);

            slow.push_back(pc.slowdownVs(full));
            power.push_back(pc.powerReductionVs(full));
            gated.push_back(pc.bpuGatedFraction);
        }
        std::printf("%-12s  %s  %s  %s\n",
                    largePredictorKindName(kind),
                    pct(mean(slow)).c_str(), pct(mean(power)).c_str(),
                    pct(mean(gated)).c_str());
        progress(std::string(largePredictorKindName(kind)) + " done");
    }
    std::printf("expected: PowerChop's criticality scoring adapts to "
                "whichever organization\nthe large BPU uses — phases "
                "where it beats the small predictor stay on,\nthe "
                "rest gate off.\n");
    return 0;
}
