/**
 * @file
 * Related-work baseline (Section VI): the drowsy cache (Flautner et
 * al.) vs PowerChop's MLC way-gating.
 *
 * Drowsy caching drops cold lines to a state-retentive low voltage
 * per line; PowerChop resizes the array per phase. The comparison the
 * paper's related-work discussion implies: drowsy saves leakage with
 * no criticality analysis and no state loss, but cannot shrink the
 * powered array when the phase doesn't need it at all; PowerChop can.
 */

#include "bench_util.hh"

using namespace powerchop;
using namespace powerchop::bench;

int
main()
{
    banner("Baseline: drowsy MLC vs PowerChop MLC way-gating",
           "Section VI related work (drowsy caches)");

    const InsnCount insns = insnBudget(8'000'000);
    std::printf("application     drowsy_slow  drowsy_leak_red  "
                "drowsy_power_red  pchop_slow  pchop_leak_red  "
                "pchop_power_red\n");

    std::vector<double> d_slow, d_leak, d_pow, p_slow, p_leak, p_pow;
    auto apps = serverWorkloads();
    forEachApp(apps, [&](const WorkloadSpec &w) {
        MachineConfig m = serverConfig();
        SimOptions opts;
        opts.maxInstructions = insns;

        opts.mode = SimMode::FullPower;
        SimResult full = simulate(m, w, opts);

        opts.mode = SimMode::DrowsyMlc;
        SimResult dr = simulate(m, w, opts);

        // MLC-only PowerChop for an apples-to-apples comparison.
        opts.mode = SimMode::PowerChop;
        opts.manageVpu = false;
        opts.manageBpu = false;
        SimResult pc = simulate(m, w, opts);

        double ds = dr.slowdownVs(full);
        double dl = dr.leakageReductionVs(full);
        double dp = dr.powerReductionVs(full);
        double ps = pc.slowdownVs(full);
        double pl = pc.leakageReductionVs(full);
        double pp = pc.powerReductionVs(full);
        std::printf("%-14s  %s  %s  %s  %s  %s  %s\n", w.name.c_str(),
                    pct(ds).c_str(), pct(dl).c_str(), pct(dp).c_str(),
                    pct(ps).c_str(), pct(pl).c_str(), pct(pp).c_str());
        d_slow.push_back(ds);
        d_leak.push_back(dl);
        d_pow.push_back(dp);
        p_slow.push_back(ps);
        p_leak.push_back(pl);
        p_pow.push_back(pp);
    });

    std::printf("\naverages: drowsy %s leakage / %s power at %s "
                "slowdown;\n          PowerChop (MLC only) %s leakage "
                "/ %s power at %s slowdown\n",
                pct(mean(d_leak)).c_str(), pct(mean(d_pow)).c_str(),
                pct(mean(d_slow)).c_str(), pct(mean(p_leak)).c_str(),
                pct(mean(p_pow)).c_str(), pct(mean(p_slow)).c_str());
    std::printf(
        "observed trade-off: drowsy cuts MLC leakage almost uniformly "
        "(state is\nretained at the drowsy voltage) but leaves dynamic/"
        "peripheral energy\nuntouched and pays recurring wake latency "
        "on cache-hot apps (bzip2, h264,\nastar). PowerChop's "
        "way-gating is selective — big cuts only where the\narray is "
        "truly idle — but also shrinks per-access energy and composes "
        "with\nthe VPU/BPU policies the drowsy scheme cannot manage. "
        "The two are\ncomplementary in principle.\n");
    return 0;
}
