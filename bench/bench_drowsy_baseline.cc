/**
 * @file
 * Related-work baseline (Section VI): the drowsy cache (Flautner et
 * al.) vs PowerChop's MLC way-gating.
 *
 * Drowsy caching drops cold lines to a state-retentive low voltage
 * per line; PowerChop resizes the array per phase. The comparison the
 * paper's related-work discussion implies: drowsy saves leakage with
 * no criticality analysis and no state loss, but cannot shrink the
 * powered array when the phase doesn't need it at all; PowerChop can.
 */

#include "bench_util.hh"

using namespace powerchop;
using namespace powerchop::bench;

int
main()
{
    banner("Baseline: drowsy MLC vs PowerChop MLC way-gating",
           "Section VI related work (drowsy caches)");

    const InsnCount insns = insnBudget(8'000'000);
    std::printf("application     drowsy_slow  drowsy_leak_red  "
                "drowsy_power_red  pchop_slow  pchop_leak_red  "
                "pchop_power_red\n");

    struct Row
    {
        SimResult full, dr, pc;
    };
    std::vector<double> d_slow, d_leak, d_pow, p_slow, p_leak, p_pow;
    auto apps = serverWorkloads();
    forEachApp(
        apps,
        [&](const WorkloadSpec &w) {
            MachineConfig m = serverConfig();
            SimOptions opts;
            opts.maxInstructions = insns;

            Row r;
            opts.mode = SimMode::FullPower;
            r.full = simulate(m, w, opts);

            opts.mode = SimMode::DrowsyMlc;
            r.dr = simulate(m, w, opts);

            // MLC-only PowerChop for an apples-to-apples comparison.
            opts.mode = SimMode::PowerChop;
            opts.manageVpu = false;
            opts.manageBpu = false;
            r.pc = simulate(m, w, opts);
            return r;
        },
        [&](const WorkloadSpec &w, const Row &r) {
            double ds = r.dr.slowdownVs(r.full);
            double dl = r.dr.leakageReductionVs(r.full);
            double dp = r.dr.powerReductionVs(r.full);
            double ps = r.pc.slowdownVs(r.full);
            double pl = r.pc.leakageReductionVs(r.full);
            double pp = r.pc.powerReductionVs(r.full);
            std::printf("%-14s  %s  %s  %s  %s  %s  %s\n",
                        w.name.c_str(), pct(ds).c_str(),
                        pct(dl).c_str(), pct(dp).c_str(),
                        pct(ps).c_str(), pct(pl).c_str(),
                        pct(pp).c_str());
            d_slow.push_back(ds);
            d_leak.push_back(dl);
            d_pow.push_back(dp);
            p_slow.push_back(ps);
            p_leak.push_back(pl);
            p_pow.push_back(pp);
        });

    std::printf("\naverages: drowsy %s leakage / %s power at %s "
                "slowdown;\n          PowerChop (MLC only) %s leakage "
                "/ %s power at %s slowdown\n",
                pct(mean(d_leak)).c_str(), pct(mean(d_pow)).c_str(),
                pct(mean(d_slow)).c_str(), pct(mean(p_leak)).c_str(),
                pct(mean(p_pow)).c_str(), pct(mean(p_slow)).c_str());
    std::printf(
        "observed trade-off: drowsy cuts MLC leakage almost uniformly "
        "(state is\nretained at the drowsy voltage) but leaves dynamic/"
        "peripheral energy\nuntouched and pays recurring wake latency "
        "on cache-hot apps (bzip2, h264,\nastar). PowerChop's "
        "way-gating is selective — big cuts only where the\narray is "
        "truly idle — but also shrinks per-access energy and composes "
        "with\nthe VPU/BPU policies the drowsy scheme cannot manage. "
        "The two are\ncomplementary in principle.\n");
    reportRunner("drowsy_baseline");
    return 0;
}
