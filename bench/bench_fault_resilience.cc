/**
 * @file
 * Fault-resilience sweep: inject faults into the gating stack (policy
 * corruption, HTB drops/aliases, controller-state flips, wakeup
 * stretches) at increasing rates and measure how far PowerChop's
 * performance and power management degrade, with the QoS watchdog
 * enabled as the safety net. Also demonstrates the robust batch
 * runner: a misconfigured job and a deadline-limited job are reported
 * per-job instead of aborting the batch.
 *
 * Not a paper figure — this is the harness for the robustness
 * subsystem (see DESIGN.md, "Fault injection and graceful
 * degradation").
 */

#include <limits>

#include "bench_util.hh"

using namespace powerchop;
using namespace powerchop::bench;

namespace
{

/** One representative application per suite keeps the sweep cheap. */
std::vector<WorkloadSpec>
sampleApps()
{
    std::vector<WorkloadSpec> apps;
    bool seen[4] = {false, false, false, false};
    for (const auto &w : allWorkloads()) {
        auto s = static_cast<unsigned>(w.suite);
        if (!seen[s]) {
            seen[s] = true;
            apps.push_back(w);
        }
    }
    return apps;
}

/** A PowerChop job for `w` with every fault class at `rate`. */
SimJob
faultJob(const WorkloadSpec &w, double rate, InsnCount insns)
{
    SimJob job;
    job.machine = machineFor(w);
    job.machine.faults.enabled = rate > 0;
    job.machine.faults.policyCorruptRate = rate;
    job.machine.faults.htbDropRate = rate;
    job.machine.faults.htbAliasRate = rate;
    job.machine.faults.controllerFlipRate = rate;
    job.machine.faults.wakeupStretchRate = rate;
    job.machine.powerChop.qos.enabled = true;
    job.workload = w;
    job.opts.mode = SimMode::PowerChop;
    job.opts.maxInstructions = insns;
    return job;
}

} // namespace

int
main()
{
    banner("Fault resilience: gating stack under injected faults",
           "robustness harness (not a paper figure)");

    const InsnCount insns = insnBudget(2'000'000);
    const std::vector<double> rates = {0.0, 1e-4, 1e-3, 1e-2};
    const auto apps = sampleApps();

    // One robust batch covering the full (app, rate) cross product;
    // rate 0 doubles as each app's fault-free reference.
    std::vector<SimJob> jobs;
    for (const auto &w : apps)
        for (double rate : rates)
            jobs.push_back(faultJob(w, rate, insns));

    progress(csprintf("sweeping %zu apps x %zu fault rates",
                      apps.size(), rates.size()));
    RobustBatchResult sweep = runner().runRobust(jobs);

    std::printf("application     fault_rate  ipc      slowdown  "
                "faults   safe_acts  safe_windows\n");
    for (std::size_t a = 0; a < apps.size(); ++a) {
        const SimResult &base = sweep.results[a * rates.size()];
        for (std::size_t r = 0; r < rates.size(); ++r) {
            const std::size_t i = a * rates.size() + r;
            if (sweep.outcomes[i].status != JobStatus::Ok) {
                std::printf("%-14s  %10.0e  %s: %s\n",
                            apps[a].name.c_str(), rates[r],
                            jobStatusName(sweep.outcomes[i].status),
                            sweep.outcomes[i].error.c_str());
                continue;
            }
            const SimResult &res = sweep.results[i];
            std::printf(
                "%-14s  %10.0e  %7.3f  %s  %7llu  %9llu  %s\n",
                apps[a].name.c_str(), rates[r], res.ipc(),
                pct(res.slowdownVs(base)).c_str(),
                static_cast<unsigned long long>(res.faults.total()),
                static_cast<unsigned long long>(
                    res.safeModeActivations),
                pct(res.safeModeWindowFraction).c_str());
        }
    }
    std::printf("sweep batch: %s\n\n", sweep.summary().c_str());

    // Error-isolation demo: a healthy job, a misconfigured job (VPU
    // width 0 fails config validation inside simulate()) and a job
    // whose deadline cannot be met. The batch must complete with the
    // bad jobs reported individually.
    std::vector<SimJob> demo;
    demo.push_back(faultJob(apps[0], 0.0, insns));
    demo.push_back(faultJob(apps[0], 0.0, insns));
    demo[1].machine.vpu.width = 0;
    demo.push_back(faultJob(apps[0], 0.0,
                            std::numeric_limits<InsnCount>::max()));

    RobustRunOptions demo_opts;
    demo_opts.timeoutSeconds = 0.2;
    progress("robust batch demo: 1 healthy, 1 misconfigured, "
             "1 over-deadline job");
    RobustBatchResult demo_res = runner().runRobust(demo, demo_opts);

    std::printf("robust batch demo:\n");
    static const char *kind[] = {"healthy", "misconfigured",
                                 "over-deadline"};
    for (std::size_t i = 0; i < demo_res.outcomes.size(); ++i) {
        const JobOutcome &o = demo_res.outcomes[i];
        // A timeout's message includes the wall-clock-dependent
        // instruction count reached; keep stdout deterministic.
        const bool show_error =
            o.status == JobStatus::Failed && !o.error.empty();
        std::printf("  job %zu (%s): %s, %u attempt(s)%s%s\n", i,
                    kind[i], jobStatusName(o.status), o.attempts,
                    show_error ? " — " : "",
                    show_error ? o.error.c_str() : "");
    }
    std::printf("demo batch: %s\n", demo_res.summary().c_str());

    std::printf("\nexpected shape: slowdown and safe-mode activity "
                "grow with the fault rate,\nbut every job completes "
                "and batch errors stay per-job.\n");
    reportRunner("fault_resilience");
    return 0;
}
