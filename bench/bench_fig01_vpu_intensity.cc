/**
 * @file
 * Figure 1: vector-operation intensity over 200 thousand instructions
 * of gobmk. The paper's point: VPU criticality varies across
 * execution, with long low-but-nonzero stretches that defeat
 * timeout-based gating.
 *
 * Output: one row per 1000-instruction shard with its SIMD-op count,
 * bucketed into a compact series, plus phase annotations.
 */

#include "bench_util.hh"
#include "workload/generator.hh"

using namespace powerchop;
using namespace powerchop::bench;

int
main()
{
    banner("Figure 1: vector operation intensity over gobmk",
           "Fig. 1 (Section III-A)");

    WorkloadSpec w = findWorkload("gobmk");
    WorkloadGenerator gen(w);

    // Our synthetic gobmk's phases are hundreds of K instructions
    // long (the paper's 200K-instruction excerpt is rescaled to a 2M
    // span so the same burst/sparse alternation is visible); values
    // are reported per 1000 instructions as in the paper.
    constexpr InsnCount shard = 10'000;
    constexpr InsnCount total = 2'000'000;

    // Skip the start-of-run transient so the window mirrors the
    // paper's mid-execution excerpt.
    for (InsnCount i = 0; i < 100'000; ++i)
        gen.next();

    std::printf("shard  simd_per_kilo  phase\n");
    std::vector<double> series;
    for (InsnCount s = 0; s < total / shard; ++s) {
        unsigned simd = 0;
        unsigned phase = gen.currentPhase();
        for (InsnCount i = 0; i < shard; ++i) {
            if (gen.next().op() == OpClass::SimdOp)
                ++simd;
        }
        double per_kilo = simd * 1000.0 / shard;
        series.push_back(per_kilo);
        std::printf("%5llu  %13.1f  %u\n",
                    static_cast<unsigned long long>(s), per_kilo, phase);
    }

    unsigned lo = 0, mid = 0, hi = 0;
    for (double v : series) {
        if (v < 0.05)
            ++lo;
        else if (v <= 4)
            ++mid;
        else
            ++hi;
    }
    std::printf("\nsummary over %zu shards (per-1K-insn intensity): "
                "V~0 in %u, 0<V<=4 in %u, V>4 in %u\n",
                series.size(), lo, mid, hi);
    std::printf("paper shape: intensity alternates between vector-"
                "burst and sparse stretches;\nthe sparse stretches "
                "(0<V<=4) are the timeout-resistant opportunity.\n");
    return 0;
}
