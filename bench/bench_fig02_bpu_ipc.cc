/**
 * @file
 * Figure 2: IPC over time for MobileBench msn on the mobile core with
 * a small (local-only) branch predictor vs. the large tournament
 * predictor. The paper's point: the large BPU helps overall but is
 * non-critical during many phases, creating gating opportunities.
 *
 * Output: IPC per sample interval for both configurations.
 */

#include "bench_util.hh"

using namespace powerchop;
using namespace powerchop::bench;

int
main()
{
    banner("Figure 2: small vs large BPU IPC over MobileBench msn",
           "Fig. 2 (Section III-A)");

    WorkloadSpec w = findWorkload("msn");
    MachineConfig m = mobileConfig();
    const InsnCount insns = insnBudget(13'000'000);
    const InsnCount interval = insns / 64;

    auto series = [&](bool large_on) {
        std::vector<double> ipc;
        SimOptions opts;
        opts.mode = SimMode::StaticPolicy;
        opts.staticPolicy = GatingPolicy::fullPower();
        opts.staticPolicy.bpuOn = large_on;
        opts.maxInstructions = insns;
        opts.sampleInterval = interval;
        InsnCount last_n = 0;
        Cycles last_c = 0;
        opts.sampler = [&](InsnCount n, Cycles c) {
            ipc.push_back((n - last_n) / (c - last_c));
            last_n = n;
            last_c = c;
        };
        simulate(m, w, opts);
        return ipc;
    };

    progress("running msn with the large tournament BPU");
    std::vector<double> large = series(true);
    progress("running msn with the small local-only BPU");
    std::vector<double> small = series(false);

    std::printf("sample  ipc_small  ipc_large  large_benefit\n");
    double sum_s = 0, sum_l = 0;
    std::size_t negligible = 0;
    for (std::size_t i = 0; i < large.size() && i < small.size(); ++i) {
        double benefit = large[i] - small[i];
        std::printf("%6zu  %9.3f  %9.3f  %+8.3f\n", i, small[i],
                    large[i], benefit);
        sum_s += small[i];
        sum_l += large[i];
        if (benefit < 0.02)
            ++negligible;
    }
    std::printf("\nmean IPC: small %.3f, large %.3f (overall benefit "
                "%.1f%%)\n",
                sum_s / small.size(), sum_l / large.size(),
                100.0 * (sum_l / sum_s - 1.0));
    std::printf("samples with negligible large-BPU benefit: %zu of "
                "%zu (%.0f%%)\n",
                negligible, large.size(),
                100.0 * negligible / large.size());
    std::printf("paper shape: the large BPU improves IPC overall, but "
                "its benefit is\nnegligible during many phases.\n");
    return 0;
}
