/**
 * @file
 * Figure 3: IPC over time for GemsFDTD on the server core with a
 * 128KB 1-way MLC vs. the full 1024KB 8-way MLC. The paper's point:
 * the full MLC matters when the working set fits it (and not L1),
 * and stops mattering when the workload streams.
 *
 * Output: IPC per sample interval for both configurations.
 */

#include "bench_util.hh"

using namespace powerchop;
using namespace powerchop::bench;

int
main()
{
    banner("Figure 3: 128KB 1-way vs 1024KB 8-way MLC IPC over "
           "GemsFDTD",
           "Fig. 3 (Section III-A)");

    WorkloadSpec w = findWorkload("gems");
    MachineConfig m = serverConfig();
    const InsnCount insns = insnBudget(24'000'000);
    const InsnCount interval = insns / 64;

    auto series = [&](MlcPolicy mlc) {
        std::vector<double> ipc;
        SimOptions opts;
        opts.mode = SimMode::StaticPolicy;
        opts.staticPolicy = GatingPolicy::fullPower();
        opts.staticPolicy.mlc = mlc;
        opts.maxInstructions = insns;
        opts.sampleInterval = interval;
        InsnCount last_n = 0;
        Cycles last_c = 0;
        opts.sampler = [&](InsnCount n, Cycles c) {
            ipc.push_back((n - last_n) / (c - last_c));
            last_n = n;
            last_c = c;
        };
        simulate(m, w, opts);
        return ipc;
    };

    progress("running gems with the full 1024KB 8-way MLC");
    std::vector<double> full = series(MlcPolicy::AllWays);
    progress("running gems with the 128KB 1-way MLC");
    std::vector<double> one = series(MlcPolicy::OneWay);

    std::printf("sample  ipc_1way  ipc_8way  full_benefit\n");
    double sum_1 = 0, sum_8 = 0;
    std::size_t big_gap = 0, small_gap = 0;
    for (std::size_t i = 0; i < full.size() && i < one.size(); ++i) {
        double benefit = full[i] - one[i];
        std::printf("%6zu  %8.3f  %8.3f  %+8.3f\n", i, one[i], full[i],
                    benefit);
        sum_1 += one[i];
        sum_8 += full[i];
        if (benefit > 0.1)
            ++big_gap;
        else
            ++small_gap;
    }
    std::printf("\nmean IPC: 1-way %.3f, 8-way %.3f\n",
                sum_1 / one.size(), sum_8 / full.size());
    std::printf("samples where the full MLC matters (gap > 0.1 IPC): "
                "%zu; negligible: %zu\n",
                big_gap, small_gap);
    std::printf("paper shape: the full MLC helps only while the "
                "working set fits it; during\nstreaming sweeps the "
                "two configurations converge.\n");
    return 0;
}
