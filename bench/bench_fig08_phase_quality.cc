/**
 * @file
 * Figure 8: quality of online phase identification. For every window
 * pair that PowerChop labels with the same phase signature, compute
 * the normalized Manhattan distance between their translation
 * profiles. The paper reports an average of 2.8% (28 of 1000
 * translations differing) and a worst case of 6.8%.
 */

#include <cmath>
#include <map>

#include "bench_util.hh"

using namespace powerchop;
using namespace powerchop::bench;

namespace
{

/** Average normalized Manhattan distance between same-signature
 *  windows of one app. */
double
phaseQuality(const WorkloadSpec &w, InsnCount insns)
{
    MachineConfig m = machineFor(w);

    // Keep a bounded number of window profiles per signature.
    std::map<PhaseSignature, std::vector<std::map<TranslationId, double>>,
             std::less<PhaseSignature>>
        windows;

    SimOptions opts;
    opts.mode = SimMode::PowerChop;
    opts.maxInstructions = insns;
    opts.windowObserver = [&](const WindowReport &rep) {
        auto &list = windows[rep.signature];
        if (list.size() >= 8)
            return;
        std::map<TranslationId, double> profile;
        for (const auto &[id, n] : rep.profile)
            profile[id] = static_cast<double>(n);
        list.push_back(std::move(profile));
    };
    simulate(m, w, opts);

    double total = 0;
    int pairs = 0;
    for (const auto &[sig, list] : windows) {
        for (std::size_t i = 0; i < list.size(); ++i) {
            for (std::size_t j = i + 1; j < list.size(); ++j) {
                std::map<TranslationId, double> diff = list[i];
                for (const auto &[id, c] : list[j])
                    diff[id] -= c;
                double dist = 0, mass = 0;
                for (const auto &[id, c] : diff)
                    dist += std::abs(c);
                for (const auto &[id, c] : list[i])
                    mass += c;
                for (const auto &[id, c] : list[j])
                    mass += c;
                if (mass > 0) {
                    total += dist / mass;
                    ++pairs;
                }
            }
        }
    }
    return pairs ? total / pairs : 0.0;
}

} // namespace

int
main()
{
    banner("Figure 8: code similarity across same-signature windows",
           "Fig. 8 (Section V-B)");

    const InsnCount insns = insnBudget(10'000'000);
    std::printf("application     avg_manhattan_distance\n");

    SuiteAverages agg;
    double worst = 0;
    std::string worst_app;
    forEachApp(
        allWorkloads(),
        [&](const WorkloadSpec &w) { return phaseQuality(w, insns); },
        [&](const WorkloadSpec &w, double d) {
            std::printf("%-14s  %s\n", w.name.c_str(), pct(d).c_str());
            agg.add(w.suite, d);
            if (d > worst) {
                worst = d;
                worst_app = w.name;
            }
        });

    std::printf("\naverage distance %s, worst %s (%s)\n",
                pct(agg.overallMean()).c_str(), pct(worst).c_str(),
                worst_app.c_str());
    std::printf("paper: average 2.8%%, never exceeding 6.8%% — windows "
                "sharing a signature\nexecute nearly identical "
                "translation sets.\n");
    reportRunner("fig08_phase_quality");
    return 0;
}
