/**
 * @file
 * Figure 9: per-unit gated-off cycle fractions under PowerChop on the
 * mobile design point (MobileBench). The paper's shape: the VPU is
 * gated ~90%+ of the time, the BPU around 40% on average, and the MLC
 * is gated in some fashion around 20% of the time.
 */

#include "bench_util.hh"

using namespace powerchop;
using namespace powerchop::bench;

int
main()
{
    banner("Figure 9: unit activity on the mobile processor",
           "Fig. 9 (Section V-C)");

    const InsnCount insns = insnBudget(10'000'000);
    std::printf("application   vpu_gated  bpu_gated  mlc_half  "
                "mlc_1way\n");

    SuiteAverages vpu, bpu, mlc_any;
    forEachApp(
        mobileWorkloads(),
        [&](const WorkloadSpec &w) {
            // Section V-C methodology: each unit is managed in
            // isolation while the others stay gated on.
            SimOptions opts;
            opts.mode = SimMode::PowerChop;
            opts.maxInstructions = insns;

            opts.manageVpu = true;
            opts.manageBpu = false;
            opts.manageMlc = false;
            SimResult rv = simulate(mobileConfig(), w, opts);

            opts.manageVpu = false;
            opts.manageBpu = true;
            SimResult rb = simulate(mobileConfig(), w, opts);

            opts.manageBpu = false;
            opts.manageMlc = true;
            SimResult rm = simulate(mobileConfig(), w, opts);

            SimResult r;
            r.vpuGatedFraction = rv.vpuGatedFraction;
            r.bpuGatedFraction = rb.bpuGatedFraction;
            r.mlcHalfFraction = rm.mlcHalfFraction;
            r.mlcOneWayFraction = rm.mlcOneWayFraction;
            return r;
        },
        [&](const WorkloadSpec &w, const SimResult &r) {
            std::printf("%-12s  %s  %s  %s  %s\n", w.name.c_str(),
                        pct(r.vpuGatedFraction).c_str(),
                        pct(r.bpuGatedFraction).c_str(),
                        pct(r.mlcHalfFraction).c_str(),
                        pct(r.mlcOneWayFraction).c_str());
            vpu.add(w.suite, r.vpuGatedFraction);
            bpu.add(w.suite, r.bpuGatedFraction);
            mlc_any.add(w.suite,
                        r.mlcHalfFraction + r.mlcOneWayFraction);
        });

    std::printf("\naverages: VPU gated %s, BPU gated %s, MLC gated in "
                "some fashion %s\n",
                pct(vpu.overallMean()).c_str(),
                pct(bpu.overallMean()).c_str(),
                pct(mlc_any.overallMean()).c_str());
    std::printf("paper shape: VPU ~90%%+, BPU ~40%% average, MLC "
                "gated in some fashion.\n");
    reportRunner("fig09_unit_activity_mobile");
    return 0;
}
