/**
 * @file
 * Figure 10: per-unit gated-off cycle fractions under PowerChop on
 * the server design point (SPEC CPU2006 + PARSEC). The paper's shape:
 * the VPU is gated ~90% on almost all SPEC-INT apps and surprisingly
 * often on some FP/PARSEC apps (namd, dedup >90%; soplex, sphinx
 * ~20%); several apps sit at MLC 1-way >40% of cycles (gems, milc,
 * gcc, libquantum, streamcluster); the BPU is usually needed, with
 * exceptions such as lbm and hmmer.
 */

#include "bench_util.hh"

using namespace powerchop;
using namespace powerchop::bench;

int
main()
{
    banner("Figure 10: unit activity on the server processor",
           "Fig. 10 (Section V-C)");

    const InsnCount insns = insnBudget(10'000'000);
    std::printf("application     vpu_gated  bpu_gated  mlc_half  "
                "mlc_1way\n");

    SuiteAverages vpu, bpu, one_way;
    forEachApp(
        serverWorkloads(),
        [&](const WorkloadSpec &w) {
            // Section V-C methodology: each unit is managed in
            // isolation while the others stay gated on.
            SimOptions opts;
            opts.mode = SimMode::PowerChop;
            opts.maxInstructions = insns;

            opts.manageVpu = true;
            opts.manageBpu = false;
            opts.manageMlc = false;
            SimResult rv = simulate(serverConfig(), w, opts);

            opts.manageVpu = false;
            opts.manageBpu = true;
            SimResult rb = simulate(serverConfig(), w, opts);

            opts.manageBpu = false;
            opts.manageMlc = true;
            SimResult rm = simulate(serverConfig(), w, opts);

            SimResult r;
            r.vpuGatedFraction = rv.vpuGatedFraction;
            r.bpuGatedFraction = rb.bpuGatedFraction;
            r.mlcHalfFraction = rm.mlcHalfFraction;
            r.mlcOneWayFraction = rm.mlcOneWayFraction;
            return r;
        },
        [&](const WorkloadSpec &w, const SimResult &r) {
            std::printf("%-14s  %s  %s  %s  %s\n", w.name.c_str(),
                        pct(r.vpuGatedFraction).c_str(),
                        pct(r.bpuGatedFraction).c_str(),
                        pct(r.mlcHalfFraction).c_str(),
                        pct(r.mlcOneWayFraction).c_str());
            vpu.add(w.suite, r.vpuGatedFraction);
            bpu.add(w.suite, r.bpuGatedFraction);
            one_way.add(w.suite, r.mlcOneWayFraction);
        });

    std::printf("\nsuite means:\n");
    vpu.printSummary("vpu_gated");
    bpu.printSummary("bpu_gated");
    one_way.printSummary("mlc_1way");
    std::printf("paper shape: VPU gated ~90%% for SPEC-INT; namd/dedup "
                ">90%% despite nonzero\nvector work; streaming apps "
                "sit at MLC 1-way >40%%; the BPU is usually kept\non, "
                "with lbm/hmmer-style exceptions.\n");
    reportRunner("fig10_unit_activity_server");
    return 0;
}
