/**
 * @file
 * Figure 11: frequency of unit power-gating state changes under
 * PowerChop. The paper's shape: on average fewer than 50 BPU, 10 VPU
 * and 5 MLC policy switches per million cycles — high gated fractions
 * with low switching churn is what makes the overheads affordable.
 */

#include "bench_util.hh"

using namespace powerchop;
using namespace powerchop::bench;

int
main()
{
    banner("Figure 11: unit state changes per million cycles",
           "Fig. 11 (Section V-C)");

    const InsnCount insns = insnBudget(10'000'000);
    std::printf("application     vpu/Mcyc  bpu/Mcyc  mlc/Mcyc\n");

    SuiteAverages vpu, bpu, mlc;
    forEachApp(
        allWorkloads(),
        [&](const WorkloadSpec &w) {
            SimOptions opts;
            opts.mode = SimMode::PowerChop;
            opts.maxInstructions = insns;
            return simulate(machineFor(w), w, opts);
        },
        [&](const WorkloadSpec &w, const SimResult &r) {
            std::printf("%-14s  %8.2f  %8.2f  %8.2f\n", w.name.c_str(),
                        r.vpuSwitchesPerMcycle, r.bpuSwitchesPerMcycle,
                        r.mlcSwitchesPerMcycle);
            vpu.add(w.suite, r.vpuSwitchesPerMcycle);
            bpu.add(w.suite, r.bpuSwitchesPerMcycle);
            mlc.add(w.suite, r.mlcSwitchesPerMcycle);
        });

    std::printf("\naverages: VPU %.2f, BPU %.2f, MLC %.2f switches "
                "per Mcycle\n",
                vpu.overallMean(), bpu.overallMean(), mlc.overallMean());
    std::printf("paper shape: BPU < 50, VPU < 10, MLC < 5 per Mcycle "
                "on average.\n");
    reportRunner("fig11_switch_freq");
    return 0;
}
