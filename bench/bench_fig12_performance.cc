/**
 * @file
 * Figure 12: application performance under PowerChop vs. a
 * full-power configuration and a minimally-powered configuration.
 * The paper's shape: min-power loses ~84% of performance on average,
 * while PowerChop loses only ~2.2%.
 */

#include "bench_util.hh"

using namespace powerchop;
using namespace powerchop::bench;

int
main()
{
    banner("Figure 12: performance — full power vs PowerChop vs "
           "min power",
           "Fig. 12 (Section V-D)");

    const InsnCount insns = insnBudget(10'000'000);
    std::printf("application     ipc_full  ipc_pchop  ipc_min  "
                "pchop_slowdown  min_perf_loss\n");

    SuiteAverages slowdown, min_loss;
    forEachApp(
        allWorkloads(),
        [&](const WorkloadSpec &w) {
            return runComparison(machineFor(w), w, insns);
        },
        [&](const WorkloadSpec &w, const ComparisonRuns &runs) {
            const SimResult &full = runs.fullPower;
            const SimResult &pc = runs.powerChop;
            const SimResult &min = runs.minPower;

            double pc_slow = pc.slowdownVs(full);
            double min_perf_loss = 1.0 - min.ipc() / full.ipc();
            std::printf("%-14s  %8.3f  %9.3f  %7.3f  %s  %s\n",
                        w.name.c_str(), full.ipc(), pc.ipc(), min.ipc(),
                        pct(pc_slow).c_str(),
                        pct(min_perf_loss).c_str());
            slowdown.add(w.suite, pc_slow);
            min_loss.add(w.suite, min_perf_loss);
        });

    std::printf("\nsuite means:\n");
    slowdown.printSummary("pchop_slow");
    min_loss.printSummary("min_loss");
    std::printf("paper shape: PowerChop averages ~2.2%% slowdown; the "
                "minimally-powered\nconfiguration loses dramatically "
                "more performance.\n");
    reportRunner("fig12_performance");
    maybeEmitTrace(allWorkloads().front(), insns);
    return 0;
}
