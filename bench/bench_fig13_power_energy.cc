/**
 * @file
 * Figure 13: total core power and energy reduction with PowerChop
 * managing all three units. The paper's shape: power reductions of
 * ~10% SPEC-INT, ~6% SPEC-FP, ~8% PARSEC and ~19% MobileBench, with
 * energy reductions slightly smaller (average ~9%) because of the
 * small slowdown; individual apps reach up to ~40% power reduction.
 */

#include "bench_util.hh"

using namespace powerchop;
using namespace powerchop::bench;

int
main()
{
    banner("Figure 13: total core power and energy reduction",
           "Fig. 13 (Section V-D)");

    const InsnCount insns = insnBudget(10'000'000);
    std::printf("application     power_full  power_pchop  power_red  "
                "energy_red\n");

    SuiteAverages power_red, energy_red;
    int over10 = 0;
    forEachApp(
        allWorkloads(),
        [&](const WorkloadSpec &w) {
            return runPair(machineFor(w), w, insns);
        },
        [&](const WorkloadSpec &w, const ComparisonRuns &runs) {
            const SimResult &full = runs.fullPower;
            const SimResult &pc = runs.powerChop;

            double pr = pc.powerReductionVs(full);
            double er = pc.energyReductionVs(full);
            std::printf("%-14s  %8.3f W  %9.3f W  %s  %s\n",
                        w.name.c_str(), full.energy.averagePower(),
                        pc.energy.averagePower(), pct(pr).c_str(),
                        pct(er).c_str());
            power_red.add(w.suite, pr);
            energy_red.add(w.suite, er);
            if (pr > 0.10)
                ++over10;
        });

    std::printf("\nsuite means:\n");
    power_red.printSummary("power_red");
    energy_red.printSummary("energy_red");
    std::printf("apps with >10%% total power reduction: %d of 29\n",
                over10);
    std::printf("paper shape: power reduction ~10%%/6%%/8%%/19%% for "
                "INT/FP/PARSEC/Mobile,\nenergy slightly below power "
                "(avg ~9%%), 13 of 29 apps above 10%%.\n");
    reportRunner("fig13_power_energy");
    return 0;
}
