/**
 * @file
 * Figure 14: core leakage power reduction with PowerChop. The paper's
 * shape: ~23% SPEC-INT, ~10% SPEC-FP, ~12% PARSEC and ~32%
 * MobileBench on average, with individual apps up to ~52%, at ~2.2%
 * slowdown.
 */

#include "bench_util.hh"

using namespace powerchop;
using namespace powerchop::bench;

int
main()
{
    banner("Figure 14: leakage power reduction", "Fig. 14 (Section V-D)");

    const InsnCount insns = insnBudget(10'000'000);
    std::printf("application     leak_full  leak_pchop  leak_red\n");

    SuiteAverages leak_red;
    forEachApp(
        allWorkloads(),
        [&](const WorkloadSpec &w) {
            return runPair(machineFor(w), w, insns);
        },
        [&](const WorkloadSpec &w, const ComparisonRuns &runs) {
            const SimResult &full = runs.fullPower;
            const SimResult &pc = runs.powerChop;

            double lr = pc.leakageReductionVs(full);
            std::printf("%-14s  %7.3f W  %8.3f W  %s\n", w.name.c_str(),
                        full.energy.averageLeakagePower(),
                        pc.energy.averageLeakagePower(),
                        pct(lr).c_str());
            leak_red.add(w.suite, lr);
        });

    std::printf("\nsuite means:\n");
    leak_red.printSummary("leak_red");
    std::printf("paper shape: ~23%% INT, ~10%% FP, ~12%% PARSEC, ~32%% "
                "Mobile; mobile wins\nbecause its MLC is 60%% of core "
                "area (Table I).\n");
    reportRunner("fig14_leakage");
    return 0;
}
