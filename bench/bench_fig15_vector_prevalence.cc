/**
 * @file
 * Figure 15: prevalence of vector operations among 1000-instruction
 * execution shards of the server workloads. The paper's point: many
 * apps have long stretches where shards carry a small-but-nonzero
 * number of vector ops (0 < V <= 4) — the regime where PowerChop's
 * BT-based scalar emulation creates gating windows timeouts cannot.
 */

#include "bench_util.hh"
#include "workload/generator.hh"

using namespace powerchop;
using namespace powerchop::bench;

int
main()
{
    banner("Figure 15: vector operation prevalence among execution "
           "shards",
           "Fig. 15 (Section V-E)");

    const InsnCount insns = insnBudget(4'000'000);
    constexpr InsnCount shard = 1000;

    std::printf("application     V=0      0<V<=4   4<V<=16  V>16\n");
    struct ShardCounts
    {
        std::uint64_t buckets[4] = {0, 0, 0, 0};
    };
    const InsnCount shards = insns / shard;
    forEachApp(
        serverWorkloads(),
        [&](const WorkloadSpec &w) {
            WorkloadGenerator gen(w);
            ShardCounts c;
            for (InsnCount s = 0; s < shards; ++s) {
                unsigned v = 0;
                for (InsnCount i = 0; i < shard; ++i) {
                    if (gen.next().op() == OpClass::SimdOp)
                        ++v;
                }
                if (v == 0)
                    ++c.buckets[0];
                else if (v <= 4)
                    ++c.buckets[1];
                else if (v <= 16)
                    ++c.buckets[2];
                else
                    ++c.buckets[3];
            }
            return c;
        },
        [&](const WorkloadSpec &w, const ShardCounts &c) {
            std::printf("%-14s  %s  %s  %s  %s\n", w.name.c_str(),
                        pct(double(c.buckets[0]) / shards).c_str(),
                        pct(double(c.buckets[1]) / shards).c_str(),
                        pct(double(c.buckets[2]) / shards).c_str(),
                        pct(double(c.buckets[3]) / shards).c_str());
        });

    std::printf("\npaper shape: several applications spend large "
                "fractions of execution in\nshards with a small "
                "nonzero vector count (0<V<=4), e.g. namd, perlbench,"
                "\nh264 — the timeout-resistant regime.\n");
    reportRunner("fig15_vector_prevalence");
    return 0;
}
