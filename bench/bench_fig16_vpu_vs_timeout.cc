/**
 * @file
 * Figure 16: VPU gating activity, PowerChop vs. a 20K-cycle idle
 * timeout, on the server workloads. The paper's shape: PowerChop
 * gates the VPU at least as much as the timeout everywhere, with
 * dramatic wins on apps like namd, perlbench and h264 whose sparse,
 * uniformly spread vector ops keep resetting the idle clock.
 */

#include "bench_util.hh"

using namespace powerchop;
using namespace powerchop::bench;

int
main()
{
    banner("Figure 16: VPU gating — PowerChop vs 20K-cycle timeout",
           "Fig. 16 (Section V-E)");

    const InsnCount insns = insnBudget(10'000'000);
    std::printf("application     pchop_gated  timeout_gated  "
                "pchop_slow  timeout_slow\n");

    SuiteAverages pc_gated, to_gated;
    forEachApp(serverWorkloads(), [&](const WorkloadSpec &w) {
        MachineConfig m = serverConfig();
        SimOptions opts;
        opts.maxInstructions = insns;

        opts.mode = SimMode::FullPower;
        SimResult full = simulate(m, w, opts);

        // Per-unit comparison: PowerChop manages only the VPU here,
        // matching the Section V-E experiment.
        opts.mode = SimMode::PowerChop;
        opts.manageBpu = false;
        opts.manageMlc = false;
        SimResult pc = simulate(m, w, opts);

        opts.mode = SimMode::TimeoutVpu;
        SimResult to = simulate(m, w, opts);

        std::printf("%-14s  %s  %s  %s  %s\n", w.name.c_str(),
                    pct(pc.vpuGatedFraction).c_str(),
                    pct(to.vpuGatedFraction).c_str(),
                    pct(pc.slowdownVs(full)).c_str(),
                    pct(to.slowdownVs(full)).c_str());
        pc_gated.add(w.suite, pc.vpuGatedFraction);
        to_gated.add(w.suite, to.vpuGatedFraction);
    });

    std::printf("\naverages: PowerChop gates the VPU %s of cycles, "
                "timeout %s\n",
                pct(pc_gated.overallMean()).c_str(),
                pct(to_gated.overallMean()).c_str());
    std::printf("paper shape: PowerChop >= timeout everywhere; immense "
                "wins on namd,\nperlbench, h264 (sparse uniform vector "
                "ops defeat the idle clock).\n");
    return 0;
}
