/**
 * @file
 * Figure 16: VPU gating activity, PowerChop vs. a 20K-cycle idle
 * timeout, on the server workloads. The paper's shape: PowerChop
 * gates the VPU at least as much as the timeout everywhere, with
 * dramatic wins on apps like namd, perlbench and h264 whose sparse,
 * uniformly spread vector ops keep resetting the idle clock.
 */

#include "bench_util.hh"

using namespace powerchop;
using namespace powerchop::bench;

int
main()
{
    banner("Figure 16: VPU gating — PowerChop vs 20K-cycle timeout",
           "Fig. 16 (Section V-E)");

    const InsnCount insns = insnBudget(10'000'000);
    std::printf("application     pchop_gated  timeout_gated  "
                "pchop_slow  timeout_slow\n");

    struct Row
    {
        SimResult full, pc, to;
    };
    SuiteAverages pc_gated, to_gated;
    forEachApp(
        serverWorkloads(),
        [&](const WorkloadSpec &w) {
            MachineConfig m = serverConfig();
            SimOptions opts;
            opts.maxInstructions = insns;

            Row r;
            opts.mode = SimMode::FullPower;
            r.full = simulate(m, w, opts);

            // Per-unit comparison: PowerChop manages only the VPU
            // here, matching the Section V-E experiment.
            opts.mode = SimMode::PowerChop;
            opts.manageBpu = false;
            opts.manageMlc = false;
            r.pc = simulate(m, w, opts);

            opts.mode = SimMode::TimeoutVpu;
            r.to = simulate(m, w, opts);
            return r;
        },
        [&](const WorkloadSpec &w, const Row &r) {
            std::printf("%-14s  %s  %s  %s  %s\n", w.name.c_str(),
                        pct(r.pc.vpuGatedFraction).c_str(),
                        pct(r.to.vpuGatedFraction).c_str(),
                        pct(r.pc.slowdownVs(r.full)).c_str(),
                        pct(r.to.slowdownVs(r.full)).c_str());
            pc_gated.add(w.suite, r.pc.vpuGatedFraction);
            to_gated.add(w.suite, r.to.vpuGatedFraction);
        });

    std::printf("\naverages: PowerChop gates the VPU %s of cycles, "
                "timeout %s\n",
                pct(pc_gated.overallMean()).c_str(),
                pct(to_gated.overallMean()).c_str());
    std::printf("paper shape: PowerChop >= timeout everywhere; immense "
                "wins on namd,\nperlbench, h264 (sparse uniform vector "
                "ops defeat the idle clock).\n");
    reportRunner("fig16_vpu_vs_timeout");
    return 0;
}
