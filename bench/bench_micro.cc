/**
 * @file
 * Component microbenchmarks (google-benchmark): throughput of the
 * hot-path structures — HTB updates, PVT lookups, cache accesses,
 * branch predictors, the workload generator, and end-to-end simulated
 * MIPS. These guard against performance regressions in the simulator
 * itself.
 */

#include <benchmark/benchmark.h>

#include "powerchop/powerchop.hh"

using namespace powerchop;

namespace
{

void
BM_HtbRecord(benchmark::State &state)
{
    Htb htb;
    TranslationId id = 1;
    for (auto _ : state) {
        auto rep = htb.recordTranslation(id, 14);
        benchmark::DoNotOptimize(rep);
        id = id % 96 + 1;  // within HTB capacity
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HtbRecord);

void
BM_PvtLookup(benchmark::State &state)
{
    Pvt pvt;
    std::vector<PhaseSignature> sigs;
    for (TranslationId base = 1; base <= 16; ++base) {
        TranslationId ids[] = {base, base + 100, base + 200, base + 300};
        sigs.emplace_back(ids, 4);
        pvt.registerPolicy(sigs.back(), GatingPolicy::fullPower());
    }
    std::size_t i = 0;
    for (auto _ : state) {
        auto hit = pvt.lookup(sigs[i]);
        benchmark::DoNotOptimize(hit);
        i = (i + 1) % sigs.size();
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PvtLookup);

void
BM_CacheAccess(benchmark::State &state)
{
    SetAssocCache cache(CacheParams{1024 * 1024, 8, 64});
    Rng rng(1);
    for (auto _ : state) {
        auto res = cache.access(0x100000 + rng.below(16384) * 64,
                                false);
        benchmark::DoNotOptimize(res);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void
BM_TournamentPredict(benchmark::State &state)
{
    TournamentPredictor pred;
    Rng rng(2);
    Addr pc = 0x1000;
    for (auto _ : state) {
        bool p = pred.predictAndTrain(pc, rng.bernoulli(0.7));
        benchmark::DoNotOptimize(p);
        pc = 0x1000 + (pc + 4) % 256;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TournamentPredict);

void
BM_WorkloadGenerator(benchmark::State &state)
{
    WorkloadGenerator gen(findWorkload("gobmk"));
    for (auto _ : state) {
        const DynInst &di = gen.next();
        benchmark::DoNotOptimize(di.effAddr);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WorkloadGenerator);

void
BM_EndToEndSimulation(benchmark::State &state)
{
    // Whole-simulator throughput in guest instructions per second.
    const auto mode = static_cast<SimMode>(state.range(0));
    for (auto _ : state) {
        SimOptions opts;
        opts.mode = mode;
        opts.maxInstructions = 200'000;
        SimResult r = simulate(serverConfig(), findWorkload("gobmk"),
                               opts);
        benchmark::DoNotOptimize(r.cycles);
    }
    state.SetItemsProcessed(state.iterations() * 200'000);
}
BENCHMARK(BM_EndToEndSimulation)
    ->Arg(static_cast<int>(SimMode::FullPower))
    ->Arg(static_cast<int>(SimMode::PowerChop))
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
