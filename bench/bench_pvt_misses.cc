/**
 * @file
 * Section IV-C3: PVT-miss software overhead. The paper measures that
 * about 0.017% of translations cause PVT misses across SPEC CPU2006,
 * costing less than 0.5% additional performance.
 */

#include "bench_util.hh"

using namespace powerchop;
using namespace powerchop::bench;

int
main()
{
    banner("PVT miss rate and software overhead",
           "Section IV-C3");

    const InsnCount insns = insnBudget(10'000'000);
    std::printf("application     translations  pvt_lookups  "
                "pvt_misses  miss/translation\n");

    std::vector<double> rates;
    forEachApp(
        serverWorkloads(),
        [&](const WorkloadSpec &w) {
            SimOptions opts;
            opts.mode = SimMode::PowerChop;
            opts.maxInstructions = insns;
            return simulate(serverConfig(), w, opts);
        },
        [&](const WorkloadSpec &w, const SimResult &r) {
            std::uint64_t misses = r.pvtLookups - r.pvtHits;
            std::printf("%-14s  %12llu  %11llu  %10llu  %10.5f%%\n",
                        w.name.c_str(),
                        static_cast<unsigned long long>(
                            r.translationsExecuted),
                        static_cast<unsigned long long>(r.pvtLookups),
                        static_cast<unsigned long long>(misses),
                        100.0 * r.pvtMissPerTranslation);
            rates.push_back(r.pvtMissPerTranslation);
        });

    // Overhead estimate: each miss costs a trap plus CDE work.
    MachineConfig m = serverConfig();
    double cycles_per_miss = m.bt.nucleus.pvtMissTrapCycles +
                             m.powerChop.cde.workCycles;
    double avg_rate = mean(rates);
    // One translation covers roughly avgBlockLen+1 instructions at
    // ~1 cycle/insn; express the overhead per cycle.
    double overhead = avg_rate * cycles_per_miss / 15.0;
    std::printf("\naverage PVT miss rate: %.5f%% of translations\n",
                100.0 * avg_rate);
    std::printf("estimated software overhead: %.3f%% of execution\n",
                100.0 * overhead);
    std::printf("paper: 0.017%% of translations miss, costing < 0.5%% "
                "performance.\n");
    reportRunner("pvt_misses");
    return 0;
}
