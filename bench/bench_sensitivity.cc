/**
 * @file
 * Section IV-B1 sensitivity: execution-window size and HTB capacity.
 * The paper reports that a signature length of 4 with a window of
 * 1000 translations works well across workloads; this ablation sweeps
 * the window size and HTB entry count and reports the quality knobs
 * they trade: PVT miss rate, gated fractions, and slowdown.
 */

#include "bench_util.hh"

using namespace powerchop;
using namespace powerchop::bench;

namespace
{

struct Row
{
    double slowdown;
    double power_red;
    double pvt_miss;
    double switches;
};

Row
evaluate(unsigned window, unsigned entries, InsnCount insns)
{
    std::vector<double> slow, pred, miss, sw;
    for (const auto &name : {"gobmk", "gems", "msn"}) {
        WorkloadSpec w = findWorkload(name);
        MachineConfig m = machineFor(w);
        m.powerChop.htb.windowSize = window;
        m.powerChop.htb.entries = entries;

        SimOptions opts;
        opts.maxInstructions = insns;
        opts.mode = SimMode::FullPower;
        SimResult full = simulate(m, w, opts);
        opts.mode = SimMode::PowerChop;
        SimResult pc = simulate(m, w, opts);

        slow.push_back(pc.slowdownVs(full));
        pred.push_back(pc.powerReductionVs(full));
        miss.push_back(pc.pvtMissPerTranslation);
        sw.push_back(pc.mlcSwitchesPerMcycle + pc.vpuSwitchesPerMcycle +
                     pc.bpuSwitchesPerMcycle);
    }
    return Row{mean(slow), mean(pred), mean(miss), mean(sw)};
}

} // namespace

int
main()
{
    banner("Sensitivity: execution-window size and HTB capacity",
           "Section IV-B1 (design-parameter selection)");

    const InsnCount insns = insnBudget(6'000'000);

    // Both sweeps run as one parallel batch of design points.
    const std::vector<unsigned> windows = {200u, 500u, 1000u, 2000u,
                                           5000u};
    const std::vector<unsigned> capacities = {16u, 32u, 64u, 128u,
                                              256u};
    std::vector<Row> window_rows(windows.size());
    std::vector<Row> capacity_rows(capacities.size());
    runner().runTasks(windows.size() + capacities.size(),
                      [&](std::size_t i) {
        if (i < windows.size()) {
            progress(i + 1, windows.size() + capacities.size(),
                     "window " + std::to_string(windows[i]));
            window_rows[i] = evaluate(windows[i], 128, insns);
        } else {
            const std::size_t c = i - windows.size();
            progress(i + 1, windows.size() + capacities.size(),
                     "entries " + std::to_string(capacities[c]));
            capacity_rows[c] = evaluate(1000, capacities[c], insns);
        }
    });

    std::printf("window size sweep (HTB = 128 entries):\n");
    std::printf("window  slowdown  power_red  pvt_miss/trans  "
                "switches/Mcyc\n");
    for (std::size_t i = 0; i < windows.size(); ++i) {
        const Row &r = window_rows[i];
        std::printf("%6u  %s  %s  %13.5f%%  %12.2f\n", windows[i],
                    pct(r.slowdown).c_str(), pct(r.power_red).c_str(),
                    100 * r.pvt_miss, r.switches);
    }

    std::printf("\nHTB capacity sweep (window = 1000):\n");
    std::printf("entries  slowdown  power_red  pvt_miss/trans\n");
    for (std::size_t i = 0; i < capacities.size(); ++i) {
        const Row &r = capacity_rows[i];
        std::printf("%7u  %s  %s  %13.5f%%\n", capacities[i],
                    pct(r.slowdown).c_str(), pct(r.power_red).c_str(),
                    100 * r.pvt_miss);
    }

    std::printf("\npaper shape: short windows chase transients (more "
                "switches, more PVT\ntraffic); long windows miss short "
                "phases; 1000 translations with a\n128-entry HTB is "
                "the sweet spot.\n");
    reportRunner("sensitivity");
    return 0;
}
