/**
 * @file
 * Closed-loop load generator for powerchopd (after memcached-style
 * workload generators): N client threads, each with its own
 * connection, drive a Zipf-ish key mix against a running daemon.
 *
 * Each thread computes the campaign matrix's content keys locally
 * (the same campaignJobKey the daemon uses), GETs a key drawn from a
 * heavy-tailed rank distribution, and on MISS read-throughs with a
 * single-job SIM so the daemon simulates and caches it. A first pass
 * against a cold daemon is therefore mostly misses; a second pass
 * (or a warm-restarted daemon) should be nearly all hits — CI greps
 * the `hit_rate=` line to assert exactly that.
 *
 * Prints served QPS, hit rate and request-latency quantiles, and
 * appends the same numbers to the BENCH_runner.json trajectory.
 */

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hh"

using namespace powerchop;
using namespace powerchop::bench;

namespace
{

std::vector<std::string>
splitList(const std::string &csv)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= csv.size()) {
        std::size_t comma = csv.find(',', start);
        if (comma == std::string::npos)
            comma = csv.size();
        if (comma > start)
            out.push_back(csv.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

bool
modeFromName(const std::string &name, SimMode &out)
{
    for (SimMode mode : {SimMode::FullPower, SimMode::PowerChop,
                         SimMode::MinPower, SimMode::TimeoutVpu,
                         SimMode::DrowsyMlc}) {
        if (name == simModeName(mode)) {
            out = mode;
            return true;
        }
    }
    return false;
}

/** One key of the working set: the content key plus the single-job
 *  SIM spec that populates it on a read-through miss. */
struct KeyPoint
{
    std::uint64_t key = 0;
    std::string spec;
};

[[noreturn]] void
usageExit()
{
    std::fprintf(
        stderr,
        "usage: bench_serve (--socket PATH | --port N) [options]\n"
        "  --threads N      concurrent client connections (default 4)\n"
        "  --requests N     GET requests per thread (default 500)\n"
        "  --workloads CSV  key-space workloads "
        "(default perlbench,namd,canneal,msn)\n"
        "  --machines CSV   key-space machines (default server,mobile)\n"
        "  --modes CSV      key-space modes (default all five)\n"
        "  --insns N        per-job instruction budget "
        "(default 200000)\n"
        "  --timeout C      idle-timeout cycles in the spec "
        "(default 0)\n"
        "  --retries N      reconnect-and-retry attempts per request "
        "(default 1)\n"
        "  --timeout-seconds S  per-attempt I/O deadline "
        "(default 0 = none)\n");
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socketPath;
    unsigned port = 0;
    unsigned threads = 4;
    std::uint64_t requestsPerThread = 500;
    std::vector<std::string> workloads = {"perlbench", "namd",
                                          "canneal", "msn"};
    std::vector<std::string> machines = {"server", "mobile"};
    std::vector<std::string> modes;
    for (SimMode m : {SimMode::FullPower, SimMode::PowerChop,
                      SimMode::MinPower, SimMode::TimeoutVpu,
                      SimMode::DrowsyMlc}) {
        modes.push_back(simModeName(m));
    }
    std::uint64_t insns = 200'000;
    double timeoutCycles = 0;
    unsigned retries = 1;
    double timeoutSeconds = 0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s wants a value\n",
                             arg.c_str());
                usageExit();
            }
            return argv[++i];
        };
        if (arg == "--socket") {
            socketPath = value();
        } else if (arg == "--port") {
            port = static_cast<unsigned>(
                std::strtoul(value().c_str(), nullptr, 10));
        } else if (arg == "--threads") {
            threads = static_cast<unsigned>(
                std::strtoul(value().c_str(), nullptr, 10));
        } else if (arg == "--requests") {
            requestsPerThread =
                std::strtoull(value().c_str(), nullptr, 10);
        } else if (arg == "--workloads") {
            workloads = splitList(value());
        } else if (arg == "--machines") {
            machines = splitList(value());
        } else if (arg == "--modes") {
            modes = splitList(value());
        } else if (arg == "--insns") {
            insns = std::strtoull(value().c_str(), nullptr, 10);
        } else if (arg == "--timeout") {
            timeoutCycles = std::strtod(value().c_str(), nullptr);
        } else if (arg == "--retries") {
            retries = static_cast<unsigned>(
                std::strtoul(value().c_str(), nullptr, 10));
        } else if (arg == "--timeout-seconds") {
            timeoutSeconds = std::strtod(value().c_str(), nullptr);
        } else {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            usageExit();
        }
    }
    if ((socketPath.empty() && port == 0) || threads == 0 ||
        requestsPerThread == 0 || insns == 0) {
        usageExit();
    }
    if (port > 65535)
        fatal("--port must be in [1, 65535]");

    // The working set: expand the matrix workload-major (the
    // daemon's order) and compute each job's content key locally.
    std::vector<KeyPoint> points;
    for (const std::string &wname : workloads) {
        for (const std::string &mname : machines) {
            if (mname != "server" && mname != "mobile")
                fatal("unknown machine \"%s\"", mname.c_str());
            for (const std::string &modeName : modes) {
                SimMode mode;
                if (!modeFromName(modeName, mode))
                    fatal("unknown mode \"%s\"", modeName.c_str());
                SimJob job;
                job.workload = findWorkload(wname);
                job.machine = mname == "server" ? serverConfig()
                                                : mobileConfig();
                job.opts.mode = mode;
                job.opts.maxInstructions = insns;
                job.opts.timeoutCycles = timeoutCycles;
                KeyPoint p;
                p.key = campaignJobKey(job);
                p.spec = formatSimSpec({wname}, {mname}, {modeName},
                                       insns, timeoutCycles);
                points.push_back(std::move(p));
            }
        }
    }
    panicIf(points.empty(), "empty key space");

    banner(csprintf("powerchopd load generator: %u conns x %llu "
                    "GETs over %zu keys",
                    threads,
                    static_cast<unsigned long long>(
                        requestsPerThread),
                    points.size()),
           "serving-plane benchmark (not a paper figure)");

    // Zipf-ish rank weights: P(rank r) proportional to 1/(r+1).
    // Cumulative weights + binary search keeps the draw portable
    // and deterministic for a fixed seed.
    std::vector<double> cumulative(points.size());
    double total = 0;
    for (std::size_t r = 0; r < points.size(); ++r) {
        total += 1.0 / static_cast<double>(r + 1);
        cumulative[r] = total;
    }

    stats::Log2Histogram latencyNs;
    std::atomic<std::uint64_t> hits{0}, misses{0}, errors{0},
        ioErrors{0}, completed{0}, busy{0}, retried{0};

    const auto connect = [&](ServeClient &client) {
        std::string err;
        const bool ok = port != 0
                            ? client.connectTcp(
                                  static_cast<unsigned short>(port),
                                  &err)
                            : client.connectUnix(socketPath, &err);
        if (!ok)
            progress("connect failed: " + err);
        return ok;
    };

    const double t0 = monotonicSeconds();
    std::vector<std::thread> pool;
    for (unsigned tid = 0; tid < threads; ++tid) {
        pool.emplace_back([&, tid] {
            ServeClient client;
            // The client's own retry policy rides through daemon
            // drains/restarts: reconnect + deterministic seeded
            // backoff, decorrelated across threads by seed.
            ClientRetryPolicy policy;
            policy.retries = retries;
            policy.timeoutSeconds = timeoutSeconds;
            policy.backoffBaseSeconds = 0.02;
            policy.backoffMaxSeconds = 0.5;
            policy.seed = 1234 + tid;
            client.setRetryPolicy(policy);
            if (!connect(client) && retries == 0) {
                ioErrors.fetch_add(1, std::memory_order_relaxed);
                return;
            }
            std::mt19937_64 rng(1234 + tid);
            std::uniform_real_distribution<double> uni(0.0, total);
            for (std::uint64_t n = 0; n < requestsPerThread; ++n) {
                const auto it = std::upper_bound(
                    cumulative.begin(), cumulative.end(), uni(rng));
                const std::size_t idx = std::min<std::size_t>(
                    static_cast<std::size_t>(
                        it - cumulative.begin()),
                    points.size() - 1);

                const std::int64_t start = monotonicNanos();
                const ServeReply reply =
                    client.get(points[idx].key);
                if (reply.attempts > 1) {
                    retried.fetch_add(reply.attempts - 1,
                                      std::memory_order_relaxed);
                }
                if (reply.ioFailed) {
                    ioErrors.fetch_add(1, std::memory_order_relaxed);
                    return; // retries exhausted: daemon is gone
                }
                latencyNs.sample(static_cast<std::uint64_t>(
                    monotonicNanos() - start));
                completed.fetch_add(1, std::memory_order_relaxed);

                if (reply.status == ResponseStatus::Hit) {
                    hits.fetch_add(1, std::memory_order_relaxed);
                    continue;
                }
                if (reply.status == ResponseStatus::Busy) {
                    busy.fetch_add(1, std::memory_order_relaxed);
                    continue;
                }
                if (reply.status != ResponseStatus::Miss) {
                    errors.fetch_add(1, std::memory_order_relaxed);
                    continue;
                }
                misses.fetch_add(1, std::memory_order_relaxed);

                // Read-through: one single-job SIM populates the
                // key for every later GET (any thread's).
                const std::int64_t simStart = monotonicNanos();
                const ServeReply simReply =
                    client.sim(points[idx].spec);
                if (simReply.attempts > 1) {
                    retried.fetch_add(simReply.attempts - 1,
                                      std::memory_order_relaxed);
                }
                if (simReply.ioFailed) {
                    ioErrors.fetch_add(1, std::memory_order_relaxed);
                    return;
                }
                latencyNs.sample(static_cast<std::uint64_t>(
                    monotonicNanos() - simStart));
                completed.fetch_add(1, std::memory_order_relaxed);
                if (simReply.status == ResponseStatus::Busy)
                    busy.fetch_add(1, std::memory_order_relaxed);
                else if (!simReply.served())
                    errors.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    for (std::thread &t : pool)
        t.join();
    const double wall = monotonicSeconds() - t0;

    const std::uint64_t done =
        completed.load(std::memory_order_relaxed);
    const std::uint64_t hit = hits.load(std::memory_order_relaxed);
    const std::uint64_t miss =
        misses.load(std::memory_order_relaxed);
    const std::uint64_t shed = busy.load(std::memory_order_relaxed);
    const std::uint64_t retriedN =
        retried.load(std::memory_order_relaxed);
    const double qps = wall > 0 ? done / wall : 0;
    const double hitRate =
        hit + miss > 0
            ? static_cast<double>(hit) /
                  static_cast<double>(hit + miss)
            : 0;
    const double shedRate =
        done > 0 ? static_cast<double>(shed) /
                       static_cast<double>(done)
                 : 0;
    const stats::Quantiles lat = latencyNs.quantiles(1e-6);

    std::printf("requests=%llu hits=%llu misses=%llu errors=%llu "
                "io_errors=%llu busy=%llu\n",
                static_cast<unsigned long long>(done),
                static_cast<unsigned long long>(hit),
                static_cast<unsigned long long>(miss),
                static_cast<unsigned long long>(
                    errors.load(std::memory_order_relaxed)),
                static_cast<unsigned long long>(
                    ioErrors.load(std::memory_order_relaxed)),
                static_cast<unsigned long long>(shed));
    std::printf("served_qps=%.1f\n", qps);
    std::printf("hit_rate=%.6f\n", hitRate);
    std::printf("shed_rate=%.6f\n", shedRate);
    std::printf("retries=%llu\n",
                static_cast<unsigned long long>(retriedN));
    std::printf("request_latency_ms p50=%.3f p90=%.3f p99=%.3f "
                "(%llu samples)\n",
                lat.p50, lat.p90, lat.p99,
                static_cast<unsigned long long>(lat.samples));

    const std::string entry = csprintf(
        "{\"bench\":\"bench_serve\",\"threads\":%u,"
        "\"keys\":%zu,\"requests\":%llu,\"hits\":%llu,"
        "\"misses\":%llu,\"errors\":%llu,\"io_errors\":%llu,"
        "\"busy\":%llu,\"retries\":%llu,"
        "\"wall_seconds\":%.6f,\"served_qps\":%.6f,"
        "\"hit_rate\":%.6f,\"shed_rate\":%.6f,"
        "\"request_latency_ms\":{"
        "\"samples\":%llu,\"p50\":%.6f,\"p90\":%.6f,"
        "\"p99\":%.6f}}",
        threads, points.size(),
        static_cast<unsigned long long>(done),
        static_cast<unsigned long long>(hit),
        static_cast<unsigned long long>(miss),
        static_cast<unsigned long long>(
            errors.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            ioErrors.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(shed),
        static_cast<unsigned long long>(retriedN),
        wall, qps, hitRate, shedRate,
        static_cast<unsigned long long>(lat.samples), lat.p50,
        lat.p90, lat.p99);
    const std::string path =
        envString("POWERCHOP_RUNNER_JSON").value_or(
            "BENCH_runner.json");
    appendJsonArrayEntryOk(path, entry);

    return done > 0 ? 0 : 1;
}
