/**
 * @file
 * Table I: the two architectural design points (server and mobile)
 * with the units PowerChop manages, their area shares, gated-off
 * states, and overheads — plus the Section IV-B4 hardware costs of
 * the HTB and PVT from the CACTI-lite estimator.
 */

#include "bench_util.hh"
#include "power/cacti_lite.hh"

using namespace powerchop;
using namespace powerchop::bench;

namespace
{

void
printMachine(const MachineConfig &m)
{
    const CorePowerParams &p = m.power;
    std::printf("\n--- %s processor configuration ---\n",
                m.name.c_str());
    std::printf("core: %u-wide @ %.1f GHz, mispredict %g cyc, MLC hit "
                "%g cyc, memory %g cyc\n",
                m.core.issueWidth, m.core.frequencyHz / 1e9,
                m.core.mispredictPenalty, m.core.mlcHitPenalty,
                m.core.memoryPenalty);

    std::printf("MLC : %lluKB %u-way (gated: %lluKB %u-way or %lluKB "
                "1-way), %.0f%% of core area\n",
                static_cast<unsigned long long>(m.mlc.sizeBytes / 1024),
                m.mlc.assoc,
                static_cast<unsigned long long>(m.mlc.sizeBytes / 2048),
                m.mlc.assoc / 2,
                static_cast<unsigned long long>(
                    m.mlc.sizeBytes / 1024 / m.mlc.assoc),
                100 * p.areaFraction(Unit::Mlc));
    std::printf("      gated-off: WB dirty lines, lose clean lines, "
                "rewarm; %g cyc/switch + WB\n",
                m.penalties.mlcSwitchCycles);

    std::printf("VPU : %u-wide SIMD, %.0f%% of core area; gated-off: "
                "ops emulated by BT,\n      register file "
                "save/restore (%g cyc) + %g cyc/switch\n",
                m.vpu.width, 100 * p.areaFraction(Unit::Vpu),
                m.penalties.vpuSaveRestoreCycles,
                m.penalties.vpuSwitchCycles);

    std::printf("BPU : loc/glob tournament, %u-entry BTB, %u-entry "
                "chooser, %.0f%% of core area;\n      gated-off: "
                "local-only, %u-entry BTB; lose global/chooser/BTB, "
                "rewarm; %g cyc/switch\n",
                m.bpu.largeBtbEntries, m.bpu.large.chooserEntries,
                100 * p.areaFraction(Unit::Bpu),
                m.bpu.smallBtbEntries, m.penalties.bpuSwitchCycles);

    std::printf("power: core area %.1f mm^2, leakage %.2f W, gated "
                "leakage fraction %.0f%%\n",
                p.totalAreaMm2(), p.totalLeakage(),
                100 * p.gating.gatedLeakageFraction);
    std::printf("gating overhead (Eq. 1, W/H=%.2f SF=%.2f): MLC %.3g "
                "nJ, VPU %.3g nJ, BPU %.3g nJ per switch\n",
                p.gating.sleepTransistorRatio, p.gating.switchingFactor,
                p.switchOverhead(Unit::Mlc) * 1e9,
                p.switchOverhead(Unit::Vpu) * 1e9,
                p.switchOverhead(Unit::Bpu) * 1e9);
}

} // namespace

int
main()
{
    banner("Table I: architectural design points + PowerChop hardware "
           "costs",
           "Table I, Section IV-B4");

    printMachine(serverConfig());
    printMachine(mobileConfig());

    std::printf("\n--- PowerChop hardware cost (Section IV-B4) ---\n");

    // HTB: 128 entries x (32-bit translation id + 32-bit counter),
    // fully associative. Access rate: one translation head per ~15
    // instructions at server IPC.
    ArraySpec htb;
    htb.entries = 128;
    htb.bitsPerEntry = 64;
    htb.style = ArrayStyle::Cam;
    htb.accessesPerSecond = 2.0e8;
    ArrayEstimate htb_est = estimateArray(htb);
    std::printf("HTB : 128 entries, 1 KB storage -> %.4f mm^2, %.4f W "
                "(paper: 0.008 mm^2, 0.027 W)\n",
                htb_est.areaMm2, htb_est.totalPower);

    // PVT: 16 entries x (128-bit signature + 4 policy bits), matched
    // once per execution window (~15K instructions).
    ArraySpec pvt;
    pvt.entries = 16;
    pvt.bitsPerEntry = 132;
    pvt.style = ArrayStyle::Cam;
    pvt.accessesPerSecond = 2.0e5;
    ArrayEstimate pvt_est = estimateArray(pvt);
    std::printf("PVT : 16 entries, 264 B storage  -> %.4f mm^2, %.4f W\n",
                pvt_est.areaMm2, pvt_est.totalPower);

    double core = serverPowerParams().totalAreaMm2();
    std::printf("total PowerChop hardware: %.4f mm^2 = %.3f%% of the "
                "server core\n",
                htb_est.areaMm2 + pvt_est.areaMm2,
                100 * (htb_est.areaMm2 + pvt_est.areaMm2) / core);
    return 0;
}
