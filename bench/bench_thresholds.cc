/**
 * @file
 * Section V-A ablation: criticality-threshold sensitivity. The paper
 * sets Threshold_VPU/BPU/MLC to values that maximize power savings
 * under a ~2% slowdown budget and notes that more aggressive settings
 * trade performance for energy. This bench sweeps each threshold
 * around its default.
 */

#include "bench_util.hh"

using namespace powerchop;
using namespace powerchop::bench;

namespace
{

void
sweep(const char *label,
      const std::vector<double> &values,
      void (*apply)(CdeParams &, double), InsnCount insns)
{
    std::printf("\n%s sweep:\n", label);
    std::printf("value      slowdown  power_red  energy_red\n");
    for (double v : values) {
        std::vector<double> slow, power, energy;
        for (const auto &name : {"gobmk", "gems", "namd", "msn"}) {
            WorkloadSpec w = findWorkload(name);
            MachineConfig m = machineFor(w);
            apply(m.powerChop.cde, v);

            SimOptions opts;
            opts.maxInstructions = insns;
            opts.mode = SimMode::FullPower;
            SimResult full = simulate(m, w, opts);
            opts.mode = SimMode::PowerChop;
            SimResult pc = simulate(m, w, opts);

            slow.push_back(pc.slowdownVs(full));
            power.push_back(pc.powerReductionVs(full));
            energy.push_back(pc.energyReductionVs(full));
        }
        std::printf("%9.4g  %s  %s  %s\n", v, pct(mean(slow)).c_str(),
                    pct(mean(power)).c_str(), pct(mean(energy)).c_str());
        progress(std::string(label) + " = " + std::to_string(v) +
                 " done");
    }
}

} // namespace

int
main()
{
    banner("Criticality-threshold sensitivity",
           "Section V-A (threshold selection), design ablation");

    const InsnCount insns = insnBudget(6'000'000);

    sweep("Threshold_VPU", {0.001, 0.005, 0.01, 0.05, 0.2},
          [](CdeParams &p, double v) { p.thresholdVpu = v; }, insns);
    sweep("Threshold_BPU", {0.002, 0.005, 0.01, 0.03, 0.1},
          [](CdeParams &p, double v) { p.thresholdBpu = v; }, insns);
    sweep("Threshold_MLC1", {0.005, 0.01, 0.02, 0.05, 0.2},
          [](CdeParams &p, double v) { p.thresholdMlc1 = v; }, insns);

    std::printf("\npaper shape: the defaults sit on the knee — higher "
                "thresholds gate more\n(energy-minimizing, paper's "
                "'more aggressive policies') at growing slowdown;\n"
                "lower thresholds converge to full-power behaviour.\n");
    return 0;
}
