/**
 * @file
 * Section V-E: the timeout-period sweep. The paper ran idle-timeout
 * periods from 100 to 100K cycles and picked 20K cycles as the period
 * that saves the most power while keeping worst-case slowdown under
 * 5%. This bench regenerates that trade-off curve on a SPEC subset.
 */

#include "bench_util.hh"

using namespace powerchop;
using namespace powerchop::bench;

int
main()
{
    banner("Timeout-period sweep: gated fraction vs worst-case "
           "slowdown",
           "Section V-E (choice of the 20K-cycle timeout)");

    const InsnCount insns = insnBudget(6'000'000);
    const std::vector<double> periods = {100,   300,    1000,  3000,
                                         10000, 20000,  50000, 100000};
    const std::vector<std::string> apps = {"gobmk", "h264",  "soplex",
                                           "hmmer", "sphinx"};

    std::printf("timeout_cycles  avg_vpu_gated  worst_slowdown\n");

    // The full (period, app) grid runs as one parallel batch; rows
    // are then aggregated and printed in period order.
    struct Cell
    {
        double gated = 0, slow = 0;
    };
    std::vector<Cell> cells(periods.size() * apps.size());
    runner().runTasks(cells.size(), [&](std::size_t i) {
        const double period = periods[i / apps.size()];
        const std::string &name = apps[i % apps.size()];
        progress(i + 1, cells.size(),
                 "timeout " + std::to_string((long)period) + " on " +
                     name);

        WorkloadSpec w = findWorkload(name);
        MachineConfig m = serverConfig();
        SimOptions opts;
        opts.maxInstructions = insns;

        opts.mode = SimMode::FullPower;
        SimResult full = simulate(m, w, opts);

        opts.mode = SimMode::TimeoutVpu;
        opts.timeoutCycles = period;
        SimResult to = simulate(m, w, opts);

        cells[i] = {to.vpuGatedFraction, to.slowdownVs(full)};
    });

    for (std::size_t p = 0; p < periods.size(); ++p) {
        std::vector<double> gated, slow;
        for (std::size_t a = 0; a < apps.size(); ++a) {
            gated.push_back(cells[p * apps.size() + a].gated);
            slow.push_back(cells[p * apps.size() + a].slow);
        }
        std::printf("%14.0f  %s  %s\n", periods[p],
                    pct(mean(gated)).c_str(), pct(maxOf(slow)).c_str());
    }

    std::printf("\npaper shape: short timeouts gate more but thrash "
                "(save/restore churn);\nthe paper picks 20K cycles as "
                "the most aggressive period keeping worst-case\n"
                "slowdown under 5%%.\n");
    reportRunner("timeout_sweep");
    return 0;
}
