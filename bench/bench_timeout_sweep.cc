/**
 * @file
 * Section V-E: the timeout-period sweep. The paper ran idle-timeout
 * periods from 100 to 100K cycles and picked 20K cycles as the period
 * that saves the most power while keeping worst-case slowdown under
 * 5%. This bench regenerates that trade-off curve on a SPEC subset.
 */

#include "bench_util.hh"

using namespace powerchop;
using namespace powerchop::bench;

int
main()
{
    banner("Timeout-period sweep: gated fraction vs worst-case "
           "slowdown",
           "Section V-E (choice of the 20K-cycle timeout)");

    const InsnCount insns = insnBudget(6'000'000);
    const std::vector<double> periods = {100,   300,    1000,  3000,
                                         10000, 20000,  50000, 100000};
    const std::vector<std::string> apps = {"gobmk", "h264",  "soplex",
                                           "hmmer", "sphinx"};

    std::printf("timeout_cycles  avg_vpu_gated  worst_slowdown\n");
    for (double period : periods) {
        std::vector<double> gated, slow;
        for (const auto &name : apps) {
            WorkloadSpec w = findWorkload(name);
            MachineConfig m = serverConfig();
            SimOptions opts;
            opts.maxInstructions = insns;

            opts.mode = SimMode::FullPower;
            SimResult full = simulate(m, w, opts);

            opts.mode = SimMode::TimeoutVpu;
            opts.timeoutCycles = period;
            SimResult to = simulate(m, w, opts);

            gated.push_back(to.vpuGatedFraction);
            slow.push_back(to.slowdownVs(full));
        }
        std::printf("%14.0f  %s  %s\n", period,
                    pct(mean(gated)).c_str(), pct(maxOf(slow)).c_str());
        progress("timeout " + std::to_string((long)period) + " done");
    }

    std::printf("\npaper shape: short timeouts gate more but thrash "
                "(save/restore churn);\nthe paper picks 20K cycles as "
                "the most aggressive period keeping worst-case\n"
                "slowdown under 5%%.\n");
    return 0;
}
