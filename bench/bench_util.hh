/**
 * @file
 * Shared plumbing for the evaluation benches: progress reporting,
 * parallel per-app execution on the shared job runner, per-suite
 * aggregation and table formatting. Each bench binary regenerates one
 * table or figure of the paper and prints the same rows/series the
 * paper reports.
 */

#ifndef POWERCHOP_BENCH_BENCH_UTIL_HH
#define POWERCHOP_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <type_traits>
#include <vector>

#include "common/atomic_file.hh"
#include "powerchop/powerchop.hh"

namespace powerchop
{
namespace bench
{

/** Pick the design point an application model evaluates on. */
inline MachineConfig
machineFor(const WorkloadSpec &w)
{
    return w.suite == Suite::MobileBench ? mobileConfig()
                                         : serverConfig();
}

/** Print a banner naming the experiment being regenerated. */
inline void
banner(const std::string &what, const std::string &paper_ref)
{
    std::printf("================================================="
                "=============================\n");
    std::printf("%s\n  reproduces: %s\n", what.c_str(),
                paper_ref.c_str());
    std::printf("================================================="
                "=============================\n");
}

/** The worker pool shared by a bench binary's batches. */
inline SimJobRunner &
runner()
{
    static SimJobRunner pool;
    return pool;
}

/** Serializes progress lines emitted from concurrent jobs. */
inline std::mutex &
progressMutex()
{
    static std::mutex m;
    return m;
}

/** Progress note to stderr (keeps stdout machine-parseable). */
inline void
progress(const std::string &msg)
{
    std::lock_guard<std::mutex> lock(progressMutex());
    std::fprintf(stderr, "[bench] %s\n", msg.c_str());
}

/** Progress note tagged with the emitting job's index. */
inline void
progress(std::size_t job, std::size_t total, const std::string &msg)
{
    std::lock_guard<std::mutex> lock(progressMutex());
    std::fprintf(stderr, "[bench %zu/%zu] %s\n", job, total,
                 msg.c_str());
}

/**
 * Print the shared runner's cumulative throughput report and persist
 * it as JSON so the perf trajectory is tracked across changes. Every
 * bench calls this once after its tables are printed.
 *
 * The JSON sink is a trajectory: each report is appended as a new
 * entry of a JSON array (a pre-existing single-object file is wrapped,
 * not clobbered), so successive bench runs accumulate a MIPS history
 * that perf work can be judged against.
 *
 * @param bench_name Label stored in the JSON report.
 */
inline void
reportRunner(const std::string &bench_name)
{
    const RunnerReport &rep = runner().report();
    progress("runner: " + rep.toString());

    const std::string path =
        envString("POWERCHOP_RUNNER_JSON").value_or("BENCH_runner.json");
    appendJsonArrayEntryOk(path, rep.toJson(bench_name));
}

/**
 * Optional telemetry sinks for benches: when POWERCHOP_TRACE or
 * POWERCHOP_METRICS names a path, re-run `app` in PowerChop mode with
 * the corresponding recorders attached and write the Chrome
 * trace-event JSON and/or the per-window metrics CSV there. A no-op
 * (and zero extra simulation) when neither variable is set, so
 * default bench output and timing are untouched.
 *
 * @param app   Application model to trace.
 * @param insns Instruction budget of the traced run.
 */
inline void
maybeEmitTrace(const WorkloadSpec &app, InsnCount insns)
{
    const auto trace_path = envString("POWERCHOP_TRACE");
    const auto metrics_path = envString("POWERCHOP_METRICS");
    if (!trace_path && !metrics_path)
        return;

    telemetry::TraceRecorder trace;
    telemetry::MetricsRegistry metrics;
    SimOptions opts;
    opts.mode = SimMode::PowerChop;
    opts.maxInstructions = insns;
    if (trace_path)
        opts.trace = &trace;
    if (metrics_path)
        opts.metrics = &metrics;
    simulate(machineFor(app), app, opts);

    if (trace_path && telemetry::writeChromeTrace(*trace_path, {&trace})) {
        progress(csprintf("wrote trace of %s to %s (%zu events)",
                          app.name.c_str(), trace_path->c_str(),
                          trace.events().size()));
    }
    if (metrics_path && metrics.writeCsv(*metrics_path)) {
        progress(csprintf("wrote metrics of %s to %s (%zu windows)",
                          app.name.c_str(), metrics_path->c_str(),
                          metrics.rows().size()));
    }
}

/** Per-suite accumulation of one metric. */
class SuiteAverages
{
  public:
    void
    add(Suite suite, double value)
    {
        values_[static_cast<unsigned>(suite)].push_back(value);
        all_.push_back(value);
    }

    double suiteMean(Suite suite) const
    {
        return mean(values_[static_cast<unsigned>(suite)]);
    }
    double overallMean() const { return mean(all_); }
    double overallMax() const { return maxOf(all_); }

    /** Print "suite mean" rows for the four suites plus overall. */
    void
    printSummary(const char *metric) const
    {
        std::printf("  %-12s  SPEC-INT %s  SPEC-FP %s  PARSEC %s"
                    "  MobileBench %s  |  all %s (max %s)\n",
                    metric, pct(suiteMean(Suite::SpecInt)).c_str(),
                    pct(suiteMean(Suite::SpecFp)).c_str(),
                    pct(suiteMean(Suite::Parsec)).c_str(),
                    pct(suiteMean(Suite::MobileBench)).c_str(),
                    pct(overallMean()).c_str(),
                    pct(overallMax()).c_str());
    }

  private:
    std::vector<double> values_[4];
    std::vector<double> all_;
};

/** Run `fn` for every workload in `apps`, serially and in order. */
inline void
forEachApp(const std::vector<WorkloadSpec> &apps,
           const std::function<void(const WorkloadSpec &)> &fn)
{
    for (const auto &w : apps) {
        progress("running " + w.name + " (" + suiteName(w.suite) + ")");
        fn(w);
    }
}

/**
 * Parallel overload: measure every workload concurrently on the
 * shared runner, then emit the rows serially in workload order.
 *
 * `measure` runs on worker threads and must only touch its own
 * workload (it typically wraps simulate()/runComparison() calls and
 * returns a per-app result struct); `emit` runs on the calling thread
 * in submission order, so tables print deterministically and
 * identically to a serial sweep.
 */
template <typename MeasureFn, typename EmitFn>
inline void
forEachApp(const std::vector<WorkloadSpec> &apps, MeasureFn measure,
           EmitFn emit)
{
    using Row =
        std::invoke_result_t<MeasureFn &, const WorkloadSpec &>;
    std::vector<Row> rows(apps.size());

    runner().runTasks(apps.size(), [&](std::size_t i) {
        progress(i + 1, apps.size(),
                 "running " + apps[i].name + " (" +
                     suiteName(apps[i].suite) + ")");
        rows[i] = measure(apps[i]);
    });

    for (std::size_t i = 0; i < apps.size(); ++i)
        emit(apps[i], rows[i]);
}

} // namespace bench
} // namespace powerchop

#endif // POWERCHOP_BENCH_BENCH_UTIL_HH
