/**
 * @file
 * Shared plumbing for the evaluation benches: progress reporting,
 * per-suite aggregation and table formatting. Each bench binary
 * regenerates one table or figure of the paper and prints the same
 * rows/series the paper reports.
 */

#ifndef POWERCHOP_BENCH_BENCH_UTIL_HH
#define POWERCHOP_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "powerchop/powerchop.hh"

namespace powerchop
{
namespace bench
{

/** Pick the design point an application model evaluates on. */
inline MachineConfig
machineFor(const WorkloadSpec &w)
{
    return w.suite == Suite::MobileBench ? mobileConfig()
                                         : serverConfig();
}

/** Print a banner naming the experiment being regenerated. */
inline void
banner(const std::string &what, const std::string &paper_ref)
{
    std::printf("================================================="
                "=============================\n");
    std::printf("%s\n  reproduces: %s\n", what.c_str(),
                paper_ref.c_str());
    std::printf("================================================="
                "=============================\n");
}

/** Progress note to stderr (keeps stdout machine-parseable). */
inline void
progress(const std::string &msg)
{
    std::fprintf(stderr, "[bench] %s\n", msg.c_str());
}

/** Per-suite accumulation of one metric. */
class SuiteAverages
{
  public:
    void
    add(Suite suite, double value)
    {
        values_[static_cast<unsigned>(suite)].push_back(value);
        all_.push_back(value);
    }

    double suiteMean(Suite suite) const
    {
        return mean(values_[static_cast<unsigned>(suite)]);
    }
    double overallMean() const { return mean(all_); }
    double overallMax() const { return maxOf(all_); }

    /** Print "suite mean" rows for the four suites plus overall. */
    void
    printSummary(const char *metric) const
    {
        std::printf("  %-12s  SPEC-INT %s  SPEC-FP %s  PARSEC %s"
                    "  MobileBench %s  |  all %s (max %s)\n",
                    metric, pct(suiteMean(Suite::SpecInt)).c_str(),
                    pct(suiteMean(Suite::SpecFp)).c_str(),
                    pct(suiteMean(Suite::Parsec)).c_str(),
                    pct(suiteMean(Suite::MobileBench)).c_str(),
                    pct(overallMean()).c_str(),
                    pct(overallMax()).c_str());
    }

  private:
    std::vector<double> values_[4];
    std::vector<double> all_;
};

/** Run `fn` for every workload in `apps`, with progress reporting. */
inline void
forEachApp(const std::vector<WorkloadSpec> &apps,
           const std::function<void(const WorkloadSpec &)> &fn)
{
    for (const auto &w : apps) {
        progress("running " + w.name + " (" + suiteName(w.suite) + ")");
        fn(w);
    }
}

} // namespace bench
} // namespace powerchop

#endif // POWERCHOP_BENCH_BENCH_UTIL_HH
