# Example custom workload for the PowerChop simulator.
#
# Run it with:   ./build/tools/powerchop compare examples/custom_workload.wl
# Format docs:   src/workload/spec_io.hh
#
# This models a hypothetical media pipeline: a vector-heavy transform
# kernel over an MLC-resident tile buffer, alternating with a branchy
# scalar bitstream parser whose working set fits L1 — so PowerChop
# should keep the VPU and MLC on during `transform`, gate the VPU and
# shrink the MLC during `parse`, and keep the large BPU only where the
# parser's correlated branches make it critical.

name = mediapipe
suite = PARSEC
seed = 4242

[phase transform]
simd_frac = 0.10
fp_frac = 0.12
mem_frac = 0.30
branch_frac = 0.04
# Note: omitted keys keep PhaseSpec defaults, which include small
# pattern/correlated branch shares — zero them explicitly so the
# transform's branches are genuinely easy and the BPU gates here.
frac_biased = 0.95
frac_pattern = 0.0
frac_correlated = 0.0
working_set_kb = 384
hot_region_frac = 0.82
random_frac = 0.45

[phase parse]
simd_frac = 0.0
fp_frac = 0.02
mem_frac = 0.26
branch_frac = 0.09
frac_biased = 0.35
frac_pattern = 0.30
frac_correlated = 0.25
working_set_kb = 12
hot_region_frac = 0.6

[schedule]
transform 2500000
parse     1200000
transform 2000000
parse     900000
