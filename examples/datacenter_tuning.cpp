/**
 * @file
 * Datacenter tuning scenario: a fleet operator wants the most
 * aggressive PowerChop thresholds that keep the slowdown of a mixed
 * server workload under a chosen SLO. This example sweeps a scaling
 * factor over all criticality thresholds (the paper's "more
 * aggressive policies ... that target energy minimization") and picks
 * the best configuration under the constraint.
 *
 * Usage: datacenter_tuning [max_slowdown_pct] [instructions]
 */

#include <cstdlib>
#include <iostream>
#include <vector>

#include "powerchop/powerchop.hh"

using namespace powerchop;

int
main(int argc, char **argv)
{
    const double slo =
        (argc > 1 ? std::strtod(argv[1], nullptr) : 3.0) / 100.0;
    const InsnCount insns =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 5'000'000;

    // A representative server mix: branchy, vector, memory-bound.
    const std::vector<std::string> mix = {"sjeng", "h264", "gems",
                                          "milc", "perlbench"};

    try {
        std::cout << "Tuning PowerChop thresholds for a server fleet "
                     "(SLO: slowdown <= "
                  << slo * 100 << "%)\n\n";
        std::cout << "scale   avg_slowdown  avg_power_saved  "
                     "avg_energy_saved\n";

        // The whole sweep — every (threshold scale, app, mode) — runs
        // as one parallel batch on the job runner.
        const std::vector<double> scales = {0.25, 0.5, 1.0, 2.0,
                                            4.0, 8.0};
        std::vector<ComparisonPoint> points;
        for (double scale : scales) {
            for (const auto &name : mix) {
                WorkloadSpec w = findWorkload(name);
                MachineConfig m = serverConfig();
                m.powerChop.cde.thresholdVpu *= scale;
                m.powerChop.cde.thresholdBpu *= scale;
                m.powerChop.cde.thresholdMlc1 *= scale;
                m.powerChop.cde.thresholdMlc2 *= scale;
                points.push_back({m, w});
            }
        }
        SimJobRunner runner;
        std::vector<ComparisonRuns> all =
            runPairBatch(points, insns, runner);

        double best_scale = 0, best_energy = 0;
        for (std::size_t si = 0; si < scales.size(); ++si) {
            const double scale = scales[si];
            std::vector<double> slow, power, energy;
            for (std::size_t a = 0; a < mix.size(); ++a) {
                const ComparisonRuns &runs = all[si * mix.size() + a];
                slow.push_back(
                    runs.powerChop.slowdownVs(runs.fullPower));
                power.push_back(
                    runs.powerChop.powerReductionVs(runs.fullPower));
                energy.push_back(
                    runs.powerChop.energyReductionVs(runs.fullPower));
            }
            double s = mean(slow), p = mean(power), e = mean(energy);
            bool ok = s <= slo;
            std::cout << (scale < 1 ? " " : "") << scale << "x\t"
                      << pct(s) << "      " << pct(p) << "        "
                      << pct(e) << (ok ? "   <- meets SLO" : "") << "\n";
            if (ok && e > best_energy) {
                best_energy = e;
                best_scale = scale;
            }
        }

        if (best_scale > 0) {
            std::cout << "\nrecommended threshold scale: " << best_scale
                      << "x (saves " << pct(best_energy)
                      << " energy within the SLO)\n";
        } else {
            std::cout << "\nno swept configuration met the SLO; "
                         "consider a looser budget.\n";
        }
        std::cout << "\nHigher scales gate more aggressively "
                     "(energy-minimizing); lower scales\nconverge to "
                     "full-power behaviour. The defaults sit at 1x.\n";
        std::cerr << "[runner] " << runner.report().toString() << "\n";
    } catch (const std::exception &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
    return 0;
}
