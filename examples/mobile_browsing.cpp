/**
 * @file
 * Mobile browsing scenario: run the six MobileBench R-GWB models on
 * the Cortex-A9-class mobile core and report what PowerChop saves on
 * a browsing session — the paper's headline mobile result (19% core
 * power, 32% leakage, ~2% slowdown).
 *
 * Usage: mobile_browsing [instructions_per_site]
 */

#include <cstdlib>
#include <iostream>
#include <vector>

#include "powerchop/powerchop.hh"

using namespace powerchop;

int
main(int argc, char **argv)
{
    const InsnCount insns =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 8'000'000;

    try {
        MachineConfig mobile = mobileConfig();
        std::cout << "Browsing session on the " << mobile.name
                  << " core (" << mobile.core.issueWidth << "-wide @ "
                  << mobile.core.frequencyHz / 1e9 << " GHz, "
                  << mobile.mlc.sizeBytes / 1024 << "KB MLC = "
                  << static_cast<int>(
                         100 * mobile.power.areaFraction(Unit::Mlc))
                  << "% of core area)\n\n";

        std::cout << "site      power_full  power_pchop  saved   "
                     "leakage_saved  slowdown  policy_mix\n";

        std::vector<double> power_saved, leak_saved, slow;
        double session_energy_full = 0, session_energy_pchop = 0;

        // All sites (and both modes per site) simulate in parallel on
        // the job runner; rows print in site order afterwards.
        const std::vector<WorkloadSpec> sites = mobileWorkloads();
        std::vector<ComparisonPoint> points;
        for (const auto &w : sites)
            points.push_back({mobile, w});
        SimJobRunner runner;
        std::vector<ComparisonRuns> all =
            runPairBatch(points, insns, runner);

        for (std::size_t i = 0; i < sites.size(); ++i) {
            const WorkloadSpec &w = sites[i];
            const SimResult &full = all[i].fullPower;
            const SimResult &pc = all[i].powerChop;

            double ps = pc.powerReductionVs(full);
            double ls = pc.leakageReductionVs(full);
            double sl = pc.slowdownVs(full);
            power_saved.push_back(ps);
            leak_saved.push_back(ls);
            slow.push_back(sl);
            session_energy_full += full.energy.totalEnergy();
            session_energy_pchop += pc.energy.totalEnergy();

            std::cout.setf(std::ios::fixed);
            std::cout.precision(3);
            std::cout << w.name << "\t  " << full.energy.averagePower()
                      << " W\t" << pc.energy.averagePower() << " W  "
                      << pct(ps) << "  " << pct(ls) << "      "
                      << pct(sl) << "  V-off " << pct(pc.vpuGatedFraction)
                      << " B-off " << pct(pc.bpuGatedFraction) << "\n";
        }

        std::cout << "\nsession summary (" << mobileWorkloads().size()
                  << " sites x " << insns << " insns):\n";
        std::cout << "  average core power saved  " << pct(mean(power_saved))
                  << "\n  average leakage saved     " << pct(mean(leak_saved))
                  << "\n  average slowdown          " << pct(mean(slow))
                  << "\n  session energy            "
                  << session_energy_full * 1e3 << " mJ -> "
                  << session_energy_pchop * 1e3 << " mJ ("
                  << pct(1 - session_energy_pchop / session_energy_full)
                  << " less)\n";
        std::cerr << "[runner] " << runner.report().toString() << "\n";
        std::cout << "\nOn a phone, that energy delta is battery life: "
                     "PowerChop trades ~2%\nperformance nobody notices "
                     "for double-digit power savings.\n";
    } catch (const std::exception &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
    return 0;
}
