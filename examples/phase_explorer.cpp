/**
 * @file
 * Phase explorer: watch PowerChop's phase machinery live. Streams the
 * HTB's window reports for a chosen application — each window's phase
 * signature, its hottest translations, the PVT hit/miss outcome and
 * the policy in force — so you can see phase edges, profiling, and
 * policy application exactly as Figure 4's runtime loop describes.
 *
 * Usage: phase_explorer [workload] [windows_to_show] [instructions]
 */

#include <cstdlib>
#include <iostream>
#include <map>

#include "powerchop/powerchop.hh"

using namespace powerchop;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "gobmk";
    const unsigned show =
        argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 60;
    const InsnCount insns =
        argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 6'000'000;

    try {
        WorkloadSpec w = findWorkload(name);
        MachineConfig m = w.suite == Suite::MobileBench
            ? mobileConfig() : serverConfig();

        std::cout << "Phase explorer: " << w.name << " ("
                  << suiteName(w.suite) << ", " << w.phases.size()
                  << " phases) on " << m.name << "\n";
        std::cout << "window = " << m.powerChop.htb.windowSize
                  << " translations, signature = hottest "
                  << signatureLength << " translations\n\n";

        std::map<PhaseSignature, char, std::less<PhaseSignature>> label;
        unsigned printed = 0;
        InsnCount window_no = 0;

        SimOptions opts;
        opts.mode = SimMode::PowerChop;
        opts.maxInstructions = insns;
        opts.windowObserver = [&](const WindowReport &rep) {
            ++window_no;
            auto [it, fresh] = label.try_emplace(
                rep.signature,
                static_cast<char>('A' + (label.size() % 26)));
            if (printed < show) {
                ++printed;
                std::cout << "window " << window_no << "  phase "
                          << it->second << (fresh ? " (new)" : "      ")
                          << "  sig " << rep.signature.toString()
                          << "  " << rep.instructions << " insns\n";
            } else if (printed == show) {
                ++printed;
                std::cout << "... (further windows elided; summary "
                             "below)\n";
            }
        };

        SimResult r = simulate(m, w, opts);

        std::cout << "\nrun summary over "
                  << r.translationsExecuted << " translation "
                  << "executions / " << r.pvtLookups << " windows:\n";
        std::cout << "  distinct phase signatures seen: "
                  << label.size() << "\n";
        std::cout << "  PVT hits " << r.pvtHits << ", misses "
                  << r.pvtLookups - r.pvtHits << " ("
                  << pct(r.pvtMissPerTranslation)
                  << " of translations)\n";
        std::cout << "  gated: VPU " << pct(r.vpuGatedFraction)
                  << ", BPU " << pct(r.bpuGatedFraction)
                  << ", MLC half " << pct(r.mlcHalfFraction)
                  << " / 1-way " << pct(r.mlcOneWayFraction) << "\n";
        std::cout << "  IPC " << r.ipc() << ", avg power "
                  << r.energy.averagePower() << " W\n";
        std::cout << "\nRecurring letters are recurring phases: their "
                     "first occurrences miss\nthe PVT (profiling), "
                     "later ones hit and apply the stored policy at "
                     "the\nphase edge.\n";
    } catch (const std::exception &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
    return 0;
}
