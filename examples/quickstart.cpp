/**
 * @file
 * Quickstart: run one application under the three operating modes on
 * the server core and print what PowerChop achieves.
 *
 * Usage: quickstart [workload] [instructions]
 *   workload     one of the 29 models (default: gobmk)
 *   instructions simulation length (default: 5000000)
 */

#include <cstdlib>
#include <iostream>

#include "powerchop/powerchop.hh"

using namespace powerchop;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "gobmk";
    const InsnCount insns =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 5'000'000;

    try {
        MachineConfig machine = serverConfig();
        WorkloadSpec workload = findWorkload(name);
        if (workload.suite == Suite::MobileBench)
            machine = mobileConfig();

        std::cout << "PowerChop quickstart: " << workload.name << " ("
                  << suiteName(workload.suite) << ") on " << machine.name
                  << " core, " << insns << " instructions\n\n";

        ComparisonRuns runs = runComparison(machine, workload, insns);
        const SimResult &full = runs.fullPower;
        const SimResult &pc = runs.powerChop;
        const SimResult &min = runs.minPower;

        std::cout << "mode         IPC     avg power   leakage  slowdown\n";
        auto row = [&](const SimResult &r) {
            std::cout.setf(std::ios::fixed);
            std::cout.precision(3);
            std::cout << simModeName(r.mode) << "\t" << r.ipc() << "\t"
                      << r.energy.averagePower() << " W\t"
                      << r.energy.averageLeakagePower() << " W\t"
                      << pct(r.slowdownVs(full)) << "\n";
        };
        row(full);
        row(pc);
        row(min);

        std::cout << "\nPowerChop gating activity:\n"
                  << "  VPU gated " << pct(pc.vpuGatedFraction)
                  << " of cycles, BPU gated " << pct(pc.bpuGatedFraction)
                  << ", MLC half " << pct(pc.mlcHalfFraction)
                  << " / 1-way " << pct(pc.mlcOneWayFraction) << "\n";
        std::cout << "  policy switches per Mcycle: VPU "
                  << pc.vpuSwitchesPerMcycle << ", BPU "
                  << pc.bpuSwitchesPerMcycle << ", MLC "
                  << pc.mlcSwitchesPerMcycle << "\n";
        std::cout << "  PVT: " << pc.pvtLookups << " lookups, "
                  << pc.pvtHits << " hits ("
                  << pct(pc.pvtMissPerTranslation)
                  << " misses per translation)\n";

        std::cout << "\nOutcome vs full power:\n"
                  << "  total power  -" << pct(pc.powerReductionVs(full))
                  << "\n  energy       -" << pct(pc.energyReductionVs(full))
                  << "\n  leakage      -"
                  << pct(pc.leakageReductionVs(full)) << "\n  slowdown     "
                  << pct(pc.slowdownVs(full)) << "\n";
        std::cout << "\n(min-power shows why naive gating fails: "
                  << pct(min.slowdownVs(full)) << " slowdown)\n";
    } catch (const std::exception &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
    return 0;
}
