#include "bt/bt_system.hh"

namespace powerchop
{

BtSystem::BtSystem(const Program &program, const BtParams &params)
    : program_(program), params_(params),
      interpreter_(params.hotThreshold),
      translator_(program, params.translator),
      regionCache_(params.regionCacheCapacity),
      nucleus_(params.nucleus)
{
}

RegionEntry
BtSystem::enterRegion(BlockId head)
{
    RegionEntry entry;
    const Addr head_pc = program_.block(head).head;

    Translation *t = regionCache_.lookup(head_pc);
    if (t) {
        ++t->execCount;
        entry.mode = ExecMode::Translated;
        entry.translation = t;
        return entry;
    }

    entry.mode = ExecMode::Interpreted;
    bool became_hot = interpreter_.recordExecution(head_pc);
    if (became_hot) {
        entry.extraCycles +=
            nucleus_.takeInterrupt(InterruptKind::Translation);
        entry.extraCycles += params_.translationCost;
        regionCache_.insert(translator_.translate(head));
        interpreter_.forget(head_pc);
        // The current pass still interprets; the next entry runs the
        // translation.
    }
    return entry;
}

} // namespace powerchop
