#include "bt/bt_system.hh"

#include <algorithm>

namespace powerchop
{

BtSystem::BtSystem(const Program &program, const BtParams &params)
    : program_(program), params_(params),
      interpreter_(params.hotThreshold),
      translator_(program, params.translator),
      regionCache_(params.regionCacheCapacity),
      nucleus_(params.nucleus),
      byBlock_(program.numBlocks(), nullptr),
      headPc_(program.numBlocks(), 0)
{
    for (BlockId b = 0; b < program.numBlocks(); ++b)
        headPc_[b] = program.block(b).head;
}

RegionEntry
BtSystem::enterRegionSlow(BlockId head)
{
    // byBlock_ mirrors the cache exactly, so a null entry means the
    // map has no translation either: only the miss counter moves.
    regionCache_.noteMiss();

    RegionEntry entry;
    const Addr head_pc = headPc_[head];

    entry.mode = ExecMode::Interpreted;
    bool became_hot = interpreter_.recordExecution(head_pc);
    if (became_hot) {
        entry.extraCycles +=
            nucleus_.takeInterrupt(InterruptKind::Translation);
        entry.extraCycles += params_.translationCost;
        const std::uint64_t flushes_before = regionCache_.flushes();
        Translation *resident =
            regionCache_.insert(translator_.translate(head));
        if (regionCache_.flushes() != flushes_before)
            std::fill(byBlock_.begin(), byBlock_.end(), nullptr);
        byBlock_[head] = resident;
        interpreter_.forget(head_pc);
        // The current pass still interprets; the next entry runs the
        // translation.
    }
    return entry;
}

} // namespace powerchop
