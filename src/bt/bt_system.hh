/**
 * @file
 * Facade over the BT subsystem: interpreter + translator + region
 * cache + nucleus, presenting the execution-mode decision the core
 * timing model needs at each block head.
 */

#ifndef POWERCHOP_BT_BT_SYSTEM_HH
#define POWERCHOP_BT_BT_SYSTEM_HH

#include <cstdint>
#include <memory>

#include "bt/interpreter.hh"
#include "bt/nucleus.hh"
#include "bt/region_cache.hh"
#include "bt/translator.hh"
#include "isa/program.hh"

namespace powerchop
{

/** How the instructions of the current region execute. */
enum class ExecMode : std::uint8_t
{
    Translated,   ///< From the region cache at native speed.
    Interpreted,  ///< Through the interpreter (slow).
};

/** Outcome of entering a region at a block head. */
struct RegionEntry
{
    ExecMode mode = ExecMode::Interpreted;

    /** The translation executing, when mode == Translated. */
    Translation *translation = nullptr;

    /** Stall cycles charged at this entry (translator runs, traps). */
    double extraCycles = 0;
};

/** BT configuration. */
struct BtParams
{
    unsigned hotThreshold = 24;
    double translationCost = 4000.0;
    TranslatorParams translator;
    NucleusParams nucleus;
    std::size_t regionCacheCapacity = 0;
};

/**
 * The hybrid processor's software layer.
 */
class BtSystem
{
  public:
    /**
     * @param program The guest program (must outlive the system).
     * @param params  Subsystem parameters.
     */
    BtSystem(const Program &program, const BtParams &params = {});

    /**
     * Enter the region headed by a block: consult the region cache,
     * fall back to interpretation, and translate regions that just
     * crossed the hotness threshold.
     *
     * The resident-translation case takes an inline fast path through
     * a direct per-block index (byBlock_) that mirrors the region
     * cache's contents; counters advance exactly as a map lookup
     * would, so stats are identical.
     *
     * @param head The block whose head is being entered.
     * @return how this region executes and any stall cycles.
     */
    RegionEntry
    enterRegion(BlockId head)
    {
        if (Translation *t = byBlock_[head]) {
            regionCache_.noteHit();
            ++t->execCount;
            RegionEntry entry;
            entry.mode = ExecMode::Translated;
            entry.translation = t;
            return entry;
        }
        return enterRegionSlow(head);
    }

    /** Route pre-derived translation metadata (translation_cache.hh)
     *  to the translator; nullptr reverts to CFG walking. */
    void
    setTranslationMetadata(const TranslationMetadataSet *set)
    {
        translator_.setPrebuilt(set);
    }

    const RegionCache &regionCache() const { return regionCache_; }
    const Interpreter &interpreter() const { return interpreter_; }
    const Translator &translator() const { return translator_; }
    Nucleus &nucleus() { return nucleus_; }
    const Nucleus &nucleus() const { return nucleus_; }

  private:
    /** The interpreted/translating path of enterRegion(). */
    RegionEntry enterRegionSlow(BlockId head);

    const Program &program_;
    BtParams params_;
    Interpreter interpreter_;
    Translator translator_;
    RegionCache regionCache_;
    Nucleus nucleus_;

    /** Direct per-block mirror of the region cache's residents,
     *  cleared whenever a capacity insert flushes the cache. */
    std::vector<Translation *> byBlock_;
    /** Head PC of every block, flattened from the program. */
    std::vector<Addr> headPc_;
};

} // namespace powerchop

#endif // POWERCHOP_BT_BT_SYSTEM_HH
