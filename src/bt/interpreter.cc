#include "bt/interpreter.hh"

#include "common/logging.hh"

namespace powerchop
{

Interpreter::Interpreter(unsigned hot_threshold)
    : hotThreshold_(hot_threshold)
{
    if (hot_threshold == 0)
        fatal("interpreter hot threshold must be non-zero");
}

bool
Interpreter::recordExecution(Addr head_pc)
{
    ++interpreted_;
    std::uint64_t &c = counts_[head_pc];
    ++c;
    return c == hotThreshold_;
}

std::uint64_t
Interpreter::hotness(Addr head_pc) const
{
    auto it = counts_.find(head_pc);
    return it == counts_.end() ? 0 : it->second;
}

void
Interpreter::forget(Addr head_pc)
{
    counts_.erase(head_pc);
}

} // namespace powerchop
