/**
 * @file
 * The BT interpreter: decodes and executes guest instructions
 * sequentially while collecting hotness statistics about code regions
 * and branch behaviour. When a region reaches the hotness threshold
 * the interpreter yields to the translator (Section II-A).
 */

#ifndef POWERCHOP_BT_INTERPRETER_HH
#define POWERCHOP_BT_INTERPRETER_HH

#include <cstdint>
#include <unordered_map>

#include "common/types.hh"

namespace powerchop
{

/**
 * Hotness-tracking interpreter model.
 *
 * The timing cost of interpretation is charged by the simulator; this
 * class tracks per-region execution counts and reports when a region
 * crosses the hotness threshold.
 */
class Interpreter
{
  public:
    /**
     * @param hot_threshold Executions of a head before translation.
     */
    explicit Interpreter(unsigned hot_threshold);

    /**
     * Record one interpreted execution of the region at head_pc.
     *
     * @return true if the region just became hot (translate now).
     */
    bool recordExecution(Addr head_pc);

    /** @return the execution count collected for a head. */
    std::uint64_t hotness(Addr head_pc) const;

    /** Forget a head (it has been translated). */
    void forget(Addr head_pc);

    std::uint64_t interpretedRegions() const { return interpreted_; }
    unsigned hotThreshold() const { return hotThreshold_; }

  private:
    unsigned hotThreshold_;
    std::unordered_map<Addr, std::uint64_t> counts_;
    std::uint64_t interpreted_ = 0;
};

} // namespace powerchop

#endif // POWERCHOP_BT_INTERPRETER_HH
