#include "bt/nucleus.hh"

#include "common/logging.hh"

namespace powerchop
{

Nucleus::Nucleus(const NucleusParams &params) : params_(params)
{
}

double
Nucleus::takeInterrupt(InterruptKind kind)
{
    double cost = 0;
    switch (kind) {
      case InterruptKind::PvtMiss:
        cost = params_.pvtMissTrapCycles;
        break;
      case InterruptKind::Translation:
        cost = params_.translationTrapCycles;
        break;
      case InterruptKind::Other:
        cost = params_.otherTrapCycles;
        break;
      default:
        panic("unknown interrupt kind %d", static_cast<int>(kind));
    }
    ++counts_[static_cast<unsigned>(kind)];
    totalCycles_ += cost;
    return cost;
}

std::uint64_t
Nucleus::count(InterruptKind kind) const
{
    return counts_[static_cast<unsigned>(kind)];
}

} // namespace powerchop
