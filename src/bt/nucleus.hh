/**
 * @file
 * The nucleus: the BT runtime's interrupt/exception layer.
 *
 * In a hybrid processor the nucleus handles host-level interrupts and
 * microarchitectural exceptions. PowerChop adds one interrupt source:
 * PVT misses, which transfer control to the Criticality Decision
 * Engine (Section IV-C3 measures the resulting overhead: about 0.017%
 * of translations miss the PVT, costing under 0.5% performance).
 */

#ifndef POWERCHOP_BT_NUCLEUS_HH
#define POWERCHOP_BT_NUCLEUS_HH

#include <cstdint>

#include "common/types.hh"

namespace powerchop
{

/** Interrupt classes the nucleus dispatches. */
enum class InterruptKind : std::uint8_t
{
    PvtMiss,       ///< PVT lookup missed; invoke the CDE.
    Translation,   ///< A region crossed the hotness threshold.
    Other,         ///< Ordinary host interrupts (devices, timers).
};

/** Cycle costs of taking each interrupt class. */
struct NucleusParams
{
    /** Trap + CDE dispatch + return. The CDE's own work is charged
     *  separately by its caller. */
    double pvtMissTrapCycles = 300.0;

    /** Trap overhead around a translator run. */
    double translationTrapCycles = 200.0;

    double otherTrapCycles = 500.0;
};

/**
 * Interrupt cost accounting for the BT runtime.
 */
class Nucleus
{
  public:
    explicit Nucleus(const NucleusParams &params = {});

    /**
     * Take one interrupt.
     *
     * @param kind The interrupt class.
     * @return the cycle cost the core stalls for.
     */
    double takeInterrupt(InterruptKind kind);

    std::uint64_t count(InterruptKind kind) const;
    double totalCycles() const { return totalCycles_; }

  private:
    NucleusParams params_;
    std::uint64_t counts_[3] = {0, 0, 0};
    double totalCycles_ = 0;
};

} // namespace powerchop

#endif // POWERCHOP_BT_NUCLEUS_HH
