#include "bt/region_cache.hh"

#include "common/logging.hh"

namespace powerchop
{

RegionCache::RegionCache(std::size_t capacity) : capacity_(capacity)
{
}

Translation *
RegionCache::lookup(Addr head_pc)
{
    ++lookups_;
    auto it = map_.find(head_pc);
    if (it == map_.end())
        return nullptr;
    ++hits_;
    return it->second.get();
}

Translation *
RegionCache::insert(std::unique_ptr<Translation> t)
{
    if (!t)
        panic("RegionCache::insert of null translation");
    if (capacity_ != 0 && map_.size() >= capacity_) {
        map_.clear();
        ++flushes_;
    }
    Addr head = t->headPc;
    auto [it, fresh] = map_.emplace(head, std::move(t));
    if (!fresh)
        panic("duplicate translation for head 0x%llx",
              static_cast<unsigned long long>(head));
    return it->second.get();
}

} // namespace powerchop
