/**
 * @file
 * The region cache: the software code cache holding translations.
 */

#ifndef POWERCHOP_BT_REGION_CACHE_HH
#define POWERCHOP_BT_REGION_CACHE_HH

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "bt/translation.hh"

namespace powerchop
{

/**
 * Software structure mapping guest head PCs to translations.
 *
 * The real system bounds the region cache and garbage-collects cold
 * translations; our synthetic programs are small enough that an
 * optional capacity with coarse flush models that adequately.
 */
class RegionCache
{
  public:
    /**
     * @param capacity Maximum resident translations; 0 = unbounded.
     */
    explicit RegionCache(std::size_t capacity = 0);

    /** @return the translation for a head PC, or nullptr. */
    Translation *lookup(Addr head_pc);

    /**
     * Counter-only lookup outcomes, for callers that resolve the
     * translation through an external index (BtSystem keeps a direct
     * per-block map): exactly the bookkeeping lookup() would have
     * performed, without the hash probe. @{
     */
    void
    noteHit()
    {
        ++lookups_;
        ++hits_;
    }

    void noteMiss() { ++lookups_; }
    /** @} */

    /**
     * Insert a translation.
     *
     * If at capacity, the whole cache is flushed first (Transmeta-
     * style coarse eviction).
     *
     * @return the resident translation.
     */
    Translation *insert(std::unique_ptr<Translation> t);

    std::size_t size() const { return map_.size(); }
    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t flushes() const { return flushes_; }

  private:
    std::size_t capacity_;
    std::unordered_map<Addr, std::unique_ptr<Translation>> map_;
    std::uint64_t lookups_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t flushes_ = 0;
};

} // namespace powerchop

#endif // POWERCHOP_BT_REGION_CACHE_HH
