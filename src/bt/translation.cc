#include "bt/translation.hh"

// Translation is a plain aggregate; this file anchors the module in
// the build and keeps a home for future out-of-line members.
