/**
 * @file
 * The translation: the unit of optimized code the BT layer produces
 * and the primitive PowerChop's phase analysis is built on.
 *
 * A translation is a short trace of guest basic blocks converted to
 * host-ISA code and stored in the region cache. Its unique id is the
 * lower 32 bits of the head PC (Section IV-B2: the region cache is far
 * smaller than 32 bits of address space, so these are unique). The
 * host instruction format carries a translation-head marker bit; the
 * HTB snoops head executions off the critical path.
 */

#ifndef POWERCHOP_BT_TRANSLATION_HH
#define POWERCHOP_BT_TRANSLATION_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "isa/program.hh"

namespace powerchop
{

/**
 * One translation in the region cache.
 */
struct Translation
{
    /** Unique id: lower 32 bits of the head PC. */
    TranslationId id = invalidTranslationId;

    /** Guest PC of the trace head. */
    Addr headPc = 0;

    /** Guest basic blocks covered by this trace, in order. */
    std::vector<BlockId> blocks;

    /** Static guest instructions covered. */
    unsigned staticInsts = 0;

    /** True if any covered instruction is a SIMD op; such translations
     *  carry a scalar-emulation alternate path for VPU-off phases. */
    bool hasSimd = false;

    /** Dynamic executions of this translation (profile data). */
    std::uint64_t execCount = 0;

    /** Derive the translation id from a head PC. */
    static TranslationId
    idFor(Addr head_pc)
    {
        return static_cast<TranslationId>(head_pc & 0xffffffffu);
    }
};

} // namespace powerchop

#endif // POWERCHOP_BT_TRANSLATION_HH
