#include "bt/translation_cache.hh"

#include "common/hash.hh"

namespace powerchop
{

TranslationMetadataSet
buildTranslationMetadata(const Program &program,
                         const TranslatorParams &params)
{
    TranslationMetadataSet set;
    set.maxTraceBlocks = params.maxTraceBlocks;
    set.byBlock.resize(program.numBlocks());

    for (BlockId head = 0; head < program.numBlocks(); ++head) {
        TranslationProto &p = set.byBlock[head];
        p.headPc = program.block(head).head;

        // Mirror of Translator::translate()'s successor walk; the
        // translator asserts the mirrored fields agree in debug
        // builds.
        BlockId cur = head;
        for (unsigned n = 0; n < params.maxTraceBlocks; ++n) {
            const BasicBlock &bb = program.block(cur);
            p.blocks.push_back(cur);
            p.staticInsts += static_cast<unsigned>(bb.insts.size());
            if (bb.simdCount > 0)
                p.hasSimd = true;

            BlockId next = bb.takenSucc;
            if (next == invalidBlockId || next == head)
                break;
            cur = next;
        }
    }
    return set;
}

std::shared_ptr<const TranslationMetadataSet>
TranslationMetadataCache::acquire(std::uint64_t workloadKey,
                                  const Program &program,
                                  const TranslatorParams &params)
{
    // Fold the trace parameter into the key: the same workload under
    // machines with different trace lengths yields different sets.
    std::uint64_t key = fnv1a64Continue(
        fnv1a64Continue(fnv1a64Basis, &workloadKey, sizeof(workloadKey)),
        &params.maxTraceBlocks, sizeof(params.maxTraceBlocks));

    std::lock_guard<std::mutex> lock(mutex_);
    auto it = map_.find(key);
    if (it != map_.end()) {
        ++hits_;
        return it->second;
    }

    // Build under the lock: concurrent first arrivals for the same
    // key serialize on exactly one build instead of racing N.
    auto set = std::make_shared<TranslationMetadataSet>(
        buildTranslationMetadata(program, params));
    map_.emplace(key, set);
    ++misses_;
    return set;
}

std::uint64_t
TranslationMetadataCache::hits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

std::uint64_t
TranslationMetadataCache::misses() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

void
TranslationMetadataCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    map_.clear();
    hits_ = 0;
    misses_ = 0;
}

} // namespace powerchop
