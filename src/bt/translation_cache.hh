/**
 * @file
 * Per-workload translation metadata, shared across simulation jobs.
 *
 * A translation's content — its head PC, the decoded trace of guest
 * blocks, its static instruction count and SIMD coverage — is a pure
 * function of the guest Program and the trace-formation parameters.
 * The Program in turn is a deterministic function of the workload
 * spec (including its seed). Every job of a batch that runs the same
 * workload therefore re-derives identical metadata.
 *
 * TranslationMetadataCache memoizes that derivation: the first job of
 * a (workload content key, trace params) pair builds the full
 * metadata set under the cache mutex (so concurrent first arrivals
 * cost exactly one build) and later jobs share it. The Translator
 * copies prototypes out of the shared set instead of re-walking the
 * CFG; runtime-dependent state (translation ids are assigned from
 * head PCs, execution counts start at zero) is untouched, so results
 * are bit-identical to uncached runs at any worker count.
 */

#ifndef POWERCHOP_BT_TRANSLATION_CACHE_HH
#define POWERCHOP_BT_TRANSLATION_CACHE_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "bt/translator.hh"
#include "isa/program.hh"

namespace powerchop
{

/** Content prototype of the translation headed at one block. */
struct TranslationProto
{
    Addr headPc = 0;
    std::vector<BlockId> blocks;
    unsigned staticInsts = 0;
    bool hasSimd = false;
};

/** The pre-derived translation metadata of one guest program:
 *  prototypes for every possible trace head, indexed by BlockId. */
struct TranslationMetadataSet
{
    std::vector<TranslationProto> byBlock;

    /** Trace-formation parameter the set was built under; a set only
     *  substitutes for walks with the same parameter. */
    unsigned maxTraceBlocks = 1;
};

/**
 * Build the metadata set for a program: the same successor walk
 * Translator::translate() performs, run once per head up front.
 */
TranslationMetadataSet
buildTranslationMetadata(const Program &program,
                         const TranslatorParams &params);

/**
 * Thread-safe cache of TranslationMetadataSets keyed by workload
 * content key + trace params. Owned by the job runner; shared by the
 * jobs of its batches through SimOptions::translationCache.
 */
class TranslationMetadataCache
{
  public:
    /**
     * Fetch (or build-and-insert) the metadata set for a workload.
     *
     * @param workloadKey Content key of the workload spec (see
     *                    workloadContentKey()).
     * @param program     The workload's guest program.
     * @param params      Trace-formation parameters.
     * @return a shared, immutable metadata set.
     */
    std::shared_ptr<const TranslationMetadataSet>
    acquire(std::uint64_t workloadKey, const Program &program,
            const TranslatorParams &params);

    /** Acquisitions served from the cache. */
    std::uint64_t hits() const;

    /** Acquisitions that had to build (== distinct keys seen). */
    std::uint64_t misses() const;

    /** Drop all cached sets and zero the counters. */
    void clear();

  private:
    mutable std::mutex mutex_;
    std::unordered_map<std::uint64_t,
                       std::shared_ptr<const TranslationMetadataSet>>
        map_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace powerchop

#endif // POWERCHOP_BT_TRANSLATION_CACHE_HH
