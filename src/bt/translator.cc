#include "bt/translator.hh"

#include "common/logging.hh"

namespace powerchop
{

Translator::Translator(const Program &program,
                       const TranslatorParams &params)
    : program_(program), params_(params)
{
    if (params.maxTraceBlocks == 0)
        fatal("translator maxTraceBlocks must be non-zero");
}

std::unique_ptr<Translation>
Translator::translate(BlockId head)
{
    auto t = std::make_unique<Translation>();
    const BasicBlock &hb = program_.block(head);
    t->headPc = hb.head;
    t->id = Translation::idFor(hb.head);

    BlockId cur = head;
    for (unsigned n = 0; n < params_.maxTraceBlocks; ++n) {
        const BasicBlock &bb = program_.block(cur);
        t->blocks.push_back(cur);
        t->staticInsts += static_cast<unsigned>(bb.insts.size());
        if (bb.simdCount > 0)
            t->hasSimd = true;

        // Follow the statically most likely successor; stop when the
        // trace would loop back on itself.
        BlockId next = bb.takenSucc;
        if (next == invalidBlockId || next == head)
            break;
        cur = next;
    }

    ++made_;
    return t;
}

} // namespace powerchop
