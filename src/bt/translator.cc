#include "bt/translator.hh"

#include "bt/translation_cache.hh"
#include "common/logging.hh"

namespace powerchop
{

Translator::Translator(const Program &program,
                       const TranslatorParams &params)
    : program_(program), params_(params)
{
    if (params.maxTraceBlocks == 0)
        fatal("translator maxTraceBlocks must be non-zero");
}

void
Translator::setPrebuilt(const TranslationMetadataSet *set)
{
    if (set && set->maxTraceBlocks != params_.maxTraceBlocks)
        fatal("translation metadata built for maxTraceBlocks=%u, "
              "translator configured with %u",
              set->maxTraceBlocks, params_.maxTraceBlocks);
    if (set && set->byBlock.size() != program_.numBlocks())
        fatal("translation metadata covers %zu blocks, program has %zu",
              set->byBlock.size(), program_.numBlocks());
    prebuilt_ = set;
}

std::unique_ptr<Translation>
Translator::translate(BlockId head)
{
    if (prebuilt_) {
        const TranslationProto &p = prebuilt_->byBlock[head];
        auto t = std::make_unique<Translation>();
        t->headPc = p.headPc;
        t->id = Translation::idFor(p.headPc);
        t->blocks = p.blocks;
        t->staticInsts = p.staticInsts;
        t->hasSimd = p.hasSimd;
        ++made_;
        return t;
    }

    auto t = std::make_unique<Translation>();
    const BasicBlock &hb = program_.block(head);
    t->headPc = hb.head;
    t->id = Translation::idFor(hb.head);

    BlockId cur = head;
    for (unsigned n = 0; n < params_.maxTraceBlocks; ++n) {
        const BasicBlock &bb = program_.block(cur);
        t->blocks.push_back(cur);
        t->staticInsts += static_cast<unsigned>(bb.insts.size());
        if (bb.simdCount > 0)
            t->hasSimd = true;

        // Follow the statically most likely successor; stop when the
        // trace would loop back on itself.
        BlockId next = bb.takenSucc;
        if (next == invalidBlockId || next == head)
            break;
        cur = next;
    }

    ++made_;
    return t;
}

} // namespace powerchop
