/**
 * @file
 * The translator/optimizer: produces host-ISA translations from hot
 * guest code regions.
 *
 * Traces start at a hot block head and follow the statically most
 * likely successor chain up to a configurable length. Translations
 * covering SIMD instructions are emitted with a scalar-emulation
 * alternate path so the VPU can be gated off without retranslation
 * (Section IV-C2, "ops emulated by BT").
 */

#ifndef POWERCHOP_BT_TRANSLATOR_HH
#define POWERCHOP_BT_TRANSLATOR_HH

#include <memory>

#include "bt/translation.hh"
#include "isa/program.hh"

namespace powerchop
{

struct TranslationMetadataSet;

/** Translator configuration. */
struct TranslatorParams
{
    /** Maximum guest blocks per trace. Keeping traces short keeps
     *  translation-head granularity fine, which is what the HTB's
     *  phase signatures are built from. */
    unsigned maxTraceBlocks = 1;
};

/**
 * Builds translations from a guest program.
 */
class Translator
{
  public:
    /**
     * @param program The guest program (must outlive the translator).
     * @param params  Trace-formation parameters.
     */
    Translator(const Program &program, const TranslatorParams &params = {});

    /**
     * Produce a translation for the region headed at a block.
     *
     * @param head Block at the trace head.
     * @return the new translation (caller inserts into region cache).
     */
    std::unique_ptr<Translation> translate(BlockId head);

    /**
     * Use pre-derived translation metadata (bt/translation_cache.hh):
     * translate() copies the head's prototype instead of re-walking
     * the CFG. The set must match this translator's program and trace
     * parameters and outlive the translator. nullptr reverts to
     * walking.
     */
    void setPrebuilt(const TranslationMetadataSet *set);

    std::uint64_t translationsMade() const { return made_; }

  private:
    const Program &program_;
    TranslatorParams params_;
    const TranslationMetadataSet *prebuilt_ = nullptr;
    std::uint64_t made_ = 0;
};

} // namespace powerchop

#endif // POWERCHOP_BT_TRANSLATOR_HH
