#include "common/arena.hh"

#include "common/logging.hh"

namespace powerchop
{

Arena::Arena(std::size_t chunkBytes)
    : chunkBytes_(chunkBytes ? chunkBytes : 64 * 1024)
{
}

void *
Arena::allocate(std::size_t bytes, std::size_t align)
{
    if (align == 0 || (align & (align - 1)) != 0)
        panic("arena alignment %zu is not a power of two", align);

    if (chunks_.empty())
        grow(bytes + align);

    Chunk *c = &chunks_[cur_];
    std::size_t offset = (c->used + align - 1) & ~(align - 1);
    if (offset + bytes > c->size) {
        grow(bytes + align);
        c = &chunks_[cur_];
        offset = (c->used + align - 1) & ~(align - 1);
    }

    c->used = offset + bytes;
    allocated_ += bytes;
    return c->data.get() + offset;
}

void
Arena::grow(std::size_t bytes)
{
    // Reuse a recycled chunk (after reset()) when one is big enough;
    // otherwise append a fresh chunk sized for the request.
    for (std::size_t i = cur_ + (chunks_.empty() ? 0 : 1);
         i < chunks_.size(); ++i) {
        if (chunks_[i].used == 0 && chunks_[i].size >= bytes) {
            std::swap(chunks_[cur_ + 1], chunks_[i]);
            ++cur_;
            return;
        }
    }

    Chunk c;
    c.size = bytes > chunkBytes_ ? bytes : chunkBytes_;
    c.data = std::make_unique<std::byte[]>(c.size);
    chunks_.push_back(std::move(c));
    cur_ = chunks_.size() - 1;
}

void
Arena::reset()
{
    for (Chunk &c : chunks_)
        c.used = 0;
    cur_ = 0;
    allocated_ = 0;
}

std::size_t
Arena::bytesReserved() const
{
    std::size_t total = 0;
    for (const Chunk &c : chunks_)
        total += c.size;
    return total;
}

} // namespace powerchop
