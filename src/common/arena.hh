/**
 * @file
 * Bump (arena) allocator for per-job transient state.
 *
 * A simulation job builds thousands of small, same-lifetime objects —
 * decoded block streams, generator tables, scratch buffers — that are
 * all discarded together when the job ends. Allocating them
 * individually scatters them across the heap (poor locality in the hot
 * loop) and pays a malloc round-trip each. The arena hands out
 * pointer-bumped storage from large chunks instead: allocation is a
 * few arithmetic ops, everything lands contiguously in allocation
 * order, and the whole arena is released at once.
 *
 * Only trivially-destructible types may be placed in an arena (the
 * arena never runs destructors); allocateArray() enforces this at
 * compile time.
 */

#ifndef POWERCHOP_COMMON_ARENA_HH
#define POWERCHOP_COMMON_ARENA_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace powerchop
{

/**
 * A growable bump allocator.
 *
 * Storage comes from fixed-size chunks; requests larger than the chunk
 * size get a dedicated oversized chunk. reset() recycles the chunks
 * for reuse without returning them to the system.
 */
class Arena
{
  public:
    /** @param chunkBytes Default chunk size for new chunks. */
    explicit Arena(std::size_t chunkBytes = 64 * 1024);

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    /**
     * Allocate raw storage.
     *
     * @param bytes Size in bytes (0 returns a valid unique pointer).
     * @param align Alignment; must be a power of two.
     * @return pointer to uninitialized storage, never nullptr.
     */
    void *allocate(std::size_t bytes, std::size_t align);

    /**
     * Allocate an uninitialized array of a trivially-destructible
     * type. The caller constructs the elements (trivial types can
     * simply be assigned).
     */
    template <typename T>
    T *
    allocateArray(std::size_t n)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "arena storage is released without destructors");
        return static_cast<T *>(allocate(n * sizeof(T), alignof(T)));
    }

    /**
     * Copy a sequence into arena storage.
     *
     * @return pointer to the arena-resident copy (nullptr-free even
     *         for n == 0).
     */
    template <typename T>
    T *
    copyArray(const T *src, std::size_t n)
    {
        T *dst = allocateArray<T>(n);
        for (std::size_t i = 0; i < n; ++i)
            dst[i] = src[i];
        return dst;
    }

    /** Discard all allocations; chunks are kept for reuse. */
    void reset();

    /** Total bytes handed out since construction/reset (sums the
     *  aligned request sizes, not chunk capacity). */
    std::size_t bytesAllocated() const { return allocated_; }

    /** Total bytes of chunk capacity currently held. */
    std::size_t bytesReserved() const;

  private:
    struct Chunk
    {
        std::unique_ptr<std::byte[]> data;
        std::size_t size = 0;
        std::size_t used = 0;
    };

    /** Make `cur_` a chunk with at least `bytes` free capacity. */
    void grow(std::size_t bytes);

    std::size_t chunkBytes_;
    std::vector<Chunk> chunks_;
    /** Index of the chunk allocations bump from; chunks before it are
     *  full (or were skipped by an oversized request). */
    std::size_t cur_ = 0;
    std::size_t allocated_ = 0;
};

} // namespace powerchop

#endif // POWERCHOP_COMMON_ARENA_HH
