#include "common/atomic_file.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "common/logging.hh"

namespace powerchop
{

namespace
{

[[noreturn]] void
throwIo(const std::string &path, const char *op)
{
    throw IoError(csprintf("%s: %s failed: %s", path.c_str(), op,
                           std::strerror(errno)));
}

/** Directory part of `path` ("." when the path has no slash). */
std::string
dirOf(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    if (slash == std::string::npos)
        return ".";
    if (slash == 0)
        return "/";
    return path.substr(0, slash);
}

/**
 * fsync the directory containing the renamed entry so the rename
 * itself is durable. Some filesystems refuse fsync on a directory fd;
 * that is not a durability hole we can close, so those errors are
 * ignored rather than surfaced.
 */
void
syncDir(const std::string &dir)
{
    const int fd = ::open(dir.c_str(), O_RDONLY);
    if (fd < 0)
        return;
    ::fsync(fd);
    ::close(fd);
}

} // namespace

void
atomicWriteFile(const std::string &path, const std::string &content)
{
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());

    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                          0644);
    if (fd < 0)
        throwIo(tmp, "open");

    const char *p = content.data();
    std::size_t left = content.size();
    while (left > 0) {
        const ssize_t n = ::write(fd, p, left);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            ::close(fd);
            ::unlink(tmp.c_str());
            throwIo(tmp, "write");
        }
        p += n;
        left -= static_cast<std::size_t>(n);
    }

    if (::fsync(fd) != 0) {
        ::close(fd);
        ::unlink(tmp.c_str());
        throwIo(tmp, "fsync");
    }
    if (::close(fd) != 0) {
        ::unlink(tmp.c_str());
        throwIo(tmp, "close");
    }

    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        ::unlink(tmp.c_str());
        throwIo(path, "rename");
    }
    syncDir(dirOf(path));
}

bool
atomicWriteFileOk(const std::string &path,
                  const std::string &content) noexcept
{
    try {
        atomicWriteFile(path, content);
        return true;
    } catch (const IoError &e) {
        warn("%s", e.what());
        return false;
    }
}

namespace
{

/** Slurp `path`; empty string when it does not exist. */
std::string
readWhole(const std::string &path)
{
    std::string out;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return out;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    std::fclose(f);
    return out;
}

std::string::size_type
firstNonSpace(const std::string &s)
{
    return s.find_first_not_of(" \t\r\n");
}

std::string::size_type
lastNonSpace(const std::string &s)
{
    return s.find_last_not_of(" \t\r\n");
}

} // namespace

bool
appendJsonArrayEntryOk(const std::string &path,
                       const std::string &entry) noexcept
{
    try {
        const std::string old = readWhole(path);
        const auto first = firstNonSpace(old);
        const auto last = lastNonSpace(old);

        std::string body;
        if (first == std::string::npos) {
            // Missing or empty file: start a fresh trajectory.
            body = entry;
        } else if (old[first] == '[' && old[last] == ']') {
            // Existing array: splice the entry before the closing
            // bracket (an empty array gains its first entry).
            std::string inner =
                old.substr(first + 1, last - first - 1);
            const auto b = inner.find_first_not_of(" \t\r\n");
            if (b == std::string::npos) {
                body = entry;
            } else {
                const auto e = inner.find_last_not_of(" \t\r\n");
                body = inner.substr(b, e - b + 1) + ",\n" + entry;
            }
        } else if (old[first] == '{' && old[last] == '}') {
            // Legacy single-report file: keep it as the first entry.
            body = old.substr(first, last - first + 1) + ",\n" + entry;
        } else {
            warn("%s: not a JSON array or object; refusing to append",
                 path.c_str());
            return false;
        }

        atomicWriteFile(path, "[\n" + body + "\n]\n");
        return true;
    } catch (const IoError &e) {
        warn("%s", e.what());
        return false;
    }
}

} // namespace powerchop
