/**
 * @file
 * Crash-safe whole-file writes.
 *
 * Every result sink in the repository (golden snapshots, metrics
 * CSV/JSONL, chrome traces, bench reports, campaign reports) funnels
 * through atomicWriteFile(): the content is written to a temporary
 * file in the destination directory, fsync'd, and renamed over the
 * target, then the directory entry itself is fsync'd. A reader —
 * including a reader racing a crash — therefore sees either the old
 * complete file or the new complete file, never a torn prefix, and a
 * SIGKILL at any point leaves at worst an orphaned `*.tmp.<pid>` file
 * that the next write cleans up by reusing the name.
 */

#ifndef POWERCHOP_COMMON_ATOMIC_FILE_HH
#define POWERCHOP_COMMON_ATOMIC_FILE_HH

#include <stdexcept>
#include <string>

namespace powerchop
{

/**
 * Thrown when a file-system operation in the durable-output layer
 * fails (open, write, fsync, rename). The message names the path,
 * the failing operation and the errno text. Deliberately not a
 * FatalError: an I/O failure is an environment condition the caller
 * may want to handle (retry, degrade to stdout), not a configuration
 * mistake.
 */
class IoError : public std::runtime_error
{
  public:
    explicit IoError(const std::string &msg) : std::runtime_error(msg)
    {
    }
};

/**
 * Atomically replace `path` with `content`.
 *
 * Write-to-temp + fsync + rename + directory fsync; throws IoError on
 * any failure (the temp file is unlinked before throwing, so failed
 * writes leave no partial output behind).
 */
void atomicWriteFile(const std::string &path,
                     const std::string &content);

/**
 * Non-throwing variant for best-effort sinks (telemetry, bench
 * reports): on failure a warn() names the path and false is returned;
 * the caller's results are unaffected.
 */
bool atomicWriteFileOk(const std::string &path,
                       const std::string &content) noexcept;

/**
 * Append one JSON value to a JSON-array trajectory file, atomically.
 *
 * The file always holds a well-formed JSON array, one entry per line.
 * A missing or empty file becomes `[entry]`; an existing array gains
 * the entry at its end; a legacy file holding a bare object (the old
 * overwrite-style report) is wrapped into an array first, so history
 * is kept rather than clobbered. The rewrite goes through
 * atomicWriteFile(), so a crash never leaves a torn trajectory.
 *
 * Best-effort like atomicWriteFileOk(): on I/O failure (or a file
 * whose contents are neither an array nor an object) a warn() names
 * the path and false is returned.
 *
 * @param entry A serialized JSON value (object, typically).
 */
bool appendJsonArrayEntryOk(const std::string &path,
                            const std::string &entry) noexcept;

} // namespace powerchop

#endif // POWERCHOP_COMMON_ATOMIC_FILE_HH
