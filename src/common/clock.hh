/**
 * @file
 * The single monotonic time source for every deadline in the tree.
 *
 * Watchdogs, retry backoff, drain grace periods, worker heartbeats
 * and restart backoff all compare "now" against a deadline computed
 * earlier in the same process. Those comparisons must never observe a
 * system clock step (NTP slew, manual date change, suspend/resume
 * adjustment): a backwards step would suppress a timeout forever and
 * a forwards step would fire every timeout at once. All deadline
 * arithmetic therefore goes through these helpers, which are pinned
 * to std::chrono::steady_clock; wall-clock sources (system_clock,
 * time(), gettimeofday()) are not allowed in deadline code.
 */

#ifndef POWERCHOP_COMMON_CLOCK_HH
#define POWERCHOP_COMMON_CLOCK_HH

#include <chrono>
#include <cstdint>
#include <limits>

namespace powerchop
{

/** Monotonic seconds since an arbitrary (per-process) epoch. */
inline double
monotonicSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Monotonic nanoseconds since the same arbitrary epoch. */
inline std::int64_t
monotonicNanos()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/**
 * A monotonic deadline: "at most `seconds` from now".
 *
 * Immune to system clock steps by construction. A default-constructed
 * or non-positive-duration deadline never expires, so optional
 * timeouts ("0 disables") need no special-casing at the call site.
 */
class MonotonicDeadline
{
  public:
    MonotonicDeadline() = default;

    explicit MonotonicDeadline(double seconds)
    {
        if (seconds > 0) {
            armed_ = true;
            deadlineNs_ = monotonicNanos() +
                          static_cast<std::int64_t>(seconds * 1e9);
        }
    }

    /** @return true when armed and the deadline has passed. */
    bool
    expired() const
    {
        return armed_ && monotonicNanos() >= deadlineNs_;
    }

    /** @return seconds left (0 when expired; +inf when unarmed). */
    double
    remainingSeconds() const
    {
        if (!armed_)
            return std::numeric_limits<double>::infinity();
        const std::int64_t left = deadlineNs_ - monotonicNanos();
        return left > 0 ? static_cast<double>(left) * 1e-9 : 0.0;
    }

    bool armed() const { return armed_; }

  private:
    bool armed_ = false;
    std::int64_t deadlineNs_ = 0;
};

} // namespace powerchop

#endif // POWERCHOP_COMMON_CLOCK_HH
