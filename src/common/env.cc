#include "common/env.hh"

#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "common/logging.hh"

namespace powerchop
{

namespace
{

/** The reason a raw value failed integer parsing, or nullptr. */
const char *
uintParseFailure(const char *raw, unsigned long long &out)
{
    if (raw[0] == '-' || raw[0] == '+')
        return "a sign is not accepted";

    errno = 0;
    char *end = nullptr;
    out = std::strtoull(raw, &end, 10);
    if (end == raw)
        return "not a number";
    if (*end != '\0')
        return "trailing junk after the number";
    if (errno == ERANGE)
        return "overflows 64 bits";
    return nullptr;
}

const char *
doubleParseFailure(const char *raw, double &out)
{
    errno = 0;
    char *end = nullptr;
    out = std::strtod(raw, &end);
    if (end == raw)
        return "not a number";
    if (*end != '\0')
        return "trailing junk after the number";
    if (errno == ERANGE)
        return "out of double range";
    if (!std::isfinite(out))
        return "not a finite number";
    return nullptr;
}

} // namespace

std::optional<std::string>
envString(const char *name)
{
    const char *raw = std::getenv(name);
    if (!raw || !*raw)
        return std::nullopt;
    return std::string(raw);
}

std::optional<std::uint64_t>
envUint64(const char *name, std::uint64_t min, std::uint64_t max)
{
    const char *raw = std::getenv(name);
    if (!raw || !*raw)
        return std::nullopt;

    unsigned long long v = 0;
    if (const char *why = uintParseFailure(raw, v)) {
        warn("ignoring %s='%s': %s", name, raw, why);
        return std::nullopt;
    }
    if (v < min || v > max) {
        warn("ignoring %s=%llu: outside [%llu, %llu]", name, v,
             static_cast<unsigned long long>(min),
             static_cast<unsigned long long>(max));
        return std::nullopt;
    }
    return static_cast<std::uint64_t>(v);
}

std::optional<double>
envDouble(const char *name, double min, double max)
{
    const char *raw = std::getenv(name);
    if (!raw || !*raw)
        return std::nullopt;

    double v = 0;
    if (const char *why = doubleParseFailure(raw, v)) {
        warn("ignoring %s='%s': %s", name, raw, why);
        return std::nullopt;
    }
    if (v < min || v > max) {
        warn("ignoring %s=%g: outside [%g, %g]", name, v, min, max);
        return std::nullopt;
    }
    return v;
}

} // namespace powerchop
