/**
 * @file
 * Centralized parsing of the POWERCHOP_* environment variables.
 *
 * Every runtime override (instruction budget, worker count, fault
 * rates, output paths) funnels through these helpers so that all of
 * them share the same hardened parsing rules: a sign, trailing junk
 * ("10M"), overflow, or an out-of-range value is rejected with a
 * descriptive warning naming the variable and the reason, and the
 * caller's default is used instead. Ad-hoc getenv()/strtoul() call
 * sites are not allowed outside this file.
 */

#ifndef POWERCHOP_COMMON_ENV_HH
#define POWERCHOP_COMMON_ENV_HH

#include <cstdint>
#include <optional>
#include <string>

namespace powerchop
{

/**
 * Read a string-valued environment variable.
 *
 * @param name Variable name (e.g. "POWERCHOP_RUNNER_JSON").
 * @return the value, or nullopt when unset or empty.
 */
std::optional<std::string> envString(const char *name);

/**
 * Read an unsigned integer environment variable.
 *
 * Rejected with a warning naming the variable and the offending
 * value: empty numbers, a leading sign, trailing junk, overflow, and
 * values outside [min, max].
 *
 * @param name Variable name.
 * @param min  Smallest accepted value.
 * @param max  Largest accepted value.
 * @return the parsed value, or nullopt when unset or invalid.
 */
std::optional<std::uint64_t> envUint64(const char *name,
                                       std::uint64_t min,
                                       std::uint64_t max);

/**
 * Read a floating-point environment variable.
 *
 * Same rejection rules as envUint64(); NaN and infinities are also
 * rejected.
 */
std::optional<double> envDouble(const char *name, double min,
                                double max);

} // namespace powerchop

#endif // POWERCHOP_COMMON_ENV_HH
