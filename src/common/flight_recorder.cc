#include "common/flight_recorder.hh"

#include <algorithm>
#include <cstring>

#include "common/atomic_file.hh"
#include "common/clock.hh"
#include "common/json.hh"
#include "common/logging.hh"

namespace powerchop
{

const char *
flightEventTypeName(FlightEventType t)
{
    switch (t) {
      case FlightEventType::JobStart:
        return "job-start";
      case FlightEventType::JobFinish:
        return "job-finish";
      case FlightEventType::Retry:
        return "retry";
      case FlightEventType::HeartbeatMiss:
        return "heartbeat-miss";
      case FlightEventType::WorkerSpawn:
        return "worker-spawn";
      case FlightEventType::WorkerExit:
        return "worker-exit";
      case FlightEventType::WorkerCrash:
        return "worker-crash";
      case FlightEventType::Restart:
        return "restart";
      case FlightEventType::Redispatch:
        return "redispatch";
      case FlightEventType::Signal:
        return "signal";
      case FlightEventType::Note:
        return "note";
    }
    panic("unknown FlightEventType %d", static_cast<int>(t));
}

std::string
FlightEvent::toJsonl() const
{
    std::string s = csprintf(
        "{\"seq\":%llu,\"t\":%.6f,\"type\":\"%s\"",
        static_cast<unsigned long long>(seq), monoSeconds,
        flightEventTypeName(type));
    if (key != 0) {
        s += csprintf(",\"key\":\"%016llx\"",
                      static_cast<unsigned long long>(key));
    }
    if (!detail.empty())
        s += ",\"detail\":\"" + json::escape(detail) + "\"";
    s += "}";
    return s;
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : slots_(capacity ? capacity : 1)
{
}

FlightRecorder::~FlightRecorder()
{
    disable();
}

void
FlightRecorder::enable(const std::string &path)
{
    std::lock_guard<std::mutex> lock(controlMutex_);
    path_ = path;
    if (flushHookId_ == 0) {
        flushHookId_ = registerFlushHook("flight-recorder",
                                         [this] { dumpNow(); });
    }
    enabled_.store(true, std::memory_order_release);
}

void
FlightRecorder::disable()
{
    std::lock_guard<std::mutex> lock(controlMutex_);
    enabled_.store(false, std::memory_order_relaxed);
    if (flushHookId_ != 0) {
        unregisterFlushHook(flushHookId_);
        flushHookId_ = 0;
    }
}

void
FlightRecorder::record(FlightEventType type, std::uint64_t key,
                       const std::string &detail)
{
    if (!enabled_.load(std::memory_order_relaxed))
        return;

    const std::uint64_t seq =
        nextSeq_.fetch_add(1, std::memory_order_relaxed);
    Slot &slot = slots_[seq % slots_.size()];

    // Seqlock-style publish: stamp 0 marks the slot mid-write, so a
    // concurrent snapshot skips it rather than reading torn text;
    // the release store of seq + 1 publishes the completed payload.
    slot.stamp.store(0, std::memory_order_release);
    slot.monoSeconds = monotonicSeconds();
    slot.type = type;
    slot.key = key;
    const std::size_t n =
        std::min(detail.size(), sizeof(slot.detail) - 1);
    std::memcpy(slot.detail, detail.data(), n);
    slot.detail[n] = '\0';
    slot.stamp.store(seq + 1, std::memory_order_release);

    // Arm the dump-on-exit hook: the ring has content worth a
    // postmortem. The drain disarms before running, so each dump
    // happens exactly once per batch of new events.
    armFlushHook(flushHookId_);
}

std::vector<FlightEvent>
FlightRecorder::snapshot() const
{
    std::vector<FlightEvent> events;
    events.reserve(slots_.size());
    for (const Slot &slot : slots_) {
        const std::uint64_t stamp1 =
            slot.stamp.load(std::memory_order_acquire);
        if (stamp1 == 0)
            continue;
        FlightEvent ev;
        ev.seq = stamp1 - 1;
        ev.monoSeconds = slot.monoSeconds;
        ev.type = slot.type;
        ev.key = slot.key;
        ev.detail = slot.detail;
        // Re-check the stamp: a writer that lapped the ring during
        // our read leaves a different (or zero) stamp behind, and
        // the torn payload is dropped.
        const std::uint64_t stamp2 =
            slot.stamp.load(std::memory_order_acquire);
        if (stamp2 != stamp1)
            continue;
        events.push_back(std::move(ev));
    }
    std::sort(events.begin(), events.end(),
              [](const FlightEvent &a, const FlightEvent &b) {
                  return a.seq < b.seq;
              });
    return events;
}

std::string
FlightRecorder::toJsonl() const
{
    std::string out;
    for (const FlightEvent &ev : snapshot())
        out += ev.toJsonl() + "\n";
    return out;
}

bool
FlightRecorder::dumpNow()
{
    std::string path;
    {
        std::lock_guard<std::mutex> lock(controlMutex_);
        path = path_;
    }
    if (path.empty())
        return false;
    return atomicWriteFileOk(path, toJsonl());
}

FlightRecorder &
FlightRecorder::global()
{
    static FlightRecorder recorder;
    return recorder;
}

} // namespace powerchop
