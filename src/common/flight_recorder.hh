/**
 * @file
 * The crash flight recorder: a lock-free bounded ring of recent
 * structured events, dumped to disk on abnormal exit.
 *
 * A crashed or wedged campaign leaves a report.json and journals, but
 * those say *what* completed, not *what was happening*: which jobs
 * were in flight, which worker had just missed heartbeats, whether a
 * retry storm preceded the death. The flight recorder keeps the last
 * N such events in a fixed ring (old events overwritten, no
 * allocation, no lock on the record path) and writes them as JSONL
 * through the logging flush-hook registry — the same exit path that
 * drains the journal — so every fatal()/panic()/signal exit leaves a
 * postmortem `flight.jsonl` beside the campaign state.
 *
 * Writers claim a slot with one fetch_add and publish it
 * seqlock-style (stamp cleared before the fill, set after), so a
 * concurrent dump skips slots mid-write instead of reading torn
 * text. record() is wait-free and safe from any thread; it is NOT
 * async-signal-safe, so signal handlers must keep raising flags (as
 * they do) and let the drain happen on the normal exit path.
 *
 * Disabled (the default) the recorder ignores record() at the cost
 * of one relaxed load, so simulation-layer call sites can stay
 * unconditional.
 */

#ifndef POWERCHOP_COMMON_FLIGHT_RECORDER_HH
#define POWERCHOP_COMMON_FLIGHT_RECORDER_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace powerchop
{

/** What kind of moment a flight event records. */
enum class FlightEventType : std::uint8_t
{
    JobStart,      ///< A job began executing.
    JobFinish,     ///< A job reached a terminal state.
    Retry,         ///< A transient job failed and will re-attempt.
    HeartbeatMiss, ///< A worker went silent past the hang window.
    WorkerSpawn,   ///< A shard worker process was spawned.
    WorkerExit,    ///< A shard worker exited cleanly.
    WorkerCrash,   ///< A shard worker died (signal / error exit).
    Restart,       ///< A crashed shard is being restarted.
    Redispatch,    ///< Straggler keys re-dispatched to a helper.
    Signal,        ///< An interrupt was observed (drain requested).
    Note,          ///< Anything else worth a line in the postmortem.
};

/** @return the JSONL type tag of an event type ("job-start", ...). */
const char *flightEventTypeName(FlightEventType t);

/** One recorded event (snapshot form). */
struct FlightEvent
{
    std::uint64_t seq = 0;     ///< Global record order (0-based).
    double monoSeconds = 0;    ///< monotonicSeconds() at record time.
    FlightEventType type = FlightEventType::Note;
    std::uint64_t key = 0;     ///< Job content key; 0 = none.
    std::string detail;        ///< Free-form context (may be empty).

    /** The event's JSONL line (no trailing newline). */
    std::string toJsonl() const;
};

/**
 * The bounded event ring.
 *
 * Capacity is fixed at construction (default 1024 events — minutes
 * of campaign history at typical event rates, ~128 KiB resident).
 */
class FlightRecorder
{
  public:
    explicit FlightRecorder(std::size_t capacity = 1024);
    ~FlightRecorder();

    FlightRecorder(const FlightRecorder &) = delete;
    FlightRecorder &operator=(const FlightRecorder &) = delete;

    /**
     * Start recording and register the dump-on-exit flush hook.
     *
     * Events recorded from now on land in the ring; each record()
     * arms the hook, so the next fatal()/panic()/interrupted-exit
     * drain writes `path` exactly once (and a later record() re-arms
     * it). Calling enable() again just changes the path.
     */
    void enable(const std::string &path);

    /** Stop recording and unregister the flush hook. The ring's
     *  contents stay readable via snapshot(). */
    void disable();

    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Record one event (wait-free; no-op when disabled). */
    void record(FlightEventType type, std::uint64_t key = 0,
                const std::string &detail = std::string());

    /** The ring's valid events, oldest first. Slots concurrently
     *  mid-write are skipped. */
    std::vector<FlightEvent> snapshot() const;

    /** Render snapshot() as JSONL (one event per line). */
    std::string toJsonl() const;

    /** Write the ring to the enabled path now (atomic, best-effort).
     *  @return false when disabled or the write failed. */
    bool dumpNow();

    /** Events recorded since construction (monotone; exceeds the
     *  ring capacity once wrapping starts). */
    std::uint64_t recorded() const
    {
        return nextSeq_.load(std::memory_order_relaxed);
    }

    /**
     * The process-wide recorder used by the campaign layers. Starts
     * disabled; the CLI enables it per campaign directory (subject
     * to POWERCHOP_NO_FLIGHT).
     */
    static FlightRecorder &global();

  private:
    struct Slot
    {
        /** 0 = empty/mid-write; else the event's seq + 1, published
         *  with release order after the payload is complete. */
        std::atomic<std::uint64_t> stamp{0};
        double monoSeconds = 0;
        FlightEventType type = FlightEventType::Note;
        std::uint64_t key = 0;
        char detail[104] = {0}; ///< Truncating copy (NUL-terminated).
    };

    std::vector<Slot> slots_;
    std::atomic<std::uint64_t> nextSeq_{0};
    std::atomic<bool> enabled_{false};

    /** Dump-path state (mutated only by enable/disable/dumpNow,
     *  which are rare control-plane calls). */
    mutable std::mutex controlMutex_;
    std::string path_;
    int flushHookId_ = 0;
};

} // namespace powerchop

#endif // POWERCHOP_COMMON_FLIGHT_RECORDER_HH
