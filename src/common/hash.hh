/**
 * @file
 * Content hashing shared across subsystems.
 *
 * FNV-1a is used wherever a stable, dependency-free 64-bit content key
 * is needed: campaign job identities (crash-safe journal/resume) and
 * per-workload translation-metadata cache keys. It lives in common/ so
 * that layers below sim/ (bt/, workload/) can key on it without a
 * dependency inversion.
 */

#ifndef POWERCHOP_COMMON_HASH_HH
#define POWERCHOP_COMMON_HASH_HH

#include <cstdint>
#include <string>

namespace powerchop
{

/** FNV-1a offset basis / prime (64-bit). @{ */
constexpr std::uint64_t fnv1a64Basis = 0xcbf29ce484222325ull;
constexpr std::uint64_t fnv1a64Prime = 0x100000001b3ull;
/** @} */

/** Continue an FNV-1a hash over a byte sequence. */
inline std::uint64_t
fnv1a64Continue(std::uint64_t h, const void *data, std::size_t len)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= fnv1a64Prime;
    }
    return h;
}

/** FNV-1a hash of a string's bytes. */
inline std::uint64_t
fnv1a64(const std::string &data)
{
    return fnv1a64Continue(fnv1a64Basis, data.data(), data.size());
}

} // namespace powerchop

#endif // POWERCHOP_COMMON_HASH_HH
