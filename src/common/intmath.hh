/**
 * @file
 * Small integer-math helpers used throughout the microarchitectural
 * models (power-of-two checks, log2, alignment).
 */

#ifndef POWERCHOP_COMMON_INTMATH_HH
#define POWERCHOP_COMMON_INTMATH_HH

#include <cstdint>

namespace powerchop
{

/** @return true if n is a (non-zero) power of two. */
constexpr bool
isPowerOf2(std::uint64_t n)
{
    return n != 0 && (n & (n - 1)) == 0;
}

/** @return floor(log2(n)); log2 of 0 is defined as 0 for convenience. */
constexpr unsigned
floorLog2(std::uint64_t n)
{
    unsigned l = 0;
    while (n > 1) {
        n >>= 1;
        ++l;
    }
    return l;
}

/** @return the smallest power of two >= n (n = 0 yields 1). */
constexpr std::uint64_t
ceilPowerOf2(std::uint64_t n)
{
    std::uint64_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

/** @return v rounded down to a multiple of align (align must be a
 *  power of two). */
constexpr std::uint64_t
alignDown(std::uint64_t v, std::uint64_t align)
{
    return v & ~(align - 1);
}

/** @return v rounded up to a multiple of align (align must be a power
 *  of two). */
constexpr std::uint64_t
alignUp(std::uint64_t v, std::uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/** @return ceil(a / b) for positive integers. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace powerchop

#endif // POWERCHOP_COMMON_INTMATH_HH
