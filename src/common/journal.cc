#include "common/journal.hh"

#include <array>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include <sys/stat.h>
#include <unistd.h>

#include "common/atomic_file.hh"
#include "common/clock.hh"
#include "common/logging.hh"

namespace powerchop
{

namespace
{

/** CRC-32 (IEEE) lookup table, built once. */
const std::array<std::uint32_t, 256> &
crcTable()
{
    static const std::array<std::uint32_t, 256> table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int bit = 0; bit < 8; ++bit)
                c = (c >> 1) ^ ((c & 1) ? 0xedb88320u : 0u);
            t[i] = c;
        }
        return t;
    }();
    return table;
}

/** The byte string the record checksum covers. */
std::string
crcCoverage(const JournalRecord &rec)
{
    return csprintf("%016llx:%s:",
                    static_cast<unsigned long long>(rec.key),
                    rec.status.c_str()) +
           rec.payload;
}

/** Scan `n` hex digits at `pos`; false on any non-hex char. */
bool
parseHex(const std::string &s, std::size_t pos, std::size_t n,
         std::uint64_t &out)
{
    if (pos + n > s.size())
        return false;
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const char c = s[pos + i];
        v <<= 4;
        if (c >= '0' && c <= '9')
            v |= static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            v |= static_cast<std::uint64_t>(c - 'a' + 10);
        else
            return false;
    }
    out = v;
    return true;
}

/** Advance past `expect` at `pos`; false when the text differs. */
bool
expectAt(const std::string &s, std::size_t &pos, const char *expect)
{
    const std::size_t n = std::strlen(expect);
    if (s.compare(pos, n, expect) != 0)
        return false;
    pos += n;
    return true;
}

} // namespace

std::uint32_t
journalCrc32(const std::string &data)
{
    const auto &table = crcTable();
    std::uint32_t crc = 0xffffffffu;
    for (unsigned char c : data)
        crc = (crc >> 8) ^ table[(crc ^ c) & 0xffu];
    return crc ^ 0xffffffffu;
}

std::string
formatJournalLine(const JournalRecord &rec)
{
    return csprintf(
        "{\"key\":\"%016llx\",\"status\":\"%s\",\"crc\":\"%08x\","
        "\"payload\":",
        static_cast<unsigned long long>(rec.key), rec.status.c_str(),
        journalCrc32(crcCoverage(rec))) +
        rec.payload + "}";
}

bool
parseJournalLine(const std::string &line, JournalRecord &out)
{
    std::size_t pos = 0;
    if (!expectAt(line, pos, "{\"key\":\""))
        return false;

    std::uint64_t key = 0;
    if (!parseHex(line, pos, 16, key))
        return false;
    pos += 16;

    if (!expectAt(line, pos, "\",\"status\":\""))
        return false;
    const std::size_t status_end = line.find('"', pos);
    if (status_end == std::string::npos)
        return false;
    const std::string status = line.substr(pos, status_end - pos);
    pos = status_end;

    if (!expectAt(line, pos, "\",\"crc\":\""))
        return false;
    std::uint64_t crc = 0;
    if (!parseHex(line, pos, 8, crc))
        return false;
    pos += 8;

    if (!expectAt(line, pos, "\",\"payload\":"))
        return false;
    if (line.empty() || line.back() != '}' || pos >= line.size())
        return false;
    const std::string payload =
        line.substr(pos, line.size() - pos - 1);

    JournalRecord rec;
    rec.key = key;
    rec.status = status;
    rec.payload = payload;
    if (journalCrc32(crcCoverage(rec)) !=
        static_cast<std::uint32_t>(crc)) {
        return false;
    }
    out = std::move(rec);
    return true;
}

std::size_t
JournalReplay::find(std::uint64_t key) const
{
    for (std::size_t i = 0; i < records.size(); ++i) {
        if (records[i].key == key)
            return i;
    }
    return npos;
}

JournalReplay
loadJournal(const std::string &path)
{
    JournalReplay replay;

    // Open failure is NOT an empty journal: resuming against a wrong
    // path must fail loudly, not silently rerun everything. The stat
    // also rejects non-regular files — ifstream "opens" a directory
    // without error and would read it as an empty journal.
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
        throw IoError(csprintf("%s: cannot open journal: %s",
                               path.c_str(), std::strerror(errno)));
    }
    if (!S_ISREG(st.st_mode)) {
        throw IoError(csprintf("%s: journal is not a regular file",
                               path.c_str()));
    }

    std::ifstream in(path, std::ios::binary);
    if (!in) {
        throw IoError(csprintf("%s: cannot open journal: %s",
                               path.c_str(), std::strerror(errno)));
    }

    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    const bool ends_with_newline =
        !text.empty() && text.back() == '\n';

    std::size_t start = 0;
    while (start < text.size()) {
        std::size_t end = text.find('\n', start);
        const bool final_fragment = end == std::string::npos;
        if (final_fragment)
            end = text.size();
        const std::string line = text.substr(start, end - start);
        start = end + 1;
        if (line.empty())
            continue;
        ++replay.lines;

        JournalRecord rec;
        if (!parseJournalLine(line, rec)) {
            if (final_fragment && !ends_with_newline) {
                // A write torn by a crash mid-record: the job simply
                // reruns. Expected after a SIGKILL, so no warning.
                ++replay.truncated;
            } else {
                ++replay.corrupted;
                warn("journal %s: line %zu fails its checksum; "
                     "record dropped, its job will rerun",
                     path.c_str(), replay.lines);
            }
            continue;
        }

        const std::size_t existing = replay.find(rec.key);
        if (existing != JournalReplay::npos) {
            // Last write wins: a resumed campaign's rerun supersedes
            // the earlier record for the same job.
            replay.records[existing] = std::move(rec);
            ++replay.duplicates;
        } else {
            replay.records.push_back(std::move(rec));
        }
    }
    return replay;
}

JournalReplay
loadJournalIfPresent(const std::string &path)
{
    struct stat st;
    if (::stat(path.c_str(), &st) != 0 && errno == ENOENT)
        return JournalReplay{}; // no journal yet: a fresh campaign
    return loadJournal(path);
}

JournalWriter::JournalWriter(const std::string &path) : path_(path)
{
    file_ = std::fopen(path.c_str(), "ab");
    if (!file_) {
        throw IoError(csprintf("%s: open for append failed: %s",
                               path.c_str(), std::strerror(errno)));
    }
    flushHookId_ = registerFlushHook(
        "campaign-journal", [this] { flush(); });
}

JournalWriter::~JournalWriter()
{
    unregisterFlushHook(flushHookId_);
    if (file_) {
        try {
            flush();
        } catch (const IoError &e) {
            warn("%s", e.what());
        }
        std::fclose(file_);
    }
}

void
JournalWriter::append(const JournalRecord &rec)
{
    panicIf(rec.payload.find('\n') != std::string::npos,
            "journal payloads must be single-line JSON");
    const std::string line = formatJournalLine(rec) + "\n";

    std::lock_guard<std::mutex> lock(mutex_);
    dirty_ = true;
    if (std::fwrite(line.data(), 1, line.size(), file_) !=
        line.size()) {
        // Data may be half-buffered: arm the exit-path hook so a
        // subsequent fatal() still tries to drain what it can.
        armFlushHook(flushHookId_);
        throw IoError(csprintf("%s: journal append failed: %s",
                               path_.c_str(), std::strerror(errno)));
    }
    flushLocked();
    ++appended_;
}

void
JournalWriter::flush()
{
    std::lock_guard<std::mutex> lock(mutex_);
    flushLocked();
}

void
JournalWriter::flushLocked()
{
    if (!dirty_)
        return;
    const std::int64_t start =
        flushLatencyNs_ ? monotonicNanos() : 0;
    if (std::fflush(file_) != 0 || ::fsync(::fileno(file_)) != 0) {
        armFlushHook(flushHookId_);
        throw IoError(csprintf("%s: journal flush failed: %s",
                               path_.c_str(), std::strerror(errno)));
    }
    if (flushLatencyNs_) {
        flushLatencyNs_->sample(
            static_cast<std::uint64_t>(monotonicNanos() - start));
    }
    dirty_ = false;
}

} // namespace powerchop
