/**
 * @file
 * Write-ahead result journal for simulation campaigns.
 *
 * One record per line of JSONL:
 *
 *   {"key":"<16-hex>","status":"ok","crc":"<8-hex>","payload":{...}}
 *
 * `key` is the job's deterministic content key (campaign.hh), `status`
 * a terminal JobStatus name, and `payload` the job's SimResult JSON
 * (or an error-description object for non-ok records). `crc` is a
 * CRC-32 over "<key-hex>:<status>:<payload>", so a reader can tell a
 * record written completely from one torn by a crash or corrupted on
 * disk.
 *
 * The writer appends and fsyncs record-by-record (write-ahead: a job's
 * record is durable before the campaign counts it done). The reader
 * tolerates every torn-file shape a SIGKILL can produce: a truncated
 * final line is silently dropped (the job just reruns), an interior
 * line with a bad checksum is skipped with a warning, and duplicate
 * keys resolve last-write-wins (a rerun's record supersedes).
 */

#ifndef POWERCHOP_COMMON_JOURNAL_HH
#define POWERCHOP_COMMON_JOURNAL_HH

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "common/stats.hh"

namespace powerchop
{

/** One journal entry: a job's terminal state. */
struct JournalRecord
{
    /** Deterministic job content key (campaignJobKey()). */
    std::uint64_t key = 0;

    /** Terminal status name ("ok", "failed", "timed-out", ...). */
    std::string status;

    /** Single-line JSON payload: the SimResult for ok records, an
     *  error object otherwise. Must not contain newlines. */
    std::string payload;
};

/** CRC-32 (IEEE 802.3) of a byte string, as guarded by `crc`. */
std::uint32_t journalCrc32(const std::string &data);

/** Render one record as its JSONL line (no trailing newline). */
std::string formatJournalLine(const JournalRecord &rec);

/**
 * Parse one journal line. @return false when the line is torn or
 * corrupt (bad structure or checksum mismatch).
 */
bool parseJournalLine(const std::string &line, JournalRecord &out);

/** What loadJournal() recovered from a journal file. */
struct JournalReplay
{
    /** Valid records, deduplicated last-write-wins, in order of each
     *  key's first appearance. */
    std::vector<JournalRecord> records;

    std::size_t lines = 0;      ///< Physical lines seen.
    std::size_t corrupted = 0;  ///< Interior lines failing the CRC.
    std::size_t truncated = 0;  ///< Torn final line (0 or 1).
    std::size_t duplicates = 0; ///< Superseded earlier records.

    /** @return the index of `key` in records, or npos. */
    std::size_t find(std::uint64_t key) const;

    static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

/**
 * Read and validate a journal.
 *
 * A file that cannot be opened — missing, permission-denied, a
 * directory — throws IoError naming the path and errno text. This is
 * deliberately distinct from an *empty* journal (a valid, zero-record
 * replay): conflating the two once made `--resume` on a mistyped
 * directory silently re-run the whole campaign. Unreadable *content*
 * still degrades gracefully (corrupt lines are skipped, the torn
 * final line is dropped); only failure to open the file is loud.
 */
JournalReplay loadJournal(const std::string &path);

/**
 * Variant for call sites where "no journal yet" is an expected state
 * (a fresh campaign directory, a shard whose worker never started):
 * a missing file returns an empty replay; every other open failure
 * still throws IoError like loadJournal().
 */
JournalReplay loadJournalIfPresent(const std::string &path);

/**
 * Append-only journal writer with per-record durability.
 *
 * append() formats, writes and fsyncs one record before returning, so
 * a crash after append() returns can never lose that record. The
 * writer registers a logging flush hook armed while data is buffered,
 * making fatal()/panic() exit paths drain it exactly once.
 * Thread-safe: campaign workers append concurrently.
 */
class JournalWriter
{
  public:
    /** Open `path` for appending; throws IoError on failure. */
    explicit JournalWriter(const std::string &path);
    ~JournalWriter();

    JournalWriter(const JournalWriter &) = delete;
    JournalWriter &operator=(const JournalWriter &) = delete;

    /** Durably append one record (write + flush + fsync). Throws
     *  IoError if the record cannot be made durable. */
    void append(const JournalRecord &rec);

    /** Flush and fsync any buffered data (no-op when clean). */
    void flush();

    const std::string &path() const { return path_; }

    /** Records appended through this writer. */
    std::size_t appended() const { return appended_; }

    /**
     * Attach a latency histogram sampled (in nanoseconds) around
     * every durable flush — the fflush+fsync pair that dominates
     * write-ahead cost. The histogram must outlive the writer;
     * nullptr detaches. Observation only: no journal bytes change.
     */
    void setFlushLatencyHistogram(stats::Log2Histogram *hist)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        flushLatencyNs_ = hist;
    }

  private:
    void flushLocked();

    std::string path_;
    std::FILE *file_ = nullptr;
    std::mutex mutex_;
    bool dirty_ = false;
    std::size_t appended_ = 0;
    int flushHookId_ = 0;
    stats::Log2Histogram *flushLatencyNs_ = nullptr;
};

} // namespace powerchop

#endif // POWERCHOP_COMMON_JOURNAL_HH
