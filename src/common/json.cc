#include "common/json.hh"

#include <cctype>
#include <cstdlib>

#include "common/logging.hh"

namespace powerchop
{
namespace json
{

namespace
{

/** Nesting bound: deeper documents are rejected, not recursed into.
 *  Status snapshots nest 3-4 levels; 64 leaves generous headroom
 *  while keeping a corrupt or adversarial file from exhausting the
 *  parser's stack. */
constexpr unsigned kMaxDepth = 64;

struct Parser
{
    const std::string &text;
    std::size_t pos = 0;
    std::string error;

    explicit Parser(const std::string &t) : text(t) {}

    bool
    fail(const char *what)
    {
        if (error.empty())
            error = csprintf("%s at byte %zu", what, pos);
        return false;
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r')) {
            ++pos;
        }
    }

    bool
    consume(char c)
    {
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word)
    {
        std::size_t n = 0;
        while (word[n] != '\0')
            ++n;
        if (text.compare(pos, n, word) != 0)
            return false;
        pos += n;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"'))
            return fail("expected string");
        out.clear();
        while (pos < text.size()) {
            const char c = text[pos++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= text.size())
                return fail("truncated escape");
            const char esc = text[pos++];
            switch (esc) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case '/':
                out += '/';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                if (pos + 4 > text.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text[pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape");
                }
                // UTF-8 encode the code point (no surrogate-pair
                // recombination: the repo's emitters only escape
                // control bytes, which stay below U+0800).
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out += static_cast<char>(0x80 |
                                             ((code >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseValue(Value &out, unsigned depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        skipWs();
        if (pos >= text.size())
            return fail("unexpected end of document");

        const char c = text[pos];
        if (c == '{') {
            ++pos;
            std::vector<std::pair<std::string, Value>> members;
            skipWs();
            if (consume('}')) {
                out = Value::makeObject(std::move(members));
                return true;
            }
            while (true) {
                skipWs();
                std::string key;
                if (!parseString(key))
                    return false;
                skipWs();
                if (!consume(':'))
                    return fail("expected ':'");
                Value v;
                if (!parseValue(v, depth + 1))
                    return false;
                members.emplace_back(std::move(key), std::move(v));
                skipWs();
                if (consume(','))
                    continue;
                if (consume('}'))
                    break;
                return fail("expected ',' or '}'");
            }
            out = Value::makeObject(std::move(members));
            return true;
        }
        if (c == '[') {
            ++pos;
            std::vector<Value> elements;
            skipWs();
            if (consume(']')) {
                out = Value::makeArray(std::move(elements));
                return true;
            }
            while (true) {
                Value v;
                if (!parseValue(v, depth + 1))
                    return false;
                elements.push_back(std::move(v));
                skipWs();
                if (consume(','))
                    continue;
                if (consume(']'))
                    break;
                return fail("expected ',' or ']'");
            }
            out = Value::makeArray(std::move(elements));
            return true;
        }
        if (c == '"') {
            std::string s;
            if (!parseString(s))
                return false;
            out = Value::makeString(std::move(s));
            return true;
        }
        if (c == 't') {
            if (!literal("true"))
                return fail("bad literal");
            out = Value::makeBool(true);
            return true;
        }
        if (c == 'f') {
            if (!literal("false"))
                return fail("bad literal");
            out = Value::makeBool(false);
            return true;
        }
        if (c == 'n') {
            if (!literal("null"))
                return fail("bad literal");
            out = Value::makeNull();
            return true;
        }
        if (c == '-' || (c >= '0' && c <= '9')) {
            char *end = nullptr;
            const double d = std::strtod(text.c_str() + pos, &end);
            if (end == text.c_str() + pos)
                return fail("bad number");
            pos = static_cast<std::size_t>(end - text.c_str());
            out = Value::makeNumber(d);
            return true;
        }
        return fail("unexpected character");
    }
};

} // namespace

const std::string &
Value::emptyString()
{
    static const std::string empty;
    return empty;
}

const Value *
Value::find(const std::string &key) const
{
    if (!isObject())
        return nullptr;
    for (const auto &[k, v] : obj_) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

double
Value::getDouble(const std::string &key, double fallback) const
{
    const Value *v = find(key);
    return v ? v->asDouble(fallback) : fallback;
}

std::uint64_t
Value::getUint64(const std::string &key, std::uint64_t fallback) const
{
    const Value *v = find(key);
    return v ? v->asUint64(fallback) : fallback;
}

std::string
Value::getString(const std::string &key,
                 const std::string &fallback) const
{
    const Value *v = find(key);
    return v ? v->asString(fallback) : fallback;
}

bool
Value::getBool(const std::string &key, bool fallback) const
{
    const Value *v = find(key);
    return v ? v->asBool(fallback) : fallback;
}

Value
Value::makeBool(bool b)
{
    Value v;
    v.type_ = Type::Bool;
    v.bool_ = b;
    return v;
}

Value
Value::makeNumber(double d)
{
    Value v;
    v.type_ = Type::Number;
    v.num_ = d;
    return v;
}

Value
Value::makeString(std::string s)
{
    Value v;
    v.type_ = Type::String;
    v.str_ = std::move(s);
    return v;
}

Value
Value::makeArray(std::vector<Value> elements)
{
    Value v;
    v.type_ = Type::Array;
    v.arr_ = std::move(elements);
    return v;
}

Value
Value::makeObject(std::vector<std::pair<std::string, Value>> members)
{
    Value v;
    v.type_ = Type::Object;
    v.obj_ = std::move(members);
    return v;
}

bool
parse(const std::string &text, Value &out, std::string *error)
{
    Parser p(text);
    Value v;
    if (!p.parseValue(v, 0)) {
        if (error)
            *error = p.error;
        return false;
    }
    p.skipWs();
    if (p.pos != text.size()) {
        if (error)
            *error = csprintf("trailing garbage at byte %zu", p.pos);
        return false;
    }
    out = std::move(v);
    return true;
}

std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (c < 0x20)
                out += csprintf("\\u%04x", c);
            else
                out += static_cast<char>(c);
        }
    }
    return out;
}

} // namespace json
} // namespace powerchop
