/**
 * @file
 * A minimal JSON value model and recursive-descent parser.
 *
 * The repository writes JSON with purpose-built formatters (journal
 * lines, reports, status snapshots) but until now could only *read*
 * the rigid layouts it wrote itself (parseJournalLine's fixed field
 * order, verify's flat-JSON reader). The observability plane needs a
 * general reader: `powerchop status` parses snapshots written by any
 * campaign process, and tests parse flight-recorder dumps. This
 * parser covers the JSON subset those documents use — objects,
 * arrays, strings with the common escapes, doubles, bools, null —
 * with a depth limit so a corrupt file cannot recurse the stack away.
 *
 * Deliberately not a serializer: writers keep their explicit
 * csprintf-style formatting, which is what makes byte-identical
 * report guarantees auditable.
 */

#ifndef POWERCHOP_COMMON_JSON_HH
#define POWERCHOP_COMMON_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace powerchop
{
namespace json
{

/** A parsed JSON value (tree-owning, copyable). */
class Value
{
  public:
    enum class Type : std::uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    /** Typed accessors; the fallback is returned on type mismatch so
     *  readers of possibly-partial documents stay branch-light. @{ */
    bool asBool(bool fallback = false) const
    {
        return isBool() ? bool_ : fallback;
    }
    double asDouble(double fallback = 0.0) const
    {
        return isNumber() ? num_ : fallback;
    }
    std::uint64_t
    asUint64(std::uint64_t fallback = 0) const
    {
        // The upper bound guards the cast itself: converting a double
        // at or above 2^64 (including the Inf that strtod returns for
        // overflowed literals like 1e999) to uint64_t is undefined
        // behaviour, and wire-protocol inputs reach this path.
        return isNumber() && num_ >= 0 && num_ < 18446744073709551616.0
                   ? static_cast<std::uint64_t>(num_)
                   : fallback;
    }
    const std::string &
    asString(const std::string &fallback = emptyString()) const
    {
        return isString() ? str_ : fallback;
    }
    /** @} */

    /** Array elements ([] unless isArray()). */
    const std::vector<Value> &elements() const { return arr_; }

    /** Object members in document order ([] unless isObject()). */
    const std::vector<std::pair<std::string, Value>> &
    members() const
    {
        return obj_;
    }

    /** Member lookup; nullptr when absent or not an object. */
    const Value *find(const std::string &key) const;

    /** Convenience scalar lookups on an object. @{ */
    double getDouble(const std::string &key,
                     double fallback = 0.0) const;
    std::uint64_t getUint64(const std::string &key,
                            std::uint64_t fallback = 0) const;
    std::string getString(const std::string &key,
                          const std::string &fallback = "") const;
    bool getBool(const std::string &key, bool fallback = false) const;
    /** @} */

    /** Construction (used by the parser and by tests). @{ */
    static Value makeNull() { return Value(); }
    static Value makeBool(bool b);
    static Value makeNumber(double d);
    static Value makeString(std::string s);
    static Value makeArray(std::vector<Value> v);
    static Value
    makeObject(std::vector<std::pair<std::string, Value>> m);
    /** @} */

  private:
    static const std::string &emptyString();

    Type type_ = Type::Null;
    bool bool_ = false;
    double num_ = 0;
    std::string str_;
    std::vector<Value> arr_;
    std::vector<std::pair<std::string, Value>> obj_;
};

/**
 * Parse `text` as one JSON document.
 *
 * @param text  The document (trailing whitespace tolerated, trailing
 *              garbage rejected).
 * @param out   The parsed value on success.
 * @param error When non-null, receives a one-line diagnostic naming
 *              the byte offset on failure.
 * @return true on success.
 */
bool parse(const std::string &text, Value &out,
           std::string *error = nullptr);

/** JSON string escaping for emitters (quotes not included). */
std::string escape(const std::string &s);

} // namespace json
} // namespace powerchop

#endif // POWERCHOP_COMMON_JSON_HH
