#include "common/logging.hh"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace powerchop
{

namespace
{

std::atomic<bool> quietFlag{false};

/** Serializes warn()/inform() lines so messages emitted from the
 *  parallel job runner's workers never interleave mid-line. */
std::mutex &
outputMutex()
{
    static std::mutex m;
    return m;
}

} // namespace

void
setQuiet(bool q)
{
    quietFlag = q;
}

bool
quiet()
{
    return quietFlag;
}

std::string
vcsprintf(const char *fmt, std::va_list args)
{
    std::va_list args_copy;
    va_copy(args_copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (len < 0)
        return "<format error>";

    std::string out(static_cast<std::size_t>(len), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
    return out;
}

std::string
csprintf(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string out = vcsprintf(fmt, args);
    va_end(args);
    return out;
}

void
panic(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vcsprintf(fmt, args);
    va_end(args);
    throw PanicError("panic: " + msg);
}

void
fatal(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vcsprintf(fmt, args);
    va_end(args);
    throw FatalError("fatal: " + msg);
}

void
warn(const char *fmt, ...)
{
    if (quietFlag)
        return;
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vcsprintf(fmt, args);
    va_end(args);
    std::lock_guard<std::mutex> lock(outputMutex());
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    if (quietFlag)
        return;
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vcsprintf(fmt, args);
    va_end(args);
    std::lock_guard<std::mutex> lock(outputMutex());
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace powerchop
