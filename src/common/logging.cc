#include "common/logging.hh"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace powerchop
{

namespace
{

std::atomic<bool> quietFlag{false};

/** Serializes warn()/inform() lines so messages emitted from the
 *  parallel job runner's workers never interleave mid-line. */
std::mutex &
outputMutex()
{
    static std::mutex m;
    return m;
}

/**
 * Drain every buffered sink before an error leaves the library.
 *
 * A fatal()/panic() raised on a worker thread can unwind into a
 * caller that terminates the process (or the exception may escape and
 * abort it outright); anything still sitting in stdio buffers — a
 * half-printed results table, earlier warnings — would be lost.
 * fflush(nullptr) flushes every open output stream, so the error
 * message and all output preceding it are durable before the throw.
 */
void
flushAllSinks()
{
    std::fflush(nullptr);
}

} // namespace

void
setQuiet(bool q)
{
    quietFlag = q;
}

bool
quiet()
{
    return quietFlag;
}

std::string
vcsprintf(const char *fmt, std::va_list args)
{
    std::va_list args_copy;
    va_copy(args_copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (len < 0)
        return "<format error>";

    std::string out(static_cast<std::size_t>(len), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
    return out;
}

std::string
csprintf(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string out = vcsprintf(fmt, args);
    va_end(args);
    return out;
}

void
panic(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vcsprintf(fmt, args);
    va_end(args);
    {
        std::lock_guard<std::mutex> lock(outputMutex());
        if (!quietFlag)
            std::fprintf(stderr, "panic: %s\n", msg.c_str());
        flushAllSinks();
    }
    throw PanicError("panic: " + msg);
}

void
fatal(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vcsprintf(fmt, args);
    va_end(args);
    {
        std::lock_guard<std::mutex> lock(outputMutex());
        if (!quietFlag)
            std::fprintf(stderr, "fatal: %s\n", msg.c_str());
        flushAllSinks();
    }
    throw FatalError("fatal: " + msg);
}

void
warn(const char *fmt, ...)
{
    if (quietFlag)
        return;
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vcsprintf(fmt, args);
    va_end(args);
    std::lock_guard<std::mutex> lock(outputMutex());
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    if (quietFlag)
        return;
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vcsprintf(fmt, args);
    va_end(args);
    std::lock_guard<std::mutex> lock(outputMutex());
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace powerchop
