#include "common/logging.hh"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <mutex>
#include <utility>
#include <vector>

#include "common/clock.hh"

namespace powerchop
{

namespace
{

std::atomic<bool> quietFlag{false};

/** Serializes warn()/inform() lines so messages emitted from the
 *  parallel job runner's workers never interleave mid-line. */
std::mutex &
outputMutex()
{
    static std::mutex m;
    return m;
}

/**
 * Drain every buffered sink before an error leaves the library.
 *
 * A fatal()/panic() raised on a worker thread can unwind into a
 * caller that terminates the process (or the exception may escape and
 * abort it outright); anything still sitting in stdio buffers — a
 * half-printed results table, earlier warnings — would be lost.
 * fflush(nullptr) flushes every open output stream, so the error
 * message and all output preceding it are durable before the throw.
 */
void
flushAllSinks()
{
    std::fflush(nullptr);
}

/** One registered durable-sink flush hook. */
struct FlushHook
{
    int id = 0;
    std::string name;
    std::function<void()> fn;
    bool armed = false;
};

/** Hook registry state, guarded by its own mutex (never the output
 *  mutex: hooks run user code that may warn()). */
struct FlushHookRegistry
{
    std::mutex mutex;
    std::vector<FlushHook> hooks;
    int nextId = 1;
};

FlushHookRegistry &
flushHooks()
{
    static FlushHookRegistry r;
    return r;
}

} // namespace

int
registerFlushHook(const char *name, std::function<void()> fn)
{
    FlushHookRegistry &r = flushHooks();
    std::lock_guard<std::mutex> lock(r.mutex);
    FlushHook hook;
    hook.id = r.nextId++;
    hook.name = name;
    hook.fn = std::move(fn);
    r.hooks.push_back(std::move(hook));
    return r.hooks.back().id;
}

void
unregisterFlushHook(int id)
{
    FlushHookRegistry &r = flushHooks();
    std::lock_guard<std::mutex> lock(r.mutex);
    for (std::size_t i = 0; i < r.hooks.size(); ++i) {
        if (r.hooks[i].id == id) {
            r.hooks.erase(r.hooks.begin() +
                          static_cast<std::ptrdiff_t>(i));
            return;
        }
    }
}

void
armFlushHook(int id)
{
    FlushHookRegistry &r = flushHooks();
    std::lock_guard<std::mutex> lock(r.mutex);
    for (auto &hook : r.hooks) {
        if (hook.id == id) {
            hook.armed = true;
            return;
        }
    }
}

std::size_t
drainFlushHooks()
{
    // Claim the armed hooks under the lock, run them outside it: a
    // flush action may itself log, and a concurrent drain must not
    // run the same pending flush twice.
    std::vector<std::pair<std::string, std::function<void()>>> due;
    {
        FlushHookRegistry &r = flushHooks();
        std::lock_guard<std::mutex> lock(r.mutex);
        for (auto &hook : r.hooks) {
            if (hook.armed) {
                hook.armed = false;
                due.emplace_back(hook.name, hook.fn);
            }
        }
    }

    std::size_t ran = 0;
    for (auto &[name, fn] : due) {
        try {
            fn();
            ++ran;
        } catch (const std::exception &e) {
            std::fprintf(stderr,
                         "warn: flush hook '%s' failed: %s\n",
                         name.c_str(), e.what());
        } catch (...) {
            std::fprintf(stderr, "warn: flush hook '%s' failed\n",
                         name.c_str());
        }
    }
    return ran;
}

LogRateLimiter::LogRateLimiter(double ratePerSecond, double burst)
    : ratePerSecond_(std::max(ratePerSecond, 0.0)),
      burst_(std::max(burst, 1.0)), tokens_(burst_),
      lastRefill_(monotonicSeconds())
{
}

bool
LogRateLimiter::allow()
{
    std::lock_guard<std::mutex> lock(mutex_);
    const double now = monotonicSeconds();
    tokens_ = std::min(
        burst_, tokens_ + (now - lastRefill_) * ratePerSecond_);
    lastRefill_ = now;
    if (tokens_ >= 1.0) {
        tokens_ -= 1.0;
        return true;
    }
    ++suppressed_;
    return false;
}

std::uint64_t
LogRateLimiter::suppressed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return suppressed_;
}

std::uint64_t
LogRateLimiter::takeSuppressed()
{
    std::lock_guard<std::mutex> lock(mutex_);
    const std::uint64_t n = suppressed_;
    suppressed_ = 0;
    return n;
}

namespace
{

/** Shared body of warnLimited()/informLimited(). */
void
limitedVlog(const char *prefix, LogRateLimiter &limiter,
            const char *fmt, std::va_list args)
{
    if (quiet())
        return;
    if (!limiter.allow())
        return;
    std::string msg = vcsprintf(fmt, args);
    const std::uint64_t dropped = limiter.takeSuppressed();
    if (dropped > 0) {
        msg += csprintf(" (%llu suppressed)",
                        static_cast<unsigned long long>(dropped));
    }
    std::lock_guard<std::mutex> lock(outputMutex());
    std::fprintf(stderr, "%s: %s\n", prefix, msg.c_str());
}

} // namespace

void
warnLimited(LogRateLimiter &limiter, const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    limitedVlog("warn", limiter, fmt, args);
    va_end(args);
}

void
informLimited(LogRateLimiter &limiter, const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    limitedVlog("info", limiter, fmt, args);
    va_end(args);
}

void
setQuiet(bool q)
{
    quietFlag = q;
}

bool
quiet()
{
    return quietFlag;
}

std::string
vcsprintf(const char *fmt, std::va_list args)
{
    std::va_list args_copy;
    va_copy(args_copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (len < 0)
        return "<format error>";

    std::string out(static_cast<std::size_t>(len), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
    return out;
}

std::string
csprintf(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string out = vcsprintf(fmt, args);
    va_end(args);
    return out;
}

void
panic(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vcsprintf(fmt, args);
    va_end(args);
    drainFlushHooks();
    {
        std::lock_guard<std::mutex> lock(outputMutex());
        if (!quietFlag)
            std::fprintf(stderr, "panic: %s\n", msg.c_str());
        flushAllSinks();
    }
    throw PanicError("panic: " + msg);
}

void
fatal(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vcsprintf(fmt, args);
    va_end(args);
    drainFlushHooks();
    {
        std::lock_guard<std::mutex> lock(outputMutex());
        if (!quietFlag)
            std::fprintf(stderr, "fatal: %s\n", msg.c_str());
        flushAllSinks();
    }
    throw FatalError("fatal: " + msg);
}

void
warn(const char *fmt, ...)
{
    if (quietFlag)
        return;
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vcsprintf(fmt, args);
    va_end(args);
    std::lock_guard<std::mutex> lock(outputMutex());
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    if (quietFlag)
        return;
    std::va_list args;
    va_start(args, fmt);
    std::string msg = vcsprintf(fmt, args);
    va_end(args);
    std::lock_guard<std::mutex> lock(outputMutex());
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace powerchop
