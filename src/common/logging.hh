/**
 * @file
 * Error-reporting and status-message primitives in the gem5 idiom.
 *
 * panic()  — an internal invariant was violated (a simulator bug).
 * fatal()  — the simulation cannot continue because of user input
 *            (bad configuration, invalid arguments).
 * warn()   — something works, but approximately; worth knowing about.
 * inform() — normal operating status messages.
 *
 * Unlike gem5, panic() and fatal() throw typed exceptions instead of
 * aborting the process; a library embedded in tests and long-running
 * tools must leave termination policy to the caller. Both report the
 * message to stderr and flush every buffered sink before throwing, so
 * errors raised on worker threads survive even if the exception later
 * escapes and aborts the process.
 */

#ifndef POWERCHOP_COMMON_LOGGING_HH
#define POWERCHOP_COMMON_LOGGING_HH

#include <cstdarg>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>

namespace powerchop
{

/** Error thrown by panic(): an internal simulator invariant failed. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Error thrown by fatal(): user-caused misconfiguration. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

/**
 * Format a printf-style message into a std::string.
 *
 * @param fmt printf-style format string.
 * @return The formatted message.
 */
std::string csprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Variant of csprintf() taking a va_list. */
std::string vcsprintf(const char *fmt, std::va_list args);

/**
 * Report an internal simulator bug and throw PanicError.
 * Never returns.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report a user-caused fatal condition and throw FatalError.
 * Never returns.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr. Execution continues. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message to stderr. Execution continues. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Globally silence warn()/inform() output (used by tests/benches). */
void setQuiet(bool quiet);

/** @return true if warn()/inform() output is currently suppressed. */
bool quiet();

/**
 * Register a durable-sink flush hook.
 *
 * Buffered sinks that must survive an abnormal exit (the campaign
 * journal, trace/metrics writers with pending data) register a hook
 * here. fatal(), panic() and the campaign's interrupted-exit path
 * call drainFlushHooks() before reporting, so buffered records reach
 * disk ahead of any throw/exit.
 *
 * A hook starts disarmed and only runs while armed: the owner arms it
 * when (and only when) it has unflushed data and the drain disarms it
 * before running it, so each pending flush happens exactly once even
 * when fatal() fires on the signal path right after an explicit
 * drain — the second drain sees a disarmed hook and skips it.
 *
 * @param name Diagnostic label (reported if the hook itself throws).
 * @param fn   The flush action; must not call fatal()/panic().
 * @return an id for armFlushHook()/unregisterFlushHook().
 */
int registerFlushHook(const char *name, std::function<void()> fn);

/** Remove a hook (the owner's sink is closing). Unknown ids are
 *  ignored so owners can unregister unconditionally in destructors. */
void unregisterFlushHook(int id);

/** Mark a hook as having unflushed data. */
void armFlushHook(int id);

/**
 * Run every armed flush hook exactly once (disarming each first).
 * A hook that throws is reported to stderr and skipped; the drain
 * continues so one broken sink cannot block the others.
 *
 * @return the number of hooks that ran.
 */
std::size_t drainFlushHooks();

/**
 * A token-bucket rate limiter for per-site log throttling.
 *
 * A retry storm, a crash-restart loop or a hot progress callback can
 * emit log lines far faster than anyone reads them; unbounded volume
 * also makes the interesting line (the first one) hard to find. Call
 * sites construct one limiter per message site (usually a function-
 * local static) and route through warnLimited()/informLimited():
 * messages over the budget are counted instead of printed, and the
 * next printed message carries a "(N suppressed)" suffix so the
 * volume that was dropped stays visible.
 *
 * Time comes from the monotonic clock (clock.hh) — a wall-clock step
 * must not open or close the budget. Thread-safe.
 */
class LogRateLimiter
{
  public:
    /**
     * @param ratePerSecond Sustained messages per second allowed.
     * @param burst         Bucket capacity: messages allowed at once
     *                      after a quiet period.
     */
    LogRateLimiter(double ratePerSecond, double burst);

    /** Take one token. @return true when the message may print. */
    bool allow();

    /** Messages suppressed since the last printed one. */
    std::uint64_t suppressed() const;

    /** @return the suppressed count, resetting it to zero. */
    std::uint64_t takeSuppressed();

  private:
    mutable std::mutex mutex_;
    double ratePerSecond_;
    double burst_;
    double tokens_;
    double lastRefill_;
    std::uint64_t suppressed_ = 0;
};

/** warn() through a rate limiter: over-budget messages are counted,
 *  and the next printed one reports "(N suppressed)". */
void warnLimited(LogRateLimiter &limiter, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/** inform() through a rate limiter (see warnLimited()). */
void informLimited(LogRateLimiter &limiter, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/**
 * panic() unless the given condition holds.
 *
 * A function (not a macro) so call sites stay expression-like; the
 * message should describe the violated invariant.
 */
inline void
panicIf(bool condition, const char *msg)
{
    if (condition)
        panic("%s", msg);
}

} // namespace powerchop

#endif // POWERCHOP_COMMON_LOGGING_HH
