#include "common/malloc_tuning.hh"

#include <cstdlib>
#include <cstring>
#include <mutex>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

namespace powerchop
{

namespace
{

bool
tuningDisabledByEnv()
{
    const char *v = std::getenv("POWERCHOP_NO_MALLOC_TUNING");
    return v && *v && std::strcmp(v, "0") != 0;
}

void
applyTuning()
{
    if (tuningDisabledByEnv())
        return;
#if defined(__GLIBC__)
    // Keep per-job table allocations (predictors, cache line arrays)
    // on the heap and resident across jobs instead of handing them
    // back to the kernel after every simulate() call. 64 MiB is far
    // above any single table yet small against the simulator's
    // steady-state footprint.
    constexpr int keep_bytes = 64 * 1024 * 1024;
    mallopt(M_TRIM_THRESHOLD, keep_bytes);
    mallopt(M_MMAP_THRESHOLD, keep_bytes);
#endif
}

} // namespace

void
tuneAllocatorForSimulation()
{
    static std::once_flag once;
    std::call_once(once, applyTuning);
}

} // namespace powerchop
