/**
 * @file
 * Process-level allocator tuning for simulation workloads.
 *
 * Every simulate() call builds and tears down ~1.5 MB of predictor
 * and cache tables. With glibc's default thresholds those blocks are
 * returned to the kernel on free (heap trim / mmap churn), so the
 * next job re-faults every page: construction measures 4-6x slower
 * than the actual table-fill work. Raising the trim and mmap
 * thresholds keeps the pages resident between jobs.
 *
 * Allocator tuning never affects simulation semantics — results are
 * bit-identical with or without it. Set POWERCHOP_NO_MALLOC_TUNING=1
 * to leave the allocator at its defaults.
 */

#ifndef POWERCHOP_COMMON_MALLOC_TUNING_HH
#define POWERCHOP_COMMON_MALLOC_TUNING_HH

namespace powerchop
{

/**
 * Apply the simulation-friendly allocator thresholds once per
 * process (subsequent calls are no-ops). Safe to call from any
 * thread; no-op on non-glibc platforms or when
 * POWERCHOP_NO_MALLOC_TUNING is set to a non-zero value.
 */
void tuneAllocatorForSimulation();

} // namespace powerchop

#endif // POWERCHOP_COMMON_MALLOC_TUNING_HH
