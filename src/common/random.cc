#include "common/random.hh"

#include <cmath>

#include "common/logging.hh"

namespace powerchop
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace

Rng::Rng(std::uint64_t s)
{
    seed(s);
}

void
Rng::seed(std::uint64_t s)
{
    for (auto &word : state_)
        word = splitmix64(s);
}

void
Rng::belowZeroBound()
{
    panic("Rng::below called with zero bound");
}

std::int64_t
Rng::range(std::int64_t lo, std::int64_t hi)
{
    if (lo > hi)
        panic("Rng::range called with lo > hi");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
}

double
Rng::normal(double mean, double stddev)
{
    // Irwin-Hall with n = 3: variance of the sum is 3/12 = 1/4, so the
    // sum of three uniforms minus 1.5 has stddev 0.5.
    double s = uniform() + uniform() + uniform() - 1.5;
    return mean + stddev * (s / 0.5);
}

std::uint64_t
Rng::burstLength(double p, std::uint64_t max)
{
    std::uint64_t n = 1;
    while (n < max && bernoulli(p))
        ++n;
    return n;
}

} // namespace powerchop
