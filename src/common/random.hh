/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * All randomness in the simulator flows through Rng so that every
 * experiment is exactly reproducible from a seed. The generator is
 * xoshiro256** (public domain, Blackman & Vigna), which is fast and has
 * excellent statistical quality for simulation purposes.
 */

#ifndef POWERCHOP_COMMON_RANDOM_HH
#define POWERCHOP_COMMON_RANDOM_HH

#include <array>
#include <cstdint>

namespace powerchop
{

/**
 * Deterministic random number generator (xoshiro256**).
 *
 * Seeding uses splitmix64 so that small or correlated seeds still
 * produce well-distributed state.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed. The same seed always produces the
     *  same sequence. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** @return the next raw 64-bit value. Inline: every dynamic
     *  memory address and branch outcome draws through here, so the
     *  generator must fold into its callers. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;

        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);

        return result;
    }

    /** @return a uniformly distributed double in [0, 1). */
    double
    uniform()
    {
        // 53 random mantissa bits -> double in [0, 1).
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** @return a uniformly distributed integer in [0, bound). bound
     *  must be non-zero. Inline: the address streams' random-access
     *  path draws through here. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        if (bound == 0)
            belowZeroBound();
        // Multiply-shift bounded generation (Lemire); bias is
        // negligible for simulation bounds (< 2^32).
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** @return a uniformly distributed integer in [lo, hi]. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** @return true with probability p (clamped to [0, 1]). */
    bool
    bernoulli(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return uniform() < p;
    }

    /**
     * Approximately normal variate via the sum of three uniforms
     * (Irwin-Hall), adequate for jittering workload parameters.
     *
     * @param mean   Distribution mean.
     * @param stddev Distribution standard deviation.
     */
    double normal(double mean, double stddev);

  private:
    /** Out-of-line panic keeps below() small enough to inline. */
    [[noreturn]] static void belowZeroBound();

  public:

    /**
     * Geometric-ish burst length: number of trials until first failure
     * with continue-probability p, capped at max.
     */
    std::uint64_t burstLength(double p, std::uint64_t max);

    /** Re-seed the generator. */
    void seed(std::uint64_t seed);

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> state_;
};

} // namespace powerchop

#endif // POWERCHOP_COMMON_RANDOM_HH
