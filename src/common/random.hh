/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * All randomness in the simulator flows through Rng so that every
 * experiment is exactly reproducible from a seed. The generator is
 * xoshiro256** (public domain, Blackman & Vigna), which is fast and has
 * excellent statistical quality for simulation purposes.
 */

#ifndef POWERCHOP_COMMON_RANDOM_HH
#define POWERCHOP_COMMON_RANDOM_HH

#include <array>
#include <cstdint>

namespace powerchop
{

/**
 * Deterministic random number generator (xoshiro256**).
 *
 * Seeding uses splitmix64 so that small or correlated seeds still
 * produce well-distributed state.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed. The same seed always produces the
     *  same sequence. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** @return the next raw 64-bit value. */
    std::uint64_t next();

    /** @return a uniformly distributed double in [0, 1). */
    double uniform();

    /** @return a uniformly distributed integer in [0, bound). bound
     *  must be non-zero. */
    std::uint64_t below(std::uint64_t bound);

    /** @return a uniformly distributed integer in [lo, hi]. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** @return true with probability p (clamped to [0, 1]). */
    bool bernoulli(double p);

    /**
     * Approximately normal variate via the sum of three uniforms
     * (Irwin-Hall), adequate for jittering workload parameters.
     *
     * @param mean   Distribution mean.
     * @param stddev Distribution standard deviation.
     */
    double normal(double mean, double stddev);

    /**
     * Geometric-ish burst length: number of trials until first failure
     * with continue-probability p, capped at max.
     */
    std::uint64_t burstLength(double p, std::uint64_t max);

    /** Re-seed the generator. */
    void seed(std::uint64_t seed);

  private:
    std::array<std::uint64_t, 4> state_;
};

} // namespace powerchop

#endif // POWERCHOP_COMMON_RANDOM_HH
