/**
 * @file
 * Saturating counter, the basic storage element of branch predictors
 * and approximate-LRU replacement state.
 */

#ifndef POWERCHOP_COMMON_SAT_COUNTER_HH
#define POWERCHOP_COMMON_SAT_COUNTER_HH

#include <cstdint>

#include "common/logging.hh"

namespace powerchop
{

/**
 * An n-bit saturating up/down counter.
 *
 * The counter saturates at [0, 2^bits - 1]. For a 2-bit predictor
 * counter the conventional "predict taken" reading is the top half of
 * the range (values >= 2).
 */
class SatCounter
{
  public:
    /**
     * @param bits    Counter width in bits (1..8).
     * @param initial Initial counter value (clamped to range).
     */
    explicit SatCounter(unsigned bits = 2, unsigned initial = 0)
        : maxVal_((1u << bits) - 1),
          val_(initial > maxVal_ ? maxVal_ : initial)
    {
        if (bits == 0 || bits > 8)
            panic("SatCounter width %u out of range", bits);
    }

    /** Increment, saturating at the maximum. */
    void
    increment()
    {
        if (val_ < maxVal_)
            ++val_;
    }

    /** Decrement, saturating at zero. */
    void
    decrement()
    {
        if (val_ > 0)
            --val_;
    }

    /** @return the raw counter value. */
    unsigned value() const { return val_; }

    /** @return the saturation maximum. */
    unsigned maxValue() const { return maxVal_; }

    /** @return true if the counter is in its upper half ("taken"). */
    bool isSet() const { return val_ > maxVal_ / 2; }

    /** Reset to a given value (clamped). */
    void
    reset(unsigned v = 0)
    {
        val_ = v > maxVal_ ? maxVal_ : v;
    }

  private:
    unsigned maxVal_;
    unsigned val_;
};

} // namespace powerchop

#endif // POWERCHOP_COMMON_SAT_COUNTER_HH
