/**
 * @file
 * Saturating counter, the basic storage element of branch predictors
 * and approximate-LRU replacement state.
 */

#ifndef POWERCHOP_COMMON_SAT_COUNTER_HH
#define POWERCHOP_COMMON_SAT_COUNTER_HH

#include <cstdint>

#include "common/logging.hh"

namespace powerchop
{

/**
 * An n-bit saturating up/down counter.
 *
 * The counter saturates at [0, 2^bits - 1]. For a 2-bit predictor
 * counter the conventional "predict taken" reading is the top half of
 * the range (values >= 2).
 */
class SatCounter
{
  public:
    /**
     * @param bits    Counter width in bits (1..8).
     * @param initial Initial counter value (clamped to range).
     */
    explicit SatCounter(unsigned bits = 2, unsigned initial = 0)
        : maxVal_(static_cast<std::uint8_t>((1u << bits) - 1)),
          val_(static_cast<std::uint8_t>(
              initial > maxVal_ ? maxVal_ : initial))
    {
        if (bits == 0 || bits > 8)
            panic("SatCounter width %u out of range", bits);
    }

    /** Increment, saturating at the maximum. */
    void
    increment()
    {
        if (val_ < maxVal_)
            ++val_;
    }

    /** Decrement, saturating at zero. */
    void
    decrement()
    {
        if (val_ > 0)
            --val_;
    }

    /** @return the raw counter value. */
    unsigned value() const { return val_; }

    /** @return the saturation maximum. */
    unsigned maxValue() const { return maxVal_; }

    /** @return true if the counter is in its upper half ("taken"). */
    bool isSet() const { return val_ > maxVal_ / 2; }

    // Predictor tables hold tens of thousands of these, so the
    // counter packs into two bytes: 4x denser tables construct
    // faster and stay hotter in the host cache.

    /** Reset to a given value (clamped). */
    void
    reset(unsigned v = 0)
    {
        val_ = static_cast<std::uint8_t>(v > maxVal_ ? maxVal_ : v);
    }

  private:
    std::uint8_t maxVal_;
    std::uint8_t val_;
};

} // namespace powerchop

#endif // POWERCHOP_COMMON_SAT_COUNTER_HH
