#include "common/stats.hh"

#include <sstream>

#include "common/logging.hh"

namespace powerchop
{
namespace stats
{

Distribution::Distribution(double min, double max, unsigned buckets)
    : min_(min), max_(max),
      bucketWidth_((max - min) / (buckets ? buckets : 1)),
      buckets_(buckets, 0)
{
    if (buckets == 0)
        panic("Distribution requires at least one bucket");
    if (max <= min)
        panic("Distribution requires max > min");
}

void
Distribution::sample(double v)
{
    ++samples_;
    sum_ += v;
    if (v < min_) {
        ++underflow_;
        ++buckets_.front();
    } else if (v >= max_) {
        ++overflow_;
        ++buckets_.back();
    } else {
        auto idx = static_cast<std::size_t>((v - min_) / bucketWidth_);
        if (idx >= buckets_.size())
            idx = buckets_.size() - 1;
        ++buckets_[idx];
    }
}

std::uint64_t
Distribution::bucketCount(unsigned i) const
{
    if (i >= buckets_.size())
        panic("Distribution bucket index %u out of range", i);
    return buckets_[i];
}

double
Distribution::mean() const
{
    return samples_ ? sum_ / static_cast<double>(samples_) : 0.0;
}

double
Distribution::percentile(double p) const
{
    if (!(p >= 0.0 && p <= 1.0))
        panic("Distribution percentile %f outside [0, 1]", p);
    if (samples_ == 0)
        panic("Distribution percentile of an empty distribution");
    const double target = p * static_cast<double>(samples_);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        seen += buckets_[i];
        if (static_cast<double>(seen) >= target)
            return min_ + bucketWidth_ * static_cast<double>(i + 1);
    }
    return max_;
}

void
Distribution::reset()
{
    for (auto &b : buckets_)
        b = 0;
    samples_ = 0;
    underflow_ = 0;
    overflow_ = 0;
    sum_ = 0.0;
}

Log2Histogram &
Log2Histogram::operator=(const Log2Histogram &other)
{
    if (this == &other)
        return *this;
    for (unsigned i = 0; i < kBuckets; ++i) {
        buckets_[i].store(
            other.buckets_[i].load(std::memory_order_relaxed),
            std::memory_order_relaxed);
    }
    samples_.store(other.samples_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    sum_.store(other.sum_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
    return *this;
}

unsigned
Log2Histogram::bucketIndex(std::uint64_t v)
{
    if (v == 0)
        return 0;
    // floor(log2 v) + 1 == the bit width of v.
    unsigned width = 0;
    while (v != 0) {
        ++width;
        v >>= 1;
    }
    return width < kBuckets ? width : kBuckets - 1;
}

std::uint64_t
Log2Histogram::bucketLow(unsigned i)
{
    if (i <= 1)
        return 0;
    return std::uint64_t{1} << (i - 1);
}

std::uint64_t
Log2Histogram::bucketHigh(unsigned i)
{
    if (i == 0)
        return 1;
    if (i >= kBuckets - 1)
        return ~std::uint64_t{0};
    return std::uint64_t{1} << i;
}

void
Log2Histogram::sample(std::uint64_t v)
{
    buckets_[bucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    samples_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
}

std::uint64_t
Log2Histogram::bucketCount(unsigned i) const
{
    if (i >= kBuckets)
        panic("Log2Histogram bucket index %u out of range", i);
    return buckets_[i].load(std::memory_order_relaxed);
}

std::uint64_t
Log2Histogram::samples() const
{
    return samples_.load(std::memory_order_relaxed);
}

std::uint64_t
Log2Histogram::sum() const
{
    return sum_.load(std::memory_order_relaxed);
}

double
Log2Histogram::mean() const
{
    const std::uint64_t n = samples();
    return n ? static_cast<double>(sum()) / static_cast<double>(n)
             : 0.0;
}

double
Log2Histogram::quantile(double q) const
{
    // Written as !(in-range) so a NaN q is rejected too: NaN compares
    // false against both bounds, and a NaN target would fall through
    // the bucket walk and report the top bucket bound (~1.8e19) as a
    // "quantile".
    if (!(q >= 0.0 && q <= 1.0))
        panic("Log2Histogram quantile %f outside [0, 1]", q);
    // Quantiles over a snapshot of the buckets: a concurrent sampler
    // may land between the loads, which only perturbs an already
    // approximate answer. The snapshot's own total (not samples_) is
    // the denominator so the walk always terminates inside it.
    std::array<std::uint64_t, kBuckets> counts;
    std::uint64_t total = 0;
    for (unsigned i = 0; i < kBuckets; ++i) {
        counts[i] = buckets_[i].load(std::memory_order_relaxed);
        total += counts[i];
    }
    if (total == 0)
        return 0.0;

    const double target = q * static_cast<double>(total);
    std::uint64_t seen = 0;
    for (unsigned i = 0; i < kBuckets; ++i) {
        if (counts[i] == 0)
            continue;
        if (static_cast<double>(seen + counts[i]) >= target) {
            // Linear interpolation inside the bucket keeps the
            // function monotone in q and the answer within the
            // bucket's bounds.
            const double lo = static_cast<double>(bucketLow(i));
            const double hi = static_cast<double>(bucketHigh(i));
            const double frac = counts[i]
                ? (target - static_cast<double>(seen)) /
                      static_cast<double>(counts[i])
                : 0.0;
            const double f = frac < 0.0 ? 0.0 : (frac > 1.0 ? 1.0 : frac);
            return lo + (hi - lo) * f;
        }
        seen += counts[i];
    }
    return static_cast<double>(bucketHigh(kBuckets - 1));
}

Quantiles
Log2Histogram::quantiles(double scale) const
{
    Quantiles q;
    q.samples = samples();
    if (q.samples == 0)
        return q;
    q.p50 = quantile(0.50) * scale;
    q.p90 = quantile(0.90) * scale;
    q.p99 = quantile(0.99) * scale;
    return q;
}

void
Log2Histogram::merge(const Log2Histogram &other)
{
    for (unsigned i = 0; i < kBuckets; ++i) {
        const std::uint64_t n =
            other.buckets_[i].load(std::memory_order_relaxed);
        if (n)
            buckets_[i].fetch_add(n, std::memory_order_relaxed);
    }
    samples_.fetch_add(
        other.samples_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
}

void
Log2Histogram::reset()
{
    for (auto &b : buckets_)
        b.store(0, std::memory_order_relaxed);
    samples_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
}

void
Group::addScalar(const std::string &name, const Scalar *s)
{
    scalars_[name] = s;
}

void
Group::addAverage(const std::string &name, const Average *a)
{
    averages_[name] = a;
}

std::string
Group::dump() const
{
    std::ostringstream out;
    for (const auto &[name, s] : scalars_)
        out << name_ << "." << name << " " << s->value() << "\n";
    for (const auto &[name, a] : averages_)
        out << name_ << "." << name << " " << a->mean() << "\n";
    return out.str();
}

std::string
Group::toJson() const
{
    std::string out = "{";
    bool first = true;
    for (const auto &[name, s] : scalars_) {
        out += csprintf("%s\"%s.%s\":%llu", first ? "" : ",",
                        name_.c_str(), name.c_str(),
                        static_cast<unsigned long long>(s->value()));
        first = false;
    }
    for (const auto &[name, a] : averages_) {
        out += csprintf("%s\"%s.%s\":%.10g", first ? "" : ",",
                        name_.c_str(), name.c_str(), a->mean());
        first = false;
    }
    out += "}";
    return out;
}

} // namespace stats
} // namespace powerchop
