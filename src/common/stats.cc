#include "common/stats.hh"

#include <sstream>

#include "common/logging.hh"

namespace powerchop
{
namespace stats
{

Distribution::Distribution(double min, double max, unsigned buckets)
    : min_(min), max_(max),
      bucketWidth_((max - min) / (buckets ? buckets : 1)),
      buckets_(buckets, 0)
{
    if (buckets == 0)
        panic("Distribution requires at least one bucket");
    if (max <= min)
        panic("Distribution requires max > min");
}

void
Distribution::sample(double v)
{
    ++samples_;
    sum_ += v;
    if (v < min_) {
        ++underflow_;
        ++buckets_.front();
    } else if (v >= max_) {
        ++overflow_;
        ++buckets_.back();
    } else {
        auto idx = static_cast<std::size_t>((v - min_) / bucketWidth_);
        if (idx >= buckets_.size())
            idx = buckets_.size() - 1;
        ++buckets_[idx];
    }
}

std::uint64_t
Distribution::bucketCount(unsigned i) const
{
    if (i >= buckets_.size())
        panic("Distribution bucket index %u out of range", i);
    return buckets_[i];
}

double
Distribution::mean() const
{
    return samples_ ? sum_ / static_cast<double>(samples_) : 0.0;
}

double
Distribution::percentile(double p) const
{
    if (p < 0.0 || p > 1.0)
        panic("Distribution percentile %f outside [0, 1]", p);
    if (samples_ == 0)
        panic("Distribution percentile of an empty distribution");
    const double target = p * static_cast<double>(samples_);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        seen += buckets_[i];
        if (static_cast<double>(seen) >= target)
            return min_ + bucketWidth_ * static_cast<double>(i + 1);
    }
    return max_;
}

void
Distribution::reset()
{
    for (auto &b : buckets_)
        b = 0;
    samples_ = 0;
    underflow_ = 0;
    overflow_ = 0;
    sum_ = 0.0;
}

void
Group::addScalar(const std::string &name, const Scalar *s)
{
    scalars_[name] = s;
}

void
Group::addAverage(const std::string &name, const Average *a)
{
    averages_[name] = a;
}

std::string
Group::dump() const
{
    std::ostringstream out;
    for (const auto &[name, s] : scalars_)
        out << name_ << "." << name << " " << s->value() << "\n";
    for (const auto &[name, a] : averages_)
        out << name_ << "." << name << " " << a->mean() << "\n";
    return out.str();
}

std::string
Group::toJson() const
{
    std::string out = "{";
    bool first = true;
    for (const auto &[name, s] : scalars_) {
        out += csprintf("%s\"%s.%s\":%llu", first ? "" : ",",
                        name_.c_str(), name.c_str(),
                        static_cast<unsigned long long>(s->value()));
        first = false;
    }
    for (const auto &[name, a] : averages_) {
        out += csprintf("%s\"%s.%s\":%.10g", first ? "" : ",",
                        name_.c_str(), name.c_str(), a->mean());
        first = false;
    }
    out += "}";
    return out;
}

} // namespace stats
} // namespace powerchop
