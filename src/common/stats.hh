/**
 * @file
 * Lightweight statistics package.
 *
 * Models the small subset of the gem5 stats package the simulator
 * needs: named scalar counters, averages and distributions that can be
 * registered in a group, dumped as text, and reset between simulation
 * windows (the Criticality Decision Engine profiles phases by sampling
 * these counters at window boundaries).
 */

#ifndef POWERCHOP_COMMON_STATS_HH
#define POWERCHOP_COMMON_STATS_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace powerchop
{
namespace stats
{

/** A named monotonically increasing scalar counter. */
class Scalar
{
  public:
    Scalar() = default;

    Scalar &operator++() { ++value_; return *this; }
    Scalar &operator+=(std::uint64_t n) { value_ += n; return *this; }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** A running mean of sampled values. */
class Average
{
  public:
    /** Record one sample. */
    void
    sample(double v)
    {
        sum_ += v;
        ++count_;
    }

    /** @return the mean of all samples, or 0 if none. */
    double
    mean() const
    {
        return count_ ? sum_ / static_cast<double>(count_) : 0.0;
    }

    double sum() const { return sum_; }
    std::uint64_t count() const { return count_; }

    void
    reset()
    {
        sum_ = 0.0;
        count_ = 0;
    }

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
};

/** A fixed-bucket histogram over [min, max). */
class Distribution
{
  public:
    /**
     * @param min     Low edge of the first bucket.
     * @param max     High edge of the last bucket.
     * @param buckets Number of equal-width buckets.
     */
    Distribution(double min, double max, unsigned buckets);

    /** Record one sample; out-of-range samples land in the edge
     *  buckets and are counted in underflow/overflow. */
    void sample(double v);

    std::uint64_t bucketCount(unsigned i) const;
    unsigned numBuckets() const { return buckets_.size(); }
    std::uint64_t totalSamples() const { return samples_; }
    std::uint64_t underflows() const { return underflow_; }
    std::uint64_t overflows() const { return overflow_; }
    double mean() const;

    /**
     * Approximate percentile from the histogram.
     *
     * Walks the buckets until the cumulative count reaches p of all
     * samples and returns that bucket's upper edge (underflow and
     * overflow samples count in the edge buckets, so results are
     * clamped to [min, max]). Panics when p is outside [0, 1] or no
     * samples were recorded.
     *
     * @param p Percentile in [0, 1], e.g. 0.99.
     */
    double percentile(double p) const;

    void reset();

  private:
    double min_;
    double max_;
    double bucketWidth_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t samples_ = 0;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    double sum_ = 0.0;
};

/** Summary quantiles of a Log2Histogram, in the sampled unit. */
struct Quantiles
{
    std::uint64_t samples = 0;
    double p50 = 0;
    double p90 = 0;
    double p99 = 0;
};

/**
 * A lock-free fixed-bucket log2 histogram over unsigned values.
 *
 * Bucket i > 0 covers [2^(i-1), 2^i); bucket 0 holds zeros. With 64
 * buckets the full uint64 range is covered, so latencies recorded in
 * nanoseconds never overflow. sample() is wait-free (one relaxed
 * fetch_add per bucket plus the sum/count tallies), so worker threads
 * of the job runner and the journal writer can record concurrently
 * with no shared lock; readers obtain a consistent-enough view for
 * monitoring (quantiles are approximations by construction — a
 * slightly torn read moves them less than the bucketing already
 * does).
 *
 * merge() is bucket-wise addition, which is associative and
 * commutative: merging per-shard histograms in any order yields the
 * same aggregate, the property the statusboard aggregation relies on.
 */
class Log2Histogram
{
  public:
    static constexpr unsigned kBuckets = 64;

    Log2Histogram() = default;

    /** Copyable via relaxed snapshots (for report structs). @{ */
    Log2Histogram(const Log2Histogram &other) { *this = other; }
    Log2Histogram &operator=(const Log2Histogram &other);
    /** @} */

    /** Record one value (wait-free, thread-safe). */
    void sample(std::uint64_t v);

    /** Bucket index of a value: 0 for 0, else floor(log2 v) + 1,
     *  clamped to kBuckets - 1. */
    static unsigned bucketIndex(std::uint64_t v);

    /** Inclusive low edge of bucket i (0 for buckets 0 and 1). */
    static std::uint64_t bucketLow(unsigned i);

    /** Exclusive high edge of bucket i. */
    static std::uint64_t bucketHigh(unsigned i);

    std::uint64_t bucketCount(unsigned i) const;
    std::uint64_t samples() const;
    std::uint64_t sum() const;

    /** Mean of all samples (exact: the sum is tallied, not
     *  reconstructed from buckets), or 0 with no samples. */
    double mean() const;

    /**
     * Approximate quantile q in [0, 1] by cumulative bucket walk
     * with linear interpolation inside the target bucket. Monotone
     * in q; returns 0 with no samples.
     */
    double quantile(double q) const;

    /** p50/p90/p99 in one call (milliseconds when the histogram was
     *  sampled in nanoseconds and scale = 1e-6). */
    Quantiles quantiles(double scale = 1.0) const;

    /** Add another histogram's buckets into this one. */
    void merge(const Log2Histogram &other);

    void reset();

  private:
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
    std::atomic<std::uint64_t> samples_{0};
    std::atomic<std::uint64_t> sum_{0};
};

/**
 * A named group of statistics, dumpable as "name value" lines.
 *
 * Groups do not own the stats; they reference stats owned by the
 * component objects, mirroring gem5's registration style.
 */
class Group
{
  public:
    explicit Group(std::string name) : name_(std::move(name)) {}

    /** Register a scalar under this group. The scalar must outlive the
     *  group. */
    void addScalar(const std::string &name, const Scalar *s);

    /** Register an average under this group. */
    void addAverage(const std::string &name, const Average *a);

    /** Render all registered stats as text, one per line. */
    std::string dump() const;

    /** Render as a JSON object: {"<group>.<stat>": value, ...}.
     *  Scalars render as integers, averages as their mean. */
    std::string toJson() const;

    const std::string &name() const { return name_; }

    /** Registered stats by name (iteration order is sorted). @{ */
    const std::map<std::string, const Scalar *> &scalars() const
    {
        return scalars_;
    }
    const std::map<std::string, const Average *> &averages() const
    {
        return averages_;
    }
    /** @} */

  private:
    std::string name_;
    std::map<std::string, const Scalar *> scalars_;
    std::map<std::string, const Average *> averages_;
};

} // namespace stats
} // namespace powerchop

#endif // POWERCHOP_COMMON_STATS_HH
