#include "common/subprocess.hh"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <mutex>
#include <thread>
#include <utility>

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#if defined(__linux__)
#include <sys/prctl.h>
#endif

#include "common/atomic_file.hh"
#include "common/clock.hh"
#include "common/logging.hh"

extern char **environ;

namespace powerchop
{

namespace
{

/** A worker dying between our poll() and writeStdin() must surface
 *  as EPIPE, not kill the supervisor with SIGPIPE. Installed once,
 *  lazily, so programs that never spawn children keep the default. */
void
ignoreSigpipeOnce()
{
    static std::once_flag once;
    std::call_once(once, [] { ::signal(SIGPIPE, SIG_IGN); });
}

void
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void
setCloseOnExec(int fd)
{
    const int flags = ::fcntl(fd, F_GETFD, 0);
    if (flags >= 0)
        ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC);
}

void
closeQuietly(int &fd)
{
    if (fd >= 0) {
        ::close(fd);
        fd = -1;
    }
}

} // namespace

std::string
ExitStatus::describe() const
{
    switch (kind) {
      case Kind::Running:
        return "running";
      case Kind::Exited:
        return csprintf("exit %d", exitCode);
      case Kind::Signaled: {
        const char *name = ::strsignal(signal);
        return csprintf("signal %d (%s)", signal,
                        name ? name : "unknown");
      }
    }
    return "unknown";
}

Subprocess::~Subprocess()
{
    if (pid_ > 0 && poll().running())
        killHard();
    reset();
}

Subprocess::Subprocess(Subprocess &&other) noexcept
    : pid_(std::exchange(other.pid_, -1)),
      stdinFd_(std::exchange(other.stdinFd_, -1)),
      stdoutFd_(std::exchange(other.stdoutFd_, -1)),
      status_(std::exchange(other.status_, ExitStatus{}))
{
}

Subprocess &
Subprocess::operator=(Subprocess &&other) noexcept
{
    if (this != &other) {
        if (pid_ > 0 && poll().running())
            killHard();
        reset();
        pid_ = std::exchange(other.pid_, -1);
        stdinFd_ = std::exchange(other.stdinFd_, -1);
        stdoutFd_ = std::exchange(other.stdoutFd_, -1);
        status_ = std::exchange(other.status_, ExitStatus{});
    }
    return *this;
}

void
Subprocess::reset() noexcept
{
    closeQuietly(stdinFd_);
    closeQuietly(stdoutFd_);
}

void
Subprocess::spawn(const SpawnOptions &opts)
{
    panicIf(opts.argv.empty(), "Subprocess::spawn needs an argv[0]");
    panicIf(pid_ > 0, "Subprocess::spawn called twice");
    ignoreSigpipeOnce();

    int in_pipe[2] = {-1, -1};  // parent writes [1], child reads [0]
    int out_pipe[2] = {-1, -1}; // child writes [1], parent reads [0]
    if (opts.pipeStdin && ::pipe(in_pipe) != 0) {
        throw IoError(csprintf("pipe(stdin) failed: %s",
                               std::strerror(errno)));
    }
    if (opts.pipeStdout && ::pipe(out_pipe) != 0) {
        const int saved = errno;
        closeQuietly(in_pipe[0]);
        closeQuietly(in_pipe[1]);
        throw IoError(csprintf("pipe(stdout) failed: %s",
                               std::strerror(saved)));
    }

    // The child only needs its own pipe ends; mark the parent ends
    // close-on-exec so a second spawned worker cannot keep a dead
    // sibling's pipe open (which would hide its EOF).
    if (opts.pipeStdin)
        setCloseOnExec(in_pipe[1]);
    if (opts.pipeStdout)
        setCloseOnExec(out_pipe[0]);

    // argv / envp must be materialized before fork: only
    // async-signal-safe calls are allowed in the child of a
    // multi-threaded parent.
    std::vector<char *> argv;
    argv.reserve(opts.argv.size() + 1);
    for (const auto &a : opts.argv)
        argv.push_back(const_cast<char *>(a.c_str()));
    argv.push_back(nullptr);

    std::vector<char *> envp;
    for (char **e = environ; e && *e; ++e)
        envp.push_back(*e);
    for (const auto &e : opts.extraEnv)
        envp.push_back(const_cast<char *>(e.c_str()));
    envp.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0) {
        const int saved = errno;
        closeQuietly(in_pipe[0]);
        closeQuietly(in_pipe[1]);
        closeQuietly(out_pipe[0]);
        closeQuietly(out_pipe[1]);
        throw IoError(csprintf("fork failed: %s",
                               std::strerror(saved)));
    }

    if (pid == 0) {
        // Child: rewire stdio, restore default signal dispositions
        // the parent may have customised, exec.
        if (opts.pipeStdin) {
            ::dup2(in_pipe[0], STDIN_FILENO);
            ::close(in_pipe[0]);
            ::close(in_pipe[1]);
        }
        if (opts.pipeStdout) {
            ::dup2(out_pipe[1], STDOUT_FILENO);
            ::close(out_pipe[0]);
            ::close(out_pipe[1]);
        }
        ::signal(SIGPIPE, SIG_DFL);
        ::signal(SIGINT, SIG_DFL);
        ::signal(SIGTERM, SIG_DFL);
#if defined(__linux__)
        // A SIGKILLed supervisor must not leave orphan workers
        // racing a resumed supervisor's fresh workers for the same
        // shard journals: tie the child's lifetime to the parent.
        ::prctl(PR_SET_PDEATHSIG, SIGTERM);
        if (::getppid() == 1)
            ::raise(SIGTERM); // parent already died before prctl
#endif
        ::execve(argv[0], argv.data(), envp.data());
        // Only reached when exec failed; stderr is inherited.
        const char *msg = "subprocess: exec failed: ";
        (void)!::write(STDERR_FILENO, msg, std::strlen(msg));
        const char *err = std::strerror(errno);
        (void)!::write(STDERR_FILENO, err, std::strlen(err));
        (void)!::write(STDERR_FILENO, "\n", 1);
        ::_exit(127);
    }

    // Parent.
    pid_ = pid;
    if (opts.pipeStdin) {
        ::close(in_pipe[0]);
        stdinFd_ = in_pipe[1];
        // Nonblocking like stdout: a wedged worker must not freeze
        // the supervisor inside write(2) with no way to observe the
        // child's death. writeStdin() polls for writability instead.
        setNonBlocking(stdinFd_);
    }
    if (opts.pipeStdout) {
        ::close(out_pipe[1]);
        stdoutFd_ = out_pipe[0];
        setNonBlocking(stdoutFd_);
    }
}

bool
Subprocess::writeStdin(const std::string &data)
{
    panicIf(stdinFd_ < 0, "writeStdin without a stdin pipe");
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::write(stdinFd_, data.data() + off,
                                  data.size() - off);
        if (n > 0) {
            off += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            // Pipe buffer full (a key batch larger than the pipe
            // capacity, or a slow reader). Park in poll(2) until the
            // kernel drains room rather than busy-spinning on write;
            // POLLERR/POLLHUP wake us so a dying child surfaces as
            // EPIPE on the next write attempt.
            struct pollfd pfd = {};
            pfd.fd = stdinFd_;
            pfd.events = POLLOUT;
            const int pr = ::poll(&pfd, 1, 1000 /* ms */);
            if (pr < 0 && errno != EINTR) {
                throw IoError(csprintf(
                    "subprocess stdin poll failed: %s",
                    std::strerror(errno)));
            }
            continue;
        }
        if (n < 0 && errno == EPIPE)
            return false; // child is gone; poll() will classify it
        throw IoError(csprintf("subprocess stdin write failed: %s",
                               std::strerror(errno)));
    }
    return true;
}

void
Subprocess::closeStdin()
{
    closeQuietly(stdinFd_);
}

std::string
Subprocess::readAvailable()
{
    std::string out;
    if (stdoutFd_ < 0)
        return out;
    char buf[4096];
    while (true) {
        const ssize_t n = ::read(stdoutFd_, buf, sizeof(buf));
        if (n > 0) {
            out.append(buf, static_cast<std::size_t>(n));
            continue;
        }
        if (n == 0) { // EOF: the child closed its stdout
            closeQuietly(stdoutFd_);
            break;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break; // nothing pending right now
        closeQuietly(stdoutFd_);
        break;
    }
    return out;
}

ExitStatus
Subprocess::poll()
{
    if (!status_.running() || pid_ <= 0)
        return status_;
    int wstatus = 0;
    const pid_t r = ::waitpid(pid_, &wstatus, WNOHANG);
    if (r == 0)
        return status_; // still running
    if (r < 0) {
        // ESRCH/ECHILD: someone else reaped it (should not happen —
        // the supervisor owns its children). Treat as exited badly.
        status_.kind = ExitStatus::Kind::Exited;
        status_.exitCode = 255;
        return status_;
    }
    if (WIFEXITED(wstatus)) {
        status_.kind = ExitStatus::Kind::Exited;
        status_.exitCode = WEXITSTATUS(wstatus);
    } else if (WIFSIGNALED(wstatus)) {
        status_.kind = ExitStatus::Kind::Signaled;
        status_.signal = WTERMSIG(wstatus);
    }
    return status_;
}

ExitStatus
Subprocess::wait(double timeoutSeconds, std::string *drained)
{
    const MonotonicDeadline deadline(timeoutSeconds);
    while (true) {
        const std::string chunk = readAvailable();
        if (drained && !chunk.empty())
            *drained += chunk;
        const ExitStatus st = poll();
        if (!st.running() || deadline.expired())
            return st;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
}

void
Subprocess::sendSignal(int sig)
{
    if (pid_ > 0 && status_.running())
        ::kill(pid_, sig);
}

void
Subprocess::killHard()
{
    if (pid_ <= 0 || !status_.running())
        return;
    ::kill(pid_, SIGKILL);
    int wstatus = 0;
    while (::waitpid(pid_, &wstatus, 0) < 0 && errno == EINTR) {
    }
    if (WIFEXITED(wstatus)) {
        status_.kind = ExitStatus::Kind::Exited;
        status_.exitCode = WEXITSTATUS(wstatus);
    } else {
        status_.kind = ExitStatus::Kind::Signaled;
        status_.signal =
            WIFSIGNALED(wstatus) ? WTERMSIG(wstatus) : SIGKILL;
    }
}

} // namespace powerchop
