/**
 * @file
 * Child-process management for the campaign shard supervisor.
 *
 * A supervised worker is a re-exec of this binary: fork + execve with
 * its stdin and stdout replaced by pipes. The parent feeds the worker
 * its assignment over stdin, drains protocol lines from stdout with
 * non-blocking reads (the supervisor's event loop must never block on
 * a wedged child), and detects death through waitpid — classifying a
 * clean exit code apart from a fatal signal, because "exited 1" means
 * a reported error while "killed by SIGSEGV" means the address space
 * is gone and only the write-ahead journal survives.
 *
 * All deadlines in this module are monotonic (common/clock.hh): a
 * system clock step can neither fire nor suppress a wait timeout.
 */

#ifndef POWERCHOP_COMMON_SUBPROCESS_HH
#define POWERCHOP_COMMON_SUBPROCESS_HH

#include <string>
#include <vector>

#include <sys/types.h>

namespace powerchop
{

/** How to launch one child process. */
struct SpawnOptions
{
    /** argv[0] is the executable path (execve, no PATH search). */
    std::vector<std::string> argv;

    /** Extra "NAME=value" entries appended to the inherited
     *  environment (later entries win over inherited ones). */
    std::vector<std::string> extraEnv;

    /** Give the child a pipe on stdin / stdout. When false the fd is
     *  inherited from the parent. stderr is always inherited so
     *  worker diagnostics land in the supervisor's stderr. @{ */
    bool pipeStdin = true;
    bool pipeStdout = true;
    /** @} */
};

/** Terminal (or not-yet-terminal) state of a child, as classified
 *  from waitpid(): a normal exit and a fatal signal are different
 *  failure modes and the supervisor reports them differently. */
struct ExitStatus
{
    enum class Kind : std::uint8_t
    {
        Running,  ///< Not terminal yet (WNOHANG saw no change).
        Exited,   ///< Normal termination; exitCode is valid.
        Signaled, ///< Killed by a signal; signal is valid.
    };

    Kind kind = Kind::Running;
    int exitCode = 0;
    int signal = 0;

    bool running() const { return kind == Kind::Running; }
    bool exitedOk() const
    {
        return kind == Kind::Exited && exitCode == 0;
    }
    /** A death the supervisor must contain: any fatal signal, or an
     *  exit code that is not 0 (complete). */
    bool crashed() const
    {
        return kind == Kind::Signaled ||
               (kind == Kind::Exited && exitCode != 0);
    }

    /** "exit 0" / "exit 3" / "signal 11 (Segmentation fault)". */
    std::string describe() const;
};

/**
 * One forked child with piped stdin/stdout.
 *
 * Movable, not copyable. The destructor is a containment backstop: a
 * still-running child is SIGKILLed and reaped so a throwing
 * supervisor never leaks orphan workers.
 */
class Subprocess
{
  public:
    Subprocess() = default;
    ~Subprocess();

    Subprocess(const Subprocess &) = delete;
    Subprocess &operator=(const Subprocess &) = delete;
    Subprocess(Subprocess &&other) noexcept;
    Subprocess &operator=(Subprocess &&other) noexcept;

    /**
     * fork + execve. Throws IoError when the pipes or fork fail; an
     * exec failure surfaces as the child exiting 127 (with a message
     * on stderr), which poll() reports like any other death.
     */
    void spawn(const SpawnOptions &opts);

    bool started() const { return pid_ > 0 || !status_.running(); }
    pid_t pid() const { return pid_; }

    /**
     * Write `data` to the child's stdin. The pipe is nonblocking;
     * writes that fill the pipe buffer park in poll(POLLOUT) until
     * the child drains room, so batches larger than the kernel pipe
     * capacity are delivered intact even to a slow reader.
     * @return false when the child already closed its end (EPIPE) —
     *         a dying worker, handled by poll(), not an error here.
     */
    bool writeStdin(const std::string &data);

    /** Close the stdin pipe (EOF marks the assignment complete). */
    void closeStdin();

    /**
     * Drain whatever the child has written to stdout, without
     * blocking.
     * @return the bytes read ("" when nothing is pending or the pipe
     *         is closed).
     */
    std::string readAvailable();

    /**
     * Non-blocking waitpid. The terminal status is cached: calling
     * poll() after the child died keeps returning the same
     * classification.
     */
    ExitStatus poll();

    /**
     * Wait up to `timeoutSeconds` (monotonic) for termination,
     * draining stdout while waiting so a chatty child cannot
     * deadlock on a full pipe. Does NOT kill on timeout — the caller
     * decides whether a survivor is a straggler or a hang.
     *
     * @param drained Stdout bytes read while waiting are appended
     *                here when non-null.
     */
    ExitStatus wait(double timeoutSeconds,
                    std::string *drained = nullptr);

    /** Send `sig`; ESRCH (already dead) is ignored. */
    void sendSignal(int sig);

    /** SIGKILL and reap (blocking; SIGKILL cannot be ignored). */
    void killHard();

  private:
    void reset() noexcept;

    pid_t pid_ = -1;
    int stdinFd_ = -1;
    int stdoutFd_ = -1;
    ExitStatus status_;
};

} // namespace powerchop

#endif // POWERCHOP_COMMON_SUBPROCESS_HH
