/**
 * @file
 * Fundamental scalar types shared across the PowerChop simulator.
 *
 * Follows the gem5 convention of naming the common architectural
 * quantities (addresses, cycle counts, instruction counts) so that
 * signatures document intent rather than raw integer widths.
 */

#ifndef POWERCHOP_COMMON_TYPES_HH
#define POWERCHOP_COMMON_TYPES_HH

#include <cstdint>

namespace powerchop
{

/** A guest or host virtual address. */
using Addr = std::uint64_t;

/** A count of clock cycles. Fractional cycles accumulate in the timing
 *  model, so this is a floating point quantity; it is rounded when a
 *  whole-cycle figure is reported. */
using Cycles = double;

/** A count of dynamic instructions. */
using InsnCount = std::uint64_t;

/** A count of executed translations. */
using TransCount = std::uint64_t;

/** Unique identifier of a binary translation. The lower 32 bits of the
 *  translation head's program counter (Section IV-B2 of the paper). */
using TranslationId = std::uint32_t;

/** Energy in joules. */
using Joules = double;

/** Power in watts. */
using Watts = double;

/** Invalid/sentinel translation id. Translation heads are aligned and
 *  non-zero in our guest programs, so 0 is never a legal id. */
constexpr TranslationId invalidTranslationId = 0;

} // namespace powerchop

#endif // POWERCHOP_COMMON_TYPES_HH
