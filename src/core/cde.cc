#include "core/cde.hh"

#include <cmath>

#include "common/logging.hh"

namespace powerchop
{

Cde::Cde(const CdeParams &params) : params_(params)
{
}

GatingPolicy
Cde::scoreCriticality(double vpu_crit, double bpu_crit,
                      double mlc_crit) const
{
    // Criticality scores are ratios of counter values; NaN or a
    // negative VPU/MLC score means a corrupted profile reached the
    // scoring stage, and any policy derived from it would be junk.
    if (std::isnan(vpu_crit) || std::isnan(bpu_crit) ||
        std::isnan(mlc_crit)) {
        panic("CDE: NaN criticality score (vpu=%g bpu=%g mlc=%g)",
              vpu_crit, bpu_crit, mlc_crit);
    }
    if (vpu_crit < 0 || vpu_crit > 1 || mlc_crit < 0)
        panic("CDE: criticality out of range (vpu=%g mlc=%g)",
              vpu_crit, mlc_crit);

    GatingPolicy policy = GatingPolicy::fullPower();

    // Criticality_VPU = SIMD fraction of committed instructions.
    if (manageVpu_)
        policy.vpuOn = vpu_crit > params_.thresholdVpu;

    // Criticality_BPU = accuracy the large predictor adds over the
    // small one.
    if (manageBpu_)
        policy.bpuOn = bpu_crit > params_.thresholdBpu;

    // Criticality_MLC = L2 hits per committed instruction, banded
    // into the three way states.
    if (manageMlc_) {
        if (mlc_crit > params_.thresholdMlc1) {
            policy.mlc = MlcPolicy::AllWays;
        } else if (mlc_crit <= params_.thresholdMlc2) {
            policy.mlc = MlcPolicy::OneWay;
        } else if (params_.enableQuarterWays &&
                   mlc_crit <= params_.thresholdMlcQuarter) {
            policy.mlc = MlcPolicy::QuarterWays;
        } else {
            policy.mlc = MlcPolicy::HalfWays;
        }
    }

    return policy;
}

GatingPolicy
Cde::scorePolicy(const WindowProfile &wp) const
{
    return scoreCriticality(wp.vpuCriticality(),
                            wp.mispredSmall - wp.mispredLarge,
                            wp.mlcCriticality());
}

Cde::Result
Cde::onPvtMiss(const PhaseSignature &sig, const WindowProfile &profile,
               Pvt &pvt)
{
    // Window-profile invariants: the performance monitors can never
    // report more SIMD commits than total commits, and mispredict
    // rates are probabilities. Violations mean the monitor snapshot
    // was corrupted in flight.
    panicIf(profile.simdInsns > profile.totalInsns,
            "CDE: window SIMD count exceeds total instruction count");
    if (profile.mispredLarge < 0 || profile.mispredLarge > 1 ||
        profile.mispredSmall < 0 || profile.mispredSmall > 1) {
        panic("CDE: window mispredict rate out of [0, 1] "
              "(large=%g small=%g)",
              profile.mispredLarge, profile.mispredSmall);
    }

    Result res;
    res.cycles = params_.workCycles;

    // Evicted phase: policy known, re-register (capacity miss).
    auto stored = store_.find(sig);
    if (stored != store_.end()) {
        ++capacityMisses_;
        res.policy = stored->second;
        res.registered = true;
        if (auto ev = pvt.registerPolicy(sig, stored->second))
            onEviction(*ev);
        return res;
    }

    auto prof = profiling_.find(sig);
    if (prof == profiling_.end()) {
        // New phase: start collecting (Algorithm 1).
        ++newPhases_;
        ProfilingState st;
        st.simdSum = profile.simdInsns;
        st.insnSum = profile.totalInsns;
        st.lastWindow = profile;
        st.windowsCollected = 1;
        if (params_.profilingWindows <= bpuWarmupWindows) {
            // Degenerate short-profiling configs use every window.
            st.mispredLargeSum = profile.mispredLarge;
            st.mispredSmallSum = profile.mispredSmall;
            st.mispredWindows = 1;
        }
        prof = profiling_.emplace(sig, st).first;
    } else {
        // Continued phase profiling: SIMD ratios accumulate over all
        // windows; mispredict rates accumulate once the shadow
        // predictors have warmed; the MLC hit ratio is taken from the
        // final window, after the phase's working set has re-warmed
        // the shadow tag array.
        ++profilingContinues_;
        ProfilingState &st = prof->second;
        ++st.windowsCollected;
        st.simdSum += profile.simdInsns;
        st.insnSum += profile.totalInsns;
        if (st.windowsCollected > bpuWarmupWindows ||
            params_.profilingWindows <= bpuWarmupWindows) {
            st.mispredLargeSum += profile.mispredLarge;
            st.mispredSmallSum += profile.mispredSmall;
            ++st.mispredWindows;
        }
        st.lastWindow = profile;
    }

    ProfilingState &st = prof->second;
    if (st.windowsCollected < params_.profilingWindows) {
        // Insufficient information: keep collecting.
        res.keepCurrent = true;
        res.registered = false;
        return res;
    }

    double vpu_crit = st.insnSum
        ? static_cast<double>(st.simdSum) / st.insnSum : 0.0;
    double bpu_crit = st.mispredWindows
        ? (st.mispredSmallSum - st.mispredLargeSum) / st.mispredWindows
        : 0.0;
    double mlc_crit = st.lastWindow.mlcCriticality();

    GatingPolicy policy = scoreCriticality(vpu_crit, bpu_crit, mlc_crit);
    profiling_.erase(prof);
    store_[sig] = policy;
    ++registered_;
    if (auto ev = pvt.registerPolicy(sig, policy))
        onEviction(*ev);

    res.policy = policy;
    res.registered = true;
    return res;
}

void
Cde::onEviction(const PvtEviction &evicted)
{
    // Evicted entries are stored in memory by the CDE (Section IV-A,
    // step 5) and re-registered on a future capacity miss.
    store_[evicted.signature] = evicted.policy;
}

} // namespace powerchop
