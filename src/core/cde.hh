/**
 * @file
 * The Criticality Decision Engine (CDE), Sections IV-C1/IV-C2.
 *
 * The CDE lives in the BT software layer. It is invoked through a
 * nucleus interrupt on every PVT miss and performs one of three
 * actions (Algorithm 1):
 *
 *  - New phase: begin profiling; collect one window of performance-
 *    monitor data. The VPU and MLC scores need a single window; the
 *    BPU score needs a second window, so new phases stay in profiling
 *    mode for one more occurrence.
 *  - Continued phase profiling: finish collecting, score criticality,
 *    assign the gating policy and register it with the PVT.
 *  - Evicted phase: the policy already exists in the CDE's memory-
 *    backed store (a PVT capacity miss); re-register it.
 */

#ifndef POWERCHOP_CORE_CDE_HH
#define POWERCHOP_CORE_CDE_HH

#include <cstdint>
#include <unordered_map>

#include "core/perf_monitor.hh"
#include "core/policy.hh"
#include "core/pvt.hh"
#include "core/signature.hh"

namespace powerchop
{

/** CDE thresholds and software costs. */
struct CdeParams
{
    /** Gate the VPU off when SIMD/total falls at or below this. */
    double thresholdVpu = 0.01;

    /** Gate the large BPU off when (MisPred_Small - MisPred_Large)
     *  falls at or below this. Set above the per-window sampling
     *  noise of the mispredict-rate difference (~1% for 1000-branch
     *  windows) so easy phases classify robustly. */
    double thresholdBpu = 0.01;

    /** MLC keeps all ways when L2Hit/total exceeds this... */
    double thresholdMlc1 = 0.01;

    /** ...and drops to one way when it does not exceed this;
     *  otherwise half the ways stay on. */
    double thresholdMlc2 = 0.0001;

    /** Optional fourth MLC state (Section IV-B3 notes the state
     *  count can grow): when enabled, criticalities in
     *  (thresholdMlc2, thresholdMlcQuarter] get a quarter of the
     *  ways instead of half. */
    bool enableQuarterWays = false;
    double thresholdMlcQuarter = 0.005;

    /**
     * Windows collected before a phase's policy is registered
     * (Algorithm 1's "insufficient information, keep collecting").
     * The VPU score needs one window and the BPU score two, but the
     * MLC hit ratio is measured while the phase's working set is
     * still re-warming the (shadow) cache after the phase edge, so
     * the MLC score uses the *last* profiling window, by which point
     * resident phases show their steady-state hit ratios.
     */
    unsigned profilingWindows = 12;

    /** Software cycles of one CDE invocation (on top of the nucleus
     *  trap cost). */
    double workCycles = 600.0;
};

/**
 * The Criticality Decision Engine.
 */
class Cde
{
  public:
    explicit Cde(const CdeParams &params = {});

    /** Outcome of one CDE invocation. */
    struct Result
    {
        /** Policy to apply now (valid when !keepCurrent). */
        GatingPolicy policy = GatingPolicy::fullPower();

        /** True while the phase is still being profiled: the current
         *  gating state is left untouched. Profiling reads shadow
         *  monitors, so measurements do not depend on power state and
         *  no disruptive full-power flip is needed. */
        bool keepCurrent = false;

        /** True when the policy was registered with the PVT (not a
         *  profiling placeholder). */
        bool registered = false;

        /** Software cycles consumed. */
        double cycles = 0;
    };

    /**
     * Handle a PVT miss for a phase signature.
     *
     * @param sig     The missing signature.
     * @param profile The just-completed window's performance profile
     *                (the profile of this phase's execution).
     * @param pvt     The PVT to register policies with.
     */
    Result onPvtMiss(const PhaseSignature &sig,
                     const WindowProfile &profile, Pvt &pvt);

    /** Accept an entry the PVT evicted (stored to memory). */
    void onEviction(const PvtEviction &evicted);

    /** Score a profile into a gating policy (exposed for tests and
     *  for the per-unit isolation runs). */
    GatingPolicy scorePolicy(const WindowProfile &profile) const;

    /** Score raw criticality values into a gating policy. */
    GatingPolicy scoreCriticality(double vpu_crit, double bpu_crit,
                                  double mlc_crit) const;

    /** Restrict which units the CDE may gate (per-unit studies of
     *  Section V-C run with only one unit managed). @{ */
    void setManageVpu(bool m) { manageVpu_ = m; }
    void setManageBpu(bool m) { manageBpu_ = m; }
    void setManageMlc(bool m) { manageMlc_ = m; }
    /** @} */

    const CdeParams &params() const { return params_; }

    /** Statistics. @{ */
    std::uint64_t newPhases() const { return newPhases_; }
    std::uint64_t profilingContinues() const { return profilingContinues_; }
    std::uint64_t capacityMisses() const { return capacityMisses_; }
    std::uint64_t policiesRegistered() const { return registered_; }
    std::size_t storedPolicies() const { return store_.size(); }
    /** @} */

  private:
    struct ProfilingState
    {
        /** SIMD/instruction sums over all profiling windows. */
        std::uint64_t simdSum = 0;
        std::uint64_t insnSum = 0;

        /** Post-warmup sums of the two predictors' per-window
         *  mispredict rates. Skipping the first windows lets the
         *  shadow predictors warm on the phase's branches; averaging
         *  the rest keeps the rate difference's sampling noise well
         *  below Threshold_BPU. */
        double mispredLargeSum = 0;
        double mispredSmallSum = 0;
        unsigned mispredWindows = 0;

        /** The most recent window (MLC steady-state hit ratio). */
        WindowProfile lastWindow;

        unsigned windowsCollected = 0;
    };

    /** Profiling windows ignored by the BPU score while the shadow
     *  predictors warm on a new phase's branches. */
    static constexpr unsigned bpuWarmupWindows = 2;

    CdeParams params_;

    /** Memory-backed policy store for phases evicted from the PVT. */
    std::unordered_map<PhaseSignature, GatingPolicy, PhaseSignatureHash>
        store_;

    /** Phases currently in profiling mode. */
    std::unordered_map<PhaseSignature, ProfilingState, PhaseSignatureHash>
        profiling_;

    bool manageVpu_ = true;
    bool manageBpu_ = true;
    bool manageMlc_ = true;

    std::uint64_t newPhases_ = 0;
    std::uint64_t profilingContinues_ = 0;
    std::uint64_t capacityMisses_ = 0;
    std::uint64_t registered_ = 0;
};

} // namespace powerchop

#endif // POWERCHOP_CORE_CDE_HH
