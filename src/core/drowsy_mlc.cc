#include "core/drowsy_mlc.hh"

#include "common/logging.hh"

namespace powerchop
{

DrowsyMlc::DrowsyMlc(MemHierarchy &mem, const DrowsyParams &params)
    : mem_(mem), params_(params)
{
    if (params.intervalCycles <= 0)
        fatal("drowsy interval must be positive");
    if (params.drowsyLeakageFraction < 0 ||
        params.drowsyLeakageFraction > 1) {
        fatal("drowsy leakage fraction out of [0,1]");
    }
}

void
DrowsyMlc::accumulate(double now_cycles)
{
    double span = now_cycles - lastAccum_;
    if (span <= 0)
        return;
    const SetAssocCache &mlc = mem_.mlc();
    const double total =
        static_cast<double>(mlc.params().sizeBytes /
                            mlc.params().lineBytes);
    double awake = static_cast<double>(mlc.awakeLineCount());
    // Lines not awake (drowsy or invalid) sit at drowsy leakage; the
    // sweep granularity makes this a piecewise-constant integral.
    drowsyLineCycles_ += (total - awake) * span;
    totalLineCycles_ += total * span;
    lastAccum_ = now_cycles;
}

void
DrowsyMlc::tick(double now_cycles)
{
    while (now_cycles - lastSweep_ >= params_.intervalCycles) {
        double sweep_at = lastSweep_ + params_.intervalCycles;
        accumulate(sweep_at);
        mem_.mlc().drowseAll();
        lastSweep_ = sweep_at;
        ++sweeps_;
    }
}

void
DrowsyMlc::finish(double now_cycles)
{
    accumulate(now_cycles);
}

double
DrowsyMlc::avgDrowsyFraction() const
{
    return totalLineCycles_ > 0 ? drowsyLineCycles_ / totalLineCycles_
                                : 0.0;
}

} // namespace powerchop
