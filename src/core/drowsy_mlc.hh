/**
 * @file
 * Drowsy-MLC baseline (Flautner et al., cited in the paper's related
 * work as the per-line alternative for cache leakage).
 *
 * Policy: the "simple" drowsy scheme — every `intervalCycles`, all
 * valid MLC lines drop into a low-voltage drowsy state that retains
 * contents but cannot be read; the next access to a drowsy line first
 * wakes it, costing a short latency penalty. Drowsy lines leak at a
 * reduced fraction of full leakage.
 *
 * Contrast with PowerChop: drowsy saves leakage on *cold lines*
 * without losing state and needs no criticality analysis, but it
 * cannot reduce the MLC's dynamic or peripheral power, cannot resize
 * the array, and wakes costs recur on every reuse.
 */

#ifndef POWERCHOP_CORE_DROWSY_MLC_HH
#define POWERCHOP_CORE_DROWSY_MLC_HH

#include <cstdint>

#include "uarch/mem_hierarchy.hh"

namespace powerchop
{

/** Drowsy-MLC configuration. */
struct DrowsyParams
{
    /** Cycles between global drowse sweeps (Flautner's simple
     *  policy used 2000-4000 cycles for an L1; the MLC's longer
     *  reuse distances favour a longer period). */
    double intervalCycles = 8000.0;

    /** Extra latency of an access that wakes a drowsy line (one
     *  cycle to restore the full supply voltage). */
    double wakePenaltyCycles = 1.0;

    /** Leakage of a drowsy line relative to an awake one. */
    double drowsyLeakageFraction = 0.15;
};

/**
 * Periodic drowse controller for the MLC.
 *
 * The caller reports time progression; the controller performs the
 * periodic sweeps and integrates the awake-line fraction for the
 * power model.
 */
class DrowsyMlc
{
  public:
    DrowsyMlc(MemHierarchy &mem, const DrowsyParams &params = {});

    /**
     * Called at coarse boundaries with the current cycle count;
     * performs any due drowse sweeps and accumulates the awake-line
     * residency integral.
     */
    void tick(double now_cycles);

    /** Finalize residency accounting at the end of the run. */
    void finish(double now_cycles);

    /**
     * Time-averaged fraction of MLC lines that were drowsy, over the
     * run up to the last tick/finish.
     */
    double avgDrowsyFraction() const;

    std::uint64_t sweeps() const { return sweeps_; }
    const DrowsyParams &params() const { return params_; }

  private:
    void accumulate(double now_cycles);

    MemHierarchy &mem_;
    DrowsyParams params_;
    double lastSweep_ = 0;
    double lastAccum_ = 0;
    double drowsyLineCycles_ = 0;
    double totalLineCycles_ = 0;
    std::uint64_t sweeps_ = 0;
};

} // namespace powerchop

#endif // POWERCHOP_CORE_DROWSY_MLC_HH
