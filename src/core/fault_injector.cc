#include "core/fault_injector.hh"

#include "common/logging.hh"
#include "telemetry/trace.hh"

namespace powerchop
{

namespace
{

void
checkRate(const std::string &who, const char *field, double rate)
{
    if (!(rate >= 0.0 && rate <= 1.0))
        fatal("%s: faults.%s=%g outside [0, 1]", who.c_str(), field,
              rate);
}

} // namespace

void
FaultInjectorParams::validate(const std::string &who) const
{
    checkRate(who, "policyCorruptRate", policyCorruptRate);
    checkRate(who, "htbDropRate", htbDropRate);
    checkRate(who, "htbAliasRate", htbAliasRate);
    checkRate(who, "controllerFlipRate", controllerFlipRate);
    checkRate(who, "wakeupStretchRate", wakeupStretchRate);
    if (!(wakeupStretchFactor >= 1.0))
        fatal("%s: faults.wakeupStretchFactor=%g below 1", who.c_str(),
              wakeupStretchFactor);
}

FaultInjector::FaultInjector(const FaultInjectorParams &params)
    : params_(params), rng_(params.seed)
{
}

GatingPolicy
FaultInjector::flipPolicyBit(const GatingPolicy &policy)
{
    std::uint8_t bits = policy.encode();
    bits ^= static_cast<std::uint8_t>(1u << rng_.below(4));
    return GatingPolicy::decode(bits);
}

GatingPolicy
FaultInjector::corruptPolicy(const GatingPolicy &policy)
{
    if (!params_.enabled || params_.policyCorruptRate <= 0 ||
        !rng_.bernoulli(params_.policyCorruptRate)) {
        return policy;
    }
    ++stats_.policyCorruptions;
    if (trace_)
        trace_->fault(telemetry::FaultEvent::PolicyCorrupt);
    return flipPolicyBit(policy);
}

bool
FaultInjector::dropTranslation()
{
    if (!params_.enabled || params_.htbDropRate <= 0)
        return false;
    if (!rng_.bernoulli(params_.htbDropRate))
        return false;
    ++stats_.htbDrops;
    if (trace_)
        trace_->fault(telemetry::FaultEvent::HtbDrop);
    return true;
}

TranslationId
FaultInjector::aliasTranslation(TranslationId id)
{
    if (!params_.enabled || params_.htbAliasRate <= 0 ||
        !rng_.bernoulli(params_.htbAliasRate)) {
        return id;
    }
    ++stats_.htbAliases;
    if (trace_)
        trace_->fault(telemetry::FaultEvent::HtbAlias);
    TranslationId aliased =
        id ^ static_cast<TranslationId>(1u << rng_.below(8));
    // Translation ids are head PCs; 0 is the invalid sentinel, so a
    // flip that lands there aliases to the neighbouring id instead.
    if (aliased == invalidTranslationId)
        aliased = id + 1;
    return aliased;
}

GatingPolicy
FaultInjector::flipControllerState(const GatingPolicy &current)
{
    if (!params_.enabled || params_.controllerFlipRate <= 0 ||
        !rng_.bernoulli(params_.controllerFlipRate)) {
        return current;
    }
    ++stats_.controllerFlips;
    if (trace_)
        trace_->fault(telemetry::FaultEvent::ControllerFlip);
    return flipPolicyBit(current);
}

double
FaultInjector::stretchWakeup(double stall_cycles)
{
    if (!params_.enabled || params_.wakeupStretchRate <= 0 ||
        stall_cycles <= 0 ||
        !rng_.bernoulli(params_.wakeupStretchRate)) {
        return stall_cycles;
    }
    ++stats_.wakeupStretches;
    if (trace_)
        trace_->fault(telemetry::FaultEvent::WakeupStretch);
    return stall_cycles * params_.wakeupStretchFactor;
}

} // namespace powerchop
