/**
 * @file
 * Deterministic fault injection for the PowerChop gating stack.
 *
 * PowerChop's gating decisions flow through several small structures
 * (HTB -> PVT -> CDE -> gating controller), and a corrupted decision
 * anywhere on that path silently destroys unit state (BPU/MLC
 * contents) or stalls execution on wakeup. The FaultInjector models
 * those corruptions explicitly so the hardened gating path — the
 * invariant assertions, the QoS watchdog's safe mode and the robust
 * job runner — can be exercised and quantified:
 *
 *  - policy-vector corruption: a PVT hit delivers a bit-flipped
 *    policy vector (models PVT array soft errors);
 *  - HTB hit drops and aliases: a translation-head event is lost, or
 *    attributed to the wrong translation id (models HTB update races
 *    and tag corruption), skewing phase signatures;
 *  - gating-controller state flips: the controller's record of the
 *    current power state is bit-flipped, causing spurious or missed
 *    transitions and accounting drift (models sequencer soft errors);
 *  - wakeup stretches: a gating transition's stall is multiplied
 *    (models slow power-grid ramps / droop throttling on wakeup).
 *
 * All randomness comes from a private, seeded Rng, so a (seed, rate)
 * configuration reproduces the exact same fault sequence on every run
 * and on any worker count: each simulate() call owns one injector.
 */

#ifndef POWERCHOP_CORE_FAULT_INJECTOR_HH
#define POWERCHOP_CORE_FAULT_INJECTOR_HH

#include <cstdint>
#include <string>

#include "common/random.hh"
#include "common/types.hh"
#include "core/policy.hh"

namespace powerchop
{

namespace telemetry
{
class TraceRecorder;
} // namespace telemetry

/** Fault-injection configuration; all rates are per-event
 *  probabilities in [0, 1]. Disabled (the default) is guaranteed to
 *  leave simulation results bit-identical to a build without the
 *  injector. */
struct FaultInjectorParams
{
    bool enabled = false;

    /** Seed of the injector's private fault stream. */
    std::uint64_t seed = 0xFA017;

    /** P(bit-flip a policy vector delivered by a PVT hit). */
    double policyCorruptRate = 0;

    /** P(drop one translation-head event before the HTB sees it). */
    double htbDropRate = 0;

    /** P(alias a translation-head event to a wrong translation id). */
    double htbAliasRate = 0;

    /** P(bit-flip the gating controller's current-state record at a
     *  policy application). */
    double controllerFlipRate = 0;

    /** P(stretch the stall of a non-trivial gating transition). */
    double wakeupStretchRate = 0;

    /** Stall multiplier of a stretched wakeup (>= 1). */
    double wakeupStretchFactor = 4.0;

    /** fatal() on out-of-range rates/factor, naming the bad field.
     *  @param who Owner name used in the error message. */
    void validate(const std::string &who) const;
};

/** Count of each fault class actually injected during a run. */
struct FaultStats
{
    std::uint64_t policyCorruptions = 0;
    std::uint64_t htbDrops = 0;
    std::uint64_t htbAliases = 0;
    std::uint64_t controllerFlips = 0;
    std::uint64_t wakeupStretches = 0;

    std::uint64_t
    total() const
    {
        return policyCorruptions + htbDrops + htbAliases +
               controllerFlips + wakeupStretches;
    }
};

/**
 * Seeded per-run fault source. One instance is built per simulate()
 * call and handed (by pointer) to the gating controller and the
 * PowerChop unit; a null/inactive injector is a no-op on every path.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultInjectorParams &params = {});

    /** @return true when fault injection is configured on. */
    bool active() const { return params_.enabled; }

    /** Possibly bit-flip a policy vector read from the PVT. */
    GatingPolicy corruptPolicy(const GatingPolicy &policy);

    /** @return true when this translation-head event is dropped. */
    bool dropTranslation();

    /** Possibly alias a translation id to a wrong (valid) id. */
    TranslationId aliasTranslation(TranslationId id);

    /** Possibly bit-flip the controller's current-state record. */
    GatingPolicy flipControllerState(const GatingPolicy &current);

    /** Possibly stretch a transition's stall cycles. */
    double stretchWakeup(double stall_cycles);

    const FaultStats &stats() const { return stats_; }
    const FaultInjectorParams &params() const { return params_; }

    /** Attach a trace recorder (nullptr detaches); every injected
     *  fault emits one instant event. The fault stream itself is
     *  unaffected (recording consumes no randomness). */
    void setTrace(telemetry::TraceRecorder *trace) { trace_ = trace; }

  private:
    /** Flip one uniformly chosen bit of a 4-bit policy encoding. */
    GatingPolicy flipPolicyBit(const GatingPolicy &policy);

    FaultInjectorParams params_;
    Rng rng_;
    FaultStats stats_;
    telemetry::TraceRecorder *trace_ = nullptr;
};

} // namespace powerchop

#endif // POWERCHOP_CORE_FAULT_INJECTOR_HH
