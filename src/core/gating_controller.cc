#include "core/gating_controller.hh"

#include <cmath>

#include "common/logging.hh"
#include "core/fault_injector.hh"
#include "telemetry/trace.hh"

namespace powerchop
{

GatingController::GatingController(Vpu &vpu, BpuComplex &bpu,
                                   MemHierarchy &mem,
                                   const GatingPenalties &penalties)
    : vpu_(vpu), bpu_(bpu), mem_(mem), penalties_(penalties)
{
}

double
GatingController::applyPolicy(const GatingPolicy &policy)
{
    // Policy-vector range check: a corrupted vector must still map to
    // at least one live MLC way before it reaches the cache.
    panicIf(mlcActiveWays(policy.mlc, mem_.mlc().params().assoc) == 0,
            "gating: policy maps to zero active MLC ways");

    // An injected sequencer fault flips the controller's record of
    // the current state; the unit operations are idempotent, so the
    // flip manifests as spurious transitions (with their stalls and
    // state loss) or as skipped residency accounting — exactly the
    // drift the QoS watchdog has to catch.
    if (injector_ && injector_->active())
        current_ = injector_->flipControllerState(current_);

    double stall = 0;

    // --- VPU --------------------------------------------------------------
    if (policy.vpuOn != current_.vpuOn) {
        // Register file is explicitly saved (gate off) or restored
        // (gate on); execution halts while that happens.
        const double unit_stall = penalties_.vpuSwitchCycles +
                                  penalties_.vpuSaveRestoreCycles;
        stall += unit_stall;
        ++stats_.vpuSwitches;
        if (policy.vpuOn)
            vpu_.gateOn();
        else
            vpu_.gateOff();
        if (trace_) {
            trace_->gateState(telemetry::GateUnit::Vpu,
                              policy.vpuOn ? 1 : 0, unit_stall);
            trace_->advanceCycles(unit_stall);
        }
    }

    // --- BPU --------------------------------------------------------------
    if (policy.bpuOn != current_.bpuOn) {
        stall += penalties_.bpuSwitchCycles;
        ++stats_.bpuSwitches;
        if (policy.bpuOn) {
            bpu_.gateLargeOn();     // re-warms from scratch
        } else {
            bpu_.gateLargeOff();    // global/chooser/BTB state lost
        }
        if (trace_) {
            trace_->gateState(telemetry::GateUnit::Bpu,
                              policy.bpuOn ? 1 : 0,
                              penalties_.bpuSwitchCycles);
            trace_->advanceCycles(penalties_.bpuSwitchCycles);
        }
    }

    // --- MLC --------------------------------------------------------------
    if (policy.mlc != current_.mlc) {
        ++stats_.mlcSwitches;
        ++mlcPolicyEpoch_;
        unsigned assoc = mem_.mlc().params().assoc;
        unsigned ways = mlcActiveWays(policy.mlc, assoc);
        std::uint64_t dirty = mem_.setMlcActiveWays(ways);
        stats_.mlcDirtyWritebacks += dirty;
        const double unit_stall =
            penalties_.mlcSwitchCycles +
            static_cast<double>(dirty) *
                penalties_.mlcWritebackCyclesPerLine;
        stall += unit_stall;
        if (trace_) {
            trace_->gateState(
                telemetry::GateUnit::Mlc,
                static_cast<std::uint64_t>(policy.mlc), unit_stall);
            trace_->advanceCycles(unit_stall);
        }
    }

    if (injector_ && injector_->active()) {
        const double unstretched = stall;
        stall = injector_->stretchWakeup(stall);
        if (trace_)
            trace_->advanceCycles(stall - unstretched);
    }

    // Wakeup accounting invariant: transition stalls are finite and
    // non-negative whatever the penalty config or injected faults did.
    if (!(stall >= 0) || !std::isfinite(stall))
        panic("gating: transition stall %g is negative or non-finite",
              stall);

    current_ = policy;
    stats_.stallCycles += stall;
    return stall;
}

void
GatingController::accrue(double cycles)
{
    if (!current_.vpuOn)
        stats_.vpuGatedCycles += cycles;
    if (!current_.bpuOn)
        stats_.bpuGatedCycles += cycles;
    switch (current_.mlc) {
      case MlcPolicy::AllWays:
        stats_.mlcFullCycles += cycles;
        break;
      case MlcPolicy::HalfWays:
        stats_.mlcHalfCycles += cycles;
        break;
      case MlcPolicy::QuarterWays:
        stats_.mlcQuarterCycles += cycles;
        break;
      case MlcPolicy::OneWay:
        stats_.mlcOneWayCycles += cycles;
        break;
    }
}

double
GatingController::mlcActiveFraction() const
{
    unsigned assoc = mem_.mlc().params().assoc;
    return static_cast<double>(mlcActiveWays(current_.mlc, assoc)) / assoc;
}

} // namespace powerchop
