#include "core/gating_controller.hh"

namespace powerchop
{

GatingController::GatingController(Vpu &vpu, BpuComplex &bpu,
                                   MemHierarchy &mem,
                                   const GatingPenalties &penalties)
    : vpu_(vpu), bpu_(bpu), mem_(mem), penalties_(penalties)
{
}

double
GatingController::applyPolicy(const GatingPolicy &policy)
{
    double stall = 0;

    // --- VPU --------------------------------------------------------------
    if (policy.vpuOn != current_.vpuOn) {
        // Register file is explicitly saved (gate off) or restored
        // (gate on); execution halts while that happens.
        stall += penalties_.vpuSwitchCycles +
                 penalties_.vpuSaveRestoreCycles;
        ++stats_.vpuSwitches;
        if (policy.vpuOn)
            vpu_.gateOn();
        else
            vpu_.gateOff();
    }

    // --- BPU --------------------------------------------------------------
    if (policy.bpuOn != current_.bpuOn) {
        stall += penalties_.bpuSwitchCycles;
        ++stats_.bpuSwitches;
        if (policy.bpuOn) {
            bpu_.gateLargeOn();     // re-warms from scratch
        } else {
            bpu_.gateLargeOff();    // global/chooser/BTB state lost
        }
    }

    // --- MLC --------------------------------------------------------------
    if (policy.mlc != current_.mlc) {
        stall += penalties_.mlcSwitchCycles;
        ++stats_.mlcSwitches;
        ++mlcPolicyEpoch_;
        unsigned assoc = mem_.mlc().params().assoc;
        unsigned ways = mlcActiveWays(policy.mlc, assoc);
        std::uint64_t dirty = mem_.setMlcActiveWays(ways);
        stats_.mlcDirtyWritebacks += dirty;
        stall += static_cast<double>(dirty) *
                 penalties_.mlcWritebackCyclesPerLine;
    }

    current_ = policy;
    stats_.stallCycles += stall;
    return stall;
}

void
GatingController::accrue(double cycles)
{
    if (!current_.vpuOn)
        stats_.vpuGatedCycles += cycles;
    if (!current_.bpuOn)
        stats_.bpuGatedCycles += cycles;
    switch (current_.mlc) {
      case MlcPolicy::AllWays:
        stats_.mlcFullCycles += cycles;
        break;
      case MlcPolicy::HalfWays:
        stats_.mlcHalfCycles += cycles;
        break;
      case MlcPolicy::QuarterWays:
        stats_.mlcQuarterCycles += cycles;
        break;
      case MlcPolicy::OneWay:
        stats_.mlcOneWayCycles += cycles;
        break;
    }
}

double
GatingController::mlcActiveFraction() const
{
    unsigned assoc = mem_.mlc().params().assoc;
    return static_cast<double>(mlcActiveWays(current_.mlc, assoc)) / assoc;
}

} // namespace powerchop
