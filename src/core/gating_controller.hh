/**
 * @file
 * The gating controller: enacts policy vectors on the physical units
 * and accounts for every overhead of Section IV-D — switch latencies
 * (50/30/20 cycles for MLC/VPU/BPU), the VPU's 500-cycle register
 * save/restore, MLC dirty-line write-backs, state loss with re-warm,
 * and the per-switch energy overhead events.
 */

#ifndef POWERCHOP_CORE_GATING_CONTROLLER_HH
#define POWERCHOP_CORE_GATING_CONTROLLER_HH

#include <cstdint>

#include "core/policy.hh"
#include "uarch/bpu_complex.hh"
#include "uarch/mem_hierarchy.hh"
#include "uarch/vpu.hh"

namespace powerchop
{

class FaultInjector;

namespace telemetry
{
class TraceRecorder;
} // namespace telemetry

/** Performance penalties of gating transitions (Section IV-D). */
struct GatingPenalties
{
    double mlcSwitchCycles = 50.0;
    double vpuSwitchCycles = 30.0;
    double bpuSwitchCycles = 20.0;

    /** Explicit VPU register-file save/restore per transition. */
    double vpuSaveRestoreCycles = 500.0;

    /** Cycles to write one dirty MLC line back to the LLC; execution
     *  is halted while write-backs occur. */
    double mlcWritebackCyclesPerLine = 4.0;
};

/** Per-unit switch counters and state residency integrals. */
struct GatingStats
{
    std::uint64_t vpuSwitches = 0;
    std::uint64_t bpuSwitches = 0;
    std::uint64_t mlcSwitches = 0;

    double vpuGatedCycles = 0;
    double bpuGatedCycles = 0;
    double mlcFullCycles = 0;
    double mlcHalfCycles = 0;
    double mlcQuarterCycles = 0;
    double mlcOneWayCycles = 0;

    std::uint64_t mlcDirtyWritebacks = 0;
    double stallCycles = 0;
};

/**
 * Applies gating policies to the VPU, BPU and MLC.
 *
 * Residency accounting uses an accrue-then-transition protocol: the
 * simulator calls accrue(delta) as cycles elapse; transitions bill
 * their stalls and bump switch counters.
 */
class GatingController
{
  public:
    /**
     * @param vpu  The vector unit.
     * @param bpu  The branch predictor complex.
     * @param mem  The memory hierarchy (owns the MLC).
     * @param penalties Transition costs.
     */
    GatingController(Vpu &vpu, BpuComplex &bpu, MemHierarchy &mem,
                     const GatingPenalties &penalties = {});

    /**
     * Transition the units to a policy.
     *
     * @param policy Target policy vector.
     * @return stall cycles charged for the transitions.
     */
    double applyPolicy(const GatingPolicy &policy);

    /** Add elapsed cycles to the current states' residency. */
    void accrue(double cycles);

    const GatingPolicy &current() const { return current_; }
    const GatingStats &stats() const { return stats_; }
    const GatingPenalties &penalties() const { return penalties_; }

    /** Bumped whenever the MLC way policy actually changes; lets the
     *  simulator cache the per-policy access counter it increments on
     *  the memory hot path instead of re-dispatching on the policy
     *  enum at every MLC access. */
    std::uint64_t mlcPolicyEpoch() const { return mlcPolicyEpoch_; }

    /** Active MLC way fraction under the current policy. */
    double mlcActiveFraction() const;

    /**
     * Attach a fault injector (nullptr detaches). An active injector
     * may bit-flip the controller's current-state record before a
     * policy application (forcing spurious or missed transitions) and
     * stretch transition stalls (slow wakeups).
     */
    void setFaultInjector(FaultInjector *injector)
    {
        injector_ = injector;
    }

    /** Attach a trace recorder (nullptr detaches). Each unit state
     *  change emits one gate-state event with the stall cycles
     *  attributed to that unit's transition; recording never feeds
     *  back into gating decisions. */
    void setTrace(telemetry::TraceRecorder *trace) { trace_ = trace; }

  private:
    Vpu &vpu_;
    BpuComplex &bpu_;
    MemHierarchy &mem_;
    GatingPenalties penalties_;
    GatingPolicy current_ = GatingPolicy::fullPower();
    GatingStats stats_;
    std::uint64_t mlcPolicyEpoch_ = 0;
    FaultInjector *injector_ = nullptr;
    telemetry::TraceRecorder *trace_ = nullptr;
};

} // namespace powerchop

#endif // POWERCHOP_CORE_GATING_CONTROLLER_HH
