#include "core/htb.hh"

#include <algorithm>

#include "common/logging.hh"

namespace powerchop
{

Htb::Htb(const HtbParams &params)
    : params_(params), entries_(params.entries)
{
    if (params.entries < signatureLength)
        fatal("HTB must hold at least %u entries", signatureLength);
    if (params.windowSize == 0)
        fatal("HTB window size must be non-zero");
}

std::optional<WindowReport>
Htb::recordTranslation(TranslationId id, std::uint64_t insns_executed)
{
    if (id == invalidTranslationId)
        panic("HTB fed the invalid translation id");

    // Fully associative search; in hardware this is a CAM match, here
    // a linear scan over at most 128 live entries.
    Entry *found = nullptr;
    for (std::size_t i = 0; i < used_; ++i) {
        if (entries_[i].id == id) {
            found = &entries_[i];
            break;
        }
    }

    if (found) {
        found->insns += insns_executed;
    } else if (used_ < entries_.size()) {
        entries_[used_].id = id;
        entries_[used_].insns = insns_executed;
        ++used_;
    } else {
        // More unique translations than entries: ignore (IV-B2).
        ++overflowDrops_;
    }

    ++windowTranslations_;
    windowInsns_ += insns_executed;

    if (windowTranslations_ >= params_.windowSize) {
        WindowReport rep = makeReport();
        return rep;
    }
    return std::nullopt;
}

std::optional<WindowReport>
Htb::flushWindow()
{
    if (windowTranslations_ == 0)
        return std::nullopt;
    return makeReport();
}

WindowReport
Htb::makeReport()
{
    WindowReport rep;
    rep.instructions = windowInsns_;
    rep.translations = windowTranslations_;

    rep.profile.reserve(used_);
    for (std::size_t i = 0; i < used_; ++i)
        rep.profile.emplace_back(entries_[i].id, entries_[i].insns);

    // Hottest N by attributed dynamic instructions form the signature.
    std::vector<std::size_t> order(used_);
    for (std::size_t i = 0; i < used_; ++i)
        order[i] = i;
    std::size_t top = std::min<std::size_t>(signatureLength, used_);
    std::partial_sort(order.begin(), order.begin() + top, order.end(),
                      [this](std::size_t a, std::size_t b) {
                          if (entries_[a].insns != entries_[b].insns)
                              return entries_[a].insns > entries_[b].insns;
                          return entries_[a].id < entries_[b].id;
                      });

    TranslationId ids[signatureLength];
    for (std::size_t i = 0; i < top; ++i)
        ids[i] = entries_[order[i]].id;
    rep.signature = PhaseSignature(ids, top);

    // Phase-signature sanity: a window that executed translations
    // must emit a non-empty signature no longer than the window, or
    // downstream PVT/CDE state is built on garbage.
    panicIf(rep.translations == 0,
            "HTB emitted a window report with zero translations");
    panicIf(used_ > 0 && rep.signature.empty(),
            "HTB emitted an empty signature for a non-empty window");
    panicIf(rep.translations > params_.windowSize,
            "HTB window overran its configured size");

    std::sort(rep.profile.begin(), rep.profile.end());

    // Flush for the next window.
    used_ = 0;
    windowTranslations_ = 0;
    windowInsns_ = 0;
    ++windows_;
    return rep;
}

} // namespace powerchop
