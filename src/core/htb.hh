/**
 * @file
 * The Hot Translation Buffer (HTB), Section IV-B2.
 *
 * A 128-entry fully associative hardware buffer tracking, for the
 * current execution window, each executed translation and the dynamic
 * instructions attributed to it. Entries update as a side effect of
 * translation-head execution, off the critical path. At the end of
 * each window (1000 executed translations) the HTB emits the phase
 * signature — the N = 4 hottest translations — triggers a PVT lookup
 * and flushes for the next window.
 */

#ifndef POWERCHOP_CORE_HTB_HH
#define POWERCHOP_CORE_HTB_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "core/signature.hh"

namespace powerchop
{

/** HTB configuration (Section IV-B2/IV-B4). */
struct HtbParams
{
    /** Fully associative entries (1 KB of storage at 64b/entry). */
    unsigned entries = 128;

    /** Execution window length in executed translations. */
    unsigned windowSize = 1000;
};

/** What the HTB reports at an execution-window boundary. */
struct WindowReport
{
    PhaseSignature signature;

    /** Dynamic instructions executed during the window. */
    InsnCount instructions = 0;

    /** Translations executed during the window (== windowSize unless
     *  the run ended early). */
    TransCount translations = 0;

    /** The full (translation id, dynamic instruction count) profile
     *  of the window; used by the Figure 8 code-similarity analysis
     *  and by tests. Sorted by id. */
    std::vector<std::pair<TranslationId, std::uint64_t>> profile;
};

/**
 * The hot translation buffer.
 */
class Htb
{
  public:
    explicit Htb(const HtbParams &params = {});

    /**
     * Record the execution of a translation head.
     *
     * @param id            The translation's unique id.
     * @param insns_executed Dynamic instructions executed by this
     *                      translation (attributed to it).
     * @return a window report when this execution completes a window.
     */
    std::optional<WindowReport> recordTranslation(TranslationId id,
                                                  std::uint64_t
                                                      insns_executed);

    /**
     * Force-close the current window (end of run).
     * @return the report for the partial window, if non-empty.
     */
    std::optional<WindowReport> flushWindow();

    const HtbParams &params() const { return params_; }

    /** Translations dropped because the window had more unique
     *  translations than HTB entries (they are simply ignored,
     *  Section IV-B2). */
    std::uint64_t overflowDrops() const { return overflowDrops_; }

    /** Number of completed windows. */
    std::uint64_t windowsCompleted() const { return windows_; }

    /** Unique translations currently tracked (for tests). */
    std::size_t occupancy() const { return used_; }

  private:
    struct Entry
    {
        TranslationId id = invalidTranslationId;
        std::uint64_t insns = 0;
    };

    WindowReport makeReport();

    HtbParams params_;
    std::vector<Entry> entries_;
    std::size_t used_ = 0;
    TransCount windowTranslations_ = 0;
    InsnCount windowInsns_ = 0;
    std::uint64_t overflowDrops_ = 0;
    std::uint64_t windows_ = 0;
};

} // namespace powerchop

#endif // POWERCHOP_CORE_HTB_HH
