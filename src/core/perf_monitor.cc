#include "core/perf_monitor.hh"

namespace powerchop
{

PerfMonitor::PerfMonitor(BpuComplex &bpu, MemHierarchy &mem)
    : bpu_(bpu), mem_(mem)
{
}

WindowProfile
PerfMonitor::snapshotAndReset()
{
    WindowProfile wp;
    wp.totalInsns = insns_;
    wp.simdInsns = simd_;
    wp.l2Hits = mem_.mlcWindowHits();
    wp.mispredLarge = bpu_.largeWindowMispredictRate();
    wp.mispredSmall = bpu_.smallWindowMispredictRate();

    insns_ = 0;
    simd_ = 0;
    mem_.resetWindowStats();
    bpu_.resetWindowStats();
    return wp;
}

} // namespace powerchop
