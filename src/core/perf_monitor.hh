/**
 * @file
 * Hardware performance monitors sampled by the CDE at window edges.
 *
 * The paper's CDE reads hardware performance counters to score unit
 * criticality: committed SIMD and total instruction counts (VPU), L2
 * hit counts (MLC), and the mispredict rates of the large and small
 * predictors (BPU). This class owns the per-window instruction-side
 * counters and snapshots the unit-side window counters.
 */

#ifndef POWERCHOP_CORE_PERF_MONITOR_HH
#define POWERCHOP_CORE_PERF_MONITOR_HH

#include <cstdint>

#include "isa/instruction.hh"
#include "uarch/bpu_complex.hh"
#include "uarch/mem_hierarchy.hh"

namespace powerchop
{

/** One window's profile, the CDE's raw material (Section IV-C2). */
struct WindowProfile
{
    std::uint64_t totalInsns = 0;
    std::uint64_t simdInsns = 0;
    std::uint64_t l2Hits = 0;
    double mispredLarge = 0.0;
    double mispredSmall = 0.0;

    /** Criticality_VPU = Phase_SIMD / Phase_TotInsn. */
    double
    vpuCriticality() const
    {
        return totalInsns
            ? static_cast<double>(simdInsns) / totalInsns : 0.0;
    }

    /** Criticality_MLC = Phase_L2Hit / Phase_TotInsn. */
    double
    mlcCriticality() const
    {
        return totalInsns
            ? static_cast<double>(l2Hits) / totalInsns : 0.0;
    }
};

/**
 * Window-scoped performance counters.
 */
class PerfMonitor
{
  public:
    PerfMonitor(BpuComplex &bpu, MemHierarchy &mem);

    /** Count one committed instruction. */
    void
    onCommit(OpClass op)
    {
        ++insns_;
        if (op == OpClass::SimdOp)
            ++simd_;
    }

    /**
     * Count a burst of committed instructions at once. The counters
     * are only read at window edges (block heads), never inside a
     * burst, so bulk accumulation is exactly equivalent to per-
     * instruction onCommit() calls.
     *
     * @param insns Instructions committed (all classes).
     * @param simd  SIMD instructions among them.
     */
    void
    onCommitBulk(std::uint64_t insns, std::uint64_t simd)
    {
        insns_ += insns;
        simd_ += simd;
    }

    /**
     * Snapshot the window's profile and reset all window counters
     * (both local and in the monitored units).
     */
    WindowProfile snapshotAndReset();

  private:
    BpuComplex &bpu_;
    MemHierarchy &mem_;
    std::uint64_t insns_ = 0;
    std::uint64_t simd_ = 0;
};

} // namespace powerchop

#endif // POWERCHOP_CORE_PERF_MONITOR_HH
