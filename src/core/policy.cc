#include "core/policy.hh"

#include "common/logging.hh"

namespace powerchop
{

unsigned
mlcActiveWays(MlcPolicy p, unsigned assoc)
{
    if (assoc == 0)
        panic("mlcActiveWays with zero associativity");
    switch (p) {
      case MlcPolicy::AllWays:
        return assoc;
      case MlcPolicy::HalfWays:
        return assoc >= 2 ? assoc / 2 : 1;
      case MlcPolicy::QuarterWays:
        return assoc >= 4 ? assoc / 4 : 1;
      case MlcPolicy::OneWay:
        return 1;
    }
    panic("unknown MlcPolicy %d", static_cast<int>(p));
}

const char *
mlcPolicyName(MlcPolicy p)
{
    switch (p) {
      case MlcPolicy::AllWays:
        return "all";
      case MlcPolicy::HalfWays:
        return "half";
      case MlcPolicy::QuarterWays:
        return "quarter";
      case MlcPolicy::OneWay:
        return "1-way";
    }
    panic("unknown MlcPolicy %d", static_cast<int>(p));
}

std::uint8_t
GatingPolicy::encode() const
{
    std::uint8_t bits = 0;
    if (vpuOn)
        bits |= 0b1000;
    if (bpuOn)
        bits |= 0b0100;
    bits |= static_cast<std::uint8_t>(mlc) & 0b11;
    return bits;
}

GatingPolicy
GatingPolicy::decode(std::uint8_t bits)
{
    if (bits & ~0b1111)
        panic("policy vector 0x%x wider than 4 bits", bits);
    GatingPolicy p;
    p.vpuOn = bits & 0b1000;
    p.bpuOn = bits & 0b0100;
    p.mlc = static_cast<MlcPolicy>(bits & 0b11);
    return p;
}

GatingPolicy
GatingPolicy::fullPower()
{
    return GatingPolicy{};
}

GatingPolicy
GatingPolicy::minPower()
{
    GatingPolicy p;
    p.vpuOn = false;
    p.bpuOn = false;
    p.mlc = MlcPolicy::OneWay;
    return p;
}

std::string
GatingPolicy::toString() const
{
    return csprintf("V=%d,B=%d,M=%s", vpuOn ? 1 : 0, bpuOn ? 1 : 0,
                    mlcPolicyName(mlc));
}

} // namespace powerchop
