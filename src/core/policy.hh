/**
 * @file
 * Power-gating policies: the 4-bit policy vector stored in the PVT.
 *
 * Per Section IV-B3: the VPU and BPU policies are bimodal (1 bit
 * each: gated on/off) and the MLC policy is 2 bits with three states
 * (all ways, half the ways, one way active).
 */

#ifndef POWERCHOP_CORE_POLICY_HH
#define POWERCHOP_CORE_POLICY_HH

#include <cstdint>
#include <string>

namespace powerchop
{

/**
 * The MLC's way-gating states.
 *
 * The paper uses three (all/half/one); Section IV-B3 notes the state
 * count can grow by widening the PVT's policy bits. QuarterWays uses
 * the fourth encoding of the existing 2-bit field and is an optional
 * extension (the CDE only assigns it when configured to).
 */
enum class MlcPolicy : std::uint8_t
{
    AllWays = 0b11,
    QuarterWays = 0b10,
    HalfWays = 0b01,
    OneWay = 0b00,
};

/** @return active ways for a policy given the MLC associativity. */
unsigned mlcActiveWays(MlcPolicy p, unsigned assoc);

/** @return short display name ("all"/"half"/"1-way"). */
const char *mlcPolicyName(MlcPolicy p);

/**
 * One phase's gating policy vector.
 */
struct GatingPolicy
{
    bool vpuOn = true;
    bool bpuOn = true;
    MlcPolicy mlc = MlcPolicy::AllWays;

    /** Encode to the 4-bit PVT representation (V B MM). */
    std::uint8_t encode() const;

    /** Decode from the 4-bit PVT representation. */
    static GatingPolicy decode(std::uint8_t bits);

    bool
    operator==(const GatingPolicy &o) const
    {
        return vpuOn == o.vpuOn && bpuOn == o.bpuOn && mlc == o.mlc;
    }
    bool operator!=(const GatingPolicy &o) const { return !(*this == o); }

    /** The full-power policy (everything on). */
    static GatingPolicy fullPower();

    /** The minimum-power policy (everything gated/1-way). */
    static GatingPolicy minPower();

    /** Render as e.g. "V=1,B=0,M=half". */
    std::string toString() const;
};

} // namespace powerchop

#endif // POWERCHOP_CORE_POLICY_HH
