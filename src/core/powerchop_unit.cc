#include "core/powerchop_unit.hh"

#include "core/fault_injector.hh"
#include "telemetry/metrics.hh"
#include "telemetry/trace.hh"

namespace powerchop
{

PowerChopUnit::PowerChopUnit(const PowerChopParams &params,
                             GatingController &controller,
                             Nucleus &nucleus, PerfMonitor &monitor)
    : htb_(params.htb), pvt_(params.pvt), cde_(params.cde),
      watchdog_(params.qos), controller_(controller),
      nucleus_(nucleus), monitor_(monitor)
{
}

void
PowerChopUnit::setManagedUnits(bool vpu, bool bpu, bool mlc)
{
    cde_.setManageVpu(vpu);
    cde_.setManageBpu(bpu);
    cde_.setManageMlc(mlc);
}

double
PowerChopUnit::onTranslationHead(TranslationId id, std::uint64_t insns,
                                 Cycles now)
{
    ++translations_;

    if (injector_ && injector_->active()) {
        // A dropped event never reaches the HTB (the update raced and
        // lost); an aliased one charges the instructions to the wrong
        // translation, skewing the window's phase signature.
        if (injector_->dropTranslation())
            return 0;
        id = injector_->aliasTranslation(id);
    }

    auto report = htb_.recordTranslation(id, insns);
    if (!report)
        return 0;
    return onWindow(*report, now);
}

double
PowerChopUnit::onWindow(const WindowReport &rep, Cycles now)
{
    if (observer_)
        observer_(rep);

    // The window profile is sampled (and reset) at every window edge
    // regardless of hit/miss, mirroring counters that free-run per
    // window in hardware.
    WindowProfile profile = monitor_.snapshotAndReset();

    // Telemetry observes the closing window before this edge's
    // transitions: the recorded policy and residency are the ones in
    // effect while the window executed.
    ++windowIndex_;
    if (trace_) {
        const double wc = now >= 0 ? now - lastWindowEdge_ : 0;
        const double ipc =
            wc > 0 ? static_cast<double>(rep.instructions) / wc : 0;
        trace_->window(windowIndex_, rep.instructions, ipc);
        trace_->phase(rep.signature.hash());
    }
    if (metrics_)
        metrics_->onWindow(rep, profile, now, controller_);
    if (now >= 0)
        lastWindowEdge_ = now;

    // The QoS watchdog sees every window edge, including the ones a
    // PVT hit would service entirely in hardware: realized slowdown
    // is a property of the window, not of the lookup outcome.
    if (watchdog_.enabled() && now >= 0) {
        QosWatchdog::Action act =
            watchdog_.onWindow(rep.instructions, now);
        if (trace_) {
            const std::uint64_t v = watchdog_.stats().violations;
            for (; lastQosViolations_ < v; ++lastQosViolations_)
                trace_->qosViolation();
        }
        if (act == QosWatchdog::Action::EnterSafeMode) {
            if (trace_)
                trace_->safeMode(true);
            wasInSafeMode_ = true;
            return controller_.applyPolicy(watchdog_.safePolicy());
        }
        if (watchdog_.inSafeMode()) {
            // Gating suspended: no PVT/CDE activity until the
            // cooldown expires, so a corrupted policy source cannot
            // keep re-degrading the machine.
            return 0;
        }
        if (wasInSafeMode_) {
            // First edge after the cooldown expired.
            wasInSafeMode_ = false;
            if (trace_)
                trace_->safeMode(false);
        }
    }

    double stall = 0;
    if (auto policy = pvt_.lookup(rep.signature)) {
        // PVT hit: hardware applies the gating decisions directly. A
        // fault here models a soft error in the PVT's policy array.
        GatingPolicy applied = *policy;
        if (injector_ && injector_->active())
            applied = injector_->corruptPolicy(applied);
        if (trace_) {
            trace_->cde(telemetry::CdeEvent::PvtHit,
                        applied.encode());
        }
        stall += controller_.applyPolicy(applied);
        return stall;
    }

    // PVT miss: trap into the CDE. The interrupt stall elapses before
    // the CDE runs, so the trace clock moves past it first.
    stall += nucleus_.takeInterrupt(InterruptKind::PvtMiss);
    if (trace_)
        trace_->advanceCycles(stall);
    const std::uint64_t capacity_before = cde_.capacityMisses();
    const std::uint64_t phases_before = cde_.newPhases();
    Cde::Result res = cde_.onPvtMiss(rep.signature, profile, pvt_);
    if (trace_) {
        // Classify the CDE's decision from its observable outcome.
        telemetry::CdeEvent what;
        if (cde_.capacityMisses() != capacity_before)
            what = telemetry::CdeEvent::Reregister;
        else if (cde_.newPhases() != phases_before)
            what = telemetry::CdeEvent::ProfileStart;
        else if (res.keepCurrent)
            what = telemetry::CdeEvent::Profiling;
        else
            what = telemetry::CdeEvent::Install;
        trace_->cde(what,
                    res.keepCurrent ? 0 : res.policy.encode());
        trace_->advanceCycles(res.cycles);
    }
    stall += res.cycles;
    if (!res.keepCurrent)
        stall += controller_.applyPolicy(res.policy);
    return stall;
}

} // namespace powerchop
