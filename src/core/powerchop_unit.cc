#include "core/powerchop_unit.hh"

namespace powerchop
{

PowerChopUnit::PowerChopUnit(const PowerChopParams &params,
                             GatingController &controller,
                             Nucleus &nucleus, PerfMonitor &monitor)
    : htb_(params.htb), pvt_(params.pvt), cde_(params.cde),
      controller_(controller), nucleus_(nucleus), monitor_(monitor)
{
}

void
PowerChopUnit::setManagedUnits(bool vpu, bool bpu, bool mlc)
{
    cde_.setManageVpu(vpu);
    cde_.setManageBpu(bpu);
    cde_.setManageMlc(mlc);
}

double
PowerChopUnit::onTranslationHead(TranslationId id, std::uint64_t insns)
{
    ++translations_;
    auto report = htb_.recordTranslation(id, insns);
    if (!report)
        return 0;
    return onWindow(*report);
}

double
PowerChopUnit::onWindow(const WindowReport &rep)
{
    if (observer_)
        observer_(rep);

    // The window profile is sampled (and reset) at every window edge
    // regardless of hit/miss, mirroring counters that free-run per
    // window in hardware.
    WindowProfile profile = monitor_.snapshotAndReset();

    double stall = 0;
    if (auto policy = pvt_.lookup(rep.signature)) {
        // PVT hit: hardware applies the gating decisions directly.
        stall += controller_.applyPolicy(*policy);
        return stall;
    }

    // PVT miss: trap into the CDE.
    stall += nucleus_.takeInterrupt(InterruptKind::PvtMiss);
    Cde::Result res = cde_.onPvtMiss(rep.signature, profile, pvt_);
    stall += res.cycles;
    if (!res.keepCurrent)
        stall += controller_.applyPolicy(res.policy);
    return stall;
}

} // namespace powerchop
