/**
 * @file
 * The PowerChop orchestrator: wires the HTB, PVT, CDE, nucleus and
 * gating controller into the runtime loop of Figure 4.
 *
 * Per translation-head execution: the HTB accumulates counts; at each
 * window boundary the HTB emits a phase signature and triggers a PVT
 * lookup. Hits apply the stored policy at the phase edge. Misses trap
 * to the CDE, which profiles new phases or re-registers evicted ones.
 */

#ifndef POWERCHOP_CORE_POWERCHOP_UNIT_HH
#define POWERCHOP_CORE_POWERCHOP_UNIT_HH

#include <functional>

#include "bt/nucleus.hh"
#include "core/cde.hh"
#include "core/gating_controller.hh"
#include "core/htb.hh"
#include "core/perf_monitor.hh"
#include "core/pvt.hh"
#include "core/qos_watchdog.hh"

namespace powerchop
{

class FaultInjector;

namespace telemetry
{
class TraceRecorder;
class WindowMetricsCollector;
} // namespace telemetry

/** PowerChop system configuration. */
struct PowerChopParams
{
    HtbParams htb;
    PvtParams pvt;
    CdeParams cde;

    /** Optional QoS watchdog over the realized per-window slowdown
     *  (off by default; see qos_watchdog.hh). */
    QosParams qos;
};

/**
 * The complete PowerChop mechanism.
 */
class PowerChopUnit
{
  public:
    /**
     * @param params     Structure/threshold configuration.
     * @param controller Enacts policies on the physical units.
     * @param nucleus    Charges PVT-miss interrupt costs.
     * @param monitor    Source of window profiles for the CDE.
     */
    PowerChopUnit(const PowerChopParams &params,
                  GatingController &controller, Nucleus &nucleus,
                  PerfMonitor &monitor);

    /**
     * Record one translation-head execution.
     *
     * @param id    Executing translation's id.
     * @param insns Dynamic instructions attributed to it.
     * @param now   Current cycle time; feeds the QoS watchdog's
     *              per-window IPC measurement. Negative (the default)
     *              means "unknown", which keeps the watchdog idle.
     * @return stall cycles (policy switches, PVT-miss handling).
     */
    double onTranslationHead(TranslationId id, std::uint64_t insns,
                             Cycles now = -1.0);

    /** Observer invoked with every completed window report (used by
     *  the Figure 8 phase-quality analysis); pass nullptr to clear. */
    void
    setWindowObserver(std::function<void(const WindowReport &)> obs)
    {
        observer_ = std::move(obs);
    }

    /** Restrict management to a subset of units (Section V-C runs
     *  gate one unit at a time). */
    void setManagedUnits(bool vpu, bool bpu, bool mlc);

    /** Attach a fault injector (nullptr detaches). An active
     *  injector can drop or alias translation-head events before the
     *  HTB sees them and corrupt policy vectors delivered by PVT
     *  hits. */
    void setFaultInjector(FaultInjector *injector)
    {
        injector_ = injector;
    }

    /** Attach a trace recorder (nullptr detaches). Window edges,
     *  phase-signature changes, CDE decisions and QoS watchdog
     *  activity are recorded; recording never alters decisions. */
    void setTrace(telemetry::TraceRecorder *trace) { trace_ = trace; }

    /** Attach a per-window metrics collector (nullptr detaches); it
     *  observes every window edge with the window's report and
     *  performance profile. */
    void setMetricsCollector(telemetry::WindowMetricsCollector *c)
    {
        metrics_ = c;
    }

    const Htb &htb() const { return htb_; }
    const Pvt &pvt() const { return pvt_; }
    const Cde &cde() const { return cde_; }
    const QosWatchdog &qos() const { return watchdog_; }

    /** Total translation-head executions observed. */
    std::uint64_t translationsSeen() const { return translations_; }

  private:
    /** Handle a window report: PVT lookup, CDE on miss. */
    double onWindow(const WindowReport &rep, Cycles now);

    Htb htb_;
    Pvt pvt_;
    Cde cde_;
    QosWatchdog watchdog_;
    GatingController &controller_;
    Nucleus &nucleus_;
    PerfMonitor &monitor_;
    std::function<void(const WindowReport &)> observer_;
    std::uint64_t translations_ = 0;
    FaultInjector *injector_ = nullptr;
    telemetry::TraceRecorder *trace_ = nullptr;
    telemetry::WindowMetricsCollector *metrics_ = nullptr;

    /** Telemetry-only window tracking (window index, last edge time
     *  for IPC, last seen QoS counters). Never read by decisions. */
    std::uint64_t windowIndex_ = 0;
    Cycles lastWindowEdge_ = 0;
    std::uint64_t lastQosViolations_ = 0;
    bool wasInSafeMode_ = false;
};

} // namespace powerchop

#endif // POWERCHOP_CORE_POWERCHOP_UNIT_HH
