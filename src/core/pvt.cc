#include "core/pvt.hh"

#include "common/logging.hh"

namespace powerchop
{

Pvt::Pvt(const PvtParams &params)
    : params_(params), entries_(params.entries),
      maxAge_(static_cast<std::uint8_t>((1u << params.ageBits) - 1))
{
    if (params.entries == 0)
        fatal("PVT requires at least one entry");
    if (params.ageBits == 0 || params.ageBits > 8)
        fatal("PVT age bits out of range");
}

void
Pvt::touch(Entry &e)
{
    for (auto &other : entries_) {
        if (other.valid && other.age < maxAge_)
            ++other.age;
    }
    e.age = 0;
}

std::optional<GatingPolicy>
Pvt::lookup(const PhaseSignature &sig)
{
    ++lookups_;
    for (auto &e : entries_) {
        if (e.valid && e.signature == sig) {
            ++hits_;
            touch(e);
            return e.policy;
        }
    }
    return std::nullopt;
}

std::optional<PvtEviction>
Pvt::registerPolicy(const PhaseSignature &sig, const GatingPolicy &policy)
{
    // Update in place if resident.
    for (auto &e : entries_) {
        if (e.valid && e.signature == sig) {
            e.policy = policy;
            touch(e);
            return std::nullopt;
        }
    }

    // Prefer an invalid entry, else the oldest (approximate LRU).
    Entry *victim = nullptr;
    for (auto &e : entries_) {
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (!victim || e.age > victim->age)
            victim = &e;
    }

    std::optional<PvtEviction> evicted;
    if (victim->valid) {
        evicted = PvtEviction{victim->signature, victim->policy};
        ++evictions_;
    }

    victim->valid = true;
    victim->signature = sig;
    victim->policy = policy;
    touch(*victim);
    return evicted;
}

bool
Pvt::contains(const PhaseSignature &sig) const
{
    for (const auto &e : entries_) {
        if (e.valid && e.signature == sig)
            return true;
    }
    return false;
}

unsigned
Pvt::storageBytes() const
{
    // Each entry: 4 x 32-bit translation PCs + 4 policy bits, plus
    // age bits; the paper rounds to 264 bytes for 16 entries.
    unsigned bits_per_entry = signatureLength * 32 + 4 + params_.ageBits;
    return (params_.entries * bits_per_entry + 7) / 8;
}

std::size_t
Pvt::occupancy() const
{
    std::size_t n = 0;
    for (const auto &e : entries_)
        if (e.valid)
            ++n;
    return n;
}

} // namespace powerchop
