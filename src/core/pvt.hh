/**
 * @file
 * The Policy Vector Table (PVT), Section IV-B3.
 *
 * A 16-entry fully associative hardware cache mapping recently
 * executed phase signatures to their 4-bit gating policy vectors,
 * with approximate-LRU replacement. Hits apply the stored policy in
 * hardware at the phase edge; misses interrupt to the Criticality
 * Decision Engine, which distinguishes compulsory misses (new phases
 * needing profiling) from capacity misses (the policy exists in the
 * CDE's memory-backed store and is re-registered).
 */

#ifndef POWERCHOP_CORE_PVT_HH
#define POWERCHOP_CORE_PVT_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "core/policy.hh"
#include "core/signature.hh"

namespace powerchop
{

/** PVT configuration (Section IV-B4: 16 entries, 264 bytes). */
struct PvtParams
{
    unsigned entries = 16;

    /** Approximate-LRU: age bits per entry. With 3 bits the aging
     *  shift behaves like a coarse reference clock. */
    unsigned ageBits = 3;
};

/** An entry evicted during registration (returned to the CDE for the
 *  memory-backed store). */
struct PvtEviction
{
    PhaseSignature signature;
    GatingPolicy policy;
};

/**
 * The policy vector table.
 */
class Pvt
{
  public:
    explicit Pvt(const PvtParams &params = {});

    /**
     * Look up a phase signature.
     *
     * @param sig The signature emitted by the HTB.
     * @return the stored policy on a hit; nullopt on a miss (the
     *         caller must raise a PVT-miss interrupt).
     */
    std::optional<GatingPolicy> lookup(const PhaseSignature &sig);

    /**
     * Register (or update) a signature -> policy mapping; called by
     * the CDE.
     *
     * @return the evicted entry, if registration displaced one.
     */
    std::optional<PvtEviction> registerPolicy(const PhaseSignature &sig,
                                              const GatingPolicy &policy);

    /** @return true if the signature is currently resident. */
    bool contains(const PhaseSignature &sig) const;

    /** Hardware cost: bytes of storage (Section IV-B4). */
    unsigned storageBytes() const;

    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return lookups_ - hits_; }
    std::uint64_t evictions() const { return evictions_; }
    std::size_t occupancy() const;

    const PvtParams &params() const { return params_; }

  private:
    struct Entry
    {
        bool valid = false;
        PhaseSignature signature;
        GatingPolicy policy;
        /** Approximate-LRU age; 0 = most recently used. */
        std::uint8_t age = 0;
    };

    /** Age all valid entries (saturating), zeroing the touched one. */
    void touch(Entry &e);

    PvtParams params_;
    std::vector<Entry> entries_;
    std::uint8_t maxAge_;
    std::uint64_t lookups_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t evictions_ = 0;
};

} // namespace powerchop

#endif // POWERCHOP_CORE_PVT_HH
