#include "core/qos_watchdog.hh"

#include "common/logging.hh"

namespace powerchop
{

void
QosParams::validate(const std::string &who) const
{
    if (!(slowdownThreshold > 0.0 && slowdownThreshold < 1.0))
        fatal("%s: qos.slowdownThreshold=%g outside (0, 1)",
              who.c_str(), slowdownThreshold);
    if (violationWindows == 0)
        fatal("%s: qos.violationWindows must be non-zero", who.c_str());
    if (cooldownWindows == 0)
        fatal("%s: qos.cooldownWindows must be non-zero", who.c_str());
    if (!(referenceDecay > 0.0 && referenceDecay <= 1.0))
        fatal("%s: qos.referenceDecay=%g outside (0, 1]", who.c_str(),
              referenceDecay);
}

QosWatchdog::QosWatchdog(const QosParams &params) : params_(params)
{
}

QosWatchdog::Action
QosWatchdog::onWindow(InsnCount insns, Cycles now)
{
    if (!params_.enabled)
        return Action::None;

    ++stats_.windowsObserved;

    if (lastEdge_ < 0) {
        lastEdge_ = now;
        return Action::None;
    }
    const Cycles window_cycles = now - lastEdge_;
    lastEdge_ = now;
    if (window_cycles <= 0 || insns == 0)
        return Action::None;

    const double ipc = static_cast<double>(insns) / window_cycles;

    if (cooldownLeft_ > 0) {
        ++stats_.safeModeWindows;
        if (--cooldownLeft_ == 0) {
            // Leaving safe mode: the windows just observed ran
            // ungated, so the realized IPC is a fresh, trustworthy
            // reference for the phase now executing.
            referenceIpc_ = ipc;
            consecutiveViolations_ = 0;
        }
        return Action::None;
    }

    if (ipc >= referenceIpc_) {
        referenceIpc_ = ipc;
        consecutiveViolations_ = 0;
        return Action::None;
    }

    if (ipc < referenceIpc_ * (1.0 - params_.slowdownThreshold)) {
        ++stats_.violations;
        if (++consecutiveViolations_ >= params_.violationWindows) {
            ++stats_.safeModeActivations;
            cooldownLeft_ = params_.cooldownWindows;
            consecutiveViolations_ = 0;
            referenceIpc_ *= params_.referenceDecay;
            return Action::EnterSafeMode;
        }
    } else {
        consecutiveViolations_ = 0;
    }
    referenceIpc_ *= params_.referenceDecay;
    return Action::None;
}

} // namespace powerchop
