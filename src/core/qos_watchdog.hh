/**
 * @file
 * QoS watchdog: runtime performance assertion over the gating stack.
 *
 * PowerChop's CDE bounds slowdown only indirectly, through the
 * thresholds it scores criticality with; a corrupted policy vector, a
 * skewed phase signature or a broken sequencer degrades performance
 * silently. Following the DarkGates observation that hybrid gating
 * designs need an explicit fallback path bounding worst-case
 * performance loss, the watchdog monitors the realized IPC of every
 * execution window against a running reference and, when the loss
 * exceeds the paper's performance threshold for consecutive windows,
 * rolls the machine back to an ungated safe-mode policy and suspends
 * gating for a cooldown period. Silent corruption becomes bounded,
 * observable degradation: activations and safe-mode residency are
 * reported in the run's results.
 *
 * The watchdog is opt-in (enabled = false by default) so that runs
 * without it remain bit-identical to the unhardened gating path.
 */

#ifndef POWERCHOP_CORE_QOS_WATCHDOG_HH
#define POWERCHOP_CORE_QOS_WATCHDOG_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "core/policy.hh"

namespace powerchop
{

/** QoS watchdog configuration. */
struct QosParams
{
    /** Opt-in: off preserves the unhardened gating path exactly. */
    bool enabled = false;

    /** Tolerated per-window IPC loss against the reference before a
     *  window counts as a violation; defaults to the 5% worst-case
     *  slowdown bound the paper's Section V-E baselines are held
     *  to. */
    double slowdownThreshold = 0.05;

    /** Consecutive violating windows before safe mode engages (a
     *  single noisy window is not a rollback). */
    unsigned violationWindows = 2;

    /** Windows gating stays suspended after a rollback. */
    unsigned cooldownWindows = 16;

    /** Per-window decay of the reference IPC toward the realized
     *  IPC, so a genuine phase change (legitimately lower IPC) stops
     *  registering as a violation instead of pinning the watchdog. */
    double referenceDecay = 0.995;

    /** fatal() on out-of-range values, naming the bad field. */
    void validate(const std::string &who) const;
};

/** Watchdog activity counters. */
struct QosStats
{
    std::uint64_t windowsObserved = 0;
    std::uint64_t violations = 0;
    std::uint64_t safeModeActivations = 0;
    std::uint64_t safeModeWindows = 0;
};

/**
 * Per-window slowdown monitor with safe-mode rollback.
 *
 * The owner reports each execution-window edge with the window's
 * instruction count and the current cycle time; the watchdog tracks
 * the realized IPC against a decayed-maximum reference and decides
 * when to enter safe mode. While inSafeMode() the owner must apply
 * safePolicy() (on the EnterSafeMode edge) and suspend policy
 * applications until the cooldown expires.
 */
class QosWatchdog
{
  public:
    enum class Action : std::uint8_t
    {
        None,          ///< Keep gating normally.
        EnterSafeMode, ///< Roll back to safePolicy() now.
    };

    explicit QosWatchdog(const QosParams &params = {});

    bool enabled() const { return params_.enabled; }

    /** @return true while gating is suspended after a rollback. */
    bool inSafeMode() const { return cooldownLeft_ > 0; }

    /** The rollback target: everything ungated, so worst-case
     *  performance is the full-power machine's. */
    GatingPolicy safePolicy() const { return GatingPolicy::fullPower(); }

    /**
     * Observe one execution-window edge.
     *
     * @param insns Instructions executed in the closing window.
     * @param now   Current cycle time (monotone across calls).
     * @return whether the owner must roll back to safePolicy().
     */
    Action onWindow(InsnCount insns, Cycles now);

    const QosStats &stats() const { return stats_; }
    const QosParams &params() const { return params_; }

  private:
    QosParams params_;
    QosStats stats_;

    /** Cycle time of the previous window edge; < 0 before the first
     *  edge is seen (the first window has no interval to measure). */
    Cycles lastEdge_ = -1.0;

    /** Decayed maximum of realized window IPC. */
    double referenceIpc_ = 0;

    unsigned consecutiveViolations_ = 0;
    unsigned cooldownLeft_ = 0;
};

} // namespace powerchop

#endif // POWERCHOP_CORE_QOS_WATCHDOG_HH
