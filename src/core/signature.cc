#include "core/signature.hh"

#include <algorithm>

#include "common/logging.hh"

namespace powerchop
{

PhaseSignature::PhaseSignature(const TranslationId *ids, std::size_t count)
{
    if (count > signatureLength)
        panic("signature built from %zu ids (max %u)", count,
              signatureLength);
    ids_.fill(invalidTranslationId);
    std::copy(ids, ids + count, ids_.begin());
    std::sort(ids_.begin(), ids_.begin() + count);
}

std::size_t
PhaseSignature::hash() const
{
    // FNV-1a over the four 32-bit ids.
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (TranslationId id : ids_) {
        h ^= id;
        h *= 0x100000001b3ull;
    }
    return static_cast<std::size_t>(h);
}

std::string
PhaseSignature::toString() const
{
    std::string out;
    for (unsigned i = 0; i < signatureLength; ++i) {
        if (i)
            out += ",";
        out += csprintf("t%08x", ids_[i]);
    }
    return out;
}

} // namespace powerchop
