/**
 * @file
 * Phase signatures: 128-bit identifiers of application phases.
 *
 * A phase signature is the set of the N = 4 hottest translation ids
 * of an execution window (Section IV-B1). Signatures are stored in
 * canonical (sorted) order so that two windows dominated by the same
 * translations compare equal regardless of their exact hotness
 * ordering, which would otherwise flap between near-equal counts.
 */

#ifndef POWERCHOP_CORE_SIGNATURE_HH
#define POWERCHOP_CORE_SIGNATURE_HH

#include <array>
#include <cstddef>
#include <functional>
#include <string>

#include "common/types.hh"

namespace powerchop
{

/** The paper's signature length N. */
constexpr unsigned signatureLength = 4;

/**
 * A 128-bit phase signature: four 32-bit translation ids, sorted
 * ascending, zero-padded when a window had fewer hot translations.
 */
class PhaseSignature
{
  public:
    PhaseSignature() { ids_.fill(invalidTranslationId); }

    /**
     * Build the canonical signature from up to N translation ids.
     *
     * @param ids   The hottest translation ids (any order).
     * @param count How many are valid.
     */
    PhaseSignature(const TranslationId *ids, std::size_t count);

    bool operator==(const PhaseSignature &o) const { return ids_ == o.ids_; }
    bool operator!=(const PhaseSignature &o) const { return !(*this == o); }
    bool operator<(const PhaseSignature &o) const { return ids_ < o.ids_; }

    /** @return true if no translation ids are present. */
    bool empty() const { return ids_[0] == invalidTranslationId &&
                                ids_[signatureLength - 1] ==
                                    invalidTranslationId; }

    const std::array<TranslationId, signatureLength> &ids() const
    {
        return ids_;
    }

    /** 64-bit hash for hash-map storage. */
    std::size_t hash() const;

    /** Render as "t<a>,t<b>,t<c>,t<d>" for diagnostics. */
    std::string toString() const;

  private:
    std::array<TranslationId, signatureLength> ids_;
};

/** std::hash adapter. */
struct PhaseSignatureHash
{
    std::size_t
    operator()(const PhaseSignature &s) const
    {
        return s.hash();
    }
};

} // namespace powerchop

#endif // POWERCHOP_CORE_SIGNATURE_HH
