#include "core/timeout_gater.hh"

#include "common/logging.hh"

namespace powerchop
{

TimeoutGater::TimeoutGater(Vpu &vpu, const TimeoutParams &params)
    : vpu_(vpu), params_(params)
{
    if (params.timeoutCycles <= 0)
        fatal("timeout period must be positive");
}

double
TimeoutGater::onSimdUse(double now)
{
    double stall = 0;
    if (!vpu_.on()) {
        // The unit is needed: wake it and restore the register file.
        gatedCycles_ += now - gatedSince_;
        vpu_.gateOn();
        ++switches_;
        stall = params_.switchCycles + params_.saveRestoreCycles;
    }
    lastUse_ = now;
    return stall;
}

double
TimeoutGater::checkIdle(double now)
{
    if (!vpu_.on())
        return 0;
    if (now - lastUse_ < params_.timeoutCycles)
        return 0;

    vpu_.gateOff();
    gatedSince_ = now;
    ++switches_;
    return params_.switchCycles + params_.saveRestoreCycles;
}

void
TimeoutGater::finish(double now)
{
    if (!vpu_.on()) {
        gatedCycles_ += now - gatedSince_;
        gatedSince_ = now;
    }
}

} // namespace powerchop
