/**
 * @file
 * Hardware-only idle-timeout power gating, the baseline of the
 * paper's Section V-E comparison.
 *
 * The timeout approach gates a unit off after a fixed number of idle
 * cycles and gates it back on the next time the unit is needed. It
 * works only for units with long idle periods and a clear "needed
 * again" trigger — in practice the VPU. The paper sweeps timeout
 * periods from 100 to 100K cycles and selects 20K cycles as the best
 * period saving power under a 5% worst-case slowdown bound.
 */

#ifndef POWERCHOP_CORE_TIMEOUT_GATER_HH
#define POWERCHOP_CORE_TIMEOUT_GATER_HH

#include <cstdint>

#include "uarch/vpu.hh"

namespace powerchop
{

/** Timeout-gater configuration. */
struct TimeoutParams
{
    /** Idle cycles before the VPU is gated off. */
    double timeoutCycles = 20000.0;

    /** Gate-on/off switch latency (same as PowerChop's VPU). */
    double switchCycles = 30.0;

    /** Register file save/restore per transition. */
    double saveRestoreCycles = 500.0;
};

/**
 * Idle-timeout gater for the VPU.
 *
 * The caller reports time progression and SIMD usage; the gater
 * decides transitions and returns stall cycles to charge.
 */
class TimeoutGater
{
  public:
    explicit TimeoutGater(Vpu &vpu, const TimeoutParams &params = {});

    /**
     * Called when a SIMD instruction is about to execute at time
     * `now` (cycles). If the VPU is off, it must be woken first.
     *
     * @return stall cycles for the wake-up (0 if already on).
     */
    double onSimdUse(double now);

    /**
     * Called periodically (e.g. at block boundaries) to check the
     * idle timeout at time `now`.
     *
     * @return stall cycles for a gate-off transition (0 if none).
     */
    double checkIdle(double now);

    bool vpuOn() const { return vpu_.on(); }
    std::uint64_t switches() const { return switches_; }
    double gatedCycles() const { return gatedCycles_; }

    /** Account residency up to the end of the run. */
    void finish(double now);

    const TimeoutParams &params() const { return params_; }

  private:
    Vpu &vpu_;
    TimeoutParams params_;
    double lastUse_ = 0;
    double gatedSince_ = 0;
    double gatedCycles_ = 0;
    std::uint64_t switches_ = 0;
};

} // namespace powerchop

#endif // POWERCHOP_CORE_TIMEOUT_GATER_HH
