#include "isa/instruction.hh"

#include "common/logging.hh"

namespace powerchop
{

const char *
opClassName(OpClass op)
{
    switch (op) {
      case OpClass::IntAlu:
        return "IntAlu";
      case OpClass::FpAlu:
        return "FpAlu";
      case OpClass::SimdOp:
        return "SimdOp";
      case OpClass::Load:
        return "Load";
      case OpClass::Store:
        return "Store";
      case OpClass::Branch:
        return "Branch";
    }
    panic("unknown OpClass %d", static_cast<int>(op));
}

std::string
toString(const StaticInst &si)
{
    return csprintf("%s @ 0x%llx", opClassName(si.op),
                    static_cast<unsigned long long>(si.pc));
}

} // namespace powerchop
