/**
 * @file
 * Guest ISA instruction definitions.
 *
 * The hybrid processor exposes a simple RISC-like guest ISA to the
 * binary-translation layer. Only the properties that matter to the
 * timing, power and criticality models are represented: the operation
 * class, the PC, and (dynamically) memory addresses and branch
 * outcomes. Instructions are a fixed 4 bytes.
 */

#ifndef POWERCHOP_ISA_INSTRUCTION_HH
#define POWERCHOP_ISA_INSTRUCTION_HH

#include <string>

#include "common/types.hh"

namespace powerchop
{

/** Fixed guest instruction size in bytes. */
constexpr Addr guestInsnBytes = 4;

/**
 * Operation classes of the guest ISA.
 *
 * SimdOp instructions are the ones bound for the vector processing
 * unit; when the VPU is gated off the binary translator emits scalar
 * emulation sequences for them along alternate code paths.
 */
enum class OpClass : std::uint8_t
{
    IntAlu,   ///< Scalar integer ALU operation.
    FpAlu,    ///< Scalar floating point operation.
    SimdOp,   ///< Vector (SIMD) operation; executes on the VPU.
    Load,     ///< Memory load.
    Store,    ///< Memory store.
    Branch,   ///< Conditional or unconditional control transfer.
};

/** @return a short human-readable mnemonic for an op class. */
const char *opClassName(OpClass op);

/**
 * A static (decoded) guest instruction.
 *
 * Static instructions live inside basic blocks owned by a Program and
 * are immutable after program construction.
 */
struct StaticInst
{
    Addr pc = 0;
    OpClass op = OpClass::IntAlu;

    bool isMemRef() const
    {
        return op == OpClass::Load || op == OpClass::Store;
    }
    bool isBranch() const { return op == OpClass::Branch; }
    bool isSimd() const { return op == OpClass::SimdOp; }
};

/**
 * One dynamic instruction as it flows through the pipeline model:
 * the static instruction plus its runtime operands.
 */
struct DynInst
{
    const StaticInst *si = nullptr;

    /** Effective address, valid for loads and stores. */
    Addr effAddr = 0;

    /** Branch outcome, valid for branches. */
    bool taken = false;

    /** Branch target (the next block head), valid for branches. */
    Addr target = 0;

    /** True for block terminators: region-chaining jumps predicted
     *  through the BTB only (no direction prediction). Internal
     *  conditional branches consult the direction predictors. */
    bool isTerminator = false;

    OpClass op() const { return si->op; }
    Addr pc() const { return si->pc; }
};

/** Render a static instruction for debugging/tracing. */
std::string toString(const StaticInst &si);

} // namespace powerchop

#endif // POWERCHOP_ISA_INSTRUCTION_HH
