#include "isa/program.hh"

#include "common/logging.hh"

namespace powerchop
{

BlockId
Program::addBlock(Addr head, const std::vector<OpClass> &body_ops)
{
    if (head == 0 || head % guestInsnBytes != 0)
        panic("block head 0x%llx must be non-zero and aligned",
              static_cast<unsigned long long>(head));
    if (byHead_.count(head))
        panic("duplicate block head 0x%llx",
              static_cast<unsigned long long>(head));

    BasicBlock bb;
    bb.id = static_cast<BlockId>(blocks_.size());
    bb.head = head;
    bb.insts.reserve(body_ops.size() + 1);

    Addr pc = head;
    for (OpClass op : body_ops) {
        if (op == OpClass::Branch)
            panic("explicit Branch in block body; terminator is implicit");
        bb.insts.push_back(StaticInst{pc, op});
        if (op == OpClass::SimdOp)
            ++bb.simdCount;
        if (op == OpClass::Load || op == OpClass::Store)
            ++bb.memCount;
        pc += guestInsnBytes;
    }
    bb.insts.push_back(StaticInst{pc, OpClass::Branch});

    byHead_[head] = bb.id;
    blocks_.push_back(std::move(bb));
    if (entry_ == invalidBlockId)
        entry_ = blocks_.back().id;
    return blocks_.back().id;
}

void
Program::setSuccessors(BlockId b, BlockId taken, BlockId fallthrough)
{
    BasicBlock &bb = block(b);
    if (taken >= blocks_.size() || fallthrough >= blocks_.size())
        panic("successor id out of range for block %u", b);
    bb.takenSucc = taken;
    bb.fallthroughSucc = fallthrough;
}

const BasicBlock &
Program::block(BlockId id) const
{
    if (id >= blocks_.size())
        panic("block id %u out of range", id);
    return blocks_[id];
}

BasicBlock &
Program::block(BlockId id)
{
    if (id >= blocks_.size())
        panic("block id %u out of range", id);
    return blocks_[id];
}

BlockId
Program::findByHead(Addr head) const
{
    auto it = byHead_.find(head);
    return it == byHead_.end() ? invalidBlockId : it->second;
}

void
Program::setEntry(BlockId b)
{
    if (b >= blocks_.size())
        panic("entry block id %u out of range", b);
    entry_ = b;
}

std::size_t
Program::numStaticInsts() const
{
    std::size_t n = 0;
    for (const auto &b : blocks_)
        n += b.insts.size();
    return n;
}

} // namespace powerchop
