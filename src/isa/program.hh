/**
 * @file
 * Guest program representation: basic blocks and the program CFG.
 *
 * Synthetic workloads are materialized as real control-flow graphs so
 * that the binary-translation layer, the phase detector and the branch
 * predictors operate on genuine code structure (head PCs, block
 * bodies, terminating branches) rather than abstract event streams.
 */

#ifndef POWERCHOP_ISA_PROGRAM_HH
#define POWERCHOP_ISA_PROGRAM_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "isa/instruction.hh"

namespace powerchop
{

/** Index of a basic block within its Program. */
using BlockId = std::uint32_t;

/** Sentinel for "no block". */
constexpr BlockId invalidBlockId = 0xffffffffu;

/**
 * A guest basic block: a straight-line body terminated by a branch.
 *
 * The terminating branch's taken target and fall-through successor are
 * other blocks of the same program; the workload generator decides
 * dynamically which way each execution goes.
 */
struct BasicBlock
{
    BlockId id = invalidBlockId;

    /** Address of the first instruction. */
    Addr head = 0;

    /** Instructions, including the terminating branch (last). */
    std::vector<StaticInst> insts;

    /** Block executed when the terminating branch is taken. */
    BlockId takenSucc = invalidBlockId;

    /** Block executed on fall-through. */
    BlockId fallthroughSucc = invalidBlockId;

    /** Number of SimdOp instructions in the body (cached at build). */
    unsigned simdCount = 0;

    /** Number of memory references in the body (cached at build). */
    unsigned memCount = 0;

    std::size_t size() const { return insts.size(); }
    const StaticInst &terminator() const { return insts.back(); }

    /** Address of the instruction after the block (fall-through PC). */
    Addr
    fallthroughAddr() const
    {
        return head + insts.size() * guestInsnBytes;
    }
};

/**
 * A complete synthetic guest program: a set of basic blocks laid out
 * in a flat guest address space, plus an entry block.
 */
class Program
{
  public:
    Program() = default;

    // Programs are large and referenced by pointer everywhere; never
    // copied.
    Program(const Program &) = delete;
    Program &operator=(const Program &) = delete;
    Program(Program &&) = default;
    Program &operator=(Program &&) = default;

    /**
     * Append a new block with the given instruction class layout.
     *
     * @param head     Head address; must be unique and 4-byte aligned.
     * @param body_ops Op classes of the body (a Branch terminator is
     *                 appended automatically).
     * @return the new block's id.
     */
    BlockId addBlock(Addr head, const std::vector<OpClass> &body_ops);

    /** Wire up the successors of a block. */
    void setSuccessors(BlockId b, BlockId taken, BlockId fallthrough);

    const BasicBlock &block(BlockId id) const;
    BasicBlock &block(BlockId id);

    /** Find a block by head address; invalidBlockId if absent. */
    BlockId findByHead(Addr head) const;

    std::size_t numBlocks() const { return blocks_.size(); }
    BlockId entry() const { return entry_; }
    void setEntry(BlockId b);

    /** Total static instruction count across all blocks. */
    std::size_t numStaticInsts() const;

  private:
    std::vector<BasicBlock> blocks_;
    std::unordered_map<Addr, BlockId> byHead_;
    BlockId entry_ = invalidBlockId;
};

} // namespace powerchop

#endif // POWERCHOP_ISA_PROGRAM_HH
