#include "power/accumulator.hh"

#include <sstream>

#include "common/logging.hh"

namespace powerchop
{

Joules
EnergyBreakdown::totalEnergy() const
{
    Joules e = 0;
    for (const auto &u : units)
        e += u.total();
    return e;
}

Joules
EnergyBreakdown::leakageEnergy() const
{
    Joules e = 0;
    for (const auto &u : units)
        e += u.leakage;
    return e;
}

Joules
EnergyBreakdown::dynamicEnergy() const
{
    Joules e = 0;
    for (const auto &u : units)
        e += u.dynamic + u.gatingOverhead;
    return e;
}

Watts
EnergyBreakdown::averagePower() const
{
    return seconds > 0 ? totalEnergy() / seconds : 0.0;
}

Watts
EnergyBreakdown::averageLeakagePower() const
{
    return seconds > 0 ? leakageEnergy() / seconds : 0.0;
}

std::string
EnergyBreakdown::toString() const
{
    std::ostringstream out;
    out << "energy breakdown over " << seconds << " s\n";
    for (unsigned i = 0; i < numUnits; ++i) {
        const auto &u = units[i];
        out << "  " << unitName(static_cast<Unit>(i))
            << " leak " << u.leakage << " J, dyn " << u.dynamic
            << " J, gate-ovh " << u.gatingOverhead << " J\n";
    }
    out << "  total " << totalEnergy() << " J, avg power "
        << averagePower() << " W, avg leakage power "
        << averageLeakagePower() << " W\n";
    return out.str();
}

EnergyBreakdown
accumulateEnergy(const CorePowerModel &model,
                 const ActivityRecord &a, unsigned mlc_assoc)
{
    if (mlc_assoc == 0)
        fatal("accumulateEnergy: zero MLC associativity");

    const CorePowerParams &p = model.params();
    const double cyc_to_s = 1.0 / p.frequencyHz;

    EnergyBreakdown e;
    e.seconds = a.cycles * cyc_to_s;

    const double one_frac = 1.0 / mlc_assoc;
    const double half_frac = 0.5;
    const double quarter_frac = mlc_assoc >= 4 ? 0.25 : one_frac;

    // --- VPU -----------------------------------------------------------
    {
        UnitEnergy &u = e.unit(Unit::Vpu);
        double on_cycles = a.cycles - a.vpuGatedCycles;
        u.leakage = model.leakageEnergy(Unit::Vpu, on_cycles * cyc_to_s,
                                        a.vpuGatedCycles * cyc_to_s);
        u.dynamic = model.dynamicEnergy(Unit::Vpu, a.vpuOps);
        u.gatingOverhead = a.vpuSwitches * p.switchOverhead(Unit::Vpu);
    }

    // --- BPU (the large gateable portion) ------------------------------
    {
        UnitEnergy &u = e.unit(Unit::Bpu);
        double on_cycles = a.cycles - a.bpuGatedCycles;
        u.leakage = model.leakageEnergy(Unit::Bpu, on_cycles * cyc_to_s,
                                        a.bpuGatedCycles * cyc_to_s);
        u.dynamic = model.dynamicEnergy(Unit::Bpu, a.bpuLargeLookups);
        u.gatingOverhead = a.bpuSwitches * p.switchOverhead(Unit::Bpu);
    }

    // --- MLC ------------------------------------------------------------
    {
        UnitEnergy &u = e.unit(Unit::Mlc);
        if (a.mlcDrowsyFraction > 0) {
            // Drowsy baseline: all ways powered, but a time-averaged
            // fraction of the array sits at the drowsy voltage.
            const double f = a.mlcDrowsyFraction;
            u.leakage = p.unit(Unit::Mlc).leakage * e.seconds *
                        ((1.0 - f) + f * a.drowsyLeakageFraction);
        } else
        u.leakage = model.mlcLeakageEnergy(a.mlcFullCycles * cyc_to_s,
                                           a.mlcHalfCycles * cyc_to_s,
                                           a.mlcQuarterCycles * cyc_to_s,
                                           a.mlcOneWayCycles * cyc_to_s,
                                           one_frac, half_frac,
                                           quarter_frac);
        u.dynamic =
            a.mlcAccessesFull * model.mlcAccessEnergy(1.0) +
            a.mlcAccessesHalf * model.mlcAccessEnergy(half_frac) +
            a.mlcAccessesQuarter * model.mlcAccessEnergy(quarter_frac) +
            a.mlcAccessesOne * model.mlcAccessEnergy(one_frac);
        u.gatingOverhead = a.mlcSwitches * p.switchOverhead(Unit::Mlc);
    }

    // --- Rest of core ----------------------------------------------------
    {
        UnitEnergy &u = e.unit(Unit::Rest);
        u.leakage = model.leakageEnergy(Unit::Rest,
                                        a.cycles * cyc_to_s, 0.0);
        u.dynamic = model.dynamicEnergy(Unit::Rest, a.instructions);
    }

    return e;
}

} // namespace powerchop
