/**
 * @file
 * Power/energy accumulation over one simulation run.
 *
 * The simulator records activity (event counts) and residency (cycles
 * each unit spends in each power state); the accumulator turns that
 * into a per-unit energy breakdown and average-power figures that the
 * evaluation benches compare across configurations (Figures 13-14).
 */

#ifndef POWERCHOP_POWER_ACCUMULATOR_HH
#define POWERCHOP_POWER_ACCUMULATOR_HH

#include <array>
#include <string>

#include "power/core_power_model.hh"

namespace powerchop
{

/** Activity and residency collected during a run. */
struct ActivityRecord
{
    /** Total core cycles of the run. */
    double cycles = 0;

    /** Committed guest instructions (Rest events). */
    double instructions = 0;

    /** SIMD ops executed natively on the VPU. */
    double vpuOps = 0;

    /** Branch lookups through the large BPU (when active). */
    double bpuLargeLookups = 0;

    /** MLC accesses weighted by active-way state. @{ */
    double mlcAccessesFull = 0;
    double mlcAccessesHalf = 0;
    double mlcAccessesQuarter = 0;
    double mlcAccessesOne = 0;
    /** @} */

    /** Cycle residency of gateable units. @{ */
    double vpuGatedCycles = 0;
    double bpuGatedCycles = 0;
    double mlcFullCycles = 0;
    double mlcHalfCycles = 0;
    double mlcQuarterCycles = 0;
    double mlcOneWayCycles = 0;
    /** @} */

    /** Drowsy baseline: time-averaged fraction of MLC lines in the
     *  drowsy state (0 disables drowsy leakage modelling) and the
     *  drowsy leakage fraction to apply. @{ */
    double mlcDrowsyFraction = 0;
    double drowsyLeakageFraction = 0.15;
    /** @} */

    /** Gating switch counts (each costs E_overhead). @{ */
    double vpuSwitches = 0;
    double bpuSwitches = 0;
    double mlcSwitches = 0;
    /** @} */
};

/** Per-unit energy totals. */
struct UnitEnergy
{
    Joules leakage = 0;
    Joules dynamic = 0;
    Joules gatingOverhead = 0;

    Joules total() const { return leakage + dynamic + gatingOverhead; }
};

/** Full-core energy breakdown of one run. */
struct EnergyBreakdown
{
    std::array<UnitEnergy, numUnits> units;
    double seconds = 0;

    const UnitEnergy &unit(Unit u) const
    {
        return units[static_cast<unsigned>(u)];
    }
    UnitEnergy &unit(Unit u)
    {
        return units[static_cast<unsigned>(u)];
    }

    Joules totalEnergy() const;
    Joules leakageEnergy() const;
    Joules dynamicEnergy() const;

    Watts averagePower() const;
    Watts averageLeakagePower() const;

    /** Human-readable multi-line summary. */
    std::string toString() const;
};

/**
 * Turn an activity record into an energy breakdown under a given core
 * power model.
 *
 * @param model    The core's power model.
 * @param activity Activity/residency of the run.
 * @param mlc_assoc     MLC associativity (for way fractions).
 * @return the energy breakdown.
 */
EnergyBreakdown accumulateEnergy(const CorePowerModel &model,
                                 const ActivityRecord &activity,
                                 unsigned mlc_assoc);

} // namespace powerchop

#endif // POWERCHOP_POWER_ACCUMULATOR_HH
