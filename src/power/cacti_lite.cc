#include "power/cacti_lite.hh"

#include <cmath>

#include "common/logging.hh"

namespace powerchop
{

namespace
{

// 32nm first-order constants. The 6T SRAM bit cell at 32nm is about
// 0.15 um^2; CAM cells (9T/10T with match logic) run 3-4x larger.
// Peripheral overhead (decoders, sense amps, match lines) roughly
// doubles small arrays.
constexpr double sramCellUm2 = 0.15;
constexpr double camCellUm2 = 0.52;
constexpr double peripheryFactor = 2.0;

// Leakage density for always-on arrays at 32nm high-performance
// process, W per mm^2.
constexpr double leakageWPerMm2 = 0.35;

// Dynamic energy: per-bit read energy plus, for CAMs, the match-line
// broadcast across all entries.
constexpr double readEnergyPerBitJ = 0.08e-12;
constexpr double camMatchEnergyPerBitJ = 0.012e-12;

} // namespace

ArrayEstimate
estimateArray(const ArraySpec &spec)
{
    if (spec.entries == 0 || spec.bitsPerEntry == 0)
        fatal("cacti_lite: empty array");

    const double bits =
        static_cast<double>(spec.entries) * spec.bitsPerEntry;
    const double cell_um2 =
        spec.style == ArrayStyle::Cam ? camCellUm2 : sramCellUm2;

    ArrayEstimate est;
    est.areaMm2 = bits * cell_um2 * 1e-6 * peripheryFactor;
    est.leakage = est.areaMm2 * leakageWPerMm2;

    est.energyPerAccess = spec.bitsPerEntry * readEnergyPerBitJ;
    if (spec.style == ArrayStyle::Cam) {
        // Every access broadcasts the key across all entries.
        est.energyPerAccess += bits * camMatchEnergyPerBitJ;
    }

    est.totalPower =
        est.leakage + spec.accessesPerSecond * est.energyPerAccess;
    return est;
}

} // namespace powerchop
