/**
 * @file
 * CACTI-lite: a small analytic SRAM/CAM area, leakage and access
 * energy estimator.
 *
 * The paper uses CACTI to cost the HTB and PVT (Section IV-B4: the
 * HTB needs roughly 0.027 W and 0.008 mm^2 at 32nm). This module
 * provides first-order estimates using per-bit cell areas and leakage
 * densities calibrated to published 32nm figures; it exists to
 * reproduce the hardware-cost argument, not to replace CACTI.
 */

#ifndef POWERCHOP_POWER_CACTI_LITE_HH
#define POWERCHOP_POWER_CACTI_LITE_HH

#include <cstdint>

#include "common/types.hh"

namespace powerchop
{

/** Array style: RAM arrays index by address, CAM arrays match
 *  associatively (bigger cells, extra match-line energy). */
enum class ArrayStyle : std::uint8_t
{
    Ram,
    Cam,
};

/** Inputs to the estimator. */
struct ArraySpec
{
    std::uint64_t entries = 128;
    unsigned bitsPerEntry = 64;
    ArrayStyle style = ArrayStyle::Cam;

    /** Accesses per second the array sustains (for dynamic power). */
    double accessesPerSecond = 0.0;
};

/** Estimator outputs. */
struct ArrayEstimate
{
    double areaMm2 = 0.0;
    Watts leakage = 0.0;
    Joules energyPerAccess = 0.0;
    /** leakage + accessesPerSecond * energyPerAccess */
    Watts totalPower = 0.0;
};

/**
 * Estimate area/power of a small on-core array at 32nm.
 *
 * @param spec The array configuration.
 * @return first-order area, leakage, and energy estimates.
 */
ArrayEstimate estimateArray(const ArraySpec &spec);

} // namespace powerchop

#endif // POWERCHOP_POWER_CACTI_LITE_HH
