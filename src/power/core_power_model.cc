#include "power/core_power_model.hh"

#include "common/logging.hh"

namespace powerchop
{

double
CorePowerParams::totalAreaMm2() const
{
    double a = 0;
    for (const auto &u : units)
        a += u.areaMm2;
    return a;
}

Watts
CorePowerParams::totalLeakage() const
{
    Watts l = 0;
    for (const auto &u : units)
        l += u.leakage;
    return l;
}

double
CorePowerParams::areaFraction(Unit u) const
{
    return unit(u).areaMm2 / totalAreaMm2();
}

Joules
CorePowerParams::switchOverhead(Unit u) const
{
    return gatingOverheadEnergy(unit(u).peakDynamic, frequencyHz, gating);
}

void
CorePowerParams::validate() const
{
    if (frequencyHz <= 0)
        fatal("%s: non-positive frequency", name.c_str());
    for (unsigned i = 0; i < numUnits; ++i)
        units[i].validate(name + "." + unitName(static_cast<Unit>(i)));
    if (mlcEnergyFloor < 0 || mlcEnergyFloor > 1)
        fatal("%s: mlcEnergyFloor out of [0,1]", name.c_str());
    if (gating.gatedLeakageFraction < 0 || gating.gatedLeakageFraction > 1)
        fatal("%s: gatedLeakageFraction out of [0,1]", name.c_str());
}

CorePowerModel::CorePowerModel(const CorePowerParams &params)
    : params_(params)
{
    params_.validate();
}

Joules
CorePowerModel::leakageEnergy(Unit u, double on_seconds,
                              double gated_seconds) const
{
    const UnitPowerSpec &spec = params_.unit(u);
    const double gf = params_.gating.gatedLeakageFraction;
    return spec.leakage * (on_seconds + gf * gated_seconds);
}

Joules
CorePowerModel::mlcLeakageEnergy(double full_seconds, double half_seconds,
                                 double quarter_seconds,
                                 double one_way_seconds,
                                 double one_way_fraction,
                                 double half_fraction,
                                 double quarter_fraction) const
{
    const UnitPowerSpec &spec = params_.unit(Unit::Mlc);
    const double gf = params_.gating.gatedLeakageFraction;

    // Powered ways leak fully; gated ways leak at the gated fraction.
    auto eff = [gf](double active) {
        return active + gf * (1.0 - active);
    };

    return spec.leakage * (full_seconds * eff(1.0) +
                           half_seconds * eff(half_fraction) +
                           quarter_seconds * eff(quarter_fraction) +
                           one_way_seconds * eff(one_way_fraction));
}

Joules
CorePowerModel::dynamicEnergy(Unit u, double events) const
{
    return params_.unit(u).energyPerEvent * events;
}

Joules
CorePowerModel::mlcAccessEnergy(double way_fraction) const
{
    const double floor = params_.mlcEnergyFloor;
    return params_.unit(Unit::Mlc).energyPerEvent *
           (floor + (1.0 - floor) * way_fraction);
}

CorePowerParams
serverPowerParams()
{
    // Nehalem-class core at 32nm, 3.0 GHz. Areas follow Table I's
    // fractions (MLC 35%, VPU 20%, BPU 4% of the core); leakage is
    // area-proportional at a high-performance-process density, and
    // per-event energies are calibrated to a few-watt dynamic budget
    // at IPC ~1.5.
    CorePowerParams p;
    p.name = "server";
    p.frequencyHz = 3.0e9;

    const double core_area = 20.0;          // mm^2
    const double leak_density = 0.16;       // W / mm^2

    auto mk = [&](double frac, Joules epe, Watts peak) {
        UnitPowerSpec s;
        s.areaMm2 = core_area * frac;
        s.leakage = s.areaMm2 * leak_density;
        s.energyPerEvent = epe;
        s.peakDynamic = peak;
        return s;
    };

    p.unit(Unit::Mlc) = mk(0.35, 1.50e-9, 2.0);
    p.unit(Unit::Vpu) = mk(0.20, 1.00e-9, 3.0);
    p.unit(Unit::Bpu) = mk(0.04, 0.15e-9, 0.6);
    p.unit(Unit::Rest) = mk(0.41, 1.10e-9, 8.0);
    return p;
}

CorePowerParams
mobilePowerParams()
{
    // Cortex-A9-class core at 32nm, 1.5 GHz, low-power process. The
    // MLC dominates the core area (60%, Table I), which is why the
    // paper's mobile leakage savings are larger than the server's.
    CorePowerParams p;
    p.name = "mobile";
    p.frequencyHz = 1.5e9;

    const double core_area = 3.0;           // mm^2 (incl. 2MB MLC)
    const double leak_density = 0.055;      // W / mm^2 (LP process)

    auto mk = [&](double frac, Joules epe, Watts peak) {
        UnitPowerSpec s;
        s.areaMm2 = core_area * frac;
        s.leakage = s.areaMm2 * leak_density;
        s.energyPerEvent = epe;
        s.peakDynamic = peak;
        return s;
    };

    p.unit(Unit::Mlc) = mk(0.60, 0.30e-9, 0.30);
    p.unit(Unit::Vpu) = mk(0.18, 0.20e-9, 0.25);
    p.unit(Unit::Bpu) = mk(0.03, 0.04e-9, 0.08);
    p.unit(Unit::Rest) = mk(0.19, 0.11e-9, 0.60);
    return p;
}

} // namespace powerchop
