/**
 * @file
 * Whole-core power model: per-unit specs for a core design point plus
 * the arithmetic that turns simulation activity into energy.
 */

#ifndef POWERCHOP_POWER_CORE_POWER_MODEL_HH
#define POWERCHOP_POWER_CORE_POWER_MODEL_HH

#include <array>
#include <string>

#include "power/gating_energy.hh"
#include "power/unit_power.hh"

namespace powerchop
{

/** Power description of one core design point. */
struct CorePowerParams
{
    std::string name = "core";
    double frequencyHz = 3.0e9;

    /** Specs indexed by Unit. */
    std::array<UnitPowerSpec, numUnits> units;

    GatingEnergyParams gating;

    /** Fraction of MLC read energy that is independent of how many
     *  ways are powered (decoders, output drivers); the remainder
     *  scales with the active-way fraction. */
    double mlcEnergyFloor = 0.3;

    const UnitPowerSpec &unit(Unit u) const
    {
        return units[static_cast<unsigned>(u)];
    }
    UnitPowerSpec &unit(Unit u)
    {
        return units[static_cast<unsigned>(u)];
    }

    /** Total core area. */
    double totalAreaMm2() const;

    /** Total core leakage with everything on. */
    Watts totalLeakage() const;

    /** Area fraction of a unit (for the Table I printout). */
    double areaFraction(Unit u) const;

    /** E_overhead of one gating switch of a unit (Eq. 1). */
    Joules switchOverhead(Unit u) const;

    void validate() const;
};

/**
 * Power model helper functions shared by the accumulator.
 */
class CorePowerModel
{
  public:
    explicit CorePowerModel(const CorePowerParams &params);

    const CorePowerParams &params() const { return params_; }

    /**
     * Leakage energy of a unit over an interval split between on and
     * gated states.
     *
     * @param u            The unit.
     * @param on_seconds   Time fully on.
     * @param gated_seconds Time gated (leaks at the gated fraction).
     */
    Joules leakageEnergy(Unit u, double on_seconds,
                         double gated_seconds) const;

    /**
     * Leakage energy of the MLC given a time-weighted active-way
     * fraction profile: inactive ways leak at the gated fraction.
     *
     * @param seconds_at_fraction Array of (way fraction, seconds).
     */
    Joules mlcLeakageEnergy(double full_seconds, double half_seconds,
                            double quarter_seconds,
                            double one_way_seconds,
                            double one_way_fraction,
                            double half_fraction,
                            double quarter_fraction) const;

    /** Dynamic energy of n events of a unit. */
    Joules dynamicEnergy(Unit u, double events) const;

    /** Dynamic energy of one MLC access at a given active-way
     *  fraction (energy scales with powered ways above a floor). */
    Joules mlcAccessEnergy(double way_fraction) const;

  private:
    CorePowerParams params_;
};

/** Server design point: Intel Nehalem-class core at 32nm (Table I). */
CorePowerParams serverPowerParams();

/** Mobile design point: ARM Cortex-A9-class core at 32nm (Table I). */
CorePowerParams mobilePowerParams();

} // namespace powerchop

#endif // POWERCHOP_POWER_CORE_POWER_MODEL_HH
