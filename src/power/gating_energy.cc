#include "power/gating_energy.hh"

#include "common/logging.hh"

namespace powerchop
{

Joules
gatingOverheadEnergy(Watts peak_dynamic, double frequency_hz,
                     const GatingEnergyParams &p)
{
    if (frequency_hz <= 0)
        fatal("gatingOverheadEnergy: non-positive frequency");
    if (peak_dynamic < 0)
        fatal("gatingOverheadEnergy: negative peak dynamic power");

    // E_cyc: average switching energy of the unit for a single cycle.
    const Joules e_cyc = peak_dynamic / frequency_hz;
    return 2.0 * p.sleepTransistorRatio * e_cyc * p.switchingFactor;
}

} // namespace powerchop
