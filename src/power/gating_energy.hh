/**
 * @file
 * Power-gating overhead energy model (Hu et al., summarized as
 * Equation 1 of the paper):
 *
 *     E_overhead = 2 * (W/H) * E_cyc * SF
 *
 * where E_cyc is the unit's average switching energy for one cycle
 * (derived from its McPAT peak dynamic power), W/H is the ratio of
 * sleep-transistor area to unit area (the paper conservatively uses
 * 0.20, the top of the literature's 0.05-0.20 range), and SF is the
 * average switching factor (0.5).
 */

#ifndef POWERCHOP_POWER_GATING_ENERGY_HH
#define POWERCHOP_POWER_GATING_ENERGY_HH

#include "common/types.hh"

namespace powerchop
{

/** Parameters of the gating-overhead model. */
struct GatingEnergyParams
{
    /** Sleep transistor width/height area ratio (W/H in Eq. 1). */
    double sleepTransistorRatio = 0.20;

    /** Average switching factor. */
    double switchingFactor = 0.5;

    /** Leakage of a gated unit as a fraction of its on leakage; the
     *  paper assumes 5% (supply is reduced, not zeroed). */
    double gatedLeakageFraction = 0.05;
};

/**
 * Energy overhead of one assert/deassert of a unit's sleep signal.
 *
 * @param peak_dynamic The unit's peak dynamic power (McPAT estimate).
 * @param frequency_hz Core clock frequency.
 * @param p            Model parameters.
 * @return E_overhead in joules.
 */
Joules gatingOverheadEnergy(Watts peak_dynamic, double frequency_hz,
                            const GatingEnergyParams &p = {});

} // namespace powerchop

#endif // POWERCHOP_POWER_GATING_ENERGY_HH
