#include "power/unit_power.hh"

#include "common/logging.hh"

namespace powerchop
{

const char *
unitName(Unit u)
{
    switch (u) {
      case Unit::Vpu:
        return "VPU";
      case Unit::Bpu:
        return "BPU";
      case Unit::Mlc:
        return "MLC";
      case Unit::Rest:
        return "Rest";
    }
    panic("unknown Unit %d", static_cast<int>(u));
}

void
UnitPowerSpec::validate(const std::string &who) const
{
    if (areaMm2 <= 0)
        fatal("%s: non-positive area", who.c_str());
    if (leakage < 0 || energyPerEvent < 0 || peakDynamic < 0)
        fatal("%s: negative power figure", who.c_str());
}

} // namespace powerchop
