/**
 * @file
 * Per-unit power specifications (the McPAT substitute).
 *
 * Each gateable unit is described by its share of core area, its
 * leakage power (proportional to area at a process-dependent leakage
 * density), its per-event dynamic energy, and its peak dynamic power
 * (used by the gating-overhead model of Hu et al.).
 */

#ifndef POWERCHOP_POWER_UNIT_POWER_HH
#define POWERCHOP_POWER_UNIT_POWER_HH

#include <string>

#include "common/types.hh"

namespace powerchop
{

/** The units PowerChop manages, plus the rest of the core. */
enum class Unit : std::uint8_t
{
    Vpu,
    Bpu,
    Mlc,
    Rest,
};

constexpr unsigned numUnits = 4;

/** @return the display name of a unit. */
const char *unitName(Unit u);

/** Static power description of one unit. */
struct UnitPowerSpec
{
    /** Silicon area of the unit. */
    double areaMm2 = 1.0;

    /** Leakage power with the unit fully on. */
    Watts leakage = 0.1;

    /** Dynamic energy of one event (one SIMD op, one BPU lookup, one
     *  MLC access, one committed instruction for Rest). */
    Joules energyPerEvent = 0.1e-9;

    /** Peak dynamic power; E_cyc for the gating-overhead model is
     *  peakDynamic / frequency. */
    Watts peakDynamic = 1.0;

    /** Validate ranges (fatal() on violation). */
    void validate(const std::string &who) const;
};

} // namespace powerchop

#endif // POWERCHOP_POWER_UNIT_POWER_HH
