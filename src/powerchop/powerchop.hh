/**
 * @file
 * Umbrella public header for the PowerChop library.
 *
 * Including this header gives access to the full public API: the
 * workload models, the hybrid-core simulator, the PowerChop mechanism
 * (HTB / PVT / CDE / gating controller), the timeout baseline and the
 * power models.
 *
 * Quick start:
 * @code
 *   #include "powerchop/powerchop.hh"
 *   using namespace powerchop;
 *
 *   MachineConfig server = serverConfig();
 *   WorkloadSpec gobmk = findWorkload("gobmk");
 *
 *   SimOptions opts;
 *   opts.mode = SimMode::PowerChop;
 *   opts.maxInstructions = 5'000'000;
 *   SimResult r = simulate(server, gobmk, opts);
 * @endcode
 */

#ifndef POWERCHOP_POWERCHOP_HH
#define POWERCHOP_POWERCHOP_HH

#include "common/atomic_file.hh"
#include "common/clock.hh"
#include "common/env.hh"
#include "common/flight_recorder.hh"
#include "common/journal.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "common/stats.hh"
#include "common/subprocess.hh"
#include "common/types.hh"

#include "isa/instruction.hh"
#include "isa/program.hh"

#include "workload/generator.hh"
#include "workload/suites.hh"
#include "workload/workload.hh"

#include "bt/bt_system.hh"

#include "uarch/bpu_complex.hh"
#include "uarch/cache.hh"
#include "uarch/mem_hierarchy.hh"
#include "uarch/vpu.hh"

#include "core/cde.hh"
#include "core/fault_injector.hh"
#include "core/gating_controller.hh"
#include "core/htb.hh"
#include "core/policy.hh"
#include "core/powerchop_unit.hh"
#include "core/pvt.hh"
#include "core/qos_watchdog.hh"
#include "core/signature.hh"
#include "core/timeout_gater.hh"

#include "power/accumulator.hh"
#include "power/cacti_lite.hh"
#include "power/core_power_model.hh"

#include "telemetry/chrome_trace.hh"
#include "telemetry/metrics.hh"
#include "telemetry/profiler.hh"
#include "telemetry/trace.hh"

#include "sim/campaign.hh"
#include "sim/experiment.hh"
#include "sim/machine_config.hh"
#include "sim/shard_supervisor.hh"
#include "sim/sim_result.hh"
#include "sim/sim_runner.hh"
#include "sim/simulator.hh"
#include "sim/statusboard.hh"

#include "serve/client.hh"
#include "serve/protocol.hh"
#include "serve/result_cache.hh"
#include "serve/server.hh"

#include "verify/differential.hh"
#include "verify/golden.hh"
#include "verify/invariant_auditor.hh"
#include "verify/reference_simulator.hh"

#endif // POWERCHOP_POWERCHOP_HH
