#include "serve/client.hh"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/logging.hh"

namespace powerchop
{

ServeClient::~ServeClient()
{
    close();
}

ServeClient::ServeClient(ServeClient &&other) noexcept
    : fd_(other.fd_), reader_(std::move(other.reader_))
{
    other.fd_ = -1;
}

ServeClient &
ServeClient::operator=(ServeClient &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        reader_ = std::move(other.reader_);
        other.fd_ = -1;
    }
    return *this;
}

void
ServeClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    reader_.reset();
}

bool
ServeClient::connectUnix(const std::string &path, std::string *err)
{
    close();
    struct sockaddr_un addr = {};
    if (path.size() >= sizeof(addr.sun_path)) {
        if (err)
            *err = csprintf("socket path too long: %s", path.c_str());
        return false;
    }
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) {
        if (err)
            *err = csprintf("socket failed: %s",
                            std::strerror(errno));
        return false;
    }
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd_, reinterpret_cast<struct sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        if (err) {
            *err = csprintf("connect %s failed: %s", path.c_str(),
                            std::strerror(errno));
        }
        close();
        return false;
    }
    reader_ = std::make_unique<FdReader>(fd_);
    return true;
}

bool
ServeClient::connectTcp(unsigned short port, std::string *err)
{
    close();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
        if (err)
            *err = csprintf("socket failed: %s",
                            std::strerror(errno));
        return false;
    }
    struct sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd_, reinterpret_cast<struct sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        if (err) {
            *err = csprintf("connect 127.0.0.1:%u failed: %s", port,
                            std::strerror(errno));
        }
        close();
        return false;
    }
    reader_ = std::make_unique<FdReader>(fd_);
    return true;
}

ServeReply
ServeClient::request(const std::string &line)
{
    ServeReply reply;
    if (fd_ < 0 || !writeAllFd(fd_, line + "\n")) {
        reply.ioFailed = true;
        return reply;
    }
    if (!readResponse(*reader_, reply.status, reply.payload)) {
        reply.ioFailed = true;
        return reply;
    }
    return reply;
}

ServeReply
ServeClient::get(std::uint64_t key)
{
    return request(csprintf(
        "GET %016llx", static_cast<unsigned long long>(key)));
}

ServeReply
ServeClient::sim(const std::string &specJson)
{
    return request("SIM " + specJson);
}

ServeReply
ServeClient::stats()
{
    return request("STATS");
}

} // namespace powerchop
