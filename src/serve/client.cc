#include "serve/client.hh"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/logging.hh"
#include "common/random.hh"

namespace powerchop
{

double
clientRetryBackoffSeconds(const ClientRetryPolicy &policy,
                          unsigned attempt)
{
    if (attempt <= 1 || policy.backoffBaseSeconds <= 0)
        return 0;
    double delay = policy.backoffBaseSeconds;
    for (unsigned a = 2;
         a < attempt && delay < policy.backoffMaxSeconds; ++a) {
        delay *= 2;
    }
    if (delay > policy.backoffMaxSeconds)
        delay = policy.backoffMaxSeconds;
    // Seeded jitter, a pure function of (seed, attempt): the same
    // discipline as the runner's retryBackoffSeconds, so concurrent
    // clients with distinct seeds decorrelate without wall-clock
    // randomness.
    Rng rng(policy.seed ^
            (static_cast<std::uint64_t>(attempt) *
             0x9e3779b97f4a7c15ull));
    return delay +
           delay * policy.backoffJitterFraction * rng.uniform();
}

ServeClient::~ServeClient()
{
    close();
}

ServeClient::ServeClient(ServeClient &&other) noexcept
    : fd_(other.fd_), reader_(std::move(other.reader_)),
      policy_(other.policy_), target_(other.target_),
      targetPath_(std::move(other.targetPath_)),
      targetPort_(other.targetPort_)
{
    other.fd_ = -1;
    other.target_ = Target::None;
}

ServeClient &
ServeClient::operator=(ServeClient &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        reader_ = std::move(other.reader_);
        policy_ = other.policy_;
        target_ = other.target_;
        targetPath_ = std::move(other.targetPath_);
        targetPort_ = other.targetPort_;
        other.fd_ = -1;
        other.target_ = Target::None;
    }
    return *this;
}

void
ServeClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    reader_.reset();
}

bool
ServeClient::connectUnix(const std::string &path, std::string *err)
{
    // A daemon restarting under our feet must surface as a failed
    // (and retryable) write, not a SIGPIPE death.
    serveIgnoreSigpipe();
    close();
    // Remember the dial target before attempting: a refused dial
    // must still be redialable (the daemon may be mid-restart).
    target_ = Target::Unix;
    targetPath_ = path;
    struct sockaddr_un addr = {};
    if (path.size() >= sizeof(addr.sun_path)) {
        if (err)
            *err = csprintf("socket path too long: %s", path.c_str());
        return false;
    }
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) {
        if (err)
            *err = csprintf("socket failed: %s",
                            std::strerror(errno));
        return false;
    }
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd_, reinterpret_cast<struct sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        if (err) {
            *err = csprintf("connect %s failed: %s", path.c_str(),
                            std::strerror(errno));
        }
        close();
        return false;
    }
    reader_ = std::make_unique<FdReader>(fd_);
    applyTimeout();
    return true;
}

bool
ServeClient::connectTcp(unsigned short port, std::string *err)
{
    serveIgnoreSigpipe();
    close();
    target_ = Target::Tcp;
    targetPort_ = port;
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
        if (err)
            *err = csprintf("socket failed: %s",
                            std::strerror(errno));
        return false;
    }
    struct sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd_, reinterpret_cast<struct sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        if (err) {
            *err = csprintf("connect 127.0.0.1:%u failed: %s", port,
                            std::strerror(errno));
        }
        close();
        return false;
    }
    reader_ = std::make_unique<FdReader>(fd_);
    applyTimeout();
    return true;
}

void
ServeClient::setRetryPolicy(const ClientRetryPolicy &policy)
{
    policy_ = policy;
    applyTimeout();
}

void
ServeClient::applyTimeout()
{
    if (reader_) {
        reader_->setPollTimeoutMs(
            policy_.timeoutSeconds > 0
                ? static_cast<int>(policy_.timeoutSeconds * 1e3) + 1
                : -1);
    }
}

bool
ServeClient::reconnect(std::string *err)
{
    // connectUnix/connectTcp reset target_, so stash the dial info
    // before close() runs inside them.
    switch (target_) {
      case Target::Unix: {
        const std::string path = targetPath_;
        return connectUnix(path, err);
      }
      case Target::Tcp:
        return connectTcp(targetPort_, err);
      case Target::None:
        break;
    }
    if (err)
        *err = "never connected: nothing to reconnect to";
    return false;
}

bool
ServeClient::attemptOnce(const std::string &frame, ServeReply &reply,
                         std::string &err)
{
    if (fd_ < 0 && !reconnect(&err))
        return false;
    if (!writeAllFd(fd_, frame)) {
        err = csprintf("send failed: %s", std::strerror(errno));
        close();
        return false;
    }
    if (!readResponse(*reader_, reply.status, reply.payload)) {
        err = reader_->outcome() == ReadOutcome::TimedOut
                  ? csprintf("reply timed out after %.3fs",
                             policy_.timeoutSeconds)
                  : "torn reply (daemon gone mid-response?)";
        close();
        return false;
    }
    return true;
}

ServeReply
ServeClient::request(const std::string &line)
{
    const std::string frame = line + "\n";
    const unsigned attempts = policy_.retries + 1;
    ServeReply reply;
    for (unsigned attempt = 1; attempt <= attempts; ++attempt) {
        reply.attempts = attempt;
        std::string err;
        if (attemptOnce(frame, reply, err)) {
            reply.ioFailed = false;
            reply.error.clear();
            return reply;
        }
        reply.ioFailed = true;
        reply.error = csprintf("attempt %u/%u: %s", attempt,
                               attempts, err.c_str());
        if (attempt < attempts) {
            const double wait =
                clientRetryBackoffSeconds(policy_, attempt + 1);
            if (wait > 0) {
                std::this_thread::sleep_for(
                    std::chrono::duration<double>(wait));
            }
        }
    }
    return reply;
}

ServeReply
ServeClient::get(std::uint64_t key)
{
    return request(csprintf(
        "GET %016llx", static_cast<unsigned long long>(key)));
}

ServeReply
ServeClient::sim(const std::string &specJson)
{
    return request("SIM " + specJson);
}

ServeReply
ServeClient::stats()
{
    return request("STATS");
}

} // namespace powerchop
