/**
 * @file
 * A blocking powerchopd client: one connection, framed requests.
 *
 * Thin by design — the protocol is three verbs — but shared by the
 * `powerchop client` subcommand, bench_serve's load generator and the
 * serve tests, so all three speak the wire format from one place.
 * Not thread-safe: one ServeClient per connection per thread.
 */

#ifndef POWERCHOP_SERVE_CLIENT_HH
#define POWERCHOP_SERVE_CLIENT_HH

#include <cstdint>
#include <memory>
#include <string>

#include "serve/protocol.hh"

namespace powerchop
{

/** One response: wire status plus the payload bytes, verbatim. */
struct ServeReply
{
    ResponseStatus status = ResponseStatus::Err;
    std::string payload;

    /** True when transport failed (connection refused, torn reply);
     *  status/payload are then meaningless. */
    bool ioFailed = false;

    /** @return true when the request was answered with content. */
    bool served() const
    {
        return !ioFailed && (status == ResponseStatus::Hit ||
                             status == ResponseStatus::Ok);
    }
};

/** Blocking client over one connected socket. */
class ServeClient
{
  public:
    ServeClient() = default;
    ~ServeClient();

    ServeClient(const ServeClient &) = delete;
    ServeClient &operator=(const ServeClient &) = delete;

    /** Movable: the connection's ownership transfers. @{ */
    ServeClient(ServeClient &&other) noexcept;
    ServeClient &operator=(ServeClient &&other) noexcept;
    /** @} */

    /** Connect to a Unix-domain socket. @return false (with *err
     *  set when non-null) on failure. */
    bool connectUnix(const std::string &path,
                     std::string *err = nullptr);

    /** Connect to 127.0.0.1:port. */
    bool connectTcp(unsigned short port, std::string *err = nullptr);

    bool connected() const { return fd_ >= 0; }
    void close();

    /** The three verbs. @{ */
    ServeReply get(std::uint64_t key);
    ServeReply sim(const std::string &specJson);
    ServeReply stats();
    /** @} */

  private:
    ServeReply request(const std::string &line);

    int fd_ = -1;
    std::unique_ptr<FdReader> reader_;
};

} // namespace powerchop

#endif // POWERCHOP_SERVE_CLIENT_HH
