/**
 * @file
 * A blocking powerchopd client: one connection, framed requests.
 *
 * Thin by design — the protocol is three verbs — but shared by the
 * `powerchop client` subcommand, bench_serve's load generator and the
 * serve tests, so all three speak the wire format from one place.
 * Not thread-safe: one ServeClient per connection per thread.
 *
 * Retries: a ClientRetryPolicy makes the client ride through daemon
 * drains and restarts — each transport failure closes, backs off
 * (deterministic seeded exponential backoff, mirroring the runner's
 * retryBackoffSeconds discipline) and reconnects to the remembered
 * target before trying again. BUSY responses are *not* retried here:
 * shedding is an answer, and pacing the retry is the caller's call.
 */

#ifndef POWERCHOP_SERVE_CLIENT_HH
#define POWERCHOP_SERVE_CLIENT_HH

#include <cstdint>
#include <memory>
#include <string>

#include "serve/protocol.hh"

namespace powerchop
{

/** Reconnect-and-retry knobs for a ServeClient. */
struct ClientRetryPolicy
{
    /** Extra attempts after the first (0 = fail fast). */
    unsigned retries = 0;

    /** Per-attempt I/O deadline (reads poll() against it); <= 0
     *  blocks forever. */
    double timeoutSeconds = 0;

    /** Deterministic exponential backoff between attempts: delay
     *  doubles from base, capped at max, plus seeded jitter — a pure
     *  function of (seed, attempt), so tests and benchmarks
     *  reproduce byte-identical schedules. @{ */
    double backoffBaseSeconds = 0.05;
    double backoffMaxSeconds = 1.0;
    double backoffJitterFraction = 0.25;
    std::uint64_t seed = 0;
    /** @} */
};

/** The deterministic delay charged before attempt `attempt`
 *  (attempt 1 is the initial try: delay 0). Exposed for tests. */
double clientRetryBackoffSeconds(const ClientRetryPolicy &policy,
                                 unsigned attempt);

/** One response: wire status plus the payload bytes, verbatim. */
struct ServeReply
{
    ResponseStatus status = ResponseStatus::Err;
    std::string payload;

    /** True when transport failed (connection refused, torn reply);
     *  status/payload are then meaningless. */
    bool ioFailed = false;

    /** Attempts consumed (1 = first try succeeded). */
    unsigned attempts = 1;

    /** On ioFailed: what went wrong, labeled with the attempt that
     *  failed last ("attempt 3/3: connect ... refused"). */
    std::string error;

    /** @return true when the request was answered with content. */
    bool served() const
    {
        return !ioFailed && (status == ResponseStatus::Hit ||
                             status == ResponseStatus::Ok);
    }
};

/** Blocking client over one connected socket. */
class ServeClient
{
  public:
    ServeClient() = default;
    ~ServeClient();

    ServeClient(const ServeClient &) = delete;
    ServeClient &operator=(const ServeClient &) = delete;

    /** Movable: the connection's ownership transfers. @{ */
    ServeClient(ServeClient &&other) noexcept;
    ServeClient &operator=(ServeClient &&other) noexcept;
    /** @} */

    /** Connect to a Unix-domain socket. @return false (with *err
     *  set when non-null) on failure. */
    bool connectUnix(const std::string &path,
                     std::string *err = nullptr);

    /** Connect to 127.0.0.1:port. */
    bool connectTcp(unsigned short port, std::string *err = nullptr);

    bool connected() const { return fd_ >= 0; }
    void close();

    /** Install the reconnect-and-retry policy (applies to every
     *  subsequent request; the I/O deadline also applies to the
     *  current connection). */
    void setRetryPolicy(const ClientRetryPolicy &policy);

    /** Re-dial the last connect target. @return false (with *err
     *  set when non-null) when never connected or the dial fails. */
    bool reconnect(std::string *err = nullptr);

    /** The three verbs. @{ */
    ServeReply get(std::uint64_t key);
    ServeReply sim(const std::string &specJson);
    ServeReply stats();
    /** @} */

  private:
    enum class Target
    {
        None,
        Unix,
        Tcp,
    };

    ServeReply request(const std::string &line);
    bool attemptOnce(const std::string &frame, ServeReply &reply,
                     std::string &err);
    void applyTimeout();

    int fd_ = -1;
    std::unique_ptr<FdReader> reader_;
    ClientRetryPolicy policy_;
    Target target_ = Target::None;
    std::string targetPath_;
    unsigned short targetPort_ = 0;
};

} // namespace powerchop

#endif // POWERCHOP_SERVE_CLIENT_HH
