#include "serve/protocol.hh"

#include <cctype>
#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include <poll.h>
#include <unistd.h>

#include "common/clock.hh"
#include "common/logging.hh"

namespace powerchop
{

void
serveIgnoreSigpipe()
{
    static std::once_flag once;
    std::call_once(once, [] { ::signal(SIGPIPE, SIG_IGN); });
}

const char *
responseStatusName(ResponseStatus s)
{
    switch (s) {
      case ResponseStatus::Hit:
        return "HIT";
      case ResponseStatus::Ok:
        return "OK";
      case ResponseStatus::Miss:
        return "MISS";
      case ResponseStatus::Err:
        return "ERR";
      case ResponseStatus::Busy:
        return "BUSY";
    }
    return "ERR";
}

Request
parseRequestLine(const std::string &line)
{
    Request req;
    if (line == "STATS") {
        req.verb = RequestVerb::Stats;
        return req;
    }
    if (line.rfind("GET ", 0) == 0) {
        const std::string hex = line.substr(4);
        if (hex.empty() || hex.size() > 16) {
            req.error = "GET wants a 1..16 hex-digit key";
            return req;
        }
        for (char c : hex) {
            if (!std::isxdigit(static_cast<unsigned char>(c))) {
                req.error = "GET key is not hex";
                return req;
            }
        }
        req.verb = RequestVerb::Get;
        req.key = std::strtoull(hex.c_str(), nullptr, 16);
        return req;
    }
    if (line.rfind("SIM ", 0) == 0) {
        req.spec = line.substr(4);
        if (req.spec.empty()) {
            req.error = "SIM wants a spec JSON";
            return req;
        }
        req.verb = RequestVerb::Sim;
        return req;
    }
    req.error = "unknown verb (expected GET/SIM/STATS)";
    return req;
}

std::string
formatSimSpec(const std::vector<std::string> &workloads,
              const std::vector<std::string> &machines,
              const std::vector<std::string> &modes,
              std::uint64_t insns, double timeoutCycles)
{
    const auto list = [](const std::vector<std::string> &v) {
        std::string s = "[";
        for (std::size_t i = 0; i < v.size(); ++i)
            s += csprintf("%s\"%s\"", i ? "," : "", v[i].c_str());
        return s + "]";
    };
    return csprintf(
        "{\"workloads\":%s,\"machines\":%s,\"modes\":%s,"
        "\"insns\":%llu,\"timeout\":%.17g}",
        list(workloads).c_str(), list(machines).c_str(),
        list(modes).c_str(),
        static_cast<unsigned long long>(insns), timeoutCycles);
}

ReadOutcome
FdReader::fill(int timeoutMs)
{
    if (pos_ > 0) {
        buf_.erase(0, pos_);
        pos_ = 0;
    }
    // The deadline covers the whole refill, not each poll: EINTR and
    // spurious wakeups re-poll with whatever budget remains.
    const MonotonicDeadline deadline(
        timeoutMs >= 0 ? timeoutMs * 1e-3 : 0);
    char chunk[4096];
    while (true) {
        if (timeoutMs >= 0) {
            const double left = deadline.remainingSeconds();
            if (timeoutMs > 0 && left <= 0)
                return ReadOutcome::TimedOut;
            struct pollfd pfd = {};
            pfd.fd = fd_;
            pfd.events = POLLIN;
            const int budget = timeoutMs == 0
                ? 0
                : static_cast<int>(left * 1e3) + 1;
            const int pr = ::poll(&pfd, 1, budget);
            if (pr == 0)
                return ReadOutcome::TimedOut;
            if (pr < 0) {
                if (errno == EINTR)
                    continue;
                return ReadOutcome::Error;
            }
        }
        const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
        if (n > 0) {
            buf_.append(chunk, static_cast<std::size_t>(n));
            return ReadOutcome::Ok;
        }
        if (n == 0)
            return ReadOutcome::Eof;
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            // O_NONBLOCK fd raced a spurious poll wakeup: re-poll
            // with the remaining budget (or block again when none).
            if (timeoutMs < 0) {
                struct pollfd pfd = {};
                pfd.fd = fd_;
                pfd.events = POLLIN;
                ::poll(&pfd, 1, -1);
            }
            continue;
        }
        return ReadOutcome::Error;
    }
}

ReadOutcome
FdReader::readLineDeadline(std::string &line, int idleMs, int ioMs,
                           std::size_t maxBytes)
{
    while (true) {
        const std::size_t nl = buf_.find('\n', pos_);
        if (nl != std::string::npos) {
            line.assign(buf_, pos_, nl - pos_);
            pos_ = nl + 1;
            outcome_ = line.size() <= maxBytes ? ReadOutcome::Ok
                                               : ReadOutcome::TooLong;
            return outcome_;
        }
        if (buf_.size() - pos_ > maxBytes) {
            outcome_ = ReadOutcome::TooLong;
            return outcome_;
        }
        // An empty buffer means we are waiting for the line's first
        // byte — the idle budget. Once any byte of the line is here,
        // the (usually much shorter) mid-frame budget applies.
        outcome_ = fill(buffered() ? ioMs : idleMs);
        if (outcome_ != ReadOutcome::Ok)
            return outcome_;
    }
}

bool
FdReader::readLine(std::string &line, std::size_t maxBytes)
{
    return readLineDeadline(line, pollTimeoutMs_, pollTimeoutMs_,
                            maxBytes) == ReadOutcome::Ok;
}

bool
FdReader::readExact(std::string &out, std::size_t n)
{
    out.clear();
    while (buf_.size() - pos_ < n) {
        outcome_ = fill(pollTimeoutMs_);
        if (outcome_ != ReadOutcome::Ok)
            return false;
    }
    out.assign(buf_, pos_, n);
    pos_ += n;
    outcome_ = ReadOutcome::Ok;
    return true;
}

bool
writeAllFd(int fd, const std::string &data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n =
            ::write(fd, data.data() + off, data.size() - off);
        if (n > 0) {
            off += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        return false;
    }
    return true;
}

bool
writeAllFdDeadline(int fd, const std::string &data, int timeoutMs)
{
    if (timeoutMs <= 0)
        return writeAllFd(fd, data);
    const MonotonicDeadline deadline(timeoutMs * 1e-3);
    std::size_t off = 0;
    while (off < data.size()) {
        const double left = deadline.remainingSeconds();
        if (left <= 0)
            return false;
        struct pollfd pfd = {};
        pfd.fd = fd;
        pfd.events = POLLOUT;
        const int pr = ::poll(&pfd, 1,
                              static_cast<int>(left * 1e3) + 1);
        if (pr == 0)
            return false; // peer stopped reading: deadline fired
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        const ssize_t n =
            ::write(fd, data.data() + off, data.size() - off);
        if (n > 0) {
            off += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EINTR || errno == EAGAIN ||
                      errno == EWOULDBLOCK)) {
            continue;
        }
        return false;
    }
    return true;
}

bool
writeResponse(int fd, ResponseStatus status,
              const std::string &payload)
{
    // One buffer, one writev-free send: header and payload coalesce,
    // so a small response costs one syscall.
    std::string frame = csprintf("%s %zu\n",
                                 responseStatusName(status),
                                 payload.size());
    frame += payload;
    return writeAllFd(fd, frame);
}

bool
writeResponseDeadline(int fd, ResponseStatus status,
                      const std::string &payload, int timeoutMs)
{
    std::string frame = csprintf("%s %zu\n",
                                 responseStatusName(status),
                                 payload.size());
    frame += payload;
    return writeAllFdDeadline(fd, frame, timeoutMs);
}

bool
readResponse(FdReader &reader, ResponseStatus &status,
             std::string &payload, std::size_t maxPayload)
{
    std::string header;
    if (!reader.readLine(header))
        return false;
    const std::size_t sp = header.find(' ');
    if (sp == std::string::npos)
        return false;
    const std::string token = header.substr(0, sp);
    if (token == "HIT")
        status = ResponseStatus::Hit;
    else if (token == "OK")
        status = ResponseStatus::Ok;
    else if (token == "MISS")
        status = ResponseStatus::Miss;
    else if (token == "ERR")
        status = ResponseStatus::Err;
    else if (token == "BUSY")
        status = ResponseStatus::Busy;
    else
        return false;
    char *end = nullptr;
    const unsigned long long len =
        std::strtoull(header.c_str() + sp + 1, &end, 10);
    if (!end || *end != '\0' || len > maxPayload)
        return false;
    return reader.readExact(payload,
                            static_cast<std::size_t>(len));
}

} // namespace powerchop
