#include "serve/protocol.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <unistd.h>

#include "common/logging.hh"

namespace powerchop
{

const char *
responseStatusName(ResponseStatus s)
{
    switch (s) {
      case ResponseStatus::Hit:
        return "HIT";
      case ResponseStatus::Ok:
        return "OK";
      case ResponseStatus::Miss:
        return "MISS";
      case ResponseStatus::Err:
        return "ERR";
    }
    return "ERR";
}

Request
parseRequestLine(const std::string &line)
{
    Request req;
    if (line == "STATS") {
        req.verb = RequestVerb::Stats;
        return req;
    }
    if (line.rfind("GET ", 0) == 0) {
        const std::string hex = line.substr(4);
        if (hex.empty() || hex.size() > 16) {
            req.error = "GET wants a 1..16 hex-digit key";
            return req;
        }
        for (char c : hex) {
            if (!std::isxdigit(static_cast<unsigned char>(c))) {
                req.error = "GET key is not hex";
                return req;
            }
        }
        req.verb = RequestVerb::Get;
        req.key = std::strtoull(hex.c_str(), nullptr, 16);
        return req;
    }
    if (line.rfind("SIM ", 0) == 0) {
        req.spec = line.substr(4);
        if (req.spec.empty()) {
            req.error = "SIM wants a spec JSON";
            return req;
        }
        req.verb = RequestVerb::Sim;
        return req;
    }
    req.error = "unknown verb (expected GET/SIM/STATS)";
    return req;
}

std::string
formatSimSpec(const std::vector<std::string> &workloads,
              const std::vector<std::string> &machines,
              const std::vector<std::string> &modes,
              std::uint64_t insns, double timeoutCycles)
{
    const auto list = [](const std::vector<std::string> &v) {
        std::string s = "[";
        for (std::size_t i = 0; i < v.size(); ++i)
            s += csprintf("%s\"%s\"", i ? "," : "", v[i].c_str());
        return s + "]";
    };
    return csprintf(
        "{\"workloads\":%s,\"machines\":%s,\"modes\":%s,"
        "\"insns\":%llu,\"timeout\":%.17g}",
        list(workloads).c_str(), list(machines).c_str(),
        list(modes).c_str(),
        static_cast<unsigned long long>(insns), timeoutCycles);
}

bool
FdReader::fill()
{
    if (pos_ > 0) {
        buf_.erase(0, pos_);
        pos_ = 0;
    }
    char chunk[4096];
    while (true) {
        const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
        if (n > 0) {
            buf_.append(chunk, static_cast<std::size_t>(n));
            return true;
        }
        if (n == 0)
            return false; // EOF
        if (errno == EINTR)
            continue;
        return false;
    }
}

bool
FdReader::readLine(std::string &line, std::size_t maxBytes)
{
    while (true) {
        const std::size_t nl = buf_.find('\n', pos_);
        if (nl != std::string::npos) {
            line.assign(buf_, pos_, nl - pos_);
            pos_ = nl + 1;
            return line.size() <= maxBytes;
        }
        if (buf_.size() - pos_ > maxBytes)
            return false; // runaway line, no newline in budget
        if (!fill())
            return false;
    }
}

bool
FdReader::readExact(std::string &out, std::size_t n)
{
    out.clear();
    while (buf_.size() - pos_ < n) {
        if (!fill())
            return false;
    }
    out.assign(buf_, pos_, n);
    pos_ += n;
    return true;
}

bool
writeAllFd(int fd, const std::string &data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n =
            ::write(fd, data.data() + off, data.size() - off);
        if (n > 0) {
            off += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        return false;
    }
    return true;
}

bool
writeResponse(int fd, ResponseStatus status,
              const std::string &payload)
{
    // One buffer, one writev-free send: header and payload coalesce,
    // so a small response costs one syscall.
    std::string frame = csprintf("%s %zu\n",
                                 responseStatusName(status),
                                 payload.size());
    frame += payload;
    return writeAllFd(fd, frame);
}

bool
readResponse(FdReader &reader, ResponseStatus &status,
             std::string &payload, std::size_t maxPayload)
{
    std::string header;
    if (!reader.readLine(header))
        return false;
    const std::size_t sp = header.find(' ');
    if (sp == std::string::npos)
        return false;
    const std::string token = header.substr(0, sp);
    if (token == "HIT")
        status = ResponseStatus::Hit;
    else if (token == "OK")
        status = ResponseStatus::Ok;
    else if (token == "MISS")
        status = ResponseStatus::Miss;
    else if (token == "ERR")
        status = ResponseStatus::Err;
    else
        return false;
    char *end = nullptr;
    const unsigned long long len =
        std::strtoull(header.c_str() + sp + 1, &end, 10);
    if (!end || *end != '\0' || len > maxPayload)
        return false;
    return reader.readExact(payload,
                            static_cast<std::size_t>(len));
}

} // namespace powerchop
