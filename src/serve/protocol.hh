/**
 * @file
 * The powerchopd wire protocol: newline-framed requests,
 * length-prefixed responses.
 *
 * Requests are single lines:
 *
 *   GET <16-hex-key>\n      Look up one content key.
 *   SIM <spec-json>\n       Simulate a campaign matrix (one line).
 *   STATS\n                 Server/cache counters as JSON.
 *
 * Responses are a status line followed by an exact-length payload:
 *
 *   <STATUS> <length>\n<length bytes>
 *
 * with STATUS one of HIT (every byte came from the cache), OK
 * (request served, at least one job simulated fresh), MISS (GET of an
 * unknown key; empty payload) and ERR (malformed or unservable
 * request; payload is a human-readable reason). The length prefix
 * makes payloads 8-bit clean: a SIM payload is a full multi-line
 * report.json document, streamed verbatim.
 *
 * The SIM spec mirrors the CLI campaign matrix flags:
 *
 *   {"workloads":["perlbench",...],"machines":["server"|"mobile",...],
 *    "modes":["full-power",...],"insns":N,"timeout":T}
 *
 * Jobs are expanded workload-major exactly like `powerchop campaign`,
 * so a spec's report is byte-identical to the report.json a direct
 * runCampaign of the same flags produces.
 */

#ifndef POWERCHOP_SERVE_PROTOCOL_HH
#define POWERCHOP_SERVE_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <vector>

namespace powerchop
{

/** Parsed request verbs (Bad carries a reason in Request::error). */
enum class RequestVerb
{
    Get,
    Sim,
    Stats,
    Bad,
};

/** One parsed request line. */
struct Request
{
    RequestVerb verb = RequestVerb::Bad;
    std::uint64_t key = 0; ///< Get only.
    std::string spec;      ///< Sim only: the spec JSON, verbatim.
    std::string error;     ///< Bad only: what was wrong.
};

/** Response statuses, in wire spelling. */
enum class ResponseStatus
{
    Hit,
    Ok,
    Miss,
    Err,
};

/** @return the wire token ("HIT", "OK", "MISS", "ERR"). */
const char *responseStatusName(ResponseStatus s);

/** Parse a request line (no trailing newline). Never throws: a
 *  malformed line parses to Bad with `error` set. */
Request parseRequestLine(const std::string &line);

/** Render a SIM spec line from CLI-style matrix lists. */
std::string formatSimSpec(const std::vector<std::string> &workloads,
                          const std::vector<std::string> &machines,
                          const std::vector<std::string> &modes,
                          std::uint64_t insns, double timeoutCycles);

/**
 * Buffered reader over a connected socket, pairing the line-framed
 * and exact-length halves of the protocol on one fd.
 */
class FdReader
{
  public:
    explicit FdReader(int fd) : fd_(fd) {}

    /**
     * Read up to (and consuming) the next '\n'; the newline is not
     * included in `line`.
     * @return false on EOF, error, or a line exceeding maxBytes.
     */
    bool readLine(std::string &line,
                  std::size_t maxBytes = kMaxRequestLine);

    /** Read exactly n bytes. @return false on EOF or error. */
    bool readExact(std::string &out, std::size_t n);

    /** Guards against a malicious/corrupt unbounded request line. */
    static constexpr std::size_t kMaxRequestLine = 1u << 20;

  private:
    bool fill();

    int fd_;
    std::string buf_;
    std::size_t pos_ = 0;
};

/** write(2) the whole buffer, retrying EINTR. @return false on any
 *  unrecoverable error (including EPIPE: peer went away). */
bool writeAllFd(int fd, const std::string &data);

/** Send one framed response. */
bool writeResponse(int fd, ResponseStatus status,
                   const std::string &payload);

/**
 * Read one framed response.
 * @return false on EOF, a malformed status line, or a payload
 *         length over maxPayload.
 */
bool readResponse(FdReader &reader, ResponseStatus &status,
                  std::string &payload,
                  std::size_t maxPayload = 1u << 30);

} // namespace powerchop

#endif // POWERCHOP_SERVE_PROTOCOL_HH
