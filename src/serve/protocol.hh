/**
 * @file
 * The powerchopd wire protocol: newline-framed requests,
 * length-prefixed responses.
 *
 * Requests are single lines:
 *
 *   GET <16-hex-key>\n      Look up one content key.
 *   SIM <spec-json>\n       Simulate a campaign matrix (one line).
 *   STATS\n                 Server/cache counters as JSON.
 *
 * Responses are a status line followed by an exact-length payload:
 *
 *   <STATUS> <length>\n<length bytes>
 *
 * with STATUS one of HIT (every byte came from the cache), OK
 * (request served, at least one job simulated fresh), MISS (GET of an
 * unknown key; empty payload), ERR (malformed or unservable request;
 * payload is a human-readable reason) and BUSY (the server is shedding
 * load — connection cap or SIM admission queue full; payload says
 * which; retry after backoff). The length prefix makes payloads 8-bit
 * clean: a SIM payload is a full multi-line report.json document,
 * streamed verbatim.
 *
 * The SIM spec mirrors the CLI campaign matrix flags:
 *
 *   {"workloads":["perlbench",...],"machines":["server"|"mobile",...],
 *    "modes":["full-power",...],"insns":N,"timeout":T}
 *
 * Jobs are expanded workload-major exactly like `powerchop campaign`,
 * so a spec's report is byte-identical to the report.json a direct
 * runCampaign of the same flags produces.
 */

#ifndef POWERCHOP_SERVE_PROTOCOL_HH
#define POWERCHOP_SERVE_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <vector>

namespace powerchop
{

/** Parsed request verbs (Bad carries a reason in Request::error). */
enum class RequestVerb
{
    Get,
    Sim,
    Stats,
    Bad,
};

/** One parsed request line. */
struct Request
{
    RequestVerb verb = RequestVerb::Bad;
    std::uint64_t key = 0; ///< Get only.
    std::string spec;      ///< Sim only: the spec JSON, verbatim.
    std::string error;     ///< Bad only: what was wrong.
};

/** Response statuses, in wire spelling. */
enum class ResponseStatus
{
    Hit,
    Ok,
    Miss,
    Err,
    Busy, ///< Load shed: retry later (payload names the reason).
};

/** @return the wire token ("HIT", "OK", "MISS", "ERR", "BUSY"). */
const char *responseStatusName(ResponseStatus s);

/** Parse a request line (no trailing newline). Never throws: a
 *  malformed line parses to Bad with `error` set. */
Request parseRequestLine(const std::string &line);

/** Render a SIM spec line from CLI-style matrix lists. */
std::string formatSimSpec(const std::vector<std::string> &workloads,
                          const std::vector<std::string> &machines,
                          const std::vector<std::string> &modes,
                          std::uint64_t insns, double timeoutCycles);

/** How a deadline-aware read ended. */
enum class ReadOutcome
{
    Ok,       ///< The requested line/bytes were produced.
    Eof,      ///< Peer closed cleanly before the data arrived.
    TimedOut, ///< The poll() deadline fired first.
    TooLong,  ///< A line exceeded its byte budget.
    Error,    ///< read(2) failed (not EINTR/EAGAIN).
};

/**
 * Buffered reader over a connected socket, pairing the line-framed
 * and exact-length halves of the protocol on one fd.
 *
 * Deadlines: every refill poll()s first when a timeout applies, so
 * reads work identically on blocking and O_NONBLOCK fds. A default
 * poll timeout (setPollTimeoutMs) covers the plain readLine/readExact
 * calls — the client-side I/O deadline — while readLineDeadline takes
 * explicit idle vs mid-frame budgets for the server side.
 */
class FdReader
{
  public:
    explicit FdReader(int fd) : fd_(fd) {}

    /**
     * Read up to (and consuming) the next '\n'; the newline is not
     * included in `line`.
     * @return false on EOF, error, timeout, or a line exceeding
     *         maxBytes (outcome() says which).
     */
    bool readLine(std::string &line,
                  std::size_t maxBytes = kMaxRequestLine);

    /**
     * readLine with split deadlines: `idleMs` bounds the wait for the
     * line's first byte (a connection allowed to sit between
     * requests), `ioMs` bounds every subsequent refill (a peer that
     * started a line must keep the bytes coming). Either can be -1
     * for "no deadline".
     */
    ReadOutcome readLineDeadline(std::string &line, int idleMs,
                                 int ioMs,
                                 std::size_t maxBytes =
                                     kMaxRequestLine);

    /** Read exactly n bytes. @return false on EOF, error or
     *  timeout (outcome() says which). */
    bool readExact(std::string &out, std::size_t n);

    /** Why the last readLine/readExact returned what it did. */
    ReadOutcome outcome() const { return outcome_; }

    /** @return true when unconsumed bytes are buffered (a frame has
     *  started but its terminator has not arrived). */
    bool buffered() const { return pos_ < buf_.size(); }

    /** Default poll deadline for readLine/readExact refills;
     *  -1 (the default) blocks forever. */
    void setPollTimeoutMs(int ms) { pollTimeoutMs_ = ms; }

    /** Guards against a malicious/corrupt unbounded request line. */
    static constexpr std::size_t kMaxRequestLine = 1u << 20;

  private:
    ReadOutcome fill(int timeoutMs);

    int fd_;
    std::string buf_;
    std::size_t pos_ = 0;
    int pollTimeoutMs_ = -1;
    ReadOutcome outcome_ = ReadOutcome::Ok;
};

/** Ignore SIGPIPE process-wide, once: a peer that hangs up while we
 *  are mid-write must surface as EPIPE (writeAllFd returns false),
 *  not kill the daemon or a retrying client. Called lazily from the
 *  server and client setup paths, so programs that never touch the
 *  serving plane keep the default disposition (same discipline as
 *  the subprocess supervisor). */
void serveIgnoreSigpipe();

/** write(2) the whole buffer, retrying EINTR. @return false on any
 *  unrecoverable error (including EPIPE: peer went away). */
bool writeAllFd(int fd, const std::string &data);

/**
 * writeAllFd with a wall deadline: poll()s for POLLOUT before every
 * write, so a peer that stops reading cannot pin the writer past
 * `timeoutMs`. The fd should be O_NONBLOCK for the deadline to be
 * honored mid-write (a blocking fd can still park inside write(2)).
 * timeoutMs <= 0 means no deadline.
 */
bool writeAllFdDeadline(int fd, const std::string &data,
                        int timeoutMs);

/** Send one framed response. */
bool writeResponse(int fd, ResponseStatus status,
                   const std::string &payload);

/** writeResponse under a write deadline (see writeAllFdDeadline). */
bool writeResponseDeadline(int fd, ResponseStatus status,
                           const std::string &payload, int timeoutMs);

/**
 * Read one framed response.
 * @return false on EOF, a malformed status line, or a payload
 *         length over maxPayload.
 */
bool readResponse(FdReader &reader, ResponseStatus &status,
                  std::string &payload,
                  std::size_t maxPayload = 1u << 30);

} // namespace powerchop

#endif // POWERCHOP_SERVE_PROTOCOL_HH
