#include "serve/result_cache.hh"

#include "common/atomic_file.hh"
#include "common/logging.hh"

namespace powerchop
{

namespace
{

/** Accounting cost of one entry: payload bytes plus a fixed overhead
 *  standing in for the list node, the index slot and the key, so a
 *  flood of tiny payloads cannot blow past the budget "for free". */
std::size_t
entryCost(const std::string &payload)
{
    return payload.size() + 64;
}

} // namespace

ResultCache::ResultCache(const ResultCacheOptions &opts)
    : shardBudget_(opts.maxBytes /
                   (opts.shards ? opts.shards : 1)),
      shards_(opts.shards ? opts.shards : 1),
      journalPath_(opts.journalPath),
      compactDeadRatio_(opts.compactDeadRatio),
      compactMinRecords_(opts.compactMinRecords)
{
    if (opts.journalPath.empty())
        return;
    // Replay before opening the writer for append: loadJournal
    // dedups last-write-wins, and insertion through the normal
    // (journal-less) path reproduces LRU order = append order.
    const JournalReplay replay =
        loadJournalIfPresent(opts.journalPath);
    for (const JournalRecord &rec : replay.records) {
        if (rec.status != "ok")
            continue;
        Shard &sh = shardFor(rec.key);
        std::lock_guard<std::mutex> lock(sh.mutex);
        if (sh.index.find(rec.key) == sh.index.end()) {
            insertLocked(sh, rec.key, rec.payload);
            ++warmStarted_;
        }
    }
    // Warm-start admissions are replays, not traffic: the counters
    // must describe what the daemon served, not what it remembered.
    std::uint64_t live = 0;
    for (Shard &sh : shards_) {
        std::lock_guard<std::mutex> lock(sh.mutex);
        sh.insertions = 0;
        sh.evictions = 0;
        live += sh.lru.size();
    }
    // Every physical line not backing a resident entry — superseded,
    // corrupt, torn, or evicted during replay — is dead weight a
    // compaction would shed.
    journalRecords_.store(replay.lines, std::memory_order_relaxed);
    journalDead_.store(replay.lines > live ? replay.lines - live : 0,
                       std::memory_order_relaxed);
    journal_ = std::make_unique<JournalWriter>(opts.journalPath);
}

ResultCache::Shard &
ResultCache::shardFor(std::uint64_t key)
{
    // Content keys are FNV-1a hashes: the low bits are already
    // well mixed, so plain modulo spreads shards evenly.
    return shards_[key % shards_.size()];
}

bool
ResultCache::get(std::uint64_t key, std::string *payload)
{
    Shard &sh = shardFor(key);
    std::lock_guard<std::mutex> lock(sh.mutex);
    const auto it = sh.index.find(key);
    if (it == sh.index.end()) {
        ++sh.misses;
        return false;
    }
    ++sh.hits;
    sh.lru.splice(sh.lru.begin(), sh.lru, it->second);
    if (payload)
        *payload = it->second->payload;
    return true;
}

void
ResultCache::insertLocked(Shard &sh, std::uint64_t key,
                          const std::string &payload)
{
    const std::size_t cost = entryCost(payload);
    while (!sh.lru.empty() && sh.bytes + cost > shardBudget_) {
        const Entry &victim = sh.lru.back();
        sh.bytes -= entryCost(victim.payload);
        sh.index.erase(victim.key);
        sh.lru.pop_back();
        ++sh.evictions;
        // An evicted entry's journal record is now dead weight
        // (journal_ is null during replay: the constructor accounts
        // for replay-time deadness wholesale).
        if (journal_)
            journalDead_.fetch_add(1, std::memory_order_relaxed);
    }
    sh.lru.push_front(Entry{key, payload});
    sh.index[key] = sh.lru.begin();
    sh.bytes += cost;
    ++sh.insertions;
}

void
ResultCache::put(std::uint64_t key, const std::string &payload)
{
    panicIf(payload.find('\n') != std::string::npos,
            "ResultCache payloads must be single-line JSON");
    bool fresh = false;
    {
        Shard &sh = shardFor(key);
        std::lock_guard<std::mutex> lock(sh.mutex);
        const auto it = sh.index.find(key);
        if (it != sh.index.end()) {
            // Deterministic keys: same key, same payload. Refresh
            // recency and stop — no bytes move, nothing to journal.
            sh.lru.splice(sh.lru.begin(), sh.lru, it->second);
        } else {
            insertLocked(sh, key, payload);
            fresh = true;
        }
    }
    if (fresh && journal_) {
        // Write-ahead relative to serving future restarts: the
        // record is durable (append fsyncs) before put() returns,
        // so a daemon killed any time later still warm-starts it.
        JournalRecord rec;
        rec.key = key;
        rec.status = "ok";
        rec.payload = payload;
        std::lock_guard<std::mutex> jlock(journalMutex_);
        journal_->append(rec);
        journalRecords_.fetch_add(1, std::memory_order_relaxed);
        maybeCompactLocked();
    }
}

void
ResultCache::maybeCompactLocked()
{
    if (compactDeadRatio_ <= 0 || !journal_)
        return;
    const std::uint64_t records =
        journalRecords_.load(std::memory_order_relaxed);
    const std::uint64_t dead =
        journalDead_.load(std::memory_order_relaxed);
    if (records < compactMinRecords_ ||
        static_cast<double>(dead) <
            compactDeadRatio_ * static_cast<double>(records)) {
        return;
    }
    // Snapshot live entries least-recent first: replay inserts in
    // file order and first-appearance order *is* recency order, so
    // the compacted journal warm-starts to the identical cache —
    // same keys, same bytes, same LRU order.
    std::string content;
    std::uint64_t live = 0;
    for (Shard &sh : shards_) {
        std::lock_guard<std::mutex> lock(sh.mutex);
        for (auto it = sh.lru.rbegin(); it != sh.lru.rend(); ++it) {
            JournalRecord rec;
            rec.key = it->key;
            rec.status = "ok";
            rec.payload = it->payload;
            content += formatJournalLine(rec);
            content += '\n';
            ++live;
        }
    }
    // Close the append fd across the rename so no write can land in
    // the doomed file; atomicWriteFile's temp+fsync+rename means a
    // crash at any point leaves a complete journal (old or new).
    journal_.reset();
    if (!atomicWriteFileOk(journalPath_, content)) {
        static LogRateLimiter limiter(0.2, 2.0);
        warnLimited(limiter,
                    "cache journal compaction of %s failed; "
                    "continuing with the uncompacted journal",
                    journalPath_.c_str());
        journal_ = std::make_unique<JournalWriter>(journalPath_);
        return;
    }
    journal_ = std::make_unique<JournalWriter>(journalPath_);
    journalRecords_.store(live, std::memory_order_relaxed);
    journalDead_.store(0, std::memory_order_relaxed);
    compactions_.fetch_add(1, std::memory_order_relaxed);
}

void
ResultCache::flushJournal()
{
    std::lock_guard<std::mutex> jlock(journalMutex_);
    if (journal_)
        journal_->flush();
}

ResultCacheStats
ResultCache::stats() const
{
    ResultCacheStats out;
    for (const Shard &sh : shards_) {
        std::lock_guard<std::mutex> lock(sh.mutex);
        out.hits += sh.hits;
        out.misses += sh.misses;
        out.insertions += sh.insertions;
        out.evictions += sh.evictions;
        out.entries += sh.lru.size();
        out.bytes += sh.bytes;
    }
    out.compactions = compactions_.load(std::memory_order_relaxed);
    out.journalRecords =
        journalRecords_.load(std::memory_order_relaxed);
    out.journalDeadRecords =
        journalDead_.load(std::memory_order_relaxed);
    return out;
}

} // namespace powerchop
