/**
 * @file
 * The powerchopd result cache: a sharded, byte-bounded LRU over
 * simulation result payloads, keyed by campaign content keys.
 *
 * The serving plane memoizes finished simulations: the PR 5 content
 * key (campaignJobKey()) already names a job by everything that can
 * change its result, so one SimResult JSON payload per key is a
 * complete, stale-proof cache entry. The cache is sharded by key so
 * concurrent connections rarely contend on one mutex, bounded by
 * payload bytes with per-shard LRU eviction, and (optionally) backed
 * by the campaign journal format (common/journal.hh): every insert is
 * appended write-ahead to `journalPath`, and a restarted daemon warm-
 * starts by replaying that journal, so a SIGKILL loses nothing that
 * was ever served.
 *
 * Durability invariant: between compactions the journal is an
 * append-only *superset* of the in-memory cache — eviction frees
 * memory but never erases the journal record. Compaction bounds the
 * file: when dead records (evicted entries, duplicate appends) exceed
 * `compactDeadRatio` of the file, the journal is atomically rewritten
 * (temp + fsync + rename) from the live entries in LRU order, so
 * warm-start cost is bounded by cache size, not daemon lifetime.
 * Compaction invariant: a compacted journal warm-starts to the
 * identical cache — same keys, same payload bytes, same recency
 * order — as the uncompacted journal would have. Replay order is
 * first-appearance order, so a journal larger than the budget
 * warm-starts to the most recently appended entries (earlier records
 * are evicted first).
 *
 * Byte-identity invariant: payloads are stored verbatim and returned
 * verbatim; the cache never re-renders JSON. A hit therefore serves
 * the exact bytes a direct runCampaign() would have written for the
 * same key.
 */

#ifndef POWERCHOP_SERVE_RESULT_CACHE_HH
#define POWERCHOP_SERVE_RESULT_CACHE_HH

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/journal.hh"

namespace powerchop
{

/** Sizing and durability knobs of a ResultCache. */
struct ResultCacheOptions
{
    /** Total payload-byte budget across all shards. At least one
     *  entry per shard is always admitted, so a single oversized
     *  payload can exceed its shard's slice rather than thrash. */
    std::size_t maxBytes = 256u << 20;

    /** Shard count (keys map to shards by low bits). */
    unsigned shards = 8;

    /** Journal path for write-ahead inserts + warm start; empty
     *  disables durability (a purely in-memory cache). */
    std::string journalPath;

    /** Compact the journal when dead records (evicted or duplicate)
     *  exceed this fraction of the file; <= 0 disables compaction. */
    double compactDeadRatio = 0.5;

    /** Never compact a journal smaller than this many records —
     *  rewriting a tiny file buys nothing. */
    std::uint64_t compactMinRecords = 1024;
};

/** Point-in-time counters aggregated across shards. */
struct ResultCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::uint64_t entries = 0; ///< Keys resident now.
    std::uint64_t bytes = 0;   ///< Payload bytes resident now.
    std::uint64_t compactions = 0;        ///< Journal rewrites.
    std::uint64_t journalRecords = 0;     ///< Lines on disk now.
    std::uint64_t journalDeadRecords = 0; ///< Of those, dead.
};

/**
 * Sharded byte-bounded LRU of content-keyed result payloads.
 * Thread-safe: get/put/stats may be called from any thread.
 */
class ResultCache
{
  public:
    /** Opens (and replays) the journal when one is configured;
     *  throws IoError when the journal path exists but is
     *  unreadable or unwritable. */
    explicit ResultCache(const ResultCacheOptions &opts = {});

    ResultCache(const ResultCache &) = delete;
    ResultCache &operator=(const ResultCache &) = delete;

    /**
     * Look up a key, refreshing its LRU position.
     * @param payload When non-null, receives the stored payload
     *                verbatim on a hit.
     * @return true on a hit.
     */
    bool get(std::uint64_t key, std::string *payload = nullptr);

    /**
     * Insert (or refresh) a payload, evicting LRU entries as needed
     * and appending a write-ahead journal record for fresh keys.
     * Re-putting an existing key refreshes recency only: content
     * keys are deterministic, so the payload cannot have changed.
     */
    void put(std::uint64_t key, const std::string &payload);

    /** Aggregate counters over all shards. */
    ResultCacheStats stats() const;

    /** Records admitted from the journal at construction. */
    std::size_t warmStarted() const { return warmStarted_; }

    /** Flush (fsync) the journal; drain-time belt-and-braces — every
     *  append already fsyncs before put() returns. */
    void flushJournal();

  private:
    struct Entry
    {
        std::uint64_t key = 0;
        std::string payload;
    };

    struct Shard
    {
        mutable std::mutex mutex;
        std::list<Entry> lru; ///< Front = most recently used.
        std::unordered_map<std::uint64_t,
                           std::list<Entry>::iterator>
            index;
        std::size_t bytes = 0;
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t insertions = 0;
        std::uint64_t evictions = 0;
    };

    Shard &shardFor(std::uint64_t key);
    void insertLocked(Shard &sh, std::uint64_t key,
                      const std::string &payload);
    void maybeCompactLocked();

    std::size_t shardBudget_;
    std::vector<Shard> shards_;
    std::string journalPath_;
    double compactDeadRatio_ = 0;
    std::uint64_t compactMinRecords_ = 0;

    /** Serializes journal appends and compaction; always acquired
     *  *before* any shard mutex (compaction snapshots shards while
     *  holding it), never the other way around — put() releases its
     *  shard lock before journaling. */
    std::mutex journalMutex_;
    std::unique_ptr<JournalWriter> journal_;
    /** Written under journalMutex_, read lock-free by stats(). */
    std::atomic<std::uint64_t> journalRecords_{0};
    std::atomic<std::uint64_t> journalDead_{0};
    std::atomic<std::uint64_t> compactions_{0};
    std::size_t warmStarted_ = 0;
};

} // namespace powerchop

#endif // POWERCHOP_SERVE_RESULT_CACHE_HH
