#include "serve/server.hh"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <set>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/atomic_file.hh"
#include "common/clock.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "sim/campaign.hh"
#include "sim/machine_config.hh"
#include "sim/statusboard.hh"
#include "workload/suites.hh"

namespace powerchop
{

namespace
{

/** A SIM spec, decoded from the wire. */
struct SimSpec
{
    std::vector<std::string> workloads;
    std::vector<std::string> machines;
    std::vector<SimMode> modes;
    InsnCount insns = 200'000;
    double timeoutCycles = 0;
};

/** Non-fatal mode lookup (the CLI's parseMode fatal()s — a daemon
 *  must answer ERR, not die, on a bad request). */
bool
modeFromName(const std::string &name, SimMode &out)
{
    for (SimMode mode : {SimMode::FullPower, SimMode::PowerChop,
                         SimMode::MinPower, SimMode::TimeoutVpu,
                         SimMode::DrowsyMlc}) {
        if (name == simModeName(mode)) {
            out = mode;
            return true;
        }
    }
    return false;
}

/** Non-fatal workload-name check against the built-in suite table
 *  (file paths are deliberately not servable: the daemon's matrix
 *  vocabulary must be content-addressable by name alone). */
bool
workloadExists(const std::string &name)
{
    for (const WorkloadSpec &w : allWorkloads()) {
        if (w.name == name)
            return true;
    }
    return false;
}

bool
parseStringList(const json::Value &doc, const char *key,
                std::vector<std::string> &out, std::string &err)
{
    const json::Value *arr = doc.find(key);
    if (!arr || !arr->isArray() || arr->elements().empty()) {
        err = csprintf("spec wants a non-empty \"%s\" array", key);
        return false;
    }
    for (const json::Value &v : arr->elements()) {
        if (!v.isString()) {
            err = csprintf("\"%s\" entries must be strings", key);
            return false;
        }
        out.push_back(v.asString());
    }
    return true;
}

bool
parseSimSpec(const std::string &text, SimSpec &out, std::string &err)
{
    json::Value doc;
    if (!json::parse(text, doc) || !doc.isObject()) {
        err = "spec is not a JSON object";
        return false;
    }
    std::vector<std::string> modeNames;
    if (!parseStringList(doc, "workloads", out.workloads, err) ||
        !parseStringList(doc, "machines", out.machines, err) ||
        !parseStringList(doc, "modes", modeNames, err)) {
        return false;
    }
    for (const std::string &w : out.workloads) {
        if (!workloadExists(w)) {
            err = csprintf("unknown workload \"%s\"", w.c_str());
            return false;
        }
    }
    for (const std::string &m : out.machines) {
        if (m != "server" && m != "mobile") {
            err = csprintf("unknown machine \"%s\"", m.c_str());
            return false;
        }
    }
    for (const std::string &m : modeNames) {
        SimMode mode;
        if (!modeFromName(m, mode)) {
            err = csprintf("unknown mode \"%s\"", m.c_str());
            return false;
        }
        out.modes.push_back(mode);
    }
    out.insns = doc.getUint64("insns", 200'000);
    if (out.insns == 0) {
        err = "\"insns\" must be positive";
        return false;
    }
    out.timeoutCycles = doc.getDouble("timeout", 0);
    return true;
}

/** Expand a spec workload-major, exactly like the CLI's
 *  buildCampaignJobs: identical order, identical content keys. */
std::vector<SimJob>
buildSpecJobs(const SimSpec &spec)
{
    std::vector<SimJob> jobs;
    for (const std::string &wname : spec.workloads) {
        for (const std::string &mname : spec.machines) {
            for (SimMode mode : spec.modes) {
                SimJob job;
                job.workload = findWorkload(wname);
                job.machine = mname == "server" ? serverConfig()
                                                : mobileConfig();
                job.opts.mode = mode;
                job.opts.maxInstructions = spec.insns;
                job.opts.timeoutCycles = spec.timeoutCycles;
                jobs.push_back(std::move(job));
            }
        }
    }
    return jobs;
}

/** Matrix-size ceiling: bounds one request's memory and runner time
 *  (a wide tournament goes through campaigns, not one socket hit). */
constexpr std::size_t kMaxJobsPerRequest = 4096;

} // namespace

std::string
ServeReport::summary() const
{
    return csprintf(
        "%llu requests (%llu get, %llu sim, %llu err) in %.1fs: "
        "%llu hits, %llu misses, %llu evictions, %llu jobs "
        "simulated, %zu warm-started, %llu keys / %llu bytes "
        "resident",
        static_cast<unsigned long long>(requests),
        static_cast<unsigned long long>(gets),
        static_cast<unsigned long long>(sims),
        static_cast<unsigned long long>(errors), wallSeconds,
        static_cast<unsigned long long>(cache.hits),
        static_cast<unsigned long long>(cache.misses),
        static_cast<unsigned long long>(cache.evictions),
        static_cast<unsigned long long>(simulatedJobs),
        warmStarted,
        static_cast<unsigned long long>(cache.entries),
        static_cast<unsigned long long>(cache.bytes));
}

SimServer::SimServer(const ServeOptions &opts)
    : opts_(opts), cache_(opts.cache),
      runner_(opts.runnerThreads)
{
    if (opts_.port != 0) {
        listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (listenFd_ < 0) {
            throw IoError(csprintf("socket failed: %s",
                                   std::strerror(errno)));
        }
        const int one = 1;
        ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        struct sockaddr_in addr = {};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(opts_.port);
        if (::bind(listenFd_,
                   reinterpret_cast<struct sockaddr *>(&addr),
                   sizeof(addr)) != 0) {
            const int saved = errno;
            ::close(listenFd_);
            listenFd_ = -1;
            throw IoError(csprintf("bind 127.0.0.1:%u failed: %s",
                                   opts_.port,
                                   std::strerror(saved)));
        }
        struct sockaddr_in bound = {};
        socklen_t len = sizeof(bound);
        if (::getsockname(
                listenFd_,
                reinterpret_cast<struct sockaddr *>(&bound),
                &len) == 0) {
            boundPort_ = ntohs(bound.sin_port);
        }
    } else {
        panicIf(opts_.socketPath.empty(),
                "SimServer wants a socket path or a port");
        struct sockaddr_un addr = {};
        if (opts_.socketPath.size() >= sizeof(addr.sun_path)) {
            throw IoError(csprintf(
                "socket path too long (%zu bytes, max %zu): %s",
                opts_.socketPath.size(), sizeof(addr.sun_path) - 1,
                opts_.socketPath.c_str()));
        }
        listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (listenFd_ < 0) {
            throw IoError(csprintf("socket failed: %s",
                                   std::strerror(errno)));
        }
        // Replace a stale socket file from a previous daemon: bind
        // refuses an existing path, and serving is single-writer per
        // path by convention (like the campaign dir).
        ::unlink(opts_.socketPath.c_str());
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, opts_.socketPath.c_str(),
                     sizeof(addr.sun_path) - 1);
        if (::bind(listenFd_,
                   reinterpret_cast<struct sockaddr *>(&addr),
                   sizeof(addr)) != 0) {
            const int saved = errno;
            ::close(listenFd_);
            listenFd_ = -1;
            throw IoError(csprintf("bind %s failed: %s",
                                   opts_.socketPath.c_str(),
                                   std::strerror(saved)));
        }
    }
    if (::listen(listenFd_, 64) != 0) {
        const int saved = errno;
        ::close(listenFd_);
        listenFd_ = -1;
        throw IoError(csprintf("listen failed: %s",
                               std::strerror(saved)));
    }
}

SimServer::~SimServer()
{
    reapConnections(true);
    if (listenFd_ >= 0)
        ::close(listenFd_);
    if (opts_.port == 0 && !opts_.socketPath.empty())
        ::unlink(opts_.socketPath.c_str());
}

void
SimServer::event(const std::string &msg) const
{
    if (opts_.onEvent)
        opts_.onEvent(msg);
}

void
SimServer::reapConnections(bool all)
{
    std::list<Conn> finished;
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        for (auto it = conns_.begin(); it != conns_.end();) {
            if (all && !it->done.load(std::memory_order_acquire) &&
                it->fd >= 0) {
                // Unstick a handler blocked in read(2): EOF its
                // socket. The handler owns the close.
                ::shutdown(it->fd, SHUT_RDWR);
            }
            if (all || it->done.load(std::memory_order_acquire)) {
                finished.splice(finished.end(), conns_, it++);
            } else {
                ++it;
            }
        }
    }
    for (Conn &c : finished) {
        if (c.thread.joinable())
            c.thread.join();
    }
}

ServeReport
SimServer::reportLocked() const
{
    ServeReport rep;
    rep.requests = requests_.load(std::memory_order_relaxed);
    rep.gets = gets_.load(std::memory_order_relaxed);
    rep.sims = sims_.load(std::memory_order_relaxed);
    rep.errors = errors_.load(std::memory_order_relaxed);
    rep.simulatedJobs =
        simulatedJobs_.load(std::memory_order_relaxed);
    rep.warmStarted = cache_.warmStarted();
    rep.wallSeconds =
        startedAt_ > 0 ? monotonicSeconds() - startedAt_ : 0;
    rep.cache = cache_.stats();
    rep.requestLatencyMs = requestLatencyNs_.quantiles(1e-6);
    return rep;
}

std::string
SimServer::statsJson() const
{
    const ServeReport rep = reportLocked();
    const double qps = rep.wallSeconds > 0
                           ? static_cast<double>(rep.requests) /
                                 rep.wallSeconds
                           : 0;
    const double hitRate =
        rep.cache.hits + rep.cache.misses > 0
            ? static_cast<double>(rep.cache.hits) /
                  static_cast<double>(rep.cache.hits +
                                      rep.cache.misses)
            : 0;
    std::string s = csprintf(
        "{\"schema\":\"powerchop-serve-stats-v1\","
        "\"uptime_seconds\":%.6f,\"requests\":%llu,\"gets\":%llu,"
        "\"sims\":%llu,\"errors\":%llu,\"simulated_jobs\":%llu,"
        "\"hits\":%llu,\"misses\":%llu,\"hit_rate\":%.6f,"
        "\"insertions\":%llu,\"evictions\":%llu,\"entries\":%llu,"
        "\"bytes\":%llu,\"warm_started\":%zu,\"qps\":%.6f",
        rep.wallSeconds,
        static_cast<unsigned long long>(rep.requests),
        static_cast<unsigned long long>(rep.gets),
        static_cast<unsigned long long>(rep.sims),
        static_cast<unsigned long long>(rep.errors),
        static_cast<unsigned long long>(rep.simulatedJobs),
        static_cast<unsigned long long>(rep.cache.hits),
        static_cast<unsigned long long>(rep.cache.misses), hitRate,
        static_cast<unsigned long long>(rep.cache.insertions),
        static_cast<unsigned long long>(rep.cache.evictions),
        static_cast<unsigned long long>(rep.cache.entries),
        static_cast<unsigned long long>(rep.cache.bytes),
        rep.warmStarted, qps);
    const stats::Quantiles &q = rep.requestLatencyMs;
    if (q.samples > 0) {
        s += csprintf(",\"request_latency_ms\":{\"samples\":%llu,"
                      "\"p50\":%.6f,\"p90\":%.6f,\"p99\":%.6f}",
                      static_cast<unsigned long long>(q.samples),
                      q.p50, q.p90, q.p99);
    }
    s += "}\n";
    return s;
}

ResponseStatus
SimServer::handleSim(const std::string &specJson,
                     std::string &payload)
{
    SimSpec spec;
    std::string err;
    if (!parseSimSpec(specJson, spec, err)) {
        payload = err + "\n";
        return ResponseStatus::Err;
    }
    const std::vector<SimJob> jobs = buildSpecJobs(spec);
    if (jobs.size() > kMaxJobsPerRequest) {
        payload = csprintf("matrix of %zu jobs exceeds the per-"
                           "request ceiling of %zu\n",
                           jobs.size(), kMaxJobsPerRequest);
        return ResponseStatus::Err;
    }

    CampaignResult result;
    result.keys.reserve(jobs.size());
    std::set<std::uint64_t> seen;
    for (const SimJob &job : jobs) {
        const std::uint64_t key = campaignJobKey(job);
        if (!seen.insert(key).second) {
            payload = csprintf("duplicate matrix entry (key "
                               "%016llx)\n",
                               static_cast<unsigned long long>(key));
            return ResponseStatus::Err;
        }
        result.keys.push_back(key);
    }
    result.outcomes.resize(jobs.size());
    result.payloads.resize(jobs.size());

    // Cache pass: hits fill their slots immediately.
    std::vector<std::size_t> missIdx;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (cache_.get(result.keys[i], &result.payloads[i])) {
            result.outcomes[i].status = JobStatus::Ok;
            ++result.replayed;
        } else {
            missIdx.push_back(i);
        }
    }

    // Miss pass: execute fresh jobs through the shared runner.
    // The pool must be driven from one thread at a time, so SIM
    // misses serialize here; GET/STATS traffic never waits on this.
    if (!missIdx.empty()) {
        std::vector<SimJob> missJobs;
        missJobs.reserve(missIdx.size());
        for (std::size_t i : missIdx)
            missJobs.push_back(jobs[i]);

        RobustRunOptions ropts;
        ropts.timeoutSeconds = opts_.jobTimeoutSeconds;
        RobustBatchResult batch;
        {
            std::lock_guard<std::mutex> lock(simMutex_);
            batch = runner_.runRobust(missJobs, ropts);
        }
        for (std::size_t j = 0; j < missIdx.size(); ++j) {
            const std::size_t i = missIdx[j];
            result.outcomes[i] = batch.outcomes[j];
            if (batch.outcomes[j].status == JobStatus::Ok) {
                // Rendered exactly once, here; every later hit
                // serves these bytes verbatim.
                result.payloads[i] = batch.results[j].toJson();
                cache_.put(result.keys[i], result.payloads[i]);
            }
        }
        result.executed = missIdx.size();
        simulatedJobs_.fetch_add(missIdx.size(),
                                 std::memory_order_relaxed);
    }

    payload = result.reportJson();
    return missIdx.empty() ? ResponseStatus::Hit
                           : ResponseStatus::Ok;
}

void
SimServer::handleConnection(Conn *conn)
{
    FdReader reader(conn->fd);
    std::string line;
    while (reader.readLine(line)) {
        const std::int64_t t0 = monotonicNanos();
        const Request req = parseRequestLine(line);
        requests_.fetch_add(1, std::memory_order_relaxed);

        ResponseStatus status = ResponseStatus::Err;
        std::string payload;
        switch (req.verb) {
          case RequestVerb::Get: {
            gets_.fetch_add(1, std::memory_order_relaxed);
            status = cache_.get(req.key, &payload)
                         ? ResponseStatus::Hit
                         : ResponseStatus::Miss;
            break;
          }
          case RequestVerb::Sim:
            sims_.fetch_add(1, std::memory_order_relaxed);
            status = handleSim(req.spec, payload);
            break;
          case RequestVerb::Stats:
            status = ResponseStatus::Ok;
            payload = statsJson();
            break;
          case RequestVerb::Bad:
            payload = req.error + "\n";
            break;
        }
        if (status == ResponseStatus::Err)
            errors_.fetch_add(1, std::memory_order_relaxed);

        const bool sent = writeResponse(conn->fd, status, payload);
        requestLatencyNs_.sample(static_cast<std::uint64_t>(
            monotonicNanos() - t0));
        if (!sent)
            break; // peer went away mid-response
    }
    ::close(conn->fd);
    conn->fd = -1;
    conn->done.store(true, std::memory_order_release);
}

ServeReport
SimServer::run()
{
    startedAt_ = monotonicSeconds();
    event(csprintf("serving on %s",
                   opts_.port != 0
                       ? csprintf("127.0.0.1:%u", boundPort_).c_str()
                       : opts_.socketPath.c_str()));
    if (cache_.warmStarted() > 0) {
        event(csprintf("warm-started %zu cached results from %s",
                       cache_.warmStarted(),
                       opts_.cache.journalPath.c_str()));
    }

    // Status publishing rides its own thread so snapshots stay fresh
    // while every handler thread is busy (mirrors the campaign
    // worker's heartbeat).
    std::unique_ptr<StatusPublisher> publisher;
    std::atomic<bool> statusStop{false};
    std::thread statusThread;
    if (!opts_.statusPath.empty()) {
        publisher = std::make_unique<StatusPublisher>(
            opts_.statusPath, opts_.statusIntervalSeconds);
        const auto makeSnapshot = [this](bool finished) {
            const ServeReport rep = reportLocked();
            StatusSnapshot snap;
            snap.role = "server";
            snap.label = "powerchopd";
            snap.jobsTotal = snap.jobsDone =
                static_cast<std::size_t>(rep.simulatedJobs);
            snap.jobsOk = snap.jobsDone;
            snap.serve.requests = rep.requests;
            snap.serve.hits = rep.cache.hits;
            snap.serve.misses = rep.cache.misses;
            snap.serve.evictions = rep.cache.evictions;
            snap.serve.entries = rep.cache.entries;
            snap.serve.bytes = rep.cache.bytes;
            snap.serve.qps = rep.wallSeconds > 0
                ? static_cast<double>(rep.requests) /
                      rep.wallSeconds
                : 0;
            snap.serve.requestLatencyMs = rep.requestLatencyMs;
            snap.finished = finished;
            return snap;
        };
        statusThread = std::thread([&, this] {
            while (!statusStop.load(std::memory_order_relaxed)) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(100));
                publisher->publish(makeSnapshot(false));
            }
            publisher->publish(makeSnapshot(true), true);
        });
    }

    while (!(opts_.stopFlag &&
             opts_.stopFlag->load(std::memory_order_relaxed))) {
        struct pollfd pfd = {};
        pfd.fd = listenFd_;
        pfd.events = POLLIN;
        const int pr = ::poll(&pfd, 1, 100 /* ms */);
        if (pr < 0 && errno != EINTR)
            break;
        reapConnections(false);
        if (pr <= 0 || !(pfd.revents & POLLIN))
            continue;
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        std::lock_guard<std::mutex> lock(connMutex_);
        conns_.emplace_back();
        Conn *conn = &conns_.back();
        conn->fd = fd;
        conn->thread =
            std::thread([this, conn] { handleConnection(conn); });
    }

    event("shutting down");
    reapConnections(true);
    if (statusThread.joinable()) {
        statusStop.store(true, std::memory_order_relaxed);
        statusThread.join();
    }
    ServeReport rep = reportLocked();
    event(rep.summary());
    return rep;
}

} // namespace powerchop
