#include "serve/server.hh"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <set>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/atomic_file.hh"
#include "common/clock.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "sim/campaign.hh"
#include "sim/machine_config.hh"
#include "sim/statusboard.hh"
#include "workload/suites.hh"

namespace powerchop
{

namespace
{

/** A SIM spec, decoded from the wire. */
struct SimSpec
{
    std::vector<std::string> workloads;
    std::vector<std::string> machines;
    std::vector<SimMode> modes;
    InsnCount insns = 200'000;
    double timeoutCycles = 0;
};

/** Non-fatal mode lookup (the CLI's parseMode fatal()s — a daemon
 *  must answer ERR, not die, on a bad request). */
bool
modeFromName(const std::string &name, SimMode &out)
{
    for (SimMode mode : {SimMode::FullPower, SimMode::PowerChop,
                         SimMode::MinPower, SimMode::TimeoutVpu,
                         SimMode::DrowsyMlc}) {
        if (name == simModeName(mode)) {
            out = mode;
            return true;
        }
    }
    return false;
}

/** Non-fatal workload-name check against the built-in suite table
 *  (file paths are deliberately not servable: the daemon's matrix
 *  vocabulary must be content-addressable by name alone). */
bool
workloadExists(const std::string &name)
{
    for (const WorkloadSpec &w : allWorkloads()) {
        if (w.name == name)
            return true;
    }
    return false;
}

bool
parseStringList(const json::Value &doc, const char *key,
                std::vector<std::string> &out, std::string &err)
{
    const json::Value *arr = doc.find(key);
    if (!arr || !arr->isArray() || arr->elements().empty()) {
        err = csprintf("spec wants a non-empty \"%s\" array", key);
        return false;
    }
    for (const json::Value &v : arr->elements()) {
        if (!v.isString()) {
            err = csprintf("\"%s\" entries must be strings", key);
            return false;
        }
        out.push_back(v.asString());
    }
    return true;
}

bool
parseSimSpec(const std::string &text, SimSpec &out, std::string &err)
{
    json::Value doc;
    if (!json::parse(text, doc) || !doc.isObject()) {
        err = "spec is not a JSON object";
        return false;
    }
    std::vector<std::string> modeNames;
    if (!parseStringList(doc, "workloads", out.workloads, err) ||
        !parseStringList(doc, "machines", out.machines, err) ||
        !parseStringList(doc, "modes", modeNames, err)) {
        return false;
    }
    for (const std::string &w : out.workloads) {
        if (!workloadExists(w)) {
            err = csprintf("unknown workload \"%s\"", w.c_str());
            return false;
        }
    }
    for (const std::string &m : out.machines) {
        if (m != "server" && m != "mobile") {
            err = csprintf("unknown machine \"%s\"", m.c_str());
            return false;
        }
    }
    for (const std::string &m : modeNames) {
        SimMode mode;
        if (!modeFromName(m, mode)) {
            err = csprintf("unknown mode \"%s\"", m.c_str());
            return false;
        }
        out.modes.push_back(mode);
    }
    out.insns = doc.getUint64("insns", 200'000);
    if (out.insns == 0) {
        err = "\"insns\" must be positive";
        return false;
    }
    out.timeoutCycles = doc.getDouble("timeout", 0);
    return true;
}

/** Expand a spec workload-major, exactly like the CLI's
 *  buildCampaignJobs: identical order, identical content keys. */
std::vector<SimJob>
buildSpecJobs(const SimSpec &spec)
{
    std::vector<SimJob> jobs;
    for (const std::string &wname : spec.workloads) {
        for (const std::string &mname : spec.machines) {
            for (SimMode mode : spec.modes) {
                SimJob job;
                job.workload = findWorkload(wname);
                job.machine = mname == "server" ? serverConfig()
                                                : mobileConfig();
                job.opts.mode = mode;
                job.opts.maxInstructions = spec.insns;
                job.opts.timeoutCycles = spec.timeoutCycles;
                jobs.push_back(std::move(job));
            }
        }
    }
    return jobs;
}

/** Matrix-size ceiling: bounds one request's memory and runner time
 *  (a wide tournament goes through campaigns, not one socket hit). */
constexpr std::size_t kMaxJobsPerRequest = 4096;

/** "<= 0 disables" seconds knob to a poll(2) millisecond budget. */
int
timeoutMs(double seconds)
{
    if (seconds <= 0)
        return -1;
    const double ms = seconds * 1e3;
    return ms < 1 ? 1 : static_cast<int>(ms);
}

/** Connection fds run O_NONBLOCK so the poll()-based read and write
 *  deadlines are authoritative — a blocking fd can park inside the
 *  syscall after poll() said ready. */
void
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

} // namespace

std::string
ServeReport::summary() const
{
    return csprintf(
        "%llu requests (%llu get, %llu sim, %llu err) in %.1fs: "
        "%llu hits, %llu misses, %llu evictions, %llu jobs "
        "simulated, %zu warm-started, %llu keys / %llu bytes "
        "resident; %llu conns + %llu requests shed, %llu deadline-"
        "cancelled, %llu idle-reaped, %llu compactions, %llu "
        "dropped in flight",
        static_cast<unsigned long long>(requests),
        static_cast<unsigned long long>(gets),
        static_cast<unsigned long long>(sims),
        static_cast<unsigned long long>(errors), wallSeconds,
        static_cast<unsigned long long>(cache.hits),
        static_cast<unsigned long long>(cache.misses),
        static_cast<unsigned long long>(cache.evictions),
        static_cast<unsigned long long>(simulatedJobs),
        warmStarted,
        static_cast<unsigned long long>(cache.entries),
        static_cast<unsigned long long>(cache.bytes),
        static_cast<unsigned long long>(shedConnections),
        static_cast<unsigned long long>(shedRequests),
        static_cast<unsigned long long>(deadlineCancels),
        static_cast<unsigned long long>(idleReaped),
        static_cast<unsigned long long>(cache.compactions),
        static_cast<unsigned long long>(droppedInFlight));
}

SimServer::SimServer(const ServeOptions &opts)
    : opts_(opts), cache_(opts.cache),
      runner_(opts.runnerThreads)
{
    // A client that disconnects while a handler is mid-response must
    // cost that handler a failed write, not the daemon its life.
    serveIgnoreSigpipe();
    if (opts_.port != 0) {
        listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (listenFd_ < 0) {
            throw IoError(csprintf("socket failed: %s",
                                   std::strerror(errno)));
        }
        const int one = 1;
        ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        struct sockaddr_in addr = {};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(opts_.port);
        if (::bind(listenFd_,
                   reinterpret_cast<struct sockaddr *>(&addr),
                   sizeof(addr)) != 0) {
            const int saved = errno;
            ::close(listenFd_);
            listenFd_ = -1;
            throw IoError(csprintf("bind 127.0.0.1:%u failed: %s",
                                   opts_.port,
                                   std::strerror(saved)));
        }
        struct sockaddr_in bound = {};
        socklen_t len = sizeof(bound);
        if (::getsockname(
                listenFd_,
                reinterpret_cast<struct sockaddr *>(&bound),
                &len) == 0) {
            boundPort_ = ntohs(bound.sin_port);
        }
    } else {
        panicIf(opts_.socketPath.empty(),
                "SimServer wants a socket path or a port");
        struct sockaddr_un addr = {};
        if (opts_.socketPath.size() >= sizeof(addr.sun_path)) {
            throw IoError(csprintf(
                "socket path too long (%zu bytes, max %zu): %s",
                opts_.socketPath.size(), sizeof(addr.sun_path) - 1,
                opts_.socketPath.c_str()));
        }
        listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (listenFd_ < 0) {
            throw IoError(csprintf("socket failed: %s",
                                   std::strerror(errno)));
        }
        // Replace a stale socket file from a previous daemon: bind
        // refuses an existing path, and serving is single-writer per
        // path by convention (like the campaign dir).
        ::unlink(opts_.socketPath.c_str());
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, opts_.socketPath.c_str(),
                     sizeof(addr.sun_path) - 1);
        if (::bind(listenFd_,
                   reinterpret_cast<struct sockaddr *>(&addr),
                   sizeof(addr)) != 0) {
            const int saved = errno;
            ::close(listenFd_);
            listenFd_ = -1;
            throw IoError(csprintf("bind %s failed: %s",
                                   opts_.socketPath.c_str(),
                                   std::strerror(saved)));
        }
    }
    if (::listen(listenFd_,
                 opts_.listenBacklog > 0 ? opts_.listenBacklog
                                         : 64) != 0) {
        const int saved = errno;
        ::close(listenFd_);
        listenFd_ = -1;
        throw IoError(csprintf("listen failed: %s",
                               std::strerror(saved)));
    }
}

SimServer::~SimServer()
{
    reapConnections(true);
    if (listenFd_ >= 0)
        ::close(listenFd_);
    if (opts_.port == 0 && !opts_.socketPath.empty())
        ::unlink(opts_.socketPath.c_str());
}

void
SimServer::event(const std::string &msg) const
{
    if (opts_.onEvent)
        opts_.onEvent(msg);
}

void
SimServer::reapConnections(bool all)
{
    std::list<Conn> finished;
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        for (auto it = conns_.begin(); it != conns_.end();) {
            if (all && !it->done.load(std::memory_order_acquire) &&
                it->fd >= 0) {
                // Unstick a handler blocked in read(2): EOF its
                // socket. The handler owns the close.
                ::shutdown(it->fd, SHUT_RDWR);
            }
            if (all || it->done.load(std::memory_order_acquire)) {
                finished.splice(finished.end(), conns_, it++);
            } else {
                ++it;
            }
        }
    }
    for (Conn &c : finished) {
        if (c.thread.joinable())
            c.thread.join();
    }
}

std::size_t
SimServer::liveConnections()
{
    std::lock_guard<std::mutex> lock(connMutex_);
    return conns_.size();
}

void
SimServer::drainConnections()
{
    // Phase 1: connections with no request in flight get EOF'd
    // immediately — SHUT_RD only, so a handler that just picked up
    // a request can still write its response.
    draining_.store(true, std::memory_order_release);
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        for (Conn &c : conns_) {
            if (!c.done.load(std::memory_order_acquire) &&
                !c.busy.load(std::memory_order_acquire) &&
                c.fd >= 0) {
                ::shutdown(c.fd, SHUT_RD);
            }
        }
    }
    // Phase 2: in-flight requests get drainSeconds to finish.
    const MonotonicDeadline deadline(opts_.drainSeconds);
    while (true) {
        reapConnections(false);
        if (liveConnections() == 0)
            return;
        if (opts_.drainSeconds <= 0 || deadline.expired())
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    // Phase 3: the grace expired. Cancel whatever SIM is running
    // (hardStop_ feeds every in-flight cancelFlag), count the
    // requests we are abandoning, and force the sockets shut.
    hardStop_.store(true, std::memory_order_release);
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        for (Conn &c : conns_) {
            if (!c.done.load(std::memory_order_acquire) &&
                c.busy.load(std::memory_order_acquire)) {
                droppedInFlight_.fetch_add(
                    1, std::memory_order_relaxed);
            }
        }
    }
    reapConnections(true);
}

ServeReport
SimServer::reportLocked() const
{
    ServeReport rep;
    rep.requests = requests_.load(std::memory_order_relaxed);
    rep.gets = gets_.load(std::memory_order_relaxed);
    rep.sims = sims_.load(std::memory_order_relaxed);
    rep.errors = errors_.load(std::memory_order_relaxed);
    rep.simulatedJobs =
        simulatedJobs_.load(std::memory_order_relaxed);
    rep.warmStarted = cache_.warmStarted();
    rep.wallSeconds =
        startedAt_ > 0 ? monotonicSeconds() - startedAt_ : 0;
    rep.cache = cache_.stats();
    rep.requestLatencyMs = requestLatencyNs_.quantiles(1e-6);
    rep.shedConnections =
        shedConnections_.load(std::memory_order_relaxed);
    rep.shedRequests = shedRequests_.load(std::memory_order_relaxed);
    rep.deadlineCancels =
        deadlineCancels_.load(std::memory_order_relaxed);
    rep.idleReaped = idleReaped_.load(std::memory_order_relaxed);
    rep.readTimeouts = readTimeouts_.load(std::memory_order_relaxed);
    rep.acceptRetries =
        acceptRetries_.load(std::memory_order_relaxed);
    rep.droppedInFlight =
        droppedInFlight_.load(std::memory_order_relaxed);
    return rep;
}

std::string
SimServer::statsJson() const
{
    const ServeReport rep = reportLocked();
    const double qps = rep.wallSeconds > 0
                           ? static_cast<double>(rep.requests) /
                                 rep.wallSeconds
                           : 0;
    const double hitRate =
        rep.cache.hits + rep.cache.misses > 0
            ? static_cast<double>(rep.cache.hits) /
                  static_cast<double>(rep.cache.hits +
                                      rep.cache.misses)
            : 0;
    std::string s = csprintf(
        "{\"schema\":\"powerchop-serve-stats-v1\","
        "\"uptime_seconds\":%.6f,\"requests\":%llu,\"gets\":%llu,"
        "\"sims\":%llu,\"errors\":%llu,\"simulated_jobs\":%llu,"
        "\"hits\":%llu,\"misses\":%llu,\"hit_rate\":%.6f,"
        "\"insertions\":%llu,\"evictions\":%llu,\"entries\":%llu,"
        "\"bytes\":%llu,\"warm_started\":%zu,\"qps\":%.6f",
        rep.wallSeconds,
        static_cast<unsigned long long>(rep.requests),
        static_cast<unsigned long long>(rep.gets),
        static_cast<unsigned long long>(rep.sims),
        static_cast<unsigned long long>(rep.errors),
        static_cast<unsigned long long>(rep.simulatedJobs),
        static_cast<unsigned long long>(rep.cache.hits),
        static_cast<unsigned long long>(rep.cache.misses), hitRate,
        static_cast<unsigned long long>(rep.cache.insertions),
        static_cast<unsigned long long>(rep.cache.evictions),
        static_cast<unsigned long long>(rep.cache.entries),
        static_cast<unsigned long long>(rep.cache.bytes),
        rep.warmStarted, qps);
    s += csprintf(
        ",\"shed_connections\":%llu,\"shed_requests\":%llu,"
        "\"deadline_cancels\":%llu,\"idle_reaped\":%llu,"
        "\"read_timeouts\":%llu,\"accept_retries\":%llu,"
        "\"dropped_in_flight\":%llu,\"compactions\":%llu,"
        "\"journal_records\":%llu,\"journal_dead_records\":%llu",
        static_cast<unsigned long long>(rep.shedConnections),
        static_cast<unsigned long long>(rep.shedRequests),
        static_cast<unsigned long long>(rep.deadlineCancels),
        static_cast<unsigned long long>(rep.idleReaped),
        static_cast<unsigned long long>(rep.readTimeouts),
        static_cast<unsigned long long>(rep.acceptRetries),
        static_cast<unsigned long long>(rep.droppedInFlight),
        static_cast<unsigned long long>(rep.cache.compactions),
        static_cast<unsigned long long>(rep.cache.journalRecords),
        static_cast<unsigned long long>(
            rep.cache.journalDeadRecords));
    const stats::Quantiles &q = rep.requestLatencyMs;
    if (q.samples > 0) {
        s += csprintf(",\"request_latency_ms\":{\"samples\":%llu,"
                      "\"p50\":%.6f,\"p90\":%.6f,\"p99\":%.6f}",
                      static_cast<unsigned long long>(q.samples),
                      q.p50, q.p90, q.p99);
    }
    s += "}\n";
    return s;
}

ResponseStatus
SimServer::handleSim(const std::string &specJson,
                     std::string &payload)
{
    SimSpec spec;
    std::string err;
    if (!parseSimSpec(specJson, spec, err)) {
        payload = err + "\n";
        return ResponseStatus::Err;
    }
    const std::vector<SimJob> jobs = buildSpecJobs(spec);
    if (jobs.size() > kMaxJobsPerRequest) {
        payload = csprintf("matrix of %zu jobs exceeds the per-"
                           "request ceiling of %zu\n",
                           jobs.size(), kMaxJobsPerRequest);
        return ResponseStatus::Err;
    }

    CampaignResult result;
    result.keys.reserve(jobs.size());
    std::set<std::uint64_t> seen;
    for (const SimJob &job : jobs) {
        const std::uint64_t key = campaignJobKey(job);
        if (!seen.insert(key).second) {
            payload = csprintf("duplicate matrix entry (key "
                               "%016llx)\n",
                               static_cast<unsigned long long>(key));
            return ResponseStatus::Err;
        }
        result.keys.push_back(key);
    }
    result.outcomes.resize(jobs.size());
    result.payloads.resize(jobs.size());

    // Cache pass: hits fill their slots immediately.
    std::vector<std::size_t> missIdx;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (cache_.get(result.keys[i], &result.payloads[i])) {
            result.outcomes[i].status = JobStatus::Ok;
            ++result.replayed;
        } else {
            missIdx.push_back(i);
        }
    }

    // Miss pass: execute fresh jobs through the shared runner.
    // The pool must be driven from one thread at a time, so SIM
    // misses serialize here; GET/STATS traffic never waits on this.
    // Admission control bounds the line at that door: fully cached
    // SIMs answered above never queue, never shed.
    if (!missIdx.empty()) {
        const MonotonicDeadline deadline(
            opts_.requestDeadlineSeconds);
        if (opts_.simQueueDepth > 0 &&
            simWaiters_.fetch_add(1, std::memory_order_acq_rel) >=
                opts_.simQueueDepth) {
            simWaiters_.fetch_sub(1, std::memory_order_acq_rel);
            shedRequests_.fetch_add(1, std::memory_order_relaxed);
            payload = csprintf(
                "sim admission queue full (%u deep): retry after "
                "backoff\n",
                opts_.simQueueDepth);
            return ResponseStatus::Busy;
        }
        if (opts_.simQueueDepth == 0)
            simWaiters_.fetch_add(1, std::memory_order_acq_rel);

        std::vector<SimJob> missJobs;
        missJobs.reserve(missIdx.size());
        for (std::size_t i : missIdx)
            missJobs.push_back(jobs[i]);

        // A request that cannot reach the runner before its wall
        // deadline is cancelled while still in line.
        std::unique_lock<std::timed_mutex> lock(simMutex_,
                                                std::defer_lock);
        if (deadline.armed()) {
            if (!lock.try_lock_for(std::chrono::duration<double>(
                    deadline.remainingSeconds()))) {
                simWaiters_.fetch_sub(1, std::memory_order_acq_rel);
                deadlineCancels_.fetch_add(
                    1, std::memory_order_relaxed);
                payload = csprintf(
                    "deadline: request exceeded the %.3fs wall "
                    "deadline waiting for the runner\n",
                    opts_.requestDeadlineSeconds);
                return ResponseStatus::Err;
            }
        } else {
            lock.lock();
        }

        // Cooperative cancel: an alarm thread watches the wall
        // deadline and the drain hard-stop; either raises the
        // cancel flag the runner polls at block boundaries.
        RobustRunOptions ropts;
        ropts.timeoutSeconds = opts_.jobTimeoutSeconds;
        std::atomic<bool> cancel{false};
        std::atomic<bool> alarmStop{false};
        ropts.cancelFlag = &cancel;
        std::thread alarm([&] {
            while (!alarmStop.load(std::memory_order_relaxed)) {
                if (deadline.expired() ||
                    hardStop_.load(std::memory_order_relaxed)) {
                    cancel.store(true, std::memory_order_relaxed);
                    return;
                }
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(5));
            }
        });
        RobustBatchResult batch = runner_.runRobust(missJobs, ropts);
        alarmStop.store(true, std::memory_order_relaxed);
        alarm.join();
        lock.unlock();
        simWaiters_.fetch_sub(1, std::memory_order_acq_rel);

        for (std::size_t j = 0; j < missIdx.size(); ++j) {
            const std::size_t i = missIdx[j];
            result.outcomes[i] = batch.outcomes[j];
            if (batch.outcomes[j].status == JobStatus::Ok) {
                // Rendered exactly once, here; every later hit
                // serves these bytes verbatim. Jobs that finished
                // before a deadline cancel still count: their
                // results are real and cacheable.
                result.payloads[i] = batch.results[j].toJson();
                cache_.put(result.keys[i], result.payloads[i]);
            }
        }
        result.executed = missIdx.size();
        simulatedJobs_.fetch_add(missIdx.size(),
                                 std::memory_order_relaxed);
        if (deadline.expired() && batch.resumableCount() > 0) {
            deadlineCancels_.fetch_add(1, std::memory_order_relaxed);
            payload = csprintf(
                "deadline: SIM exceeded the %.3fs wall deadline "
                "(%zu of %zu fresh jobs cancelled; finished jobs "
                "were cached)\n",
                opts_.requestDeadlineSeconds,
                batch.resumableCount(), missIdx.size());
            return ResponseStatus::Err;
        }
    }

    payload = result.reportJson();
    return missIdx.empty() ? ResponseStatus::Hit
                           : ResponseStatus::Ok;
}

void
SimServer::handleConnection(Conn *conn)
{
    FdReader reader(conn->fd);
    const int idleMs = timeoutMs(opts_.idleTimeoutSeconds);
    const int readMs = timeoutMs(opts_.readTimeoutSeconds);
    const int writeMs = timeoutMs(opts_.writeTimeoutSeconds);
    std::string line;
    while (true) {
        const ReadOutcome ro =
            reader.readLineDeadline(line, idleMs, readMs);
        if (ro == ReadOutcome::TimedOut) {
            if (reader.buffered()) {
                // A half-sent request is a broken (or hostile)
                // peer: tell it why, then hang up.
                readTimeouts_.fetch_add(1, std::memory_order_relaxed);
                writeResponseDeadline(
                    conn->fd, ResponseStatus::Err,
                    "deadline: request read timed out mid-frame\n",
                    writeMs);
            } else {
                // Idle between requests past the budget: a slot a
                // live client could be using. Close quietly.
                idleReaped_.fetch_add(1, std::memory_order_relaxed);
            }
            break;
        }
        if (ro == ReadOutcome::TooLong) {
            writeResponseDeadline(
                conn->fd, ResponseStatus::Err,
                "request line exceeds the 1 MiB ceiling\n", writeMs);
            break;
        }
        if (ro != ReadOutcome::Ok)
            break; // EOF or transport error
        conn->busy.store(true, std::memory_order_release);
        const std::int64_t t0 = monotonicNanos();
        const Request req = parseRequestLine(line);
        requests_.fetch_add(1, std::memory_order_relaxed);

        ResponseStatus status = ResponseStatus::Err;
        std::string payload;
        switch (req.verb) {
          case RequestVerb::Get: {
            gets_.fetch_add(1, std::memory_order_relaxed);
            status = cache_.get(req.key, &payload)
                         ? ResponseStatus::Hit
                         : ResponseStatus::Miss;
            break;
          }
          case RequestVerb::Sim:
            sims_.fetch_add(1, std::memory_order_relaxed);
            status = handleSim(req.spec, payload);
            break;
          case RequestVerb::Stats:
            status = ResponseStatus::Ok;
            payload = statsJson();
            break;
          case RequestVerb::Bad:
            payload = req.error + "\n";
            break;
        }
        if (status == ResponseStatus::Err)
            errors_.fetch_add(1, std::memory_order_relaxed);

        const bool sent =
            writeResponseDeadline(conn->fd, status, payload, writeMs);
        requestLatencyNs_.sample(static_cast<std::uint64_t>(
            monotonicNanos() - t0));
        conn->busy.store(false, std::memory_order_release);
        if (!sent)
            break; // peer went away (or stalled) mid-response
        if (draining_.load(std::memory_order_acquire))
            break; // finish the request in hand, then bow out
    }
    ::close(conn->fd);
    conn->fd = -1;
    conn->done.store(true, std::memory_order_release);
}

ServeReport
SimServer::run()
{
    startedAt_ = monotonicSeconds();
    event(csprintf("serving on %s",
                   opts_.port != 0
                       ? csprintf("127.0.0.1:%u", boundPort_).c_str()
                       : opts_.socketPath.c_str()));
    if (cache_.warmStarted() > 0) {
        event(csprintf("warm-started %zu cached results from %s",
                       cache_.warmStarted(),
                       opts_.cache.journalPath.c_str()));
    }

    // Status publishing rides its own thread so snapshots stay fresh
    // while every handler thread is busy (mirrors the campaign
    // worker's heartbeat).
    std::unique_ptr<StatusPublisher> publisher;
    std::atomic<bool> statusStop{false};
    std::thread statusThread;
    if (!opts_.statusPath.empty()) {
        publisher = std::make_unique<StatusPublisher>(
            opts_.statusPath, opts_.statusIntervalSeconds);
        const auto makeSnapshot = [this](bool finished) {
            const ServeReport rep = reportLocked();
            StatusSnapshot snap;
            snap.role = "server";
            snap.label = "powerchopd";
            snap.jobsTotal = snap.jobsDone =
                static_cast<std::size_t>(rep.simulatedJobs);
            snap.jobsOk = snap.jobsDone;
            snap.serve.requests = rep.requests;
            snap.serve.hits = rep.cache.hits;
            snap.serve.misses = rep.cache.misses;
            snap.serve.evictions = rep.cache.evictions;
            snap.serve.entries = rep.cache.entries;
            snap.serve.bytes = rep.cache.bytes;
            snap.serve.qps = rep.wallSeconds > 0
                ? static_cast<double>(rep.requests) /
                      rep.wallSeconds
                : 0;
            snap.serve.shedConnections = rep.shedConnections;
            snap.serve.shedRequests = rep.shedRequests;
            snap.serve.deadlineCancels = rep.deadlineCancels;
            snap.serve.compactions = rep.cache.compactions;
            snap.serve.requestLatencyMs = rep.requestLatencyMs;
            snap.finished = finished;
            return snap;
        };
        statusThread = std::thread([&, this] {
            while (!statusStop.load(std::memory_order_relaxed)) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(100));
                publisher->publish(makeSnapshot(false));
            }
            publisher->publish(makeSnapshot(true), true);
        });
    }

    while (!(opts_.stopFlag &&
             opts_.stopFlag->load(std::memory_order_relaxed))) {
        struct pollfd pfd = {};
        pfd.fd = listenFd_;
        pfd.events = POLLIN;
        const int pr = ::poll(&pfd, 1, 100 /* ms */);
        if (pr < 0 && errno != EINTR)
            break;
        reapConnections(false);
        if (pr <= 0 || !(pfd.revents & POLLIN))
            continue;
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            if (errno == EMFILE || errno == ENFILE ||
                errno == ENOBUFS || errno == ENOMEM) {
                // Out of descriptors/buffers: not fatal — back off
                // briefly so handlers can finish and free some.
                static LogRateLimiter limiter(2.0, 10.0);
                warnLimited(limiter,
                            "[powerchopd] accept failed: %s "
                            "(backing off)",
                            std::strerror(errno));
                acceptRetries_.fetch_add(1,
                                         std::memory_order_relaxed);
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(10));
                continue;
            }
            static LogRateLimiter limiter(2.0, 10.0);
            warnLimited(limiter, "[powerchopd] accept failed: %s",
                        std::strerror(errno));
            acceptRetries_.fetch_add(1, std::memory_order_relaxed);
            continue;
        }
        setNonBlocking(fd);
        if (opts_.maxConnections > 0 &&
            liveConnections() >= opts_.maxConnections) {
            // Over the cap: shed loudly (BUSY, not silence) so a
            // well-behaved client backs off instead of retrying
            // into a black hole.
            shedConnections_.fetch_add(1, std::memory_order_relaxed);
            writeResponseDeadline(
                fd, ResponseStatus::Busy,
                csprintf("connection cap (%u) reached: retry "
                         "after backoff\n",
                         opts_.maxConnections),
                1000);
            ::close(fd);
            continue;
        }
        std::lock_guard<std::mutex> lock(connMutex_);
        conns_.emplace_back();
        Conn *conn = &conns_.back();
        conn->fd = fd;
        conn->thread =
            std::thread([this, conn] { handleConnection(conn); });
    }

    // Stop accepting the moment drain begins: the listening socket
    // closes before in-flight work is waited on, so a restarting
    // supervisor can bind the replacement immediately.
    event(csprintf("draining (%.1fs grace, %zu connections open)",
                   opts_.drainSeconds, liveConnections()));
    ::close(listenFd_);
    listenFd_ = -1;
    if (opts_.port == 0 && !opts_.socketPath.empty())
        ::unlink(opts_.socketPath.c_str());
    drainConnections();

    // Everything served is already fsync'd record-by-record; this
    // is the drain-time belt-and-braces flush before the final
    // statusboard snapshot goes out.
    cache_.flushJournal();
    if (statusThread.joinable()) {
        statusStop.store(true, std::memory_order_relaxed);
        statusThread.join();
    }
    ServeReport rep = reportLocked();
    event(rep.summary());
    return rep;
}

} // namespace powerchop
