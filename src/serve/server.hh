/**
 * @file
 * powerchopd — simulation-as-a-service over the campaign layer.
 *
 * The daemon binds a Unix-domain (or loopback TCP) socket, accepts
 * protocol.hh requests on a thread per connection, and serves them
 * from the content-keyed ResultCache: a GET hit or a fully cached SIM
 * matrix costs a hash lookup; misses execute through the existing
 * SimJobRunner machinery (serialized — the runner is a single-driver
 * pool) and are inserted write-ahead into the cache journal before
 * the response leaves the socket.
 *
 * Byte-identity guarantee: a SIM response's payload is the
 * CampaignResult::reportJson() of the requested matrix, with per-job
 * payloads taken verbatim from the cache (each one a SimResult JSON
 * rendered exactly once, at first simulation). Since report rendering
 * is deterministic in (keys, outcomes, payloads), a served report —
 * cold, warm, or assembled from a restarted daemon's journal — is
 * byte-identical to the report.json a direct `powerchop campaign` of
 * the same matrix writes.
 *
 * The daemon publishes a "server" statusboard snapshot (hit/miss/
 * eviction counters, QPS, request latency quantiles) into
 * `<dir>/status/`, so `powerchop status` and `status --prom` watch a
 * serving daemon exactly like a running campaign.
 */

#ifndef POWERCHOP_SERVE_SERVER_HH
#define POWERCHOP_SERVE_SERVER_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <string>
#include <thread>

#include "common/stats.hh"
#include "serve/protocol.hh"
#include "serve/result_cache.hh"
#include "sim/sim_runner.hh"

namespace powerchop
{

/** powerchopd configuration. */
struct ServeOptions
{
    /** Unix-domain socket path (an existing socket file is
     *  replaced). Ignored when port != 0. */
    std::string socketPath;

    /** TCP port on 127.0.0.1; 0 selects the Unix socket. */
    unsigned short port = 0;

    /** Result-cache sizing and durability (result_cache.hh). */
    ResultCacheOptions cache;

    /** Runner pool size; 0 = defaultJobCount(). */
    unsigned runnerThreads = 0;

    /** Per-job stuck-run watchdog for misses; 0 disables. */
    double jobTimeoutSeconds = 0;

    /** listen(2) backlog for the accept queue. */
    int listenBacklog = 64;

    /** Connection cap: accepts past this many concurrent
     *  connections are shed with BUSY + close. 0 = unlimited. */
    unsigned maxConnections = 256;

    /** SIM admission queue depth: at most this many SIM misses may
     *  be queued or running behind the runner mutex; excess requests
     *  are shed with BUSY instead of waiting unboundedly.
     *  0 = unlimited. */
    unsigned simQueueDepth = 16;

    /** Reap a connection idle (no request in flight) this long;
     *  <= 0 disables. */
    double idleTimeoutSeconds = 300;

    /** Mid-frame read deadline: a peer that started a request line
     *  must deliver the next byte within this; <= 0 disables. */
    double readTimeoutSeconds = 30;

    /** Response write deadline: a peer that stops reading loses the
     *  connection after this; <= 0 disables. */
    double writeTimeoutSeconds = 30;

    /** Per-request wall deadline: an in-flight SIM past this is
     *  cancelled (SimOptions::cancelFlag) and answered
     *  "ERR deadline..."; <= 0 disables. */
    double requestDeadlineSeconds = 0;

    /** Grace granted to in-flight requests after the stop flag
     *  rises before their connections are forced shut. */
    double drainSeconds = 5;

    /** Shutdown flag the accept loop polls (SIGINT/SIGTERM). */
    const std::atomic<bool> *stopFlag = nullptr;

    /** Statusboard snapshot path; empty disables publishing. */
    std::string statusPath;

    /** Cadence floor of status publishing, seconds. */
    double statusIntervalSeconds = 0.25;

    /** Operational log lines (bind/accept/shutdown events). */
    std::function<void(const std::string &)> onEvent;
};

/** What a daemon lifetime accomplished. */
struct ServeReport
{
    std::uint64_t requests = 0; ///< All verbs, ERR included.
    std::uint64_t gets = 0;
    std::uint64_t sims = 0;
    std::uint64_t errors = 0;   ///< Requests answered ERR.
    std::uint64_t simulatedJobs = 0; ///< Jobs executed fresh.
    std::size_t warmStarted = 0; ///< Cache entries from the journal.
    double wallSeconds = 0;
    ResultCacheStats cache;
    stats::Quantiles requestLatencyMs;

    /** Hardening counters. @{ */
    std::uint64_t shedConnections = 0; ///< BUSY at the accept gate.
    std::uint64_t shedRequests = 0;    ///< BUSY at SIM admission.
    std::uint64_t deadlineCancels = 0; ///< SIMs cancelled by wall
                                       ///< deadline (ERR deadline).
    std::uint64_t idleReaped = 0;      ///< Idle conns timed out.
    std::uint64_t readTimeouts = 0;    ///< Mid-frame read stalls.
    std::uint64_t acceptRetries = 0;   ///< accept() EMFILE/ENFILE/
                                       ///< transient failures.
    std::uint64_t droppedInFlight = 0; ///< Requests force-closed at
                                       ///< the drain deadline.
    /** @} */

    /** One-line human-readable summary. */
    std::string summary() const;
};

/**
 * The daemon. Construction binds and listens (throws IoError when
 * the address is unusable), run() serves until the stop flag rises,
 * then drains connection threads and returns the lifetime report.
 */
class SimServer
{
  public:
    explicit SimServer(const ServeOptions &opts);
    ~SimServer();

    SimServer(const SimServer &) = delete;
    SimServer &operator=(const SimServer &) = delete;

    /** Serve until the stop flag rises. One call per server. */
    ServeReport run();

    /** The bound TCP port (after construction; 0 for Unix). */
    unsigned short boundPort() const { return boundPort_; }

  private:
    struct Conn
    {
        std::thread thread;
        int fd = -1;
        std::atomic<bool> done{false};
        std::atomic<bool> busy{false}; ///< A request is in flight.
    };

    void event(const std::string &msg) const;
    void handleConnection(Conn *conn);
    ResponseStatus handleSim(const std::string &specJson,
                             std::string &payload);
    std::string statsJson() const;
    ServeReport reportLocked() const;
    void reapConnections(bool all);
    void drainConnections();
    std::size_t liveConnections();

    ServeOptions opts_;
    ResultCache cache_;
    SimJobRunner runner_;
    int listenFd_ = -1;
    unsigned short boundPort_ = 0;
    double startedAt_ = 0;

    /** The runner pool must be driven from one thread at a time.
     *  Timed so a request-deadline waiter can give up and answer
     *  "ERR deadline" instead of queueing forever. */
    std::timed_mutex simMutex_;

    /** SIM misses queued or running behind simMutex_ (admission
     *  control compares this against simQueueDepth). */
    std::atomic<unsigned> simWaiters_{0};

    /** Rises when drain begins: handlers finish their current
     *  request, then close instead of reading the next one. */
    std::atomic<bool> draining_{false};

    /** Rises at the drain deadline: cooperatively cancels whatever
     *  SIM is still in flight (wired into RobustRunOptions). */
    std::atomic<bool> hardStop_{false};

    std::mutex connMutex_;
    std::list<Conn> conns_;

    std::atomic<std::uint64_t> requests_{0}, gets_{0}, sims_{0},
        errors_{0}, simulatedJobs_{0};
    std::atomic<std::uint64_t> shedConnections_{0},
        shedRequests_{0}, deadlineCancels_{0}, idleReaped_{0},
        readTimeouts_{0}, acceptRetries_{0}, droppedInFlight_{0};
    stats::Log2Histogram requestLatencyNs_;
};

} // namespace powerchop

#endif // POWERCHOP_SERVE_SERVER_HH
