#include "sim/campaign.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>

#include <sys/stat.h>
#include <unistd.h>

#include "common/atomic_file.hh"
#include "common/clock.hh"
#include "common/flight_recorder.hh"
#include "common/logging.hh"
#include "sim/statusboard.hh"
#include "telemetry/trace.hh"
#include "workload/spec_io.hh"

namespace powerchop
{

namespace
{

/** Process-wide interrupt flag raised by the signal handlers. A
 *  namespace-scope atomic (zero-initialized before main) so the
 *  handler never races static-local initialization. */
std::atomic<bool> g_campaignInterrupt{false};

extern "C" void
campaignSignalHandler(int sig)
{
    // First signal: request a graceful drain. Second signal: the
    // drain is wedged or the user is insistent — exit immediately
    // with the conventional fatal-signal status. Both paths are
    // async-signal-safe (lock-free atomic + _exit).
    if (g_campaignInterrupt.exchange(true))
        ::_exit(128 + sig);
}

/** Canonical text of the SimOptions fields that can change a job's
 *  result (instrumentation options deliberately excluded: traces,
 *  metrics and audits never feed back into simulation). */
std::string
canonicalOptionsText(const SimOptions &opts)
{
    return csprintf(
        "options-v1\nmode=%s\nmaxInstructions=%llu\nmanageVpu=%d\n"
        "manageBpu=%d\nmanageMlc=%d\ntimeoutCycles=%.17g\n"
        "staticPolicy=%d,%d,%u\n",
        simModeName(opts.mode),
        static_cast<unsigned long long>(opts.maxInstructions),
        opts.manageVpu ? 1 : 0, opts.manageBpu ? 1 : 0,
        opts.manageMlc ? 1 : 0, opts.timeoutCycles,
        opts.staticPolicy.vpuOn ? 1 : 0,
        opts.staticPolicy.bpuOn ? 1 : 0,
        static_cast<unsigned>(opts.staticPolicy.mlc));
}

bool
fileExists(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
}

/** Single-line JSON error payload for a non-ok journal record. */
std::string
errorPayload(const JobOutcome &outcome)
{
    return csprintf("{\"error\":\"%s\",\"attempts\":%u}",
                    telemetry::jsonEscape(outcome.error).c_str(),
                    outcome.attempts);
}

} // namespace

bool
parseErrorPayload(const std::string &payload, std::string &error,
                  unsigned &attempts)
{
    // Inverse of errorPayload(): {"error":"<escaped>","attempts":N}.
    std::size_t pos = 0;
    if (payload.compare(pos, 10, "{\"error\":\"") != 0)
        return false;
    pos += 10;

    std::string text;
    while (pos < payload.size() && payload[pos] != '"') {
        char c = payload[pos++];
        if (c != '\\') {
            text += c;
            continue;
        }
        if (pos >= payload.size())
            return false;
        const char esc = payload[pos++];
        switch (esc) {
          case '"':
            text += '"';
            break;
          case '\\':
            text += '\\';
            break;
          case 'n':
            text += '\n';
            break;
          case 't':
            text += '\t';
            break;
          case 'u': {
            std::uint64_t code = 0;
            if (pos + 4 > payload.size())
                return false;
            for (int i = 0; i < 4; ++i) {
                const char h = payload[pos++];
                code <<= 4;
                if (h >= '0' && h <= '9')
                    code |= static_cast<std::uint64_t>(h - '0');
                else if (h >= 'a' && h <= 'f')
                    code |= static_cast<std::uint64_t>(h - 'a' + 10);
                else
                    return false;
            }
            text += static_cast<char>(code);
            break;
          }
          default:
            return false;
        }
    }

    const std::string tail = ",\"attempts\":";
    if (payload.compare(pos, 1, "\"") != 0)
        return false;
    ++pos;
    if (payload.compare(pos, tail.size(), tail) != 0)
        return false;
    pos += tail.size();
    char *end = nullptr;
    const unsigned long n =
        std::strtoul(payload.c_str() + pos, &end, 10);
    if (end == payload.c_str() + pos ||
        std::string(end) != "}") {
        return false;
    }
    error = std::move(text);
    attempts = static_cast<unsigned>(n);
    return true;
}

std::uint64_t
campaignJobKey(const SimJob &job)
{
    std::string text = "powerchop-campaign-job-v1\n";
    text += "workload:\n";
    text += formatWorkloadSpec(job.workload);
    text += "machine:\n";
    text += job.machine.canonicalText();
    text += canonicalOptionsText(job.opts);
    return fnv1a64(text);
}

bool
CampaignResult::complete() const
{
    if (outcomes.empty())
        return true;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        if (outcomes[i].status != JobStatus::Ok ||
            payloads[i].empty()) {
            return false;
        }
    }
    return true;
}

std::string
CampaignResult::summary() const
{
    std::size_t ok = 0, failed = 0, timed_out = 0, resumable = 0;
    for (const auto &o : outcomes) {
        switch (o.status) {
          case JobStatus::Ok:
            ++ok;
            break;
          case JobStatus::Failed:
            ++failed;
            break;
          case JobStatus::TimedOut:
            ++timed_out;
            break;
          case JobStatus::Skipped:
          case JobStatus::Interrupted:
            ++resumable;
            break;
        }
    }
    std::string s = csprintf(
        "%zu jobs: %zu replayed from journal, %zu executed; "
        "%zu ok, %zu failed, %zu timed out, %zu resumable",
        outcomes.size(), replayed, executed, ok, failed, timed_out,
        resumable);
    if (staleRecords > 0)
        s += csprintf("; %zu stale records rejected", staleRecords);
    if (corruptedRecords + truncatedRecords > 0) {
        s += csprintf("; journal recovered around %zu corrupt / %zu "
                      "torn lines",
                      corruptedRecords, truncatedRecords);
    }
    if (workerCrashes + workerRestarts + redispatches > 0) {
        s += csprintf("; supervisor: %zu worker crashes, %zu "
                      "restarts, %zu re-dispatches",
                      workerCrashes, workerRestarts, redispatches);
    }
    if (interrupted)
        s += " [interrupted: resume with --resume]";
    return s;
}

std::string
CampaignResult::reportJson() const
{
    std::size_t ok = 0, failed = 0, timed_out = 0, resumable = 0;
    for (const auto &o : outcomes) {
        switch (o.status) {
          case JobStatus::Ok:
            ++ok;
            break;
          case JobStatus::Failed:
            ++failed;
            break;
          case JobStatus::TimedOut:
            ++timed_out;
            break;
          case JobStatus::Skipped:
          case JobStatus::Interrupted:
            ++resumable;
            break;
        }
    }

    // Only run-invariant data belongs here: a resumed campaign's
    // report must be byte-identical to an uninterrupted run's.
    std::string s = csprintf(
        "{\"campaign\":{\"jobs\":%zu,\"ok\":%zu,\"failed\":%zu,"
        "\"timed_out\":%zu,\"resumable\":%zu},\n\"results\":[\n",
        outcomes.size(), ok, failed, timed_out, resumable);
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        s += csprintf("{\"key\":\"%016llx\",\"status\":\"%s\"",
                      static_cast<unsigned long long>(keys[i]),
                      jobStatusName(outcomes[i].status));
        if (outcomes[i].status == JobStatus::Ok &&
            !payloads[i].empty()) {
            s += ",\"result\":" + payloads[i];
        } else if (!outcomes[i].error.empty()) {
            s += csprintf(
                ",\"error\":\"%s\"",
                telemetry::jsonEscape(outcomes[i].error).c_str());
        }
        s += "}";
        if (i + 1 < outcomes.size())
            s += ",";
        s += "\n";
    }
    s += "]}\n";
    return s;
}

void
makeCampaignDirs(const std::string &dir)
{
    std::string prefix;
    std::size_t start = 0;
    while (start <= dir.size()) {
        std::size_t slash = dir.find('/', start);
        if (slash == std::string::npos)
            slash = dir.size();
        prefix = dir.substr(0, slash);
        start = slash + 1;
        if (prefix.empty() || prefix == ".")
            continue;
        if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
            throw IoError(csprintf("%s: mkdir failed: %s",
                                   prefix.c_str(),
                                   std::strerror(errno)));
        }
    }
}

std::atomic<bool> &
campaignInterruptFlag()
{
    return g_campaignInterrupt;
}

void
installCampaignSignalHandlers()
{
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = campaignSignalHandler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0; // no SA_RESTART: let blocking waits observe it
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);
}

CampaignResult
runCampaign(SimJobRunner &runner, const std::vector<SimJob> &jobs,
            const std::string &dir, const CampaignOptions &opts)
{
    CampaignResult result;
    result.keys.reserve(jobs.size());
    result.outcomes.resize(jobs.size());
    result.payloads.resize(jobs.size());

    makeCampaignDirs(dir);
    const std::string journal_path = dir + "/journal.jsonl";
    const std::string report_path = dir + "/report.json";

    // Content keys. A duplicate key means two spec entries describe
    // the byte-identical job — refuse rather than journal ambiguity.
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const std::uint64_t key = campaignJobKey(jobs[i]);
        for (std::size_t j = 0; j < result.keys.size(); ++j) {
            if (result.keys[j] == key) {
                fatal("campaign: jobs %zu and %zu have identical "
                      "content keys (duplicate matrix entry?)",
                      j, i);
            }
        }
        result.keys.push_back(key);
    }

    // Replay the journal (resume) or refuse a dirty directory.
    if (!fileExists(journal_path) && opts.resume) {
        // A --resume that finds no journal is a mistyped directory,
        // not a fresh campaign: failing loudly here beats silently
        // re-running the whole matrix somewhere unexpected.
        fatal("campaign: --resume but no journal at %s; check the "
              "campaign directory",
              journal_path.c_str());
    }
    if (fileExists(journal_path)) {
        if (!opts.resume) {
            fatal("campaign: %s already exists; pass --resume to "
                  "continue it or choose a fresh directory",
                  journal_path.c_str());
        }
        const JournalReplay replay = loadJournal(journal_path);
        result.corruptedRecords = replay.corrupted;
        result.truncatedRecords = replay.truncated;

        std::size_t matched = 0;
        for (const auto &rec : replay.records) {
            bool found = false;
            for (std::size_t i = 0; i < jobs.size(); ++i) {
                if (result.keys[i] != rec.key)
                    continue;
                found = true;
                // Only completed records satisfy a job; failed and
                // timed-out records document history but rerun.
                if (rec.status == jobStatusName(JobStatus::Ok)) {
                    result.outcomes[i].status = JobStatus::Ok;
                    result.outcomes[i].attempts = 0; // replayed
                    result.payloads[i] = rec.payload;
                    ++result.replayed;
                }
                ++matched;
                break;
            }
            if (!found)
                ++result.staleRecords;
        }
        if (result.staleRecords > 0) {
            warn("campaign: %zu journal records match no current "
                 "job (spec or machine config changed); they are "
                 "ignored and the jobs rerun",
                 result.staleRecords);
        }
        (void)matched;
    }

    // Pending jobs: everything the journal did not satisfy.
    std::vector<SimJob> pending;
    std::vector<std::size_t> pendingIndex;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (result.payloads[i].empty()) {
            pending.push_back(jobs[i]);
            pendingIndex.push_back(i);
        }
    }
    result.executed = pending.size();

    const std::atomic<bool> *interrupt =
        opts.interruptFlag ? opts.interruptFlag
                           : &campaignInterruptFlag();

    // Live observability (statusboard.hh). Everything below is a
    // write-only side channel: snapshots are derived from the same
    // tallies the report uses, and nothing feeds back, so the journal
    // and report.json are byte-identical with it on or off.
    std::unique_ptr<StatusPublisher> publisher;
    stats::Log2Histogram fsync_latency_ns;
    std::mutex inflight_mutex;
    std::vector<std::uint64_t> inflight;
    std::atomic<std::size_t> done_jobs{0}, ok_jobs{0};
    std::atomic<std::size_t> failed_jobs{0}, retried_jobs{0};
    const double obs_start = monotonicSeconds();
    const InsnCount obs_tally_start = simulatedInstructionTally();

    if (opts.publishStatus) {
        makeCampaignDirs(statusDirPath(dir));
        publisher.reset(new StatusPublisher(
            campaignStatusPath(dir), opts.statusIntervalSeconds));
    }

    const auto makeSnapshot = [&](bool finished) {
        StatusSnapshot snap;
        snap.role = "campaign";
        snap.label = "campaign";
        snap.jobsTotal = jobs.size();
        const std::size_t executed_done = done_jobs.load();
        snap.jobsDone = result.replayed + executed_done;
        snap.jobsOk = result.replayed + ok_jobs.load();
        snap.jobsFailed = failed_jobs.load();
        snap.jobsRetried = retried_jobs.load();
        {
            std::lock_guard<std::mutex> lock(inflight_mutex);
            snap.inFlight = inflight;
        }
        const double elapsed = monotonicSeconds() - obs_start;
        if (elapsed > 0) {
            snap.mips =
                static_cast<double>(simulatedInstructionTally() -
                                    obs_tally_start) /
                elapsed / 1e6;
        }
        if (!finished && executed_done > 0 && elapsed > 0 &&
            executed_done < pending.size()) {
            snap.etaSeconds = (pending.size() - executed_done) *
                              (elapsed / executed_done);
        }
        snap.finished = finished;
        snap.jobLatencyMs =
            runner.report().taskLatencyNs.quantiles(1e-6);
        snap.fsyncLatencyMs = fsync_latency_ns.quantiles(1e-6);
        telemetry::StageProfiler &prof =
            telemetry::StageProfiler::global();
        if (prof.enabled())
            snap.stages = prof.snapshot();
        return snap;
    };

    if (!pending.empty()) {
        JournalWriter writer(journal_path);
        if (publisher)
            writer.setFlushLatencyHistogram(&fsync_latency_ns);

        std::atomic<std::size_t> done{0};
        RobustRunOptions robust;
        robust.timeoutSeconds = opts.timeoutSeconds;
        robust.maxRetries = opts.maxRetries;
        robust.cancelFlag = interrupt;
        robust.drainSeconds = opts.drainSeconds;
        robust.backoffBaseSeconds = opts.backoffBaseSeconds;
        robust.backoffMaxSeconds = opts.backoffMaxSeconds;
        robust.onComplete = [&](std::size_t pi, const SimResult &res,
                                const JobOutcome &outcome) {
            // Write-ahead: the record is durable (fsync'd) before
            // the job counts as done. Resumable states (skipped /
            // interrupted) journal nothing — they carry no result
            // and rerun on resume.
            const std::size_t i = pendingIndex[pi];
            JournalRecord rec;
            rec.key = result.keys[i];
            rec.status = jobStatusName(outcome.status);
            switch (outcome.status) {
              case JobStatus::Ok:
                rec.payload = res.toJson();
                writer.append(rec);
                break;
              case JobStatus::Failed:
              case JobStatus::TimedOut:
                rec.payload = errorPayload(outcome);
                writer.append(rec);
                break;
              case JobStatus::Skipped:
              case JobStatus::Interrupted:
                break;
            }

            FlightRecorder::global().record(
                FlightEventType::JobFinish, rec.key,
                jobStatusName(outcome.status));
            done_jobs.fetch_add(1);
            if (outcome.status == JobStatus::Ok)
                ok_jobs.fetch_add(1);
            else if (outcome.status == JobStatus::Failed ||
                     outcome.status == JobStatus::TimedOut)
                failed_jobs.fetch_add(1);
            if (outcome.attempts > 1)
                retried_jobs.fetch_add(outcome.attempts - 1);
            if (publisher) {
                {
                    std::lock_guard<std::mutex> lock(inflight_mutex);
                    const auto it = std::find(
                        inflight.begin(), inflight.end(), rec.key);
                    if (it != inflight.end())
                        inflight.erase(it);
                }
                publisher->publish(makeSnapshot(false));
            }

            if (opts.onProgress)
                opts.onProgress(done.fetch_add(1) + 1,
                                pending.size());
        };
        robust.onStart = [&](std::size_t pi) {
            const std::uint64_t key = result.keys[pendingIndex[pi]];
            FlightRecorder::global().record(FlightEventType::JobStart,
                                            key);
            if (!publisher)
                return;
            {
                std::lock_guard<std::mutex> lock(inflight_mutex);
                inflight.push_back(key);
            }
            publisher->publish(makeSnapshot(false));
        };

        // A heartbeat publisher alongside the workers: with only
        // per-job publishing, one long job would leave the snapshot
        // (and its heartbeat mtime) stale for its whole runtime.
        std::atomic<bool> status_stop{false};
        std::thread status_thread;
        if (publisher) {
            status_thread = std::thread([&] {
                while (!status_stop.load(std::memory_order_relaxed)) {
                    publisher->publish(makeSnapshot(false));
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(100));
                }
            });
        }

        const RobustBatchResult batch =
            runner.runRobust(pending, robust);

        if (status_thread.joinable()) {
            status_stop.store(true, std::memory_order_relaxed);
            status_thread.join();
        }

        for (std::size_t pi = 0; pi < pending.size(); ++pi) {
            const std::size_t i = pendingIndex[pi];
            result.outcomes[i] = batch.outcomes[pi];
            if (batch.outcomes[pi].status == JobStatus::Ok)
                result.payloads[i] = batch.results[pi].toJson();
        }

        // Interrupted-exit hygiene: drain the flush hooks exactly
        // once (the journal disarms after flushing, so a fatal()
        // fired later cannot double-flush), then close the journal.
        writer.flush();
        drainFlushHooks();
    }

    result.interrupted =
        interrupt->load(std::memory_order_relaxed) ||
        std::any_of(result.outcomes.begin(), result.outcomes.end(),
                    [](const JobOutcome &o) {
                        return o.status == JobStatus::Skipped ||
                               o.status == JobStatus::Interrupted;
                    });

    // The merged report is rebuilt from scratch on every invocation
    // and written crash-safely: readers never see a torn file.
    atomicWriteFile(report_path, result.reportJson());

    // Terminal snapshot, forced past the cadence gate: `powerchop
    // status` on a finished campaign must show the final tallies.
    if (publisher)
        publisher->publish(makeSnapshot(true), true);
    return result;
}

ShardRunResult
runCampaignShard(SimJobRunner &runner,
                 const std::vector<SimJob> &jobs,
                 const std::string &journalPath,
                 const ShardRunOptions &opts)
{
    ShardRunResult result;
    result.assigned = jobs.size();

    std::vector<std::uint64_t> keys;
    keys.reserve(jobs.size());
    for (const auto &job : jobs)
        keys.push_back(campaignJobKey(job));

    // Resume from the shard journal: only ok records satisfy a job;
    // failed / timed-out records document history but rerun, exactly
    // like a single-process --resume.
    std::vector<bool> satisfied(jobs.size(), false);
    const JournalReplay replay = loadJournalIfPresent(journalPath);
    for (const auto &rec : replay.records) {
        for (std::size_t i = 0; i < keys.size(); ++i) {
            if (keys[i] != rec.key || satisfied[i])
                continue;
            if (rec.status == jobStatusName(JobStatus::Ok)) {
                satisfied[i] = true;
                ++result.replayed;
                if (opts.onJobDone) {
                    JobOutcome replayed_outcome;
                    replayed_outcome.status = JobStatus::Ok;
                    replayed_outcome.attempts = 0;
                    opts.onJobDone(keys[i], replayed_outcome, true);
                }
            }
            break;
        }
    }

    std::vector<SimJob> pending;
    std::vector<std::size_t> pendingIndex;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (!satisfied[i]) {
            pending.push_back(jobs[i]);
            pendingIndex.push_back(i);
        }
    }
    result.executed = pending.size();

    const std::atomic<bool> *interrupt =
        opts.interruptFlag ? opts.interruptFlag
                           : &campaignInterruptFlag();

    bool all_terminal = true;
    if (!pending.empty()) {
        JournalWriter writer(journalPath);
        if (opts.fsyncLatencyNs)
            writer.setFlushLatencyHistogram(opts.fsyncLatencyNs);

        RobustRunOptions robust;
        robust.timeoutSeconds = opts.timeoutSeconds;
        robust.maxRetries = opts.maxRetries;
        robust.cancelFlag = interrupt;
        robust.drainSeconds = opts.drainSeconds;
        robust.backoffBaseSeconds = opts.backoffBaseSeconds;
        robust.backoffMaxSeconds = opts.backoffMaxSeconds;
        robust.onComplete = [&](std::size_t pi, const SimResult &res,
                                const JobOutcome &outcome) {
            const std::uint64_t key = keys[pendingIndex[pi]];
            if (opts.preJournal)
                opts.preJournal(key, outcome);
            JournalRecord rec;
            rec.key = key;
            rec.status = jobStatusName(outcome.status);
            switch (outcome.status) {
              case JobStatus::Ok:
                rec.payload = res.toJson();
                writer.append(rec);
                break;
              case JobStatus::Failed:
              case JobStatus::TimedOut:
                rec.payload = errorPayload(outcome);
                writer.append(rec);
                break;
              case JobStatus::Skipped:
              case JobStatus::Interrupted:
                break; // resumable: no record, the job reruns
            }
            FlightRecorder::global().record(
                FlightEventType::JobFinish, key,
                jobStatusName(outcome.status));
            if (opts.onJobDone)
                opts.onJobDone(key, outcome, false);
        };
        robust.onStart = [&](std::size_t pi) {
            const std::uint64_t key = keys[pendingIndex[pi]];
            FlightRecorder::global().record(FlightEventType::JobStart,
                                            key);
            if (opts.onJobStart)
                opts.onJobStart(key);
        };

        const RobustBatchResult batch =
            runner.runRobust(pending, robust);
        for (const auto &outcome : batch.outcomes) {
            if (outcome.status == JobStatus::Skipped ||
                outcome.status == JobStatus::Interrupted) {
                all_terminal = false;
            }
        }

        writer.flush();
        drainFlushHooks();
    }

    result.interrupted =
        interrupt->load(std::memory_order_relaxed) || !all_terminal;
    result.complete = all_terminal;
    return result;
}

} // namespace powerchop
