/**
 * @file
 * Durable simulation campaigns: crash-safe, resumable evaluation
 * sweeps on top of SimJobRunner.
 *
 * The paper's evaluation is a wide matrix — workloads x machines x
 * modes x fault seeds — and a crash or Ctrl-C at hour N must not
 * throw away completed points. A campaign gives every job a
 * deterministic content key (a hash of the workload spec, the full
 * MachineConfig, the mode and run options, and the instruction
 * budget) and journals each finished SimResult to an fsync'd
 * write-ahead JSONL file before counting it done. Resuming replays
 * the journal, verifies each record's key and checksum, skips every
 * completed job and re-dispatches only the remainder; the merged
 * campaign report is bit-identical to an uninterrupted run.
 *
 * Shutdown is signal-aware: SIGINT/SIGTERM raise the campaign
 * interrupt flag, undispatched jobs are skipped, in-flight jobs get a
 * drain deadline (cooperative cancellation through the existing
 * SimOptions::cancelFlag), the journal is flushed, and the CLI exits
 * with a distinct "interrupted, resumable" status.
 */

#ifndef POWERCHOP_SIM_CAMPAIGN_HH
#define POWERCHOP_SIM_CAMPAIGN_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/hash.hh"
#include "common/journal.hh"
#include "sim/sim_runner.hh"

namespace powerchop
{

/**
 * Deterministic content key of one campaign job: FNV-1a 64 over the
 * canonical text of (workload spec, machine config, mode, unit
 * management switches, timeout override, static policy, instruction
 * budget). Any change to a field that can change the job's result
 * changes the key, so stale journal records never satisfy a resumed
 * job they no longer describe.
 */
std::uint64_t campaignJobKey(const SimJob &job);

/** Campaign execution knobs. */
struct CampaignOptions
{
    /** Resume from an existing journal. Without this flag a campaign
     *  directory that already holds a journal is refused (fatal), so
     *  accidental reuse cannot silently mix unrelated sweeps. */
    bool resume = false;

    /** Per-job stuck-run watchdog in wall-clock seconds; 0 disables.
     *  An overrunning job is cooperatively cancelled and journaled
     *  as a timed-out record instead of hanging the campaign. */
    double timeoutSeconds = 0;

    /** Extra attempts for jobs flagged transient. */
    unsigned maxRetries = 0;

    /** Grace period for in-flight jobs after an interrupt. */
    double drainSeconds = 5.0;

    /** Retry-backoff policy passed through to the robust batch. @{ */
    double backoffBaseSeconds = 0.001;
    double backoffMaxSeconds = 0.25;
    /** @} */

    /** Interrupt flag the campaign polls; defaults to the process-
     *  wide flag raised by installCampaignSignalHandlers(). Tests
     *  point it at their own flag. */
    const std::atomic<bool> *interruptFlag = nullptr;

    /** Progress callback: (jobs completed this run, jobs dispatched
     *  this run). Runs on worker threads; must be thread-safe. */
    std::function<void(std::size_t, std::size_t)> onProgress;

    /** Publish live status snapshots to `dir`/status/campaign.json
     *  (statusboard.hh) while the campaign runs. Write-only side
     *  channel: report.json and the journal are byte-identical with
     *  it on or off. */
    bool publishStatus = false;

    /** Cadence floor of status publishing, seconds. */
    double statusIntervalSeconds = 0.25;
};

/**
 * Decode a non-ok journal payload written by a campaign (an
 * `{"error":...,"attempts":N}` object) back into the outcome fields.
 * Used by the shard merge step so a merged report renders the same
 * error text a live single-process run would.
 * @return false when the payload is not an error object.
 */
bool parseErrorPayload(const std::string &payload, std::string &error,
                       unsigned &attempts);

/** What a campaign invocation accomplished. */
struct CampaignResult
{
    /** One entry per job, in spec order. @{ */
    std::vector<std::uint64_t> keys;
    std::vector<JobOutcome> outcomes;
    /** The job's SimResult JSON ("" when not completed): journal
     *  payloads for replayed jobs, freshly rendered for executed
     *  ones — byte-identical either way. */
    std::vector<std::string> payloads;
    /** @} */

    /** Jobs satisfied from the journal without re-running. */
    std::size_t replayed = 0;

    /** Jobs dispatched to the runner this invocation. */
    std::size_t executed = 0;

    /** Journal records whose key matched no current job (stale:
     *  the spec or a MachineConfig changed since they were
     *  written). They are ignored, never merged. */
    std::size_t staleRecords = 0;

    /** Journal lines dropped as corrupt or torn. */
    std::size_t corruptedRecords = 0;
    std::size_t truncatedRecords = 0;

    /** The campaign was interrupted (resumable). */
    bool interrupted = false;

    /** Supervision tallies (sharded campaigns only; all zero for
     *  in-process runs). Summary-only: reportJson() excludes them so
     *  a supervised run's report stays byte-identical to a
     *  single-process run's. @{ */
    std::size_t workerCrashes = 0;
    std::size_t workerRestarts = 0;
    std::size_t redispatches = 0;
    /** @} */

    /** @return true when every job has an ok result. */
    bool complete() const;

    /** One-line human-readable summary. */
    std::string summary() const;

    /**
     * The merged campaign report: job count, ok/failed tallies and
     * every per-job record (key, status, SimResult JSON) in spec
     * order. Deliberately excludes run-varying data (timings,
     * replay/executed split), so an interrupted-and-resumed campaign
     * renders byte-identically to an uninterrupted one.
     */
    std::string reportJson() const;
};

/**
 * Run (or resume) a campaign.
 *
 * Creates `dir` if needed, replays `dir`/journal.jsonl when resuming,
 * dispatches the remaining jobs on `runner` with write-ahead
 * journaling, and atomically rewrites `dir`/report.json from the
 * merged results.
 *
 * @param runner Worker pool to dispatch on.
 * @param jobs   The full campaign matrix, in canonical order.
 * @param dir    Campaign state directory (journal + report).
 * @param opts   Durability / shutdown knobs.
 * @return the merged result.
 */
CampaignResult runCampaign(SimJobRunner &runner,
                           const std::vector<SimJob> &jobs,
                           const std::string &dir,
                           const CampaignOptions &opts = {});

/** Knobs of one shard worker's run (campaign-worker subcommand). */
struct ShardRunOptions
{
    /** Per-job stuck-run watchdog; 0 disables. */
    double timeoutSeconds = 0;

    /** Extra attempts for jobs flagged transient. */
    unsigned maxRetries = 0;

    /** Grace period for in-flight jobs after an interrupt. */
    double drainSeconds = 5.0;

    /** Retry-backoff policy (see RobustRunOptions). @{ */
    double backoffBaseSeconds = 0.001;
    double backoffMaxSeconds = 0.25;
    /** @} */

    /** Interrupt flag the shard polls (SIGTERM from the supervisor
     *  requests a graceful drain). */
    const std::atomic<bool> *interruptFlag = nullptr;

    /** Invoked on the worker thread immediately BEFORE a terminal
     *  record is appended to the shard journal. The crash-injection
     *  hook of the containment tests lives here: a crash at this
     *  point is the worst case, after the work but before
     *  durability, so the job must rerun after a restart. */
    std::function<void(std::uint64_t key, const JobOutcome &)>
        preJournal;

    /** Invoked after a job's terminal record is durable (or, for
     *  replayed jobs, during journal replay): the worker's protocol
     *  emission. Must be thread-safe. */
    std::function<void(std::uint64_t key, const JobOutcome &,
                       bool replayed)>
        onJobDone;

    /** Invoked on the worker thread as a job begins executing (the
     *  shard worker's statusboard tracks in-flight keys through
     *  this). Must be thread-safe. */
    std::function<void(std::uint64_t key)> onJobStart;

    /** When non-null, the shard journal's per-append fsync latency
     *  is sampled here (nanoseconds), for the worker statusboard.
     *  Must outlive the run. */
    stats::Log2Histogram *fsyncLatencyNs = nullptr;
};

/** What one shard worker invocation accomplished. */
struct ShardRunResult
{
    std::size_t assigned = 0; ///< Jobs this shard owns.
    std::size_t replayed = 0; ///< Satisfied from the shard journal.
    std::size_t executed = 0; ///< Dispatched this invocation.
    bool interrupted = false;

    /** Every assigned job holds a terminal (ok / failed / timed-out)
     *  record in the shard journal; the worker exits 0. */
    bool complete = false;
};

/**
 * Run one shard of a campaign: the given jobs against a
 * shard-scoped write-ahead journal.
 *
 * Semantically runCampaign() minus the report: resumes from
 * `journalPath` (ok records satisfy jobs, failed/timed-out records
 * rerun), dispatches the remainder with write-ahead journaling, and
 * reports whether every assigned job reached a terminal record. The
 * supervisor merges shard journals into the campaign report.
 */
ShardRunResult runCampaignShard(SimJobRunner &runner,
                                const std::vector<SimJob> &jobs,
                                const std::string &journalPath,
                                const ShardRunOptions &opts = {});

/** Create `dir` (and parents), tolerating existing directories;
 *  throws IoError on failure. Shared by campaign and supervisor. */
void makeCampaignDirs(const std::string &dir);

/** The process-wide campaign interrupt flag. */
std::atomic<bool> &campaignInterruptFlag();

/**
 * Install SIGINT/SIGTERM handlers that raise the campaign interrupt
 * flag (first signal: graceful drain; second signal: immediate
 * _exit(128+sig) for a wedged drain). Idempotent.
 */
void installCampaignSignalHandlers();

/** Exit status of a campaign that was interrupted but is cleanly
 *  resumable with --resume. */
constexpr int campaignInterruptedExitStatus = 3;

} // namespace powerchop

#endif // POWERCHOP_SIM_CAMPAIGN_HH
