#include "sim/experiment.hh"

#include <algorithm>
#include <limits>

#include "common/env.hh"
#include "common/logging.hh"

namespace powerchop
{

InsnCount
insnBudget(InsnCount def)
{
    return envUint64("POWERCHOP_INSNS", 1,
                     std::numeric_limits<InsnCount>::max())
        .value_or(def);
}

namespace
{

/** The mode sequence a comparison consists of: the full triple for
 *  runComparison, the first two for runPair. */
constexpr SimMode comparisonModes[] = {
    SimMode::FullPower, SimMode::PowerChop, SimMode::MinPower};

std::vector<SimJob>
comparisonJobs(const std::vector<ComparisonPoint> &points,
               InsnCount insns, std::size_t num_modes)
{
    std::vector<SimJob> jobs;
    jobs.reserve(points.size() * num_modes);
    for (const auto &p : points) {
        for (std::size_t m = 0; m < num_modes; ++m) {
            SimJob job;
            job.machine = p.machine;
            job.workload = p.workload;
            job.opts.maxInstructions = insns;
            job.opts.mode = comparisonModes[m];
            jobs.push_back(std::move(job));
        }
    }
    return jobs;
}

/** Regroup a flat mode-major result list into per-point triples. */
std::vector<ComparisonRuns>
assembleRuns(std::vector<SimResult> results, std::size_t num_modes)
{
    std::vector<ComparisonRuns> runs(results.size() / num_modes);
    for (std::size_t i = 0; i < runs.size(); ++i) {
        runs[i].fullPower = std::move(results[i * num_modes]);
        runs[i].powerChop = std::move(results[i * num_modes + 1]);
        if (num_modes > 2)
            runs[i].minPower = std::move(results[i * num_modes + 2]);
    }
    return runs;
}

ComparisonRuns
runSerial(const MachineConfig &machine, const WorkloadSpec &workload,
          InsnCount insns, std::size_t num_modes)
{
    std::vector<SimJob> jobs =
        comparisonJobs({{machine, workload}}, insns, num_modes);
    std::vector<SimResult> results;
    results.reserve(jobs.size());
    for (const auto &job : jobs)
        results.push_back(simulate(job.machine, job.workload, job.opts));
    return assembleRuns(std::move(results), num_modes)[0];
}

} // namespace

ComparisonRuns
runComparison(const MachineConfig &machine, const WorkloadSpec &workload,
              InsnCount insns)
{
    return runSerial(machine, workload, insns, 3);
}

ComparisonRuns
runPair(const MachineConfig &machine, const WorkloadSpec &workload,
        InsnCount insns)
{
    return runSerial(machine, workload, insns, 2);
}

std::vector<ComparisonRuns>
runComparisonBatch(const std::vector<ComparisonPoint> &points,
                   InsnCount insns, SimJobRunner &runner)
{
    return assembleRuns(runner.run(comparisonJobs(points, insns, 3)), 3);
}

std::vector<ComparisonRuns>
runPairBatch(const std::vector<ComparisonPoint> &points,
             InsnCount insns, SimJobRunner &runner)
{
    return assembleRuns(runner.run(comparisonJobs(points, insns, 2)), 2);
}

double
mean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0;
    for (double x : v)
        s += x;
    return s / static_cast<double>(v.size());
}

double
maxOf(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    return *std::max_element(v.begin(), v.end());
}

std::string
pct(double fraction)
{
    return csprintf("%6.2f%%", fraction * 100.0);
}

} // namespace powerchop
