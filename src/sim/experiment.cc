#include "sim/experiment.hh"

#include <algorithm>
#include <cstdlib>

#include "common/logging.hh"

namespace powerchop
{

InsnCount
insnBudget(InsnCount def)
{
    const char *env = std::getenv("POWERCHOP_INSNS");
    if (!env || !*env)
        return def;
    char *end = nullptr;
    unsigned long long v = std::strtoull(env, &end, 10);
    if (end == env || v == 0) {
        warn("ignoring invalid POWERCHOP_INSNS='%s'", env);
        return def;
    }
    return static_cast<InsnCount>(v);
}

ComparisonRuns
runComparison(const MachineConfig &machine, const WorkloadSpec &workload,
              InsnCount insns)
{
    ComparisonRuns runs;
    SimOptions opts;
    opts.maxInstructions = insns;

    opts.mode = SimMode::FullPower;
    runs.fullPower = simulate(machine, workload, opts);

    opts.mode = SimMode::PowerChop;
    runs.powerChop = simulate(machine, workload, opts);

    opts.mode = SimMode::MinPower;
    runs.minPower = simulate(machine, workload, opts);
    return runs;
}

ComparisonRuns
runPair(const MachineConfig &machine, const WorkloadSpec &workload,
        InsnCount insns)
{
    ComparisonRuns runs;
    SimOptions opts;
    opts.maxInstructions = insns;

    opts.mode = SimMode::FullPower;
    runs.fullPower = simulate(machine, workload, opts);

    opts.mode = SimMode::PowerChop;
    runs.powerChop = simulate(machine, workload, opts);
    return runs;
}

double
mean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0;
    for (double x : v)
        s += x;
    return s / static_cast<double>(v.size());
}

double
maxOf(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    return *std::max_element(v.begin(), v.end());
}

std::string
pct(double fraction)
{
    return csprintf("%6.2f%%", fraction * 100.0);
}

} // namespace powerchop
