/**
 * @file
 * Experiment helpers shared by the benchmark harness and examples:
 * standard baseline/PowerChop comparisons (serial and parallel batch
 * forms), suite aggregation, and the instruction-budget environment
 * override.
 */

#ifndef POWERCHOP_SIM_EXPERIMENT_HH
#define POWERCHOP_SIM_EXPERIMENT_HH

#include <string>
#include <vector>

#include "sim/sim_runner.hh"
#include "sim/simulator.hh"

namespace powerchop
{

/**
 * Instruction budget for evaluation runs.
 *
 * @param def Default budget.
 * @return POWERCHOP_INSNS from the environment if set and valid, else
 *         def. Values with trailing junk ("10M"), out-of-range values
 *         and zero are rejected with a warning.
 */
InsnCount insnBudget(InsnCount def = 10'000'000);

/** The three runs most figures compare (Figure 12). */
struct ComparisonRuns
{
    SimResult fullPower;
    SimResult powerChop;
    SimResult minPower;
};

/** One (design point, application) pair of a comparison batch. */
struct ComparisonPoint
{
    MachineConfig machine;
    WorkloadSpec workload;
};

/**
 * Run full-power, PowerChop and min-power on one workload.
 *
 * @param machine  Design point.
 * @param workload Application model.
 * @param insns    Instruction budget per run.
 */
ComparisonRuns runComparison(const MachineConfig &machine,
                             const WorkloadSpec &workload,
                             InsnCount insns);

/**
 * Run full-power and PowerChop only (enough for the power/energy
 * figures; cheaper than the full triple).
 */
ComparisonRuns runPair(const MachineConfig &machine,
                       const WorkloadSpec &workload, InsnCount insns);

/**
 * Parallel batch form of runComparison(): every (point, mode)
 * simulation becomes one job on the runner, so even a single-workload
 * comparison overlaps its modes. Results are ordered like `points`.
 */
std::vector<ComparisonRuns>
runComparisonBatch(const std::vector<ComparisonPoint> &points,
                   InsnCount insns, SimJobRunner &runner);

/** Parallel batch form of runPair(); results are ordered like
 *  `points`. */
std::vector<ComparisonRuns>
runPairBatch(const std::vector<ComparisonPoint> &points,
             InsnCount insns, SimJobRunner &runner);

/** Arithmetic mean; 0 for an empty vector. */
double mean(const std::vector<double> &v);

/** Maximum; 0 for an empty vector. */
double maxOf(const std::vector<double> &v);

/** Format a fraction as a fixed-width percentage string. */
std::string pct(double fraction);

} // namespace powerchop

#endif // POWERCHOP_SIM_EXPERIMENT_HH
