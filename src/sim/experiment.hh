/**
 * @file
 * Experiment helpers shared by the benchmark harness and examples:
 * standard baseline/PowerChop comparisons, suite aggregation, and the
 * instruction-budget environment override.
 */

#ifndef POWERCHOP_SIM_EXPERIMENT_HH
#define POWERCHOP_SIM_EXPERIMENT_HH

#include <string>
#include <vector>

#include "sim/simulator.hh"

namespace powerchop
{

/**
 * Instruction budget for evaluation runs.
 *
 * @param def Default budget.
 * @return POWERCHOP_INSNS from the environment if set, else def.
 */
InsnCount insnBudget(InsnCount def = 10'000'000);

/** The three runs most figures compare (Figure 12). */
struct ComparisonRuns
{
    SimResult fullPower;
    SimResult powerChop;
    SimResult minPower;
};

/**
 * Run full-power, PowerChop and min-power on one workload.
 *
 * @param machine  Design point.
 * @param workload Application model.
 * @param insns    Instruction budget per run.
 */
ComparisonRuns runComparison(const MachineConfig &machine,
                             const WorkloadSpec &workload,
                             InsnCount insns);

/**
 * Run full-power and PowerChop only (enough for the power/energy
 * figures; cheaper than the full triple).
 */
ComparisonRuns runPair(const MachineConfig &machine,
                       const WorkloadSpec &workload, InsnCount insns);

/** Arithmetic mean; 0 for an empty vector. */
double mean(const std::vector<double> &v);

/** Maximum; 0 for an empty vector. */
double maxOf(const std::vector<double> &v);

/** Format a fraction as a fixed-width percentage string. */
std::string pct(double fraction);

} // namespace powerchop

#endif // POWERCHOP_SIM_EXPERIMENT_HH
