#include "sim/machine_config.hh"

#include "common/logging.hh"

namespace powerchop
{

namespace
{

/** Shared cache-geometry checks, each naming machine and field. */
void
validateCache(const std::string &machine, const char *which,
              const CacheParams &c)
{
    if (c.sizeBytes == 0)
        fatal("%s: %s.sizeBytes must be non-zero", machine.c_str(),
              which);
    if (c.assoc == 0)
        fatal("%s: %s.assoc must be non-zero", machine.c_str(), which);
    if (c.lineBytes == 0)
        fatal("%s: %s.lineBytes must be non-zero", machine.c_str(),
              which);
    if (c.sizeBytes < static_cast<std::uint64_t>(c.assoc) * c.lineBytes)
        fatal("%s: %s.sizeBytes=%llu smaller than one set "
              "(assoc %u x line %u)",
              machine.c_str(), which,
              static_cast<unsigned long long>(c.sizeBytes), c.assoc,
              c.lineBytes);
}

} // namespace

void
MachineConfig::validate() const
{
    core.validate();
    power.validate();

    validateCache(name, "l1", l1);
    validateCache(name, "mlc", mlc);
    if (mlc.assoc < 2)
        fatal("%s: mlc.assoc must be at least 2-way for way gating",
              name.c_str());
    if (l1.sizeBytes >= mlc.sizeBytes)
        fatal("%s: l1.sizeBytes must be smaller than mlc.sizeBytes",
              name.c_str());

    if (vpu.width == 0)
        fatal("%s: vpu.width must be non-zero", name.c_str());
    if (vpu.emulationExpansion < 1.0)
        fatal("%s: vpu.emulationExpansion=%g below 1 (emulation "
              "cannot beat native)",
              name.c_str(), vpu.emulationExpansion);

    if (penalties.mlcSwitchCycles < 0)
        fatal("%s: penalties.mlcSwitchCycles is negative", name.c_str());
    if (penalties.vpuSwitchCycles < 0)
        fatal("%s: penalties.vpuSwitchCycles is negative", name.c_str());
    if (penalties.bpuSwitchCycles < 0)
        fatal("%s: penalties.bpuSwitchCycles is negative", name.c_str());
    if (penalties.vpuSaveRestoreCycles < 0)
        fatal("%s: penalties.vpuSaveRestoreCycles is negative",
              name.c_str());
    if (penalties.mlcWritebackCyclesPerLine < 0)
        fatal("%s: penalties.mlcWritebackCyclesPerLine is negative",
              name.c_str());

    if (timeout.timeoutCycles <= 0)
        fatal("%s: timeout.timeoutCycles must be positive",
              name.c_str());
    if (timeout.switchCycles < 0 || timeout.saveRestoreCycles < 0)
        fatal("%s: timeout switch/saveRestore cycles are negative",
              name.c_str());

    if (drowsy.intervalCycles <= 0)
        fatal("%s: drowsy.intervalCycles must be positive",
              name.c_str());
    if (drowsy.wakePenaltyCycles < 0)
        fatal("%s: drowsy.wakePenaltyCycles is negative", name.c_str());
    if (drowsy.drowsyLeakageFraction < 0 ||
        drowsy.drowsyLeakageFraction > 1) {
        fatal("%s: drowsy.drowsyLeakageFraction outside [0, 1]",
              name.c_str());
    }

    if (powerChop.htb.windowSize == 0)
        fatal("%s: powerChop.htb.windowSize must be non-zero",
              name.c_str());
    if (powerChop.pvt.entries == 0)
        fatal("%s: powerChop.pvt.entries must be non-zero",
              name.c_str());
    if (powerChop.cde.profilingWindows == 0)
        fatal("%s: powerChop.cde.profilingWindows must be non-zero",
              name.c_str());

    powerChop.qos.validate(name);
    faults.validate(name);
    telemetry.validate(name);
}

MachineConfig
serverConfig()
{
    MachineConfig m;
    m.name = "server";

    m.core.name = "server-core";
    m.core.issueWidth = 4;
    m.core.frequencyHz = 3.0e9;
    m.core.mispredictPenalty = 15.0;
    m.core.btbMissPenalty = 4.0;
    m.core.mlcHitPenalty = 10.0;
    // Effective (post-overlap) miss cost; modern cores hide much of
    // the raw DRAM latency behind MLP and prefetch.
    m.core.memoryPenalty = 60.0;
    m.core.storeStallFraction = 0.3;
    m.core.interpreterCpi = 8.0;
    m.core.translationCost = 4000.0;
    m.core.hotThreshold = 24;

    // Large BPU: loc/glob tournament, 4K-entry BTB, 16K-entry chooser.
    m.bpu.large.localHistoryEntries = 2048;
    m.bpu.large.localHistoryBits = 10;
    m.bpu.large.localPatternEntries = 4096;
    m.bpu.large.globalEntries = 16384;
    m.bpu.large.globalHistoryBits = 8;
    m.bpu.large.chooserEntries = 16384;
    m.bpu.largeBtbEntries = 4096;
    // Small BPU: local only with a 1K-entry BTB.
    m.bpu.smallPredictorEntries = 1024;
    m.bpu.smallBtbEntries = 1024;
    m.bpu.btbAssoc = 4;

    m.l1 = CacheParams{32 * 1024, 8, 64};
    m.mlc = CacheParams{1024 * 1024, 8, 64};   // 1024KB 8-way

    m.vpu.width = 4;
    m.vpu.numRegisters = 16;
    m.vpu.emulationExpansion = 2.0;

    m.bt.hotThreshold = m.core.hotThreshold;
    m.bt.translationCost = m.core.translationCost;

    m.power = serverPowerParams();
    return m;
}

MachineConfig
mobileConfig()
{
    MachineConfig m;
    m.name = "mobile";

    m.core.name = "mobile-core";
    m.core.issueWidth = 2;
    m.core.frequencyHz = 1.5e9;
    m.core.mispredictPenalty = 10.0;
    m.core.btbMissPenalty = 3.0;
    m.core.mlcHitPenalty = 8.0;
    m.core.memoryPenalty = 45.0;
    m.core.storeStallFraction = 0.3;
    m.core.interpreterCpi = 8.0;
    m.core.translationCost = 4000.0;
    m.core.hotThreshold = 24;

    // Large BPU: loc/glob tournament, 2K-entry BTB, 8K-entry chooser.
    m.bpu.large.localHistoryEntries = 1024;
    m.bpu.large.localHistoryBits = 10;
    m.bpu.large.localPatternEntries = 2048;
    m.bpu.large.globalEntries = 8192;
    m.bpu.large.globalHistoryBits = 8;
    m.bpu.large.chooserEntries = 8192;
    m.bpu.largeBtbEntries = 2048;
    // Small BPU: local only with a 512-entry BTB.
    m.bpu.smallPredictorEntries = 512;
    m.bpu.smallBtbEntries = 512;
    m.bpu.btbAssoc = 4;

    m.l1 = CacheParams{32 * 1024, 4, 64};
    m.mlc = CacheParams{2048 * 1024, 8, 64};   // 2048KB 8-way

    m.vpu.width = 2;
    m.vpu.numRegisters = 16;
    m.vpu.emulationExpansion = 2.0;

    m.bt.hotThreshold = m.core.hotThreshold;
    m.bt.translationCost = m.core.translationCost;

    m.power = mobilePowerParams();
    return m;
}

} // namespace powerchop
