#include "sim/machine_config.hh"

#include "common/logging.hh"

namespace powerchop
{

namespace
{

/** Shared cache-geometry checks, each naming machine and field. */
void
validateCache(const std::string &machine, const char *which,
              const CacheParams &c)
{
    if (c.sizeBytes == 0)
        fatal("%s: %s.sizeBytes must be non-zero", machine.c_str(),
              which);
    if (c.assoc == 0)
        fatal("%s: %s.assoc must be non-zero", machine.c_str(), which);
    if (c.lineBytes == 0)
        fatal("%s: %s.lineBytes must be non-zero", machine.c_str(),
              which);
    if (c.sizeBytes < static_cast<std::uint64_t>(c.assoc) * c.lineBytes)
        fatal("%s: %s.sizeBytes=%llu smaller than one set "
              "(assoc %u x line %u)",
              machine.c_str(), which,
              static_cast<unsigned long long>(c.sizeBytes), c.assoc,
              c.lineBytes);
}

} // namespace

void
MachineConfig::validate() const
{
    core.validate();
    power.validate();

    validateCache(name, "l1", l1);
    validateCache(name, "mlc", mlc);
    if (mlc.assoc < 2)
        fatal("%s: mlc.assoc must be at least 2-way for way gating",
              name.c_str());
    if (l1.sizeBytes >= mlc.sizeBytes)
        fatal("%s: l1.sizeBytes must be smaller than mlc.sizeBytes",
              name.c_str());

    if (vpu.width == 0)
        fatal("%s: vpu.width must be non-zero", name.c_str());
    if (vpu.emulationExpansion < 1.0)
        fatal("%s: vpu.emulationExpansion=%g below 1 (emulation "
              "cannot beat native)",
              name.c_str(), vpu.emulationExpansion);

    if (penalties.mlcSwitchCycles < 0)
        fatal("%s: penalties.mlcSwitchCycles is negative", name.c_str());
    if (penalties.vpuSwitchCycles < 0)
        fatal("%s: penalties.vpuSwitchCycles is negative", name.c_str());
    if (penalties.bpuSwitchCycles < 0)
        fatal("%s: penalties.bpuSwitchCycles is negative", name.c_str());
    if (penalties.vpuSaveRestoreCycles < 0)
        fatal("%s: penalties.vpuSaveRestoreCycles is negative",
              name.c_str());
    if (penalties.mlcWritebackCyclesPerLine < 0)
        fatal("%s: penalties.mlcWritebackCyclesPerLine is negative",
              name.c_str());

    if (timeout.timeoutCycles <= 0)
        fatal("%s: timeout.timeoutCycles must be positive",
              name.c_str());
    if (timeout.switchCycles < 0 || timeout.saveRestoreCycles < 0)
        fatal("%s: timeout switch/saveRestore cycles are negative",
              name.c_str());

    if (drowsy.intervalCycles <= 0)
        fatal("%s: drowsy.intervalCycles must be positive",
              name.c_str());
    if (drowsy.wakePenaltyCycles < 0)
        fatal("%s: drowsy.wakePenaltyCycles is negative", name.c_str());
    if (drowsy.drowsyLeakageFraction < 0 ||
        drowsy.drowsyLeakageFraction > 1) {
        fatal("%s: drowsy.drowsyLeakageFraction outside [0, 1]",
              name.c_str());
    }

    if (powerChop.htb.windowSize == 0)
        fatal("%s: powerChop.htb.windowSize must be non-zero",
              name.c_str());
    if (powerChop.pvt.entries == 0)
        fatal("%s: powerChop.pvt.entries must be non-zero",
              name.c_str());
    if (powerChop.cde.profilingWindows == 0)
        fatal("%s: powerChop.cde.profilingWindows must be non-zero",
              name.c_str());

    powerChop.qos.validate(name);
    faults.validate(name);
    telemetry.validate(name);
}

std::string
MachineConfig::canonicalText() const
{
    std::string s = "machine-config-v1\n";
    const auto add = [&s](const char *field, double v) {
        s += csprintf("%s=%.17g\n", field, v);
    };
    const auto addU = [&s](const char *field, std::uint64_t v) {
        s += csprintf("%s=%llu\n", field,
                      static_cast<unsigned long long>(v));
    };
    const auto addS = [&s](const char *field, const std::string &v) {
        s += csprintf("%s=%s\n", field, v.c_str());
    };

    addS("name", name);

    addS("core.name", core.name);
    addU("core.issueWidth", core.issueWidth);
    add("core.frequencyHz", core.frequencyHz);
    add("core.mispredictPenalty", core.mispredictPenalty);
    add("core.btbMissPenalty", core.btbMissPenalty);
    add("core.mlcHitPenalty", core.mlcHitPenalty);
    add("core.memoryPenalty", core.memoryPenalty);
    add("core.streamMissFactor", core.streamMissFactor);
    add("core.storeStallFraction", core.storeStallFraction);
    add("core.interpreterCpi", core.interpreterCpi);
    add("core.translationCost", core.translationCost);
    addU("core.hotThreshold", core.hotThreshold);

    addU("bpu.largeKind", static_cast<unsigned>(bpu.largeKind));
    addU("bpu.large.localHistoryEntries",
         bpu.large.localHistoryEntries);
    addU("bpu.large.localHistoryBits", bpu.large.localHistoryBits);
    addU("bpu.large.localPatternEntries",
         bpu.large.localPatternEntries);
    addU("bpu.large.globalEntries", bpu.large.globalEntries);
    addU("bpu.large.globalHistoryBits", bpu.large.globalHistoryBits);
    addU("bpu.large.chooserEntries", bpu.large.chooserEntries);
    addU("bpu.largeBtbEntries", bpu.largeBtbEntries);
    addU("bpu.smallPredictorEntries", bpu.smallPredictorEntries);
    addU("bpu.smallBtbEntries", bpu.smallBtbEntries);
    addU("bpu.btbAssoc", bpu.btbAssoc);

    addU("l1.sizeBytes", l1.sizeBytes);
    addU("l1.assoc", l1.assoc);
    addU("l1.lineBytes", l1.lineBytes);
    addU("mlc.sizeBytes", mlc.sizeBytes);
    addU("mlc.assoc", mlc.assoc);
    addU("mlc.lineBytes", mlc.lineBytes);

    addU("vpu.width", vpu.width);
    addU("vpu.numRegisters", vpu.numRegisters);
    add("vpu.emulationExpansion", vpu.emulationExpansion);

    addU("bt.hotThreshold", bt.hotThreshold);
    add("bt.translationCost", bt.translationCost);
    addU("bt.translator.maxTraceBlocks",
         bt.translator.maxTraceBlocks);
    add("bt.nucleus.pvtMissTrapCycles", bt.nucleus.pvtMissTrapCycles);
    add("bt.nucleus.translationTrapCycles",
        bt.nucleus.translationTrapCycles);
    add("bt.nucleus.otherTrapCycles", bt.nucleus.otherTrapCycles);
    addU("bt.regionCacheCapacity", bt.regionCacheCapacity);

    addU("powerChop.htb.entries", powerChop.htb.entries);
    addU("powerChop.htb.windowSize", powerChop.htb.windowSize);
    addU("powerChop.pvt.entries", powerChop.pvt.entries);
    addU("powerChop.pvt.ageBits", powerChop.pvt.ageBits);
    add("powerChop.cde.thresholdVpu", powerChop.cde.thresholdVpu);
    add("powerChop.cde.thresholdBpu", powerChop.cde.thresholdBpu);
    add("powerChop.cde.thresholdMlc1", powerChop.cde.thresholdMlc1);
    add("powerChop.cde.thresholdMlc2", powerChop.cde.thresholdMlc2);
    addU("powerChop.cde.enableQuarterWays",
         powerChop.cde.enableQuarterWays ? 1 : 0);
    add("powerChop.cde.thresholdMlcQuarter",
        powerChop.cde.thresholdMlcQuarter);
    addU("powerChop.cde.profilingWindows",
         powerChop.cde.profilingWindows);
    add("powerChop.cde.workCycles", powerChop.cde.workCycles);
    addU("powerChop.qos.enabled", powerChop.qos.enabled ? 1 : 0);
    add("powerChop.qos.slowdownThreshold",
        powerChop.qos.slowdownThreshold);
    addU("powerChop.qos.violationWindows",
         powerChop.qos.violationWindows);
    addU("powerChop.qos.cooldownWindows",
         powerChop.qos.cooldownWindows);
    add("powerChop.qos.referenceDecay", powerChop.qos.referenceDecay);

    add("penalties.mlcSwitchCycles", penalties.mlcSwitchCycles);
    add("penalties.vpuSwitchCycles", penalties.vpuSwitchCycles);
    add("penalties.bpuSwitchCycles", penalties.bpuSwitchCycles);
    add("penalties.vpuSaveRestoreCycles",
        penalties.vpuSaveRestoreCycles);
    add("penalties.mlcWritebackCyclesPerLine",
        penalties.mlcWritebackCyclesPerLine);

    add("timeout.timeoutCycles", timeout.timeoutCycles);
    add("timeout.switchCycles", timeout.switchCycles);
    add("timeout.saveRestoreCycles", timeout.saveRestoreCycles);

    add("drowsy.intervalCycles", drowsy.intervalCycles);
    add("drowsy.wakePenaltyCycles", drowsy.wakePenaltyCycles);
    add("drowsy.drowsyLeakageFraction", drowsy.drowsyLeakageFraction);

    addS("power.name", power.name);
    add("power.frequencyHz", power.frequencyHz);
    for (unsigned u = 0; u < numUnits; ++u) {
        const Unit unit = static_cast<Unit>(u);
        const std::string base =
            std::string("power.") + unitName(unit) + ".";
        add((base + "areaMm2").c_str(), power.unit(unit).areaMm2);
        add((base + "leakage").c_str(), power.unit(unit).leakage);
        add((base + "energyPerEvent").c_str(),
            power.unit(unit).energyPerEvent);
        add((base + "peakDynamic").c_str(),
            power.unit(unit).peakDynamic);
    }
    add("power.gating.sleepTransistorRatio",
        power.gating.sleepTransistorRatio);
    add("power.gating.switchingFactor", power.gating.switchingFactor);
    add("power.gating.gatedLeakageFraction",
        power.gating.gatedLeakageFraction);
    add("power.mlcEnergyFloor", power.mlcEnergyFloor);

    addU("faults.enabled", faults.enabled ? 1 : 0);
    addU("faults.seed", faults.seed);
    add("faults.policyCorruptRate", faults.policyCorruptRate);
    add("faults.htbDropRate", faults.htbDropRate);
    add("faults.htbAliasRate", faults.htbAliasRate);
    add("faults.controllerFlipRate", faults.controllerFlipRate);
    add("faults.wakeupStretchRate", faults.wakeupStretchRate);
    add("faults.wakeupStretchFactor", faults.wakeupStretchFactor);

    return s;
}

MachineConfig
serverConfig()
{
    MachineConfig m;
    m.name = "server";

    m.core.name = "server-core";
    m.core.issueWidth = 4;
    m.core.frequencyHz = 3.0e9;
    m.core.mispredictPenalty = 15.0;
    m.core.btbMissPenalty = 4.0;
    m.core.mlcHitPenalty = 10.0;
    // Effective (post-overlap) miss cost; modern cores hide much of
    // the raw DRAM latency behind MLP and prefetch.
    m.core.memoryPenalty = 60.0;
    m.core.storeStallFraction = 0.3;
    m.core.interpreterCpi = 8.0;
    m.core.translationCost = 4000.0;
    m.core.hotThreshold = 24;

    // Large BPU: loc/glob tournament, 4K-entry BTB, 16K-entry chooser.
    m.bpu.large.localHistoryEntries = 2048;
    m.bpu.large.localHistoryBits = 10;
    m.bpu.large.localPatternEntries = 4096;
    m.bpu.large.globalEntries = 16384;
    m.bpu.large.globalHistoryBits = 8;
    m.bpu.large.chooserEntries = 16384;
    m.bpu.largeBtbEntries = 4096;
    // Small BPU: local only with a 1K-entry BTB.
    m.bpu.smallPredictorEntries = 1024;
    m.bpu.smallBtbEntries = 1024;
    m.bpu.btbAssoc = 4;

    m.l1 = CacheParams{32 * 1024, 8, 64};
    m.mlc = CacheParams{1024 * 1024, 8, 64};   // 1024KB 8-way

    m.vpu.width = 4;
    m.vpu.numRegisters = 16;
    m.vpu.emulationExpansion = 2.0;

    m.bt.hotThreshold = m.core.hotThreshold;
    m.bt.translationCost = m.core.translationCost;

    m.power = serverPowerParams();
    return m;
}

MachineConfig
mobileConfig()
{
    MachineConfig m;
    m.name = "mobile";

    m.core.name = "mobile-core";
    m.core.issueWidth = 2;
    m.core.frequencyHz = 1.5e9;
    m.core.mispredictPenalty = 10.0;
    m.core.btbMissPenalty = 3.0;
    m.core.mlcHitPenalty = 8.0;
    m.core.memoryPenalty = 45.0;
    m.core.storeStallFraction = 0.3;
    m.core.interpreterCpi = 8.0;
    m.core.translationCost = 4000.0;
    m.core.hotThreshold = 24;

    // Large BPU: loc/glob tournament, 2K-entry BTB, 8K-entry chooser.
    m.bpu.large.localHistoryEntries = 1024;
    m.bpu.large.localHistoryBits = 10;
    m.bpu.large.localPatternEntries = 2048;
    m.bpu.large.globalEntries = 8192;
    m.bpu.large.globalHistoryBits = 8;
    m.bpu.large.chooserEntries = 8192;
    m.bpu.largeBtbEntries = 2048;
    // Small BPU: local only with a 512-entry BTB.
    m.bpu.smallPredictorEntries = 512;
    m.bpu.smallBtbEntries = 512;
    m.bpu.btbAssoc = 4;

    m.l1 = CacheParams{32 * 1024, 4, 64};
    m.mlc = CacheParams{2048 * 1024, 8, 64};   // 2048KB 8-way

    m.vpu.width = 2;
    m.vpu.numRegisters = 16;
    m.vpu.emulationExpansion = 2.0;

    m.bt.hotThreshold = m.core.hotThreshold;
    m.bt.translationCost = m.core.translationCost;

    m.power = mobilePowerParams();
    return m;
}

} // namespace powerchop
