#include "sim/machine_config.hh"

#include "common/logging.hh"

namespace powerchop
{

void
MachineConfig::validate() const
{
    core.validate();
    power.validate();
    if (mlc.assoc < 2)
        fatal("%s: MLC must be at least 2-way for way gating",
              name.c_str());
    if (l1.sizeBytes >= mlc.sizeBytes)
        fatal("%s: L1 must be smaller than the MLC", name.c_str());
}

MachineConfig
serverConfig()
{
    MachineConfig m;
    m.name = "server";

    m.core.name = "server-core";
    m.core.issueWidth = 4;
    m.core.frequencyHz = 3.0e9;
    m.core.mispredictPenalty = 15.0;
    m.core.btbMissPenalty = 4.0;
    m.core.mlcHitPenalty = 10.0;
    // Effective (post-overlap) miss cost; modern cores hide much of
    // the raw DRAM latency behind MLP and prefetch.
    m.core.memoryPenalty = 60.0;
    m.core.storeStallFraction = 0.3;
    m.core.interpreterCpi = 8.0;
    m.core.translationCost = 4000.0;
    m.core.hotThreshold = 24;

    // Large BPU: loc/glob tournament, 4K-entry BTB, 16K-entry chooser.
    m.bpu.large.localHistoryEntries = 2048;
    m.bpu.large.localHistoryBits = 10;
    m.bpu.large.localPatternEntries = 4096;
    m.bpu.large.globalEntries = 16384;
    m.bpu.large.globalHistoryBits = 8;
    m.bpu.large.chooserEntries = 16384;
    m.bpu.largeBtbEntries = 4096;
    // Small BPU: local only with a 1K-entry BTB.
    m.bpu.smallPredictorEntries = 1024;
    m.bpu.smallBtbEntries = 1024;
    m.bpu.btbAssoc = 4;

    m.l1 = CacheParams{32 * 1024, 8, 64};
    m.mlc = CacheParams{1024 * 1024, 8, 64};   // 1024KB 8-way

    m.vpu.width = 4;
    m.vpu.numRegisters = 16;
    m.vpu.emulationExpansion = 2.0;

    m.bt.hotThreshold = m.core.hotThreshold;
    m.bt.translationCost = m.core.translationCost;

    m.power = serverPowerParams();
    return m;
}

MachineConfig
mobileConfig()
{
    MachineConfig m;
    m.name = "mobile";

    m.core.name = "mobile-core";
    m.core.issueWidth = 2;
    m.core.frequencyHz = 1.5e9;
    m.core.mispredictPenalty = 10.0;
    m.core.btbMissPenalty = 3.0;
    m.core.mlcHitPenalty = 8.0;
    m.core.memoryPenalty = 45.0;
    m.core.storeStallFraction = 0.3;
    m.core.interpreterCpi = 8.0;
    m.core.translationCost = 4000.0;
    m.core.hotThreshold = 24;

    // Large BPU: loc/glob tournament, 2K-entry BTB, 8K-entry chooser.
    m.bpu.large.localHistoryEntries = 1024;
    m.bpu.large.localHistoryBits = 10;
    m.bpu.large.localPatternEntries = 2048;
    m.bpu.large.globalEntries = 8192;
    m.bpu.large.globalHistoryBits = 8;
    m.bpu.large.chooserEntries = 8192;
    m.bpu.largeBtbEntries = 2048;
    // Small BPU: local only with a 512-entry BTB.
    m.bpu.smallPredictorEntries = 512;
    m.bpu.smallBtbEntries = 512;
    m.bpu.btbAssoc = 4;

    m.l1 = CacheParams{32 * 1024, 4, 64};
    m.mlc = CacheParams{2048 * 1024, 8, 64};   // 2048KB 8-way

    m.vpu.width = 2;
    m.vpu.numRegisters = 16;
    m.vpu.emulationExpansion = 2.0;

    m.bt.hotThreshold = m.core.hotThreshold;
    m.bt.translationCost = m.core.translationCost;

    m.power = mobilePowerParams();
    return m;
}

} // namespace powerchop
