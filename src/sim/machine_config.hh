/**
 * @file
 * Machine configurations: the two architectural design points of
 * Table I (a Nehalem-class server core and a Cortex-A9-class mobile
 * core), each with the unit geometries PowerChop manages.
 */

#ifndef POWERCHOP_SIM_MACHINE_CONFIG_HH
#define POWERCHOP_SIM_MACHINE_CONFIG_HH

#include <string>

#include "bt/bt_system.hh"
#include "core/fault_injector.hh"
#include "core/gating_controller.hh"
#include "core/powerchop_unit.hh"
#include "core/drowsy_mlc.hh"
#include "core/timeout_gater.hh"
#include "power/core_power_model.hh"
#include "telemetry/trace.hh"
#include "uarch/bpu_complex.hh"
#include "uarch/cache.hh"
#include "uarch/core_params.hh"
#include "uarch/vpu.hh"

namespace powerchop
{

/** A complete machine design point. */
struct MachineConfig
{
    std::string name = "machine";

    CoreParams core;
    BpuParams bpu;
    CacheParams l1;
    CacheParams mlc;
    VpuParams vpu;
    BtParams bt;
    PowerChopParams powerChop;
    GatingPenalties penalties;
    TimeoutParams timeout;
    DrowsyParams drowsy;
    CorePowerParams power;

    /** Fault injection into the gating stack (disabled by default;
     *  see fault_injector.hh). */
    FaultInjectorParams faults;

    /** Trace-recording configuration (event cap, per-class switches);
     *  only consulted when SimOptions attaches a recorder. */
    telemetry::TelemetryParams telemetry;

    /** Validate the whole configuration: every simulate() call runs
     *  this before building the machine, and each violation is a
     *  fatal() naming the offending field. */
    void validate() const;

    /**
     * Canonical field-by-field text rendering of every parameter
     * that can change simulation results — the campaign layer hashes
     * it into job content keys, so resuming with ANY edited knob
     * rejects the stale journal records by key mismatch. Telemetry
     * parameters are deliberately excluded: they only shape
     * observability and results are bit-identical either way.
     */
    std::string canonicalText() const;
};

/**
 * The server design point (Table I, left column): 4-wide core at
 * 3 GHz; 1024KB 8-way MLC (gateable to 512KB 4-way or 128KB 1-way);
 * 4-wide SIMD VPU; loc/glob tournament BPU with 4K-entry BTB backed
 * by a local-only small predictor with a 1K-entry BTB.
 */
MachineConfig serverConfig();

/**
 * The mobile design point (Table I, right column): 2-wide core at
 * 1.5 GHz; 2048KB 8-way MLC (gateable to 1024KB 4-way or 256KB
 * 1-way); 2-wide SIMD VPU; tournament BPU with 2K-entry BTB backed by
 * a local-only small predictor with a 512-entry BTB.
 */
MachineConfig mobileConfig();

} // namespace powerchop

#endif // POWERCHOP_SIM_MACHINE_CONFIG_HH
