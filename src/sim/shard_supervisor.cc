#include "sim/shard_supervisor.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <numeric>
#include <set>
#include <thread>

#include <unistd.h>

#include "common/atomic_file.hh"
#include "common/clock.hh"
#include "common/flight_recorder.hh"
#include "common/journal.hh"
#include "common/logging.hh"
#include "common/subprocess.hh"
#include "sim/statusboard.hh"

namespace powerchop
{

namespace
{

/** Inverse of jobStatusName() for journal records. */
bool
jobStatusFromName(const std::string &name, JobStatus &out)
{
    for (JobStatus s : {JobStatus::Ok, JobStatus::Failed,
                        JobStatus::TimedOut, JobStatus::Skipped,
                        JobStatus::Interrupted}) {
        if (name == jobStatusName(s)) {
            out = s;
            return true;
        }
    }
    return false;
}

std::string
resolveSelfExe(const std::string &configured)
{
    if (!configured.empty())
        return configured;
    char buf[4096];
    const ssize_t n =
        ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0) {
        throw IoError(csprintf(
            "cannot resolve /proc/self/exe for worker re-exec: %s",
            std::strerror(errno)));
    }
    buf[n] = '\0';
    return std::string(buf);
}

/** Every shard journal present in `dir` (primaries and re-dispatch
 *  helpers), sorted for a deterministic merge order. */
std::vector<std::string>
listShardJournals(const std::string &dir)
{
    std::vector<std::string> out;
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("shard-", 0) == 0 && name.size() > 6 &&
            name.size() >= 12 &&
            name.compare(name.size() - 6, 6, ".jsonl") == 0) {
            out.push_back(entry.path().string());
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

/** Bounded exponential restart backoff (monotonic seconds). */
double
restartBackoff(const ShardSupervisorOptions &opts, unsigned restarts)
{
    double delay = opts.restartBackoffBaseSeconds;
    for (unsigned i = 1; i < restarts &&
                         delay < opts.restartBackoffMaxSeconds;
         ++i) {
        delay *= 2;
    }
    return std::min(delay, opts.restartBackoffMaxSeconds);
}

/** One live (or draining) worker process and its line buffer. */
struct WorkerSlot
{
    unsigned shard = 0;
    unsigned helper = 0; ///< 0 = primary, >0 = re-dispatch helper
    Subprocess proc;
    std::string buf;
    double lastActivity = 0;
    bool active = false;
};

/** Everything the supervisor tracks about one shard. */
struct ShardState
{
    std::vector<std::uint64_t> keys; ///< Assigned keys (sorted).
    std::set<std::uint64_t> terminal; ///< Keys with terminal records.
    unsigned restarts = 0;
    unsigned helpers = 0;
    bool restartPending = false;
    double nextSpawnAt = 0;
    bool done = false;
    bool failed = false;
    std::string failReason;
};

} // namespace

std::vector<std::vector<std::size_t>>
partitionByKeyRange(const std::vector<std::uint64_t> &keys,
                    unsigned shards)
{
    std::vector<std::size_t> order(keys.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return keys[a] < keys[b];
              });

    const std::size_t n = keys.size();
    const unsigned s =
        std::max(1u, std::min<unsigned>(
                         shards, static_cast<unsigned>(
                                     std::max<std::size_t>(n, 1))));
    std::vector<std::vector<std::size_t>> parts(s);
    for (unsigned p = 0; p < s; ++p) {
        const std::size_t lo = n * p / s;
        const std::size_t hi = n * (p + 1) / s;
        parts[p].assign(order.begin() + lo, order.begin() + hi);
    }
    return parts;
}

std::string
shardJournalPath(const std::string &dir, unsigned shard,
                 unsigned helper)
{
    if (helper == 0)
        return csprintf("%s/shard-%04u.jsonl", dir.c_str(), shard);
    return csprintf("%s/shard-%04uh%u.jsonl", dir.c_str(), shard,
                    helper);
}

ShardSupervisorResult
runShardedCampaign(const std::vector<SimJob> &jobs,
                   const std::string &dir,
                   const ShardSupervisorOptions &opts)
{
    const double t0 = monotonicSeconds();
    ShardSupervisorResult result;

    const auto event = [&](const std::string &msg) {
        if (opts.onEvent)
            opts.onEvent(msg);
    };

    makeCampaignDirs(dir);

    // A single-process journal in the directory means this dir
    // belongs to an unsharded campaign; mixing the two layouts would
    // make --resume ambiguous, so refuse outright.
    if (std::filesystem::exists(dir + "/journal.jsonl")) {
        fatal("sharded campaign: %s/journal.jsonl exists (single-"
              "process campaign); resume it without --shards or use "
              "a fresh directory",
              dir.c_str());
    }
    if (!opts.resume && !listShardJournals(dir).empty()) {
        fatal("sharded campaign: %s already holds shard journals; "
              "pass --resume to continue it or choose a fresh "
              "directory",
              dir.c_str());
    }

    // Content keys (with the same duplicate refusal as runCampaign)
    // and the deterministic key-range partition.
    std::vector<std::uint64_t> keys;
    keys.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const std::uint64_t key = campaignJobKey(jobs[i]);
        for (std::size_t j = 0; j < keys.size(); ++j) {
            if (keys[j] == key) {
                fatal("campaign: jobs %zu and %zu have identical "
                      "content keys (duplicate matrix entry?)",
                      j, i);
            }
        }
        keys.push_back(key);
    }

    const auto parts = partitionByKeyRange(keys, opts.shards);
    const unsigned shards = static_cast<unsigned>(parts.size());
    result.shards = shards;

    std::vector<ShardState> shard(shards);
    for (unsigned s = 0; s < shards; ++s) {
        for (std::size_t idx : parts[s])
            shard[s].keys.push_back(keys[idx]);
        std::sort(shard[s].keys.begin(), shard[s].keys.end());
    }

    // Resume: any terminal record in any shard journal counts; ok
    // and failed/timed-out records alike are terminal for the
    // supervisor (workers rerun non-ok records themselves — the
    // supervisor only decides whether the shard still needs a
    // worker at all).
    const auto reloadShardJournals = [&](unsigned s) {
        shard[s].terminal.clear();
        const std::string prefix = csprintf("shard-%04u", s);
        for (const auto &path : listShardJournals(dir)) {
            const std::string name =
                std::filesystem::path(path).filename().string();
            if (name.rfind(prefix, 0) != 0)
                continue;
            const JournalReplay replay = loadJournalIfPresent(path);
            for (const auto &rec : replay.records) {
                JobStatus st;
                if (jobStatusFromName(rec.status, st) &&
                    (st == JobStatus::Ok ||
                     st == JobStatus::Failed ||
                     st == JobStatus::TimedOut)) {
                    shard[s].terminal.insert(rec.key);
                }
            }
        }
    };

    std::size_t replayedAtStart = 0;
    for (unsigned s = 0; s < shards; ++s) {
        reloadShardJournals(s);
        replayedAtStart += shard[s].terminal.size();
        if (shard[s].keys.empty() ||
            shard[s].terminal.size() >= shard[s].keys.size()) {
            shard[s].done = true;
        }
    }

    const std::string exe = resolveSelfExe(opts.exePath);
    const std::atomic<bool> *interrupt =
        opts.interruptFlag ? opts.interruptFlag
                           : &campaignInterruptFlag();

    std::vector<WorkerSlot> slots;
    slots.reserve(shards * 2);

    // Live observability: the supervisor aggregate snapshot (one
    // per-shard health entry each) plus flight-recorder events.
    // Worker deaths and restarts force a publish past the cadence
    // gate, so `powerchop status` shows them within one interval.
    std::unique_ptr<StatusPublisher> publisher;
    if (opts.publishStatus) {
        makeCampaignDirs(statusDirPath(dir));
        publisher.reset(new StatusPublisher(
            campaignStatusPath(dir), opts.statusIntervalSeconds));
    }
    stats::Log2Histogram restart_backoff_ns;
    std::size_t ok_seen = 0, failed_seen = 0;
    FlightRecorder &flight = FlightRecorder::global();

    const auto makeSnapshot = [&](bool finished) {
        StatusSnapshot snap;
        snap.role = "supervisor";
        snap.label = "campaign";
        snap.jobsTotal = jobs.size();
        std::size_t terminal = 0;
        for (unsigned s = 0; s < shards; ++s)
            terminal += shard[s].terminal.size();
        snap.jobsDone = terminal;
        // ok/failed track live protocol reports; keys replayed from
        // journals at startup are terminal-of-unknown-status here
        // (the merge, not the statusboard, is the report of record).
        snap.jobsOk = ok_seen;
        snap.jobsFailed = failed_seen;
        snap.restarts = result.restarts;
        snap.finished = finished;
        const double elapsed = monotonicSeconds() - t0;
        const std::size_t fresh =
            terminal - std::min(terminal, replayedAtStart);
        if (!finished && fresh > 0 && elapsed > 0 &&
            terminal < jobs.size()) {
            snap.etaSeconds =
                (jobs.size() - terminal) * (elapsed / fresh);
        }
        snap.restartBackoffMs = restart_backoff_ns.quantiles(1e-6);
        const double now = monotonicSeconds();
        for (unsigned s = 0; s < shards; ++s) {
            ShardStatus sh;
            sh.shard = s;
            sh.total = shard[s].keys.size();
            sh.done = shard[s].terminal.size();
            sh.restarts = shard[s].restarts;
            sh.helpers = shard[s].helpers;
            sh.failed = shard[s].failed;
            for (const auto &slot : slots) {
                if (slot.active && slot.shard == s) {
                    sh.active = true;
                    const double age = now - slot.lastActivity;
                    if (sh.heartbeatAgeSeconds < 0 ||
                        age < sh.heartbeatAgeSeconds) {
                        sh.heartbeatAgeSeconds = age;
                    }
                }
            }
            snap.shards.push_back(sh);
        }
        return snap;
    };

    const auto remainingKeys = [&](unsigned s) {
        std::vector<std::uint64_t> rem;
        for (std::uint64_t k : shard[s].keys) {
            if (!shard[s].terminal.count(k))
                rem.push_back(k);
        }
        return rem;
    };

    const auto spawnWorker = [&](unsigned s,
                                 std::vector<std::uint64_t> assigned,
                                 unsigned helper) {
        slots.emplace_back();
        WorkerSlot &slot = slots.back();
        slot.shard = s;
        slot.helper = helper;

        SpawnOptions sp;
        sp.argv = {exe, "campaign-worker", dir};
        sp.argv.insert(sp.argv.end(), opts.workerArgs.begin(),
                       opts.workerArgs.end());
        sp.argv.push_back("--journal");
        sp.argv.push_back(shardJournalPath(dir, s, helper));
        if (opts.jobTimeoutSeconds > 0) {
            sp.argv.push_back("--timeout-seconds");
            sp.argv.push_back(
                csprintf("%.3f", opts.jobTimeoutSeconds));
        }
        if (opts.maxRetries > 0) {
            sp.argv.push_back("--retries");
            sp.argv.push_back(csprintf("%u", opts.maxRetries));
        }
        slot.proc.spawn(sp);

        std::string feed;
        for (std::uint64_t k : assigned) {
            feed += csprintf("%016llx\n",
                             static_cast<unsigned long long>(k));
        }
        slot.proc.writeStdin(feed);
        slot.proc.closeStdin();
        slot.lastActivity = monotonicSeconds();
        slot.active = true;
        flight.record(FlightEventType::WorkerSpawn, 0,
                      csprintf("shard %u helper %u pid %d (%zu keys)",
                               s, helper,
                               static_cast<int>(slot.proc.pid()),
                               assigned.size()));
        event(csprintf("shard %u%s: worker pid %d spawned (%zu "
                       "keys)",
                       s,
                       helper ? csprintf(" helper %u", helper).c_str()
                              : "",
                       static_cast<int>(slot.proc.pid()),
                       assigned.size()));
    };

    // Initial spawn: one primary worker per unfinished shard.
    for (unsigned s = 0; s < shards; ++s) {
        if (!shard[s].done)
            spawnWorker(s, remainingKeys(s), 0);
    }

    bool draining = false;
    MonotonicDeadline drainDeadline;

    const auto activeWorkers = [&] {
        std::size_t n = 0;
        for (const auto &slot : slots)
            n += slot.active;
        return n;
    };

    // The supervision loop: drain worker output, classify deaths,
    // restart with backoff, re-dispatch stragglers. 10ms poll keeps
    // the loop responsive without measurable load.
    while (true) {
        const double now = monotonicSeconds();

        // Heartbeat publish; the cadence gate turns the 10ms poll
        // into one write per statusIntervalSeconds.
        if (publisher)
            publisher->publish(makeSnapshot(false));

        for (auto &slot : slots) {
            if (!slot.active)
                continue;
            ShardState &st = shard[slot.shard];

            // Drain protocol lines. Any output refreshes liveness.
            const std::string data = slot.proc.readAvailable();
            if (!data.empty()) {
                slot.lastActivity = now;
                slot.buf += data;
                std::size_t nl;
                while ((nl = slot.buf.find('\n')) !=
                       std::string::npos) {
                    const std::string line = slot.buf.substr(0, nl);
                    slot.buf.erase(0, nl + 1);
                    if (line.rfind("done ", 0) == 0 &&
                        line.size() > 5 + 17) {
                        const std::uint64_t key = std::strtoull(
                            line.substr(5, 16).c_str(), nullptr, 16);
                        // Only genuinely terminal statuses count: a
                        // draining worker also reports interrupted /
                        // skipped jobs, which must stay pending.
                        const std::string status =
                            line.substr(5 + 17);
                        JobStatus st_val;
                        if (jobStatusFromName(status, st_val) &&
                            (st_val == JobStatus::Ok ||
                             st_val == JobStatus::Failed ||
                             st_val == JobStatus::TimedOut)) {
                            if (st.terminal.insert(key).second) {
                                if (st_val == JobStatus::Ok)
                                    ++ok_seen;
                                else
                                    ++failed_seen;
                            }
                        }
                    }
                    // "ready"/"hb" lines only carry liveness.
                }
            }

            // Hung worker: alive but silent past the heartbeat
            // window. SIGKILL it and let the death path classify.
            if (opts.heartbeatTimeoutSeconds > 0 &&
                now - slot.lastActivity >
                    opts.heartbeatTimeoutSeconds &&
                slot.proc.poll().running()) {
                flight.record(
                    FlightEventType::HeartbeatMiss, 0,
                    csprintf("shard %u pid %d silent %.1fs",
                             slot.shard,
                             static_cast<int>(slot.proc.pid()),
                             now - slot.lastActivity));
                event(csprintf("shard %u: worker pid %d hung (no "
                               "heartbeat for %.1fs); SIGKILL",
                               slot.shard,
                               static_cast<int>(slot.proc.pid()),
                               now - slot.lastActivity));
                slot.proc.killHard();
            }

            const ExitStatus es = slot.proc.poll();
            if (es.running())
                continue;

            // Death: the journal, not the exit status, is the truth
            // about what completed.
            slot.active = false;
            reloadShardJournals(slot.shard);
            const std::vector<std::uint64_t> rem =
                remainingKeys(slot.shard);
            if (rem.empty()) {
                if (!st.done) {
                    st.done = true;
                    flight.record(FlightEventType::WorkerExit, 0,
                                  csprintf("shard %u complete (%s)",
                                           slot.shard,
                                           es.describe().c_str()));
                    event(csprintf("shard %u: complete (%s)",
                                   slot.shard,
                                   es.describe().c_str()));
                }
                continue;
            }
            if (draining) {
                // The supervisor is shutting down; an incomplete
                // worker exit during the drain is expected.
                continue;
            }
            if (es.exitedOk()) {
                // "Complete" exit but the journal disagrees: treat
                // as a crash so the remainder still runs, but it
                // points at an assignment bug. Rate-limited: a
                // restart loop of a systematically broken worker
                // must not flood stderr.
                static LogRateLimiter limiter(5.0, 20.0);
                warnLimited(limiter,
                            "shard %u: worker exited 0 with %zu jobs "
                            "unfinished",
                            slot.shard, rem.size());
            }
            ++result.crashes;
            const std::string what = csprintf(
                "shard %u: worker died (%s) with %zu jobs "
                "unfinished",
                slot.shard, es.describe().c_str(), rem.size());
            result.crashLog.push_back(what);
            // Crash postmortem: the flight ring is dumped right here,
            // not just on supervisor exit — a later SIGKILL of the
            // supervisor itself must not erase the evidence.
            flight.record(FlightEventType::WorkerCrash, 0, what);
            flight.dumpNow();
            if (publisher)
                publisher->publish(makeSnapshot(false), true);
            event(what);
            if (slot.helper > 0) {
                // A dead helper is not restarted: the primary still
                // owns every key; it just loses the speedup.
                continue;
            }
            if (st.restarts >= opts.maxRestarts) {
                st.failed = true;
                st.failReason = csprintf(
                    "shard worker crashed %zu times (last: %s); "
                    "restart budget (%u) exhausted",
                    static_cast<std::size_t>(st.restarts + 1),
                    es.describe().c_str(), opts.maxRestarts);
                event(csprintf("shard %u: giving up: %s", slot.shard,
                               st.failReason.c_str()));
                continue;
            }
            ++st.restarts;
            st.restartPending = true;
            const double backoff = restartBackoff(opts, st.restarts);
            restart_backoff_ns.sample(
                static_cast<std::uint64_t>(backoff * 1e9));
            st.nextSpawnAt = now + backoff;
        }

        // Interrupt: request a graceful drain from every worker,
        // then stop supervising. Shard journals stay resumable.
        if (!draining &&
            interrupt->load(std::memory_order_relaxed)) {
            draining = true;
            drainDeadline = MonotonicDeadline(
                opts.drainSeconds > 0 ? opts.drainSeconds : 0.001);
            for (auto &slot : slots) {
                if (slot.active)
                    slot.proc.sendSignal(SIGTERM);
            }
            flight.record(FlightEventType::Signal, 0,
                          "interrupt: draining workers");
            if (publisher)
                publisher->publish(makeSnapshot(false), true);
            event("interrupt: draining workers");
        }
        if (draining) {
            if (activeWorkers() == 0)
                break;
            if (drainDeadline.expired()) {
                for (auto &slot : slots) {
                    if (slot.active) {
                        slot.proc.killHard();
                        slot.active = false;
                    }
                }
                break;
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
            continue;
        }

        // A shard whose full key set went terminal (usually thanks
        // to a helper) doesn't need its workers any more: ask them
        // to drain so they stop burning duplicated work.
        for (unsigned s = 0; s < shards; ++s) {
            if (shard[s].done || shard[s].failed)
                continue;
            if (remainingKeys(s).empty()) {
                shard[s].done = true;
                for (auto &slot : slots) {
                    if (slot.active && slot.shard == s)
                        slot.proc.sendSignal(SIGTERM);
                }
                event(csprintf("shard %u: complete", s));
            }
        }

        // Restarts whose backoff expired.
        for (unsigned s = 0; s < shards; ++s) {
            ShardState &st = shard[s];
            if (st.restartPending && now >= st.nextSpawnAt &&
                !st.done && !st.failed) {
                st.restartPending = false;
                ++result.restarts;
                flight.record(FlightEventType::Restart, 0,
                              csprintf("shard %u restart %u/%u", s,
                                       st.restarts,
                                       opts.maxRestarts));
                event(csprintf("shard %u: restart %u/%u", s,
                               st.restarts, opts.maxRestarts));
                spawnWorker(s, remainingKeys(s), 0);
                if (publisher)
                    publisher->publish(makeSnapshot(false), true);
            }
        }

        // Straggler re-dispatch: idle capacity goes to the slowest
        // running shard's tail.
        if (opts.redispatch && activeWorkers() < shards) {
            unsigned straggler = shards;
            std::size_t worst = 0;
            for (unsigned s = 0; s < shards; ++s) {
                if (shard[s].done || shard[s].failed ||
                    shard[s].restartPending ||
                    shard[s].helpers > 0) {
                    continue;
                }
                bool has_worker = false;
                for (const auto &slot : slots) {
                    has_worker |= slot.active && slot.shard == s;
                }
                if (!has_worker)
                    continue;
                const std::size_t rem = remainingKeys(s).size();
                if (rem >= opts.redispatchMinKeys && rem > worst) {
                    worst = rem;
                    straggler = s;
                }
            }
            if (straggler < shards) {
                const std::vector<std::uint64_t> rem =
                    remainingKeys(straggler);
                const std::vector<std::uint64_t> tail(
                    rem.begin() + rem.size() / 2, rem.end());
                ++shard[straggler].helpers;
                ++result.redispatches;
                flight.record(
                    FlightEventType::Redispatch, 0,
                    csprintf("shard %u: %zu of %zu keys to helper",
                             straggler, tail.size(), rem.size()));
                event(csprintf("shard %u: re-dispatching %zu of %zu "
                               "remaining keys to a helper",
                               straggler, tail.size(), rem.size()));
                spawnWorker(straggler, tail,
                            shard[straggler].helpers);
            }
        }

        // Termination: every shard settled and no worker running.
        bool settled = true;
        for (unsigned s = 0; s < shards; ++s) {
            settled &= shard[s].done || shard[s].failed;
        }
        if (settled && activeWorkers() == 0)
            break;

        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }

    const bool interrupted =
        interrupt->load(std::memory_order_relaxed);

    // ----------------------------------------------------------------
    // Merge: assemble the campaign report from the shard journals.
    // Purely journal-driven and key-ordered by the job spec, so the
    // bytes match a single-process runCampaign() of the same jobs.
    // ----------------------------------------------------------------
    std::map<std::uint64_t, JournalRecord> merged;
    std::size_t corrupted = 0, truncated = 0;
    for (const auto &path : listShardJournals(dir)) {
        const JournalReplay replay = loadJournalIfPresent(path);
        corrupted += replay.corrupted;
        truncated += replay.truncated;
        for (const auto &rec : replay.records) {
            auto it = merged.find(rec.key);
            // ok wins over non-ok (a helper may have completed a
            // key whose primary record is failed); otherwise last
            // write wins like within one journal.
            if (it == merged.end() ||
                it->second.status != jobStatusName(JobStatus::Ok) ||
                rec.status == jobStatusName(JobStatus::Ok)) {
                merged[rec.key] = rec;
            }
        }
    }

    CampaignResult &camp = result.campaign;
    camp.keys = keys;
    camp.outcomes.resize(jobs.size());
    camp.payloads.resize(jobs.size());
    camp.corruptedRecords = corrupted;
    camp.truncatedRecords = truncated;

    // Which shard owns a key (for per-shard failure attribution).
    std::map<std::uint64_t, unsigned> owner;
    for (unsigned s = 0; s < shards; ++s) {
        for (std::uint64_t k : shard[s].keys)
            owner[k] = s;
    }

    for (std::size_t i = 0; i < jobs.size(); ++i) {
        JobOutcome &outcome = camp.outcomes[i];
        const auto it = merged.find(keys[i]);
        if (it == merged.end()) {
            // Never reached a terminal record: resumable when the
            // supervisor was interrupted, failed when its shard
            // exhausted restarts.
            const unsigned s = owner[keys[i]];
            if (shard[s].failed) {
                outcome.status = JobStatus::Failed;
                outcome.error = shard[s].failReason;
            } else {
                outcome.status = JobStatus::Skipped;
                outcome.error = "campaign interrupted";
                outcome.attempts = 0;
            }
            continue;
        }
        JobStatus st;
        if (!jobStatusFromName(it->second.status, st))
            continue;
        outcome.status = st;
        if (st == JobStatus::Ok) {
            camp.payloads[i] = it->second.payload;
        } else {
            // Recover the live error text so the merged report
            // renders exactly what a single-process run would.
            if (!parseErrorPayload(it->second.payload, outcome.error,
                                   outcome.attempts)) {
                outcome.error = "unparseable journal error record";
            }
        }
    }

    camp.replayed = replayedAtStart;
    std::size_t terminalNow = 0;
    for (const auto &o : camp.outcomes) {
        terminalNow += o.status == JobStatus::Ok ||
                       o.status == JobStatus::Failed ||
                       o.status == JobStatus::TimedOut;
    }
    camp.executed = terminalNow - std::min(terminalNow,
                                           replayedAtStart);
    camp.interrupted = interrupted || !camp.complete();
    for (unsigned s = 0; s < shards; ++s)
        camp.interrupted |= !shard[s].done && !shard[s].failed;
    camp.workerCrashes = result.crashes;
    camp.workerRestarts = result.restarts;
    camp.redispatches = result.redispatches;

    atomicWriteFile(dir + "/report.json", camp.reportJson());
    drainFlushHooks();

    // Terminal snapshot, forced: readers of a finished campaign see
    // the final per-shard tallies, not the last mid-run heartbeat.
    if (publisher)
        publisher->publish(makeSnapshot(true), true);

    result.wallSeconds = monotonicSeconds() - t0;
    return result;
}

} // namespace powerchop
