/**
 * @file
 * Process-isolated sharded campaigns: the shard supervisor.
 *
 * PR 5 made campaigns durable against crashes of the *whole* process,
 * but every job still shared one address space: a single std::abort,
 * invariant panic or segfault anywhere killed the entire campaign.
 * The supervisor adds fault containment by partitioning the job
 * matrix into content-key ranges and running each shard in its own
 * worker *process* — a re-exec of this binary's `campaign-worker`
 * subcommand — so the blast radius of any crash is one shard, whose
 * write-ahead journal survives.
 *
 * Supervision loop (single-threaded, monotonic-clock deadlines):
 *  - assignments are fed to each worker over its stdin pipe (one
 *    content key per line, EOF ends the assignment);
 *  - workers report progress over stdout ("ready", "hb" heartbeats,
 *    "done <key> <status>" after each durable journal append), read
 *    non-blockingly so a wedged worker can never stall the loop;
 *  - death is detected with waitpid and classified — a clean exit
 *    is completion, an exit code is a reported error, a fatal signal
 *    (SIGSEGV, SIGKILL, ...) is a crash — and crashed or hung (no
 *    heartbeat) shards are restarted with bounded exponential
 *    backoff, resuming from their shard journal;
 *  - when a shard finishes early, the remaining keys of the slowest
 *    straggler are re-dispatched to a helper worker with its own
 *    journal (results are content-keyed and deterministic, so
 *    duplicated work merges harmlessly).
 *
 * The final merge assembles every shard journal into the same
 * report.json a single-process, uninterrupted runCampaign() of the
 * same spec writes — byte-identical, extending PR 5's resume
 * guarantee to "any subset of workers SIGKILLed at any time".
 */

#ifndef POWERCHOP_SIM_SHARD_SUPERVISOR_HH
#define POWERCHOP_SIM_SHARD_SUPERVISOR_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/campaign.hh"

namespace powerchop
{

/** Supervision knobs of a sharded campaign. */
struct ShardSupervisorOptions
{
    /** Worker processes (= shards). Clamped to the job count. */
    unsigned shards = 2;

    /** Resume from existing shard journals; without it a directory
     *  that already holds shard journals is refused. */
    bool resume = false;

    /** Restarts granted to each shard before its remaining jobs are
     *  marked failed. */
    unsigned maxRestarts = 3;

    /** Exponential backoff between a shard's crash and its restart:
     *  base * 2^(restarts-1), capped. Monotonic-clock, and the
     *  supervisor keeps servicing other shards while waiting. @{ */
    double restartBackoffBaseSeconds = 0.1;
    double restartBackoffMaxSeconds = 2.0;
    /** @} */

    /** A worker silent (no stdout bytes) for this long is declared
     *  hung, SIGKILLed and restarted like a crash; 0 disables.
     *  Workers heartbeat every ~500ms, so this bounds detection
     *  latency for a wedged (not dead) process. */
    double heartbeatTimeoutSeconds = 30.0;

    /** Grace period granted to workers (SIGTERM, drain) when the
     *  supervisor itself is interrupted. */
    double drainSeconds = 5.0;

    /** Straggler re-dispatch: when a worker slot is idle and a
     *  running shard still has at least redispatchMinKeys remaining,
     *  the tail half of its remaining keys is re-dispatched to a
     *  helper worker (at most one per shard). @{ */
    bool redispatch = true;
    std::size_t redispatchMinKeys = 2;
    /** @} */

    /** Per-job knobs forwarded to workers. @{ */
    double jobTimeoutSeconds = 0;
    unsigned maxRetries = 0;
    /** @} */

    /** Path of the binary to re-exec; empty means /proc/self/exe. */
    std::string exePath;

    /** Matrix-defining arguments of the `campaign-worker`
     *  subcommand (--workloads/--machine/--modes/--insns...). The
     *  worker must rebuild the exact job matrix from these, so the
     *  content keys it derives match the supervisor's. */
    std::vector<std::string> workerArgs;

    /** Interrupt flag; defaults to the process-wide campaign flag. */
    const std::atomic<bool> *interruptFlag = nullptr;

    /** Supervision event log callback (spawn/crash/restart/
     *  re-dispatch), for CLI progress output. */
    std::function<void(const std::string &)> onEvent;

    /** Publish live status to `dir`/status/ (statusboard.hh): the
     *  aggregate campaign.json with one per-shard health entry each.
     *  Worker deaths and restarts force an immediate snapshot, so a
     *  reader sees them within one cadence interval. Write-only side
     *  channel: report.json is byte-identical with it on or off. */
    bool publishStatus = false;

    /** Cadence floor of status publishing, seconds. */
    double statusIntervalSeconds = 0.25;
};

/** What a supervised campaign accomplished. */
struct ShardSupervisorResult
{
    /** The merged campaign (report.json content, supervision tallies
     *  in the summary fields). */
    CampaignResult campaign;

    std::size_t shards = 0;

    /** Worker deaths classified as crashes (fatal signal, error
     *  exit, or hung-and-SIGKILLed), restarts performed, and
     *  straggler re-dispatches. @{ */
    std::size_t crashes = 0;
    std::size_t restarts = 0;
    std::size_t redispatches = 0;
    /** @} */

    /** One classified line per worker death ("shard 2: signal 11
     *  (Segmentation fault)"). */
    std::vector<std::string> crashLog;

    /** Supervisor wall-clock (monotonic) for BENCH accounting. */
    double wallSeconds = 0;
};

/**
 * Partition job indices into `shards` contiguous content-key ranges.
 *
 * Indices are ordered by ascending key, then cut into near-equal
 * chunks, so every shard owns one range of the key space and the
 * partition is a pure function of the job matrix (deterministic
 * across supervisor restarts and resumes).
 */
std::vector<std::vector<std::size_t>>
partitionByKeyRange(const std::vector<std::uint64_t> &keys,
                    unsigned shards);

/** Journal path of shard `shard` in `dir`; helper > 0 names the
 *  journal of that re-dispatch helper instead. */
std::string shardJournalPath(const std::string &dir, unsigned shard,
                             unsigned helper = 0);

/**
 * Run (or resume) a campaign across worker processes.
 *
 * Creates `dir`, partitions `jobs` by content-key range, forks one
 * `campaign-worker` per shard and supervises them to completion
 * (restart on crash/hang, straggler re-dispatch), then merges the
 * shard journals into `dir`/report.json — byte-identical to a
 * single-process runCampaign() of the same jobs.
 */
ShardSupervisorResult
runShardedCampaign(const std::vector<SimJob> &jobs,
                   const std::string &dir,
                   const ShardSupervisorOptions &opts);

} // namespace powerchop

#endif // POWERCHOP_SIM_SHARD_SUPERVISOR_HH
