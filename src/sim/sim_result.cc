#include "sim/sim_result.hh"

#include <sstream>

#include "common/logging.hh"

namespace powerchop
{

const char *
simModeName(SimMode m)
{
    switch (m) {
      case SimMode::FullPower:
        return "full-power";
      case SimMode::PowerChop:
        return "powerchop";
      case SimMode::MinPower:
        return "min-power";
      case SimMode::TimeoutVpu:
        return "timeout-vpu";
      case SimMode::StaticPolicy:
        return "static-policy";
      case SimMode::DrowsyMlc:
        return "drowsy-mlc";
    }
    panic("unknown SimMode %d", static_cast<int>(m));
}

double
SimResult::slowdownVs(const SimResult &base) const
{
    if (base.cycles <= 0)
        panic("slowdownVs against an empty baseline");
    // Same instruction count is assumed; compare cycles directly.
    return cycles / base.cycles - 1.0;
}

double
SimResult::powerReductionVs(const SimResult &base) const
{
    double p0 = base.energy.averagePower();
    if (p0 <= 0)
        panic("powerReductionVs against zero baseline power");
    return 1.0 - energy.averagePower() / p0;
}

double
SimResult::energyReductionVs(const SimResult &base) const
{
    double e0 = base.energy.totalEnergy();
    if (e0 <= 0)
        panic("energyReductionVs against zero baseline energy");
    return 1.0 - energy.totalEnergy() / e0;
}

double
SimResult::leakageReductionVs(const SimResult &base) const
{
    double l0 = base.energy.averageLeakagePower();
    if (l0 <= 0)
        panic("leakageReductionVs against zero baseline leakage");
    return 1.0 - energy.averageLeakagePower() / l0;
}

std::string
SimResult::toJson() const
{
    std::ostringstream out;
    out.precision(10);
    out << "{";
    out << "\"workload\":\"" << workload << "\",";
    out << "\"machine\":\"" << machine << "\",";
    out << "\"mode\":\"" << simModeName(mode) << "\",";
    out << "\"instructions\":" << instructions << ",";
    out << "\"cycles\":" << static_cast<std::uint64_t>(cycles) << ",";
    out << "\"ipc\":" << ipc() << ",";
    out << "\"seconds\":" << seconds << ",";
    out << "\"avg_power_w\":" << energy.averagePower() << ",";
    out << "\"avg_leakage_w\":" << energy.averageLeakagePower() << ",";
    out << "\"total_energy_j\":" << energy.totalEnergy() << ",";
    out << "\"vpu_gated\":" << vpuGatedFraction << ",";
    out << "\"bpu_gated\":" << bpuGatedFraction << ",";
    out << "\"mlc_half\":" << mlcHalfFraction << ",";
    out << "\"mlc_quarter\":" << mlcQuarterFraction << ",";
    out << "\"mlc_one_way\":" << mlcOneWayFraction << ",";
    out << "\"vpu_switches\":" << gating.vpuSwitches << ",";
    out << "\"bpu_switches\":" << gating.bpuSwitches << ",";
    out << "\"mlc_switches\":" << gating.mlcSwitches << ",";
    out << "\"pvt_lookups\":" << pvtLookups << ",";
    out << "\"pvt_hits\":" << pvtHits << ",";
    out << "\"translations\":" << translationsExecuted << ",";
    out << "\"slot_ops\":" << slotOps << ",";
    out << "\"l1_hit_rate\":" << l1HitRate << ",";
    out << "\"mlc_hit_rate\":" << mlcHitRate << ",";
    out << "\"mlc_accesses\":" << mlcAccesses << ",";
    out << "\"mlc_accesses_per_kilo\":" << mlcAccessesPerKilo << ",";
    out << "\"branch_lookups\":" << branchLookups << ",";
    out << "\"branch_mispredicts\":" << branchMispredicts << ",";
    out << "\"branches_per_kilo\":" << branchesPerKilo << ",";
    out << "\"branch_mispredict_rate\":" << branchMispredictRate << ",";
    out << "\"simd_native\":" << simdOps << ",";
    out << "\"simd_emulated\":" << simdEmulated << ",";
    out << "\"mlc_drowsy_fraction\":" << mlcDrowsyFraction << ",";
    out << "\"drowsy_wakes\":" << drowsyWakes;
    // Resilience fields appear only when something happened, so the
    // rendering of a fault-free run stays byte-identical to builds
    // without the resilience subsystem.
    if (faults.total() > 0) {
        out << ",\"faults_injected\":" << faults.total();
        out << ",\"faults_policy\":" << faults.policyCorruptions;
        out << ",\"faults_htb_drop\":" << faults.htbDrops;
        out << ",\"faults_htb_alias\":" << faults.htbAliases;
        out << ",\"faults_ctrl_flip\":" << faults.controllerFlips;
        out << ",\"faults_wakeup\":" << faults.wakeupStretches;
    }
    if (safeModeActivations > 0) {
        out << ",\"safe_mode_activations\":" << safeModeActivations;
        out << ",\"safe_mode_window_fraction\":"
            << safeModeWindowFraction;
    }
    out << "}";
    return out.str();
}

std::string
SimResult::toString() const
{
    std::ostringstream out;
    out << workload << " on " << machine << " [" << simModeName(mode)
        << "]\n";
    out << "  insns " << instructions << ", cycles "
        << static_cast<std::uint64_t>(cycles) << ", IPC " << ipc()
        << "\n";
    out << "  gated: VPU " << vpuGatedFraction * 100 << "%, BPU "
        << bpuGatedFraction * 100 << "%, MLC half "
        << mlcHalfFraction * 100 << "% / 1-way "
        << mlcOneWayFraction * 100 << "%\n";
    out << "  avg power " << energy.averagePower() << " W (leakage "
        << energy.averageLeakagePower() << " W)\n";
    if (faults.total() > 0) {
        out << "  faults injected: " << faults.total() << " (policy "
            << faults.policyCorruptions << ", htb "
            << faults.htbDrops + faults.htbAliases << ", ctrl "
            << faults.controllerFlips << ", wakeup "
            << faults.wakeupStretches << ")\n";
    }
    if (safeModeActivations > 0) {
        out << "  safe mode: " << safeModeActivations
            << " activations, " << safeModeWindowFraction * 100
            << "% of windows\n";
    }
    return out.str();
}

} // namespace powerchop
