/**
 * @file
 * Results of one simulation run, with the comparison arithmetic the
 * evaluation figures are built from (slowdown, power reduction,
 * energy reduction, leakage reduction).
 */

#ifndef POWERCHOP_SIM_SIM_RESULT_HH
#define POWERCHOP_SIM_SIM_RESULT_HH

#include <cstdint>
#include <string>

#include "core/fault_injector.hh"
#include "core/gating_controller.hh"
#include "power/accumulator.hh"

namespace powerchop
{

/** Simulation operating mode. */
enum class SimMode : std::uint8_t
{
    FullPower,    ///< All units at full power throughout (baseline).
    PowerChop,    ///< PowerChop manages the three units.
    MinPower,     ///< All units at their lowest-power states.
    TimeoutVpu,   ///< Idle-timeout gating on the VPU only (V-E).
    StaticPolicy, ///< A fixed caller-supplied policy for the whole
                  ///< run (Figures 2-3 compare static unit configs).
    DrowsyMlc,    ///< Periodic drowsy MLC (Flautner et al.), the
                  ///< related-work per-line leakage baseline.
};

/** @return a display name for a mode. */
const char *simModeName(SimMode m);

/** Everything measured in one run. */
struct SimResult
{
    std::string workload;
    std::string machine;
    SimMode mode = SimMode::FullPower;

    /**
     * Committed guest instructions — THE canonical executed-
     * instruction count. Every per-instruction rate in this struct
     * (ipc(), mlcAccessesPerKilo, branchesPerKilo, the mispredict
     * rate) divides by this count. It equals the run's instruction
     * budget: simulate() always retires exactly the budget.
     *
     * It deliberately excludes the extra scalar issue slots of
     * emulated SIMD ops; those are micro-architectural work, not
     * guest instructions, and are reported separately as slotOps
     * (the energy model's Rest-unit dynamic-event count).
     */
    InsnCount instructions = 0;
    Cycles cycles = 0;
    double seconds = 0;

    /**
     * Issue-slot operations: `instructions` plus the extra scalar
     * slots of emulated SIMD expansion (== activity.instructions).
     * This is the base of the Rest unit's dynamic energy, never of
     * the per-instruction rates above.
     */
    double slotOps = 0;

    double ipc() const
    {
        return cycles > 0 ? instructions / cycles : 0.0;
    }

    /** Gating activity. */
    GatingStats gating;

    /** Per-unit gated-off cycle fractions (Figures 9-10). @{ */
    double vpuGatedFraction = 0;
    double bpuGatedFraction = 0;
    double mlcHalfFraction = 0;
    double mlcQuarterFraction = 0;
    double mlcOneWayFraction = 0;
    /** @} */

    /** Policy switches per million cycles (Figure 11). @{ */
    double vpuSwitchesPerMcycle = 0;
    double bpuSwitchesPerMcycle = 0;
    double mlcSwitchesPerMcycle = 0;
    /** @} */

    /** PVT behaviour (Section IV-C3). @{ */
    std::uint64_t pvtLookups = 0;
    std::uint64_t pvtHits = 0;
    std::uint64_t translationsExecuted = 0;
    /** PVT misses as a fraction of executed translations. */
    double pvtMissPerTranslation = 0;
    /** @} */

    /** Cache behaviour. Raw counts are kept next to the derived
     *  per-kilo rates so every denominator is auditable:
     *  mlcAccessesPerKilo == 1000 * mlcAccesses / instructions. @{ */
    double l1HitRate = 0;
    double mlcHitRate = 0;
    std::uint64_t mlcAccesses = 0;
    double mlcAccessesPerKilo = 0;
    /** @} */

    /** Branch behaviour. branchesPerKilo == 1000 * branchLookups /
     *  instructions; branchMispredictRate == branchMispredicts /
     *  branchLookups (0 when there were no lookups). @{ */
    std::uint64_t branchLookups = 0;
    std::uint64_t branchMispredicts = 0;
    double branchMispredictRate = 0;
    double branchesPerKilo = 0;
    /** @} */

    /** SIMD behaviour. @{ */
    std::uint64_t simdOps = 0;
    std::uint64_t simdEmulated = 0;
    /** @} */

    /** Drowsy baseline: time-averaged drowsy line fraction and
     *  wakeup count (DrowsyMlc mode only). @{ */
    double mlcDrowsyFraction = 0;
    std::uint64_t drowsyWakes = 0;
    /** @} */

    /** Resilience: injected-fault counts and QoS watchdog activity.
     *  All zero unless fault injection / the watchdog were enabled;
     *  toString()/toJson() render them only when non-zero so
     *  fault-free output stays byte-identical. @{ */
    FaultStats faults;
    std::uint64_t safeModeActivations = 0;
    double safeModeWindowFraction = 0;
    /** @} */

    /** Raw activity and the resulting energy breakdown. */
    ActivityRecord activity;
    EnergyBreakdown energy;

    // --- comparisons against a baseline run ------------------------------

    /** Fractional slowdown vs. a baseline (positive = slower). */
    double slowdownVs(const SimResult &base) const;

    /** Fractional total-core average-power reduction vs. baseline. */
    double powerReductionVs(const SimResult &base) const;

    /** Fractional total energy reduction vs. baseline. */
    double energyReductionVs(const SimResult &base) const;

    /** Fractional leakage-power reduction vs. baseline. */
    double leakageReductionVs(const SimResult &base) const;

    /** Multi-line human-readable summary. */
    std::string toString() const;

    /** Compact single-object JSON rendering of the run's metrics
     *  (for scripting; no external dependencies). */
    std::string toJson() const;
};

} // namespace powerchop

#endif // POWERCHOP_SIM_SIM_RESULT_HH
