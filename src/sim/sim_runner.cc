#include "sim/sim_runner.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <ctime>
#include <limits>

#include "common/clock.hh"
#include "common/env.hh"
#include "common/flight_recorder.hh"
#include "common/logging.hh"
#include "common/random.hh"

namespace powerchop
{

namespace
{

/**
 * CPU time consumed by the calling thread. Using CPU rather than wall
 * time for the busy tally means busy/wall reports the parallelism
 * actually realized: on an oversubscribed machine descheduled time
 * doesn't count as "busy", so the speedup estimate stays honest.
 */
double
threadCpuSeconds()
{
#if defined(CLOCK_THREAD_CPUTIME_ID)
    timespec ts;
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
        return static_cast<double>(ts.tv_sec) +
               static_cast<double>(ts.tv_nsec) * 1e-9;
    }
#endif
    return monotonicSeconds();
}

/** POWERCHOP_AUDIT=1 runs the invariant auditor on every job the
 *  runner executes; a violated conservation law fails the job (plain
 *  run() propagates the InvariantViolationError, runRobust() records
 *  it as a Failed outcome). */
bool
auditEveryJob()
{
    return envUint64("POWERCHOP_AUDIT", 0, 1).value_or(0) != 0;
}

} // namespace

const char *
jobStatusName(JobStatus s)
{
    switch (s) {
      case JobStatus::Ok:
        return "ok";
      case JobStatus::Failed:
        return "failed";
      case JobStatus::TimedOut:
        return "timed-out";
      case JobStatus::Skipped:
        return "skipped";
      case JobStatus::Interrupted:
        return "interrupted";
    }
    panic("unknown JobStatus %d", static_cast<int>(s));
}

double
retryBackoffSeconds(const RobustRunOptions &opts,
                    std::size_t jobIndex, unsigned attempt)
{
    if (attempt <= 1 || opts.backoffBaseSeconds <= 0)
        return 0;
    // Bounded exponential growth...
    double delay = opts.backoffBaseSeconds;
    for (unsigned a = 2; a < attempt && delay < opts.backoffMaxSeconds;
         ++a) {
        delay *= 2;
    }
    if (delay > opts.backoffMaxSeconds)
        delay = opts.backoffMaxSeconds;
    // ...plus seeded jitter: a pure function of (seed, job, attempt),
    // so totals reproduce exactly across runs and worker counts.
    Rng rng(opts.backoffSeed ^
            (static_cast<std::uint64_t>(jobIndex) * 0x9e3779b97f4a7c15ull +
             attempt));
    return delay + delay * opts.backoffJitterFraction * rng.uniform();
}

std::size_t
RobustBatchResult::okCount() const
{
    return static_cast<std::size_t>(std::count_if(
        outcomes.begin(), outcomes.end(),
        [](const JobOutcome &o) { return o.status == JobStatus::Ok; }));
}

std::size_t
RobustBatchResult::failedCount() const
{
    return static_cast<std::size_t>(
        std::count_if(outcomes.begin(), outcomes.end(),
                      [](const JobOutcome &o) {
                          return o.status == JobStatus::Failed;
                      }));
}

std::size_t
RobustBatchResult::timedOutCount() const
{
    return static_cast<std::size_t>(
        std::count_if(outcomes.begin(), outcomes.end(),
                      [](const JobOutcome &o) {
                          return o.status == JobStatus::TimedOut;
                      }));
}

std::size_t
RobustBatchResult::skippedCount() const
{
    return static_cast<std::size_t>(
        std::count_if(outcomes.begin(), outcomes.end(),
                      [](const JobOutcome &o) {
                          return o.status == JobStatus::Skipped;
                      }));
}

std::size_t
RobustBatchResult::interruptedCount() const
{
    return static_cast<std::size_t>(
        std::count_if(outcomes.begin(), outcomes.end(),
                      [](const JobOutcome &o) {
                          return o.status == JobStatus::Interrupted;
                      }));
}

std::size_t
RobustBatchResult::degradedCount() const
{
    std::size_t n = 0;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        if (outcomes[i].status == JobStatus::Ok &&
            results[i].safeModeActivations > 0) {
            ++n;
        }
    }
    return n;
}

std::string
RobustBatchResult::summary() const
{
    std::string s =
        csprintf("%zu ok, %zu failed, %zu timed out, %zu degraded",
                 okCount(), failedCount(), timedOutCount(),
                 degradedCount());
    // Cancellation states appear only when a batch was actually
    // cancelled, keeping pre-existing summaries byte-identical.
    if (resumableCount() > 0) {
        s += csprintf(", %zu skipped, %zu interrupted",
                      skippedCount(), interruptedCount());
    }
    return s;
}

std::string
RunnerReport::toString() const
{
    std::string s =
        csprintf("%zu jobs on %u threads: %.2fs wall (%.2fs busy), "
                 "%.1f MIPS, %.2f jobs/s, %.2fx vs 1 thread",
                 jobs, threads, wallSeconds, busySeconds, mips(),
                 jobsPerSecond(), speedup());
    // Robust-batch tallies are appended only when such a batch ran,
    // keeping fault-free bench output byte-identical.
    if (okJobs + failedJobs + timedOutJobs + skippedJobs +
            interruptedJobs > 0) {
        s += csprintf("; robust: %zu ok, %zu failed, %zu timed out, "
                      "%zu degraded, %zu retries",
                      okJobs, failedJobs, timedOutJobs, degradedJobs,
                      retries);
        if (skippedJobs + interruptedJobs > 0) {
            s += csprintf(", %zu skipped, %zu interrupted",
                          skippedJobs, interruptedJobs);
        }
        if (backoffSeconds > 0)
            s += csprintf(", %.3fs backoff", backoffSeconds);
    }
    if (workerCrashes + workerRestarts + redispatches > 0) {
        s += csprintf("; supervisor: %zu worker crashes, %zu "
                      "restarts, %zu re-dispatches",
                      workerCrashes, workerRestarts, redispatches);
    }
    if (translationCacheHits + translationCacheMisses > 0) {
        s += csprintf("; trans-meta cache: %llu hits, %llu misses",
                      static_cast<unsigned long long>(
                          translationCacheHits),
                      static_cast<unsigned long long>(
                          translationCacheMisses));
    }
    if (!stages.empty()) {
        s += "; stages:";
        for (const auto &st : stages) {
            s += csprintf(" %s=%.2fs/%llu", st.name.c_str(),
                          st.seconds,
                          static_cast<unsigned long long>(st.count));
        }
    }
    if (taskLatencyNs.samples() > 0) {
        const stats::Quantiles q = taskLatencyNs.quantiles(1e-6);
        s += csprintf("; task latency ms: p50=%.3f p90=%.3f p99=%.3f",
                      q.p50, q.p90, q.p99);
    }
    return s;
}

std::string
RunnerReport::toJson(const std::string &name) const
{
    std::string s =
        csprintf("{\"bench\":\"%s\",\"jobs\":%zu,\"threads\":%u,"
                 "\"wall_seconds\":%.6f,\"busy_seconds\":%.6f,"
                 "\"instructions\":%llu,\"mips\":%.3f,"
                 "\"jobs_per_second\":%.3f,\"speedup\":%.3f",
                 name.c_str(), jobs, threads, wallSeconds, busySeconds,
                 static_cast<unsigned long long>(instructions), mips(),
                 jobsPerSecond(), speedup());
    if (okJobs + failedJobs + timedOutJobs + skippedJobs +
            interruptedJobs > 0) {
        s += csprintf(",\"ok_jobs\":%zu,\"failed_jobs\":%zu,"
                      "\"timed_out_jobs\":%zu,\"degraded_jobs\":%zu,"
                      "\"retries\":%zu",
                      okJobs, failedJobs, timedOutJobs, degradedJobs,
                      retries);
        if (skippedJobs + interruptedJobs > 0) {
            s += csprintf(",\"skipped_jobs\":%zu,"
                          "\"interrupted_jobs\":%zu",
                          skippedJobs, interruptedJobs);
        }
        if (backoffSeconds > 0)
            s += csprintf(",\"backoff_seconds\":%.6f", backoffSeconds);
    }
    if (workerCrashes + workerRestarts + redispatches > 0) {
        s += csprintf(",\"worker_crashes\":%zu,"
                      "\"worker_restarts\":%zu,\"redispatches\":%zu",
                      workerCrashes, workerRestarts, redispatches);
    }
    if (translationCacheHits + translationCacheMisses > 0) {
        s += csprintf(",\"translation_cache_hits\":%llu,"
                      "\"translation_cache_misses\":%llu",
                      static_cast<unsigned long long>(
                          translationCacheHits),
                      static_cast<unsigned long long>(
                          translationCacheMisses));
    }
    if (!stages.empty()) {
        s += ",\"stages\":{";
        bool first = true;
        for (const auto &st : stages) {
            s += csprintf("%s\"%s\":{\"seconds\":%.6f,\"count\":%llu}",
                          first ? "" : ",", st.name.c_str(),
                          st.seconds,
                          static_cast<unsigned long long>(st.count));
            first = false;
        }
        s += "}";
    }
    if (taskLatencyNs.samples() > 0) {
        const stats::Quantiles q = taskLatencyNs.quantiles(1e-6);
        s += csprintf(
            ",\"task_latency_ms\":{\"samples\":%llu,\"p50\":%.6f,"
            "\"p90\":%.6f,\"p99\":%.6f}",
            static_cast<unsigned long long>(q.samples), q.p50, q.p90,
            q.p99);
    }
    s += "}";
    return s;
}

unsigned
defaultJobCount()
{
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0)
        hw = 1;
    return static_cast<unsigned>(
        envUint64("POWERCHOP_JOBS", 1, 1024).value_or(hw));
}

SimJobRunner::SimJobRunner(unsigned threads)
    : threads_(threads ? threads : defaultJobCount())
{
    report_.threads = threads_;
    workers_.reserve(threads_);
    for (unsigned t = 0; t < threads_; ++t)
        workers_.emplace_back([this] { workerLoop(); });
}

SimJobRunner::~SimJobRunner()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
SimJobRunner::workerLoop()
{
    std::uint64_t last_batch = 0;
    while (true) {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_.wait(lock, [&] {
            return stopping_ ||
                   (task_ && batchId_ != last_batch &&
                    nextIndex_ < batchCount_);
        });
        if (stopping_)
            return;

        const std::uint64_t batch = batchId_;
        const std::function<void(std::size_t)> &task = *task_;
        double busy = 0;

        while (nextIndex_ < batchCount_) {
            const std::size_t idx = nextIndex_++;
            lock.unlock();

            const double cpu_start = threadCpuSeconds();
            const std::int64_t wall_start = monotonicNanos();
            std::exception_ptr err;
            try {
                task(idx);
            } catch (...) {
                err = std::current_exception();
            }
            // Per-task wall latency (not CPU): the statusboard's
            // question is "how long does a job take end to end",
            // descheduled time included. Atomic buckets — no lock
            // needed on this path.
            report_.taskLatencyNs.sample(static_cast<std::uint64_t>(
                monotonicNanos() - wall_start));
            busy += threadCpuSeconds() - cpu_start;

            lock.lock();
            if (err)
                errors_[idx] = err;
            ++completed_;
            if (completed_ == batchCount_)
                done_.notify_all();
        }

        batchBusySeconds_ += busy;
        last_batch = batch;
    }
}

void
SimJobRunner::runTasks(std::size_t count,
                       const std::function<void(std::size_t)> &task)
{
    if (count == 0)
        return;

    const double start = monotonicSeconds();
    const InsnCount tally_before = simulatedInstructionTally();

    {
        std::unique_lock<std::mutex> lock(mutex_);
        panicIf(task_ != nullptr,
                "SimJobRunner batches cannot be nested");
        task_ = &task;
        batchCount_ = count;
        nextIndex_ = 0;
        completed_ = 0;
        batchBusySeconds_ = 0;
        errors_.assign(count, nullptr);
        ++batchId_;
    }
    wake_.notify_all();

    std::exception_ptr first_error;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        done_.wait(lock, [&] { return completed_ == batchCount_; });
        task_ = nullptr;

        for (auto &err : errors_) {
            if (err) {
                first_error = err;
                break;
            }
        }
        errors_.clear();

        report_.jobs += count;
        report_.wallSeconds += monotonicSeconds() - start;
        report_.busySeconds += batchBusySeconds_;
        report_.instructions +=
            simulatedInstructionTally() - tally_before;
        if (profiler_.enabled())
            report_.stages = profiler_.snapshot();
    }

    if (first_error)
        std::rethrow_exception(first_error);
}

std::vector<SimResult>
SimJobRunner::run(const std::vector<SimJob> &jobs)
{
    std::vector<SimResult> results(jobs.size());
    const bool audit = auditEveryJob();
    runTasks(jobs.size(), [&](std::size_t i) {
        SimOptions run_opts = jobs[i].opts;
        run_opts.audit = run_opts.audit || audit;
        if (!run_opts.translationCache)
            run_opts.translationCache = &transCache_;
        results[i] =
            simulate(jobs[i].machine, jobs[i].workload, run_opts);
    });
    report_.translationCacheHits = transCache_.hits();
    report_.translationCacheMisses = transCache_.misses();
    return results;
}

RobustBatchResult
SimJobRunner::runRobust(const std::vector<SimJob> &jobs,
                        const RobustRunOptions &opts)
{
    RobustBatchResult batch;
    batch.results.resize(jobs.size());
    batch.outcomes.resize(jobs.size());
    if (jobs.empty())
        return batch;

    // Per-job cancellation slot. deadlineNs < 0 means "not running";
    // the watchdog thread only arms cancel for slots whose deadline
    // has passed. Sized once up front so worker threads never race a
    // reallocation.
    struct Slot
    {
        std::atomic<bool> cancel{false};
        std::atomic<std::int64_t> deadlineNs{-1};
    };
    std::vector<Slot> slots(jobs.size());

    const auto nowNs = [] { return monotonicNanos(); };

    const auto batchCancelled = [&] {
        return opts.cancelFlag &&
               opts.cancelFlag->load(std::memory_order_relaxed);
    };

    // Deadlines and the post-cancel drain are enforced by a polling
    // watchdog rather than by preempting workers: the simulator
    // checks its cancel flag at block boundaries, so a ~10ms poll
    // adds at most that much slack to the configured limits. The
    // watchdog also turns a stuck job into a journaled timeout
    // record instead of hanging the campaign.
    std::atomic<bool> watchdog_stop{false};
    std::thread watchdog;
    if (opts.timeoutSeconds > 0 || opts.cancelFlag) {
        watchdog = std::thread([&] {
            const std::int64_t drain_ns =
                static_cast<std::int64_t>(opts.drainSeconds * 1e9);
            std::int64_t cancel_seen_ns = -1;
            while (!watchdog_stop.load(std::memory_order_relaxed)) {
                const std::int64_t now = nowNs();

                // Batch cancellation: give in-flight jobs the drain
                // grace period, then cancel whatever is still
                // running.
                if (batchCancelled()) {
                    if (cancel_seen_ns < 0)
                        cancel_seen_ns = now;
                    if (now >= cancel_seen_ns + drain_ns) {
                        for (auto &slot : slots) {
                            if (slot.deadlineNs.load(
                                    std::memory_order_relaxed) >= 0) {
                                slot.cancel.store(
                                    true, std::memory_order_relaxed);
                            }
                        }
                    }
                }

                if (opts.timeoutSeconds > 0) {
                    for (auto &slot : slots) {
                        const std::int64_t deadline =
                            slot.deadlineNs.load(
                                std::memory_order_relaxed);
                        if (deadline >= 0 && now >= deadline)
                            slot.cancel.store(
                                true, std::memory_order_relaxed);
                    }
                }
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(10));
            }
        });
    }

    const auto timeout_ns = static_cast<std::int64_t>(
        opts.timeoutSeconds * 1e9);
    const bool audit = auditEveryJob();

    runTasks(jobs.size(), [&](std::size_t i) {
        const SimJob &job = jobs[i];
        JobOutcome &outcome = batch.outcomes[i];
        Slot &slot = slots[i];

        // A cancelled batch stops dispatching: undispatched jobs are
        // Skipped (resumable), drained immediately.
        if (batchCancelled()) {
            outcome.status = JobStatus::Skipped;
            outcome.error = "batch cancelled before start";
            outcome.attempts = 0;
            if (opts.onComplete)
                opts.onComplete(i, batch.results[i], outcome);
            return;
        }

        if (opts.onStart)
            opts.onStart(i);

        const unsigned max_attempts =
            1 + (job.transient ? opts.maxRetries : 0);
        for (unsigned attempt = 1; attempt <= max_attempts;
             ++attempt) {
            outcome.attempts = attempt;

            SimOptions run_opts = job.opts;
            run_opts.audit = run_opts.audit || audit;
            if (!run_opts.translationCache)
                run_opts.translationCache = &transCache_;
            slot.cancel.store(false, std::memory_order_relaxed);
            if (opts.timeoutSeconds > 0 || opts.cancelFlag) {
                // The deadline slot doubles as the "in flight" mark
                // the drain logic keys off; with no per-job timeout
                // it is set far enough out to never fire on its own.
                const std::int64_t deadline = opts.timeoutSeconds > 0
                    ? nowNs() + timeout_ns
                    : std::numeric_limits<std::int64_t>::max();
                slot.deadlineNs.store(deadline,
                                      std::memory_order_relaxed);
                run_opts.cancelFlag = &slot.cancel;
            }

            // Re-attempts of transient jobs are counted into their
            // own stage so the report separates productive first-run
            // time from recovery time.
            telemetry::ScopedStageTimer retry_timer(
                attempt > 1 ? &profiler_ : nullptr, "retry");

            try {
                batch.results[i] =
                    simulate(job.machine, job.workload, run_opts);
                outcome.status = JobStatus::Ok;
                outcome.error.clear();
            } catch (const SimCancelledError &e) {
                // Distinguish why the flag rose: a batch cancel
                // leaves the job resumable, a per-job deadline is a
                // property of the job and is never retried.
                outcome.status = batchCancelled()
                    ? JobStatus::Interrupted
                    : JobStatus::TimedOut;
                outcome.error = e.what();
            } catch (const std::exception &e) {
                outcome.status = JobStatus::Failed;
                outcome.error = e.what();
            } catch (...) {
                outcome.status = JobStatus::Failed;
                outcome.error = "unknown exception";
            }
            slot.deadlineNs.store(-1, std::memory_order_relaxed);

            if (outcome.status != JobStatus::Failed ||
                attempt == max_attempts || batchCancelled()) {
                break;
            }

            FlightRecorder::global().record(
                FlightEventType::Retry, 0,
                csprintf("job %zu attempt %u: %s", i, attempt,
                         outcome.error.c_str()));

            // Bounded exponential backoff before the re-attempt. The
            // charged delay is computed, never measured, so reports
            // reproduce bit-identically across worker counts; the
            // actual wait is sliced so a batch cancel is honoured
            // promptly.
            const double delay =
                retryBackoffSeconds(opts, i, attempt + 1);
            outcome.backoffSeconds += delay;
            double remaining = delay;
            while (remaining > 0 && !batchCancelled()) {
                const double slice = std::min(remaining, 0.01);
                std::this_thread::sleep_for(
                    std::chrono::duration<double>(slice));
                remaining -= slice;
            }
        }

        if (opts.onComplete)
            opts.onComplete(i, batch.results[i], outcome);
    });

    if (watchdog.joinable()) {
        watchdog_stop.store(true, std::memory_order_relaxed);
        watchdog.join();
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        report_.okJobs += batch.okCount();
        report_.failedJobs += batch.failedCount();
        report_.timedOutJobs += batch.timedOutCount();
        report_.degradedJobs += batch.degradedCount();
        report_.skippedJobs += batch.skippedCount();
        report_.interruptedJobs += batch.interruptedCount();
        for (const auto &o : batch.outcomes) {
            if (o.attempts > 1)
                report_.retries += o.attempts - 1;
            report_.backoffSeconds += o.backoffSeconds;
        }
        report_.translationCacheHits = transCache_.hits();
        report_.translationCacheMisses = transCache_.misses();
    }
    return batch;
}

} // namespace powerchop
