#include "sim/sim_runner.hh"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <ctime>

#include "common/logging.hh"

namespace powerchop
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/**
 * CPU time consumed by the calling thread. Using CPU rather than wall
 * time for the busy tally means busy/wall reports the parallelism
 * actually realized: on an oversubscribed machine descheduled time
 * doesn't count as "busy", so the speedup estimate stays honest.
 */
double
threadCpuSeconds()
{
#if defined(CLOCK_THREAD_CPUTIME_ID)
    timespec ts;
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
        return static_cast<double>(ts.tv_sec) +
               static_cast<double>(ts.tv_nsec) * 1e-9;
    }
#endif
    return std::chrono::duration<double>(
               Clock::now().time_since_epoch())
        .count();
}

} // namespace

std::string
RunnerReport::toString() const
{
    return csprintf("%zu jobs on %u threads: %.2fs wall (%.2fs busy), "
                    "%.1f MIPS, %.2f jobs/s, %.2fx vs 1 thread",
                    jobs, threads, wallSeconds, busySeconds, mips(),
                    jobsPerSecond(), speedup());
}

std::string
RunnerReport::toJson(const std::string &name) const
{
    return csprintf("{\"bench\":\"%s\",\"jobs\":%zu,\"threads\":%u,"
                    "\"wall_seconds\":%.6f,\"busy_seconds\":%.6f,"
                    "\"instructions\":%llu,\"mips\":%.3f,"
                    "\"jobs_per_second\":%.3f,\"speedup\":%.3f}",
                    name.c_str(), jobs, threads, wallSeconds,
                    busySeconds,
                    static_cast<unsigned long long>(instructions),
                    mips(), jobsPerSecond(), speedup());
}

unsigned
defaultJobCount()
{
    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0)
        hw = 1;

    const char *env = std::getenv("POWERCHOP_JOBS");
    if (!env || !*env)
        return hw;

    errno = 0;
    char *end = nullptr;
    unsigned long v = std::strtoul(env, &end, 10);
    if (end == env || *end != '\0' || errno == ERANGE || v == 0 ||
        v > 1024 || env[0] == '-' || env[0] == '+') {
        warn("ignoring invalid POWERCHOP_JOBS='%s'", env);
        return hw;
    }
    return static_cast<unsigned>(v);
}

SimJobRunner::SimJobRunner(unsigned threads)
    : threads_(threads ? threads : defaultJobCount())
{
    report_.threads = threads_;
    workers_.reserve(threads_);
    for (unsigned t = 0; t < threads_; ++t)
        workers_.emplace_back([this] { workerLoop(); });
}

SimJobRunner::~SimJobRunner()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
SimJobRunner::workerLoop()
{
    std::uint64_t last_batch = 0;
    while (true) {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_.wait(lock, [&] {
            return stopping_ ||
                   (task_ && batchId_ != last_batch &&
                    nextIndex_ < batchCount_);
        });
        if (stopping_)
            return;

        const std::uint64_t batch = batchId_;
        const std::function<void(std::size_t)> &task = *task_;
        double busy = 0;

        while (nextIndex_ < batchCount_) {
            const std::size_t idx = nextIndex_++;
            lock.unlock();

            const double cpu_start = threadCpuSeconds();
            std::exception_ptr err;
            try {
                task(idx);
            } catch (...) {
                err = std::current_exception();
            }
            busy += threadCpuSeconds() - cpu_start;

            lock.lock();
            if (err)
                errors_[idx] = err;
            ++completed_;
            if (completed_ == batchCount_)
                done_.notify_all();
        }

        batchBusySeconds_ += busy;
        last_batch = batch;
    }
}

void
SimJobRunner::runTasks(std::size_t count,
                       const std::function<void(std::size_t)> &task)
{
    if (count == 0)
        return;

    const auto start = Clock::now();
    const InsnCount tally_before = simulatedInstructionTally();

    {
        std::unique_lock<std::mutex> lock(mutex_);
        panicIf(task_ != nullptr,
                "SimJobRunner batches cannot be nested");
        task_ = &task;
        batchCount_ = count;
        nextIndex_ = 0;
        completed_ = 0;
        batchBusySeconds_ = 0;
        errors_.assign(count, nullptr);
        ++batchId_;
    }
    wake_.notify_all();

    std::exception_ptr first_error;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        done_.wait(lock, [&] { return completed_ == batchCount_; });
        task_ = nullptr;

        for (auto &err : errors_) {
            if (err) {
                first_error = err;
                break;
            }
        }
        errors_.clear();

        report_.jobs += count;
        report_.wallSeconds += secondsSince(start);
        report_.busySeconds += batchBusySeconds_;
        report_.instructions +=
            simulatedInstructionTally() - tally_before;
    }

    if (first_error)
        std::rethrow_exception(first_error);
}

std::vector<SimResult>
SimJobRunner::run(const std::vector<SimJob> &jobs)
{
    std::vector<SimResult> results(jobs.size());
    runTasks(jobs.size(), [&](std::size_t i) {
        results[i] =
            simulate(jobs[i].machine, jobs[i].workload, jobs[i].opts);
    });
    return results;
}

} // namespace powerchop
