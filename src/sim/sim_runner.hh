/**
 * @file
 * The parallel simulation job runner.
 *
 * Every evaluation figure re-runs `simulate()` for many independent
 * (machine, workload, mode) points; the points share nothing — the
 * simulator builds all machine state per call and Rng is
 * instance-based — so they are embarrassingly parallel. SimJobRunner
 * owns a fixed pool of worker threads (sized by POWERCHOP_JOBS or the
 * hardware concurrency), accepts batches of SimJob descriptors, and
 * returns results in deterministic submission order regardless of
 * which worker finishes when.
 *
 * The runner also keeps a cumulative throughput report (wall-clock,
 * busy time across workers, instructions simulated) so each bench can
 * print aggregate MIPS, jobs/sec and the effective speedup over a
 * single thread, and persist them as BENCH_runner.json for tracking
 * the perf trajectory across changes.
 */

#ifndef POWERCHOP_SIM_SIM_RUNNER_HH
#define POWERCHOP_SIM_SIM_RUNNER_HH

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bt/translation_cache.hh"
#include "common/stats.hh"
#include "sim/simulator.hh"
#include "telemetry/profiler.hh"

namespace powerchop
{

/** One independent simulation: a design point, an application model
 *  and the run options (mode, budget, instrumentation). */
struct SimJob
{
    MachineConfig machine;
    WorkloadSpec workload;
    SimOptions opts;

    /** Jobs flagged transient are retried (up to the batch's
     *  maxRetries) when they fail with an exception; permanent
     *  failures and timeouts are never retried. */
    bool transient = false;
};

/** Terminal state of one job in a robust batch. */
enum class JobStatus : std::uint8_t
{
    Ok,          ///< Completed; its SimResult is valid.
    Failed,      ///< Threw on every allowed attempt; result is empty.
    TimedOut,    ///< Cancelled by the per-job deadline; result is empty.
    Skipped,     ///< Batch cancelled before the job started (resumable).
    Interrupted, ///< In-flight when the batch was cancelled (resumable).
};

/** @return a display name for a job status. */
const char *jobStatusName(JobStatus s);

/** What happened to one job of a robust batch. */
struct JobOutcome
{
    JobStatus status = JobStatus::Ok;

    /** The final attempt's exception message (Failed/TimedOut). */
    std::string error;

    /** Attempts consumed (> 1 only for retried transient jobs;
     *  0 for Skipped jobs, which never started). */
    unsigned attempts = 1;

    /** Total retry-backoff delay charged before re-attempts.
     *  Deterministic (computed, not measured): it depends only on
     *  the batch's backoff policy, the job index and the attempt
     *  count, never on wall-clock randomness or worker count. */
    double backoffSeconds = 0;
};

/** Error-handling knobs of a robust batch. */
struct RobustRunOptions
{
    /** Per-job wall-clock deadline in seconds; 0 disables. Jobs over
     *  the deadline are cooperatively cancelled (the simulator polls
     *  a flag at block boundaries) and reported TimedOut. */
    double timeoutSeconds = 0;

    /** Extra attempts granted to jobs flagged transient. */
    unsigned maxRetries = 0;

    /** Retry backoff: before re-attempt n (n >= 2) the worker waits
     *  backoffBaseSeconds * 2^(n-2), capped at backoffMaxSeconds,
     *  plus a deterministic jitter in [0, backoffJitterFraction *
     *  delay) seeded from (backoffSeed, job index, attempt) — no
     *  wall-clock randomness, so retried faulted runs report
     *  identical backoff totals for any worker count. A base of 0
     *  disables waiting entirely. @{ */
    double backoffBaseSeconds = 0.001;
    double backoffMaxSeconds = 0.25;
    double backoffJitterFraction = 0.25;
    std::uint64_t backoffSeed = 0;
    /** @} */

    /** Batch-wide cooperative cancellation (signal-aware shutdown):
     *  when the flag rises mid-batch, jobs not yet dispatched report
     *  Skipped immediately, in-flight jobs get drainSeconds to
     *  finish and are then cancelled, reporting Interrupted. Both
     *  states are resumable — a campaign reruns them on --resume. */
    const std::atomic<bool> *cancelFlag = nullptr;

    /** Grace period granted to in-flight jobs after cancelFlag
     *  rises; 0 cancels them at the next block boundary. */
    double drainSeconds = 0;

    /** Invoked on the worker thread as each job reaches a terminal
     *  state (the campaign layer journals results through this).
     *  Must be thread-safe; a throwing callback fails the batch. */
    std::function<void(std::size_t, const SimResult &,
                       const JobOutcome &)>
        onComplete;

    /** Invoked on the worker thread just before a job's first attempt
     *  begins executing (never for Skipped jobs). The statusboard
     *  tracks in-flight keys through this. Must be thread-safe. */
    std::function<void(std::size_t)> onStart;
};

/**
 * The deterministic backoff delay charged before attempt `attempt`
 * of job `jobIndex` (attempt 1 is the initial try: delay 0).
 * Exposed for tests and report auditing.
 */
double retryBackoffSeconds(const RobustRunOptions &opts,
                           std::size_t jobIndex, unsigned attempt);

/** Results of a robust batch: one result + one outcome per job, in
 *  submission order. Failed/timed-out jobs leave a default
 *  SimResult; check the outcome before using a result. */
struct RobustBatchResult
{
    std::vector<SimResult> results;
    std::vector<JobOutcome> outcomes;

    std::size_t okCount() const;
    std::size_t failedCount() const;
    std::size_t timedOutCount() const;
    std::size_t skippedCount() const;
    std::size_t interruptedCount() const;

    /** Jobs in a resumable (not permanently failed) non-ok state. */
    std::size_t resumableCount() const
    {
        return skippedCount() + interruptedCount();
    }

    /** Jobs that completed but tripped the QoS watchdog into safe
     *  mode at least once (bounded, observable degradation). */
    std::size_t degradedCount() const;

    /** @return true when every job completed. */
    bool allOk() const { return okCount() == outcomes.size(); }

    /** One-line "N ok, N failed, N timed out, N degraded" summary. */
    std::string summary() const;
};

/** Cumulative throughput accounting for a runner's batches. */
struct RunnerReport
{
    /** Jobs (or generic tasks) completed. */
    std::size_t jobs = 0;

    /** Worker threads in the pool. */
    unsigned threads = 1;

    /** Wall-clock seconds spent inside run()/runTasks() batches. */
    double wallSeconds = 0;

    /** Summed per-job CPU seconds across all workers — what a
     *  single-threaded run of the same batches would take on an idle
     *  machine. Measured as thread CPU time, not wall time, so
     *  oversubscription doesn't inflate it. */
    double busySeconds = 0;

    /** Guest instructions simulated during the batches. */
    InsnCount instructions = 0;

    /** Robust-batch accounting (runRobust() only). All zero for
     *  plain run()/runTasks() batches; toString()/toJson() render
     *  them only when a robust batch actually ran, so reports from
     *  fault-free benches stay byte-identical. @{ */
    std::size_t okJobs = 0;
    std::size_t failedJobs = 0;
    std::size_t timedOutJobs = 0;
    std::size_t degradedJobs = 0;
    std::size_t retries = 0;

    /** Batch-cancellation tallies (resumable jobs) and the summed
     *  deterministic retry-backoff delay; rendered only when
     *  non-zero, keeping pre-existing reports byte-identical. */
    std::size_t skippedJobs = 0;
    std::size_t interruptedJobs = 0;
    double backoffSeconds = 0;
    /** @} */

    /** Shard-supervision tallies (sharded campaigns only): worker
     *  processes that crashed or hung, restarts performed, straggler
     *  re-dispatches. Rendered only when non-zero, keeping reports
     *  from in-process runs byte-identical. @{ */
    std::size_t workerCrashes = 0;
    std::size_t workerRestarts = 0;
    std::size_t redispatches = 0;
    /** @} */

    /** Translation-metadata cache traffic (bt/translation_cache.hh)
     *  across the runner's batches: misses count per-workload
     *  derivations performed, hits count derivations shared. Both
     *  deterministic for a given job list at any worker count;
     *  rendered only when the cache saw traffic, keeping reports
     *  from cache-less drivers byte-identical. @{ */
    std::uint64_t translationCacheHits = 0;
    std::uint64_t translationCacheMisses = 0;
    /** @} */

    /** Wall-clock stage breakdown (translate / simulate / retry),
     *  populated only when POWERCHOP_PROFILE enables the runner's
     *  stage profiler; toString()/toJson() render it only when
     *  non-empty, keeping unprofiled reports byte-identical. */
    std::vector<telemetry::StageTime> stages;

    /** Per-task wall latency in nanoseconds (every run()/runTasks()/
     *  runRobust() task, all attempts included). Host timing like
     *  wallSeconds, never simulation state; toString()/toJson()
     *  render its quantiles only when samples exist, so reports from
     *  drivers that never ran a batch stay byte-identical. */
    stats::Log2Histogram taskLatencyNs;

    /** Realized speedup over serial execution of the same jobs
     *  (equivalently, the average number of cores kept busy). */
    double speedup() const
    {
        return wallSeconds > 0 ? busySeconds / wallSeconds : 0.0;
    }

    double jobsPerSecond() const
    {
        return wallSeconds > 0 ? jobs / wallSeconds : 0.0;
    }

    /** Aggregate millions of simulated instructions per second. */
    double mips() const
    {
        return wallSeconds > 0 ? instructions / wallSeconds / 1e6 : 0.0;
    }

    /** One-line human-readable summary. */
    std::string toString() const;

    /** JSON object (for BENCH_runner.json); `name` labels the bench
     *  or experiment the report belongs to. */
    std::string toJson(const std::string &name) const;
};

/**
 * Worker-thread count for parallel evaluation runs.
 *
 * @return POWERCHOP_JOBS from the environment if set and valid, else
 *         std::thread::hardware_concurrency() (at least 1).
 */
unsigned defaultJobCount();

/**
 * Fixed-size worker pool executing batches of simulation jobs.
 *
 * Threads are created once at construction and persist across
 * batches. run() and runTasks() are synchronous: they return when
 * every job of the batch has completed, with results ordered by
 * submission index. The pool itself must be driven from one thread at
 * a time (benches and examples are single-threaded drivers); the jobs
 * it executes run concurrently.
 *
 * If a job throws, the batch still runs to completion and the
 * lowest-index exception is rethrown to the caller afterwards.
 */
class SimJobRunner
{
  public:
    /** @param threads Pool size; 0 means defaultJobCount(). */
    explicit SimJobRunner(unsigned threads = 0);
    ~SimJobRunner();

    SimJobRunner(const SimJobRunner &) = delete;
    SimJobRunner &operator=(const SimJobRunner &) = delete;

    /** @return the worker-pool size. */
    unsigned threads() const { return threads_; }

    /**
     * Execute a batch of simulation jobs concurrently.
     *
     * @param jobs Job descriptors.
     * @return one SimResult per job, in submission order.
     */
    std::vector<SimResult> run(const std::vector<SimJob> &jobs);

    /**
     * Execute a batch with per-job error isolation.
     *
     * Unlike run(), a throwing job does not poison the batch: its
     * outcome records Failed with the exception message and every
     * other job still completes. With opts.timeoutSeconds > 0 each
     * job also gets a wall-clock deadline enforced by cooperative
     * cancellation (SimOptions::cancelFlag), reported as TimedOut.
     * Jobs flagged transient are retried up to opts.maxRetries extra
     * times after an exception (never after a timeout).
     *
     * @param jobs Job descriptors.
     * @param opts Timeout / retry policy.
     * @return one result + one outcome per job, in submission order.
     */
    RobustBatchResult runRobust(const std::vector<SimJob> &jobs,
                                const RobustRunOptions &opts = {});

    /**
     * Execute `count` generic index-addressed tasks concurrently.
     * task(i) is invoked exactly once for each i in [0, count); any
     * result ordering is the caller's responsibility (index into a
     * pre-sized vector).
     */
    void runTasks(std::size_t count,
                  const std::function<void(std::size_t)> &task);

    /** Cumulative report over all batches run so far. */
    const RunnerReport &report() const { return report_; }

    /** The runner's shared translation-metadata cache, wired into
     *  every job that didn't bring its own (SimOptions::
     *  translationCache). Exposed so drivers can clear it between
     *  unrelated experiment sets. */
    TranslationMetadataCache &translationCache() { return transCache_; }

    /** The stage profiler snapshotted into the runner report — the
     *  process-global profiler (enabled by POWERCHOP_PROFILE), which
     *  simulate() records into unless a job attached its own. */
    telemetry::StageProfiler &profiler() { return profiler_; }

  private:
    void workerLoop();

    unsigned threads_;
    std::vector<std::thread> workers_;

    // Current batch, guarded by mutex_.
    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    const std::function<void(std::size_t)> *task_ = nullptr;
    std::size_t batchCount_ = 0;
    std::size_t nextIndex_ = 0;
    std::size_t completed_ = 0;
    std::uint64_t batchId_ = 0;
    double batchBusySeconds_ = 0;
    std::vector<std::exception_ptr> errors_;
    bool stopping_ = false;

    RunnerReport report_;
    TranslationMetadataCache transCache_;
    telemetry::StageProfiler &profiler_ =
        telemetry::StageProfiler::global();
};

} // namespace powerchop

#endif // POWERCHOP_SIM_SIM_RUNNER_HH
