#include "sim/simulator.hh"

#include <atomic>
#include <limits>
#include <optional>

#include "bt/translation_cache.hh"
#include "common/logging.hh"
#include "common/malloc_tuning.hh"
#include "core/drowsy_mlc.hh"
#include "core/perf_monitor.hh"
#include "telemetry/metrics.hh"
#include "telemetry/profiler.hh"
#include "telemetry/trace.hh"
#include "verify/invariant_auditor.hh"
#include "workload/spec_io.hh"

namespace powerchop
{

namespace
{

/** Instructions simulated process-wide (all threads). */
std::atomic<std::uint64_t> instructionTally{0};

} // namespace

InsnCount
simulatedInstructionTally()
{
    return instructionTally.load(std::memory_order_relaxed);
}

SimResult
simulate(const MachineConfig &machine, const WorkloadSpec &workload,
         const SimOptions &opts)
{
    // First call per process: stop the allocator from returning the
    // per-job tables to the kernel between jobs (common/malloc_tuning
    // .hh); purely a host-side tweak, results are unaffected.
    tuneAllocatorForSimulation();

    machine.validate();
    if (opts.maxInstructions == 0)
        fatal("simulate: zero instruction budget");

    // --- Build the machine -------------------------------------------------
    telemetry::StageProfiler *profiler = opts.profiler;
    if (!profiler && telemetry::StageProfiler::global().enabled())
        profiler = &telemetry::StageProfiler::global();
    telemetry::ScopedStageTimer translate_timer(profiler, "translate");
    WorkloadGenerator gen(workload);
    BtParams bt_params = machine.bt;
    BtSystem bt(gen.program(), bt_params);

    // Shared translation metadata: jobs of the same workload in a
    // batch derive the trace metadata once and share it. Purely a
    // build-cost optimization — the translator produces bit-identical
    // translations either way.
    std::shared_ptr<const TranslationMetadataSet> trans_meta;
    if (opts.translationCache) {
        trans_meta = opts.translationCache->acquire(
            workloadContentKey(workload), gen.program(),
            bt_params.translator);
        bt.setTranslationMetadata(trans_meta.get());
    }
    BpuComplex bpu(machine.bpu);
    MemHierarchy mem(machine.l1, machine.mlc);
    Vpu vpu(machine.vpu);
    GatingController controller(vpu, bpu, mem, machine.penalties);
    PerfMonitor monitor(bpu, mem);
    PowerChopUnit pchop(machine.powerChop, controller, bt.nucleus(),
                        monitor);

    // Per-run fault source: seeded from the config, private to this
    // call, so fault sequences are deterministic on any worker count.
    FaultInjector injector(machine.faults);
    if (injector.active()) {
        controller.setFaultInjector(&injector);
        pchop.setFaultInjector(&injector);
    }

    TimeoutParams to_params = machine.timeout;
    if (opts.timeoutCycles > 0)
        to_params.timeoutCycles = opts.timeoutCycles;
    TimeoutGater timeout(vpu, to_params);
    DrowsyMlc drowsy(mem, machine.drowsy);

    CorePowerModel power_model(machine.power);

    const CoreParams &core = machine.core;
    const double slot = 1.0 / core.issueWidth;

    const bool use_powerchop = opts.mode == SimMode::PowerChop;
    const bool use_timeout = opts.mode == SimMode::TimeoutVpu;
    const bool use_drowsy = opts.mode == SimMode::DrowsyMlc;

    if (use_powerchop) {
        pchop.setManagedUnits(opts.manageVpu, opts.manageBpu,
                              opts.manageMlc);
        if (opts.windowObserver)
            pchop.setWindowObserver(opts.windowObserver);
    }

    // --- Telemetry ---------------------------------------------------------
    telemetry::TraceRecorder *trace = opts.trace;
    if (trace) {
        trace->beginRun(workload.name, machine.name,
                        simModeName(opts.mode), machine.telemetry);
        controller.setTrace(trace);
        pchop.setTrace(trace);
        if (injector.active())
            injector.setTrace(trace);
    }

    // The registry's probes reference the collector below; detach
    // them whenever this frame unwinds (including cancellation) so
    // the registry never outlives its probed objects.
    struct ProbeDetachGuard
    {
        telemetry::MetricsRegistry *registry = nullptr;
        ~ProbeDetachGuard()
        {
            if (registry)
                registry->detachProbes();
        }
    } probe_guard;

    std::optional<telemetry::WindowMetricsCollector> collector;
    if (opts.metrics && use_powerchop) {
        collector.emplace(*opts.metrics, &power_model,
                          core.frequencyHz, machine.mlc.assoc);
        pchop.setMetricsCollector(&*collector);
        probe_guard.registry = opts.metrics;
    }

    SimResult res;
    res.workload = workload.name;
    res.machine = machine.name;
    res.mode = opts.mode;

    Cycles cycles = 0;

    // Residency accounting: accrue() charges elapsed cycles to the
    // policy in effect when they elapsed; transition stalls are
    // charged to the *new* policy (last_accrue is left at the
    // pre-stall time), so per-unit residencies always sum to the
    // run's total cycles — the conservation law the invariant
    // auditor checks.
    Cycles last_accrue = 0;

    if (opts.mode == SimMode::MinPower) {
        // Everything to its lowest-power state for the entire run.
        cycles += controller.applyPolicy(GatingPolicy::minPower());
    } else if (opts.mode == SimMode::StaticPolicy) {
        cycles += controller.applyPolicy(opts.staticPolicy);
    }

    // --- Activity counters --------------------------------------------------
    ActivityRecord act;
    std::uint64_t branch_lookups = 0;
    std::uint64_t branch_mispredicts = 0;
    std::uint64_t bpu_large_lookups = 0;
    std::uint64_t mlc_accesses = 0;

    // Translation attribution: instructions since the last translated
    // head, credited to that translation at the next head.
    TranslationId last_trans = invalidTranslationId;
    std::uint64_t insns_since_head = 0;

    // Multi-block trace execution: while the dynamic block sequence
    // matches the current translation's trace, execution stays inside
    // it — no region-cache lookup and no new translation-head event
    // until the trace exits (side exit or completion).
    const Translation *cur_trace = nullptr;
    std::size_t trace_idx = 0;

    // Stream detector for the MLP/prefetch model: misses adjacent to
    // the previous miss are largely hidden.
    Addr last_miss_line = ~static_cast<Addr>(0);
    const Addr line_shift = 6;

    bool interpreting = true;

    // The per-interval sampler as a countdown: one predictable
    // decrement-and-test per instruction, and the std::function is
    // only touched when a sample actually fires. "Disabled" is a
    // countdown that cannot reach zero within any realistic budget.
    const InsnCount sample_interval = opts.sampleInterval;
    InsnCount until_sample = sample_interval
        ? sample_interval
        : std::numeric_limits<InsnCount>::max();

    // Cached destination for the per-policy MLC access counters,
    // refreshed only when the controller's MLC policy epoch moves.
    double *mlc_counter = &act.mlcAccessesFull;
    std::uint64_t mlc_epoch = std::numeric_limits<std::uint64_t>::max();

    auto accrue = [&]() {
        if (cycles > last_accrue) {
            controller.accrue(cycles - last_accrue);
            last_accrue = cycles;
        }
    };

    translate_timer.stop();

    // Decode every block into its structure-of-arrays slot stream
    // (workload/block_batch.hh), attributed to its own stage.
    {
        telemetry::ScopedStageTimer decode_timer(profiler, "decode");
        gen.prepareBatches();
    }

    telemetry::ScopedStageTimer simulate_timer(profiler, "simulate");

    // The loop runs one basic block per iteration: the head work
    // (trace matching, region entry, baseline gater ticks) happens
    // once per block, then the block body executes as a burst over
    // its pre-decoded slot stream with no per-instruction dispatch.
    // The generator is at a block head whenever control reaches the
    // top of this loop.
    const InsnCount max_insns = opts.maxInstructions;
    const std::atomic<bool> *cancel = opts.cancelFlag;

    // In-burst cancellation poll period: block heads poll the flag
    // anyway, this bounds the latency inside giant blocks.
    constexpr InsnCount cancel_check_interval = 64 * 1024;
    InsnCount until_cancel = cancel_check_interval;
    auto check_cancel = [&](InsnCount done) {
        if (cancel && cancel->load(std::memory_order_relaxed)) {
            throw SimCancelledError(csprintf(
                "simulate(%s on %s): cancelled after %llu of %llu "
                "instructions",
                workload.name.c_str(), machine.name.c_str(),
                static_cast<unsigned long long>(done),
                static_cast<unsigned long long>(max_insns)));
        }
    };

    InsnCount n = 0;
    while (n < max_insns) {
        check_cancel(n);
        {
            const BlockId blk = gen.currentBlock();

            if (cur_trace && trace_idx < cur_trace->blocks.size() &&
                cur_trace->blocks[trace_idx] == blk) {
                // Still on the translated trace's expected path.
                ++trace_idx;
                interpreting = false;
            } else {
                cur_trace = nullptr;
                RegionEntry entry = bt.enterRegion(blk);
                cycles += entry.extraCycles;
                interpreting = (entry.mode == ExecMode::Interpreted);

                if (entry.mode == ExecMode::Translated) {
                    // Credit the instructions executed since the
                    // previous head to that translation, then roll
                    // the HTB.
                    if (use_powerchop &&
                        last_trans != invalidTranslationId) {
                        accrue();
                        if (trace)
                            trace->setNow(n, cycles);
                        cycles += pchop.onTranslationHead(
                            last_trans, insns_since_head, cycles);
                    }
                    last_trans = entry.translation->id;
                    insns_since_head = 0;
                    cur_trace = entry.translation;
                    trace_idx = 1;
                } else {
                    last_trans = invalidTranslationId;
                    insns_since_head = 0;
                }
            }

            if (use_timeout) {
                accrue();
                cycles += timeout.checkIdle(cycles);
            }
            if (use_drowsy)
                drowsy.tick(cycles);
        }

        // Execution mode is fixed for the whole block.
        const double insn_cycles =
            interpreting ? core.interpreterCpi : slot;

        // The burst executes the pre-decoded slot stream directly
        // (workload/block_batch.hh). Program order is preserved slot
        // by slot — every RNG draw, FP cycle add, cache access and
        // predictor update happens in exactly the order the pull-model
        // generator produced — so results stay bit-identical to
        // referenceSimulate().
        const DecodedBlock &db = gen.decodedBlock(gen.currentBlock());
        const InsnCount remaining_in_block = gen.blockInsnsRemaining();
        InsnCount burst = remaining_in_block;
        if (burst > max_insns - n)
            burst = max_insns - n;
        insns_since_head += burst;
        const bool full_block = (burst == remaining_in_block);

        // Offset into the block when resuming mid-block (only after a
        // clamped burst, which ends the run; kept for correctness).
        InsnCount skip = db.numInsns - remaining_in_block;

        InsnCount left = burst;
        std::uint64_t simd_committed = 0;

        const DecodedSlot *s = db.slots;
        const DecodedSlot *const s_end = db.slots + db.numSlots;
        for (; s != s_end && left != 0; ++s) {
            if (s->kind == SlotKind::AluRun) {
                // Fast path: a run of issue-slot-only instructions.
                // The cycle adds stay serial per instruction (FP
                // accumulation order is part of the bit-exact spec);
                // the sampler and cancellation countdowns split the
                // run only when they actually expire inside it.
                InsnCount m = s->count;
                if (skip != 0) {
                    if (skip >= m) {
                        skip -= m;
                        continue;
                    }
                    m -= skip;
                    skip = 0;
                }
                if (m > left)
                    m = left;
                left -= m;
                while (m != 0) {
                    InsnCount chunk = m;
                    if (chunk > until_sample)
                        chunk = until_sample;
                    if (chunk > until_cancel)
                        chunk = until_cancel;
                    for (InsnCount k = 0; k != chunk; ++k)
                        cycles += insn_cycles;
                    n += chunk;
                    m -= chunk;
                    until_sample -= chunk;
                    until_cancel -= chunk;
                    if (until_sample == 0) {
                        opts.sampler(n, cycles);
                        until_sample = sample_interval;
                    }
                    if (until_cancel == 0) {
                        until_cancel = cancel_check_interval;
                        check_cancel(n);
                    }
                }
                continue;
            }

            if (skip != 0) {
                --skip;
                continue;
            }

            cycles += insn_cycles;

            switch (s->kind) {
              case SlotKind::Simd: {
                if (use_timeout)
                    cycles += timeout.onSimdUse(cycles);
                double slots = vpu.executeSimd();
                if (slots > 1.0) {
                    // Scalar emulation: the extra scalar ops occupy
                    // issue slots (and energy) in the rest of the
                    // core.
                    cycles += (slots - 1.0) * slot;
                    act.instructions += slots - 1.0;
                }
                ++simd_committed;
                break;
              }
              case SlotKind::Load:
              case SlotKind::Store: {
                const bool is_store = (s->kind == SlotKind::Store);
                const Addr eff_addr = gen.batchMemAddr();
                MemAccessResult r = mem.access(eff_addr, is_store);
                double scale = is_store ? core.storeStallFraction : 1.0;
                if (r.level == MemLevel::Mlc) {
                    cycles += core.mlcHitPenalty * scale;
                    if (r.mlcWokeDrowsy)
                        cycles +=
                            machine.drowsy.wakePenaltyCycles * scale;
                } else if (r.level == MemLevel::Memory) {
                    Addr line = eff_addr >> line_shift;
                    Addr delta = line > last_miss_line
                        ? line - last_miss_line : last_miss_line - line;
                    bool streamed = delta <= 2;
                    last_miss_line = line;
                    cycles += core.memoryPenalty * scale *
                              (streamed ? core.streamMissFactor : 1.0);
                }
                if (r.level != MemLevel::L1) {
                    ++mlc_accesses;
                    if (mlc_epoch != controller.mlcPolicyEpoch()) {
                        mlc_epoch = controller.mlcPolicyEpoch();
                        switch (controller.current().mlc) {
                          case MlcPolicy::AllWays:
                            mlc_counter = &act.mlcAccessesFull;
                            break;
                          case MlcPolicy::HalfWays:
                            mlc_counter = &act.mlcAccessesHalf;
                            break;
                          case MlcPolicy::QuarterWays:
                            mlc_counter = &act.mlcAccessesQuarter;
                            break;
                          case MlcPolicy::OneWay:
                            mlc_counter = &act.mlcAccessesOne;
                            break;
                        }
                    }
                    *mlc_counter += 1;
                }
                break;
              }
              case SlotKind::Branch: {
                // Internal conditional branch: outcome from its
                // process, target a short forward skip.
                const bool taken = gen.batchBranchOutcome(*s);
                BpuOutcome o = bpu.predict(s->pc, taken,
                                           s->pc + 2 * guestInsnBytes);
                ++branch_lookups;
                if (bpu.largeOn())
                    ++bpu_large_lookups;
                if (o.directionMispredict) {
                    cycles += core.mispredictPenalty;
                    ++branch_mispredicts;
                } else if (o.targetMiss) {
                    cycles += core.btbMissPenalty;
                }
                break;
              }
              case SlotKind::AluRun:
                break;  // handled above
            }

            ++n;
            --left;
            if (--until_sample == 0) {
                opts.sampler(n, cycles);
                until_sample = sample_interval;
            }
            if (--until_cancel == 0) {
                until_cancel = cancel_check_interval;
                check_cancel(n);
            }
        }

        if (left != 0) {
            // The terminator — reached exactly when the burst covers
            // the rest of the block. Region-chaining jump: direct-
            // chained in the region cache; only a changed target
            // costs a fetch bubble. batchFinishBlock() draws the
            // next-block pick after the body's address draws, as the
            // pull model does, and rolls the schedule.
            cycles += insn_cycles;
            const Addr target = gen.batchFinishBlock();
            BpuOutcome o = bpu.predictIndirect(db.termPc, target);
            if (o.targetMiss)
                cycles += core.btbMissPenalty;
            ++n;
            --left;
            if (--until_sample == 0) {
                opts.sampler(n, cycles);
                until_sample = sample_interval;
            }
            if (--until_cancel == 0) {
                until_cancel = cancel_check_interval;
                check_cancel(n);
            }
        } else if (!full_block) {
            gen.batchConsumePartial(burst);
        }

        // Window counters are only read at block heads, so the whole
        // burst commits in one bulk update.
        monitor.onCommitBulk(burst, simd_committed);
    }

    simulate_timer.stop();

    // Flush the trailing attribution: instructions executed after the
    // final translation head would otherwise never be credited to it,
    // silently losing the last HTB window/phase of every run.
    if (use_powerchop && last_trans != invalidTranslationId &&
        insns_since_head > 0) {
        accrue();
        if (trace)
            trace->setNow(n, cycles);
        cycles +=
            pchop.onTranslationHead(last_trans, insns_since_head, cycles);
        insns_since_head = 0;
    }

    accrue();
    if (use_timeout)
        timeout.finish(cycles);
    if (use_drowsy)
        drowsy.finish(cycles);

    if (trace) {
        trace->setNow(n, cycles);
        trace->endRun(n, cycles);
    }

    // --- Collect results -----------------------------------------------------
    // All divisions below are guarded: a short run keeps every rate
    // finite, and a default/failed result stays all-zero instead of
    // propagating NaNs into downstream tables.
    auto per = [](double num, double den) {
        return den > 0 ? num / den : 0.0;
    };

    res.instructions = n;
    res.cycles = cycles;
    res.seconds = per(cycles, core.frequencyHz);

    res.gating = controller.stats();
    if (use_timeout) {
        res.gating.vpuSwitches = timeout.switches();
        res.gating.vpuGatedCycles = timeout.gatedCycles();
    }

    res.vpuGatedFraction = per(res.gating.vpuGatedCycles, cycles);
    res.bpuGatedFraction = per(res.gating.bpuGatedCycles, cycles);
    res.mlcHalfFraction = per(res.gating.mlcHalfCycles, cycles);
    res.mlcQuarterFraction = per(res.gating.mlcQuarterCycles, cycles);
    res.mlcOneWayFraction = per(res.gating.mlcOneWayCycles, cycles);

    const double mcycles = cycles / 1e6;
    res.vpuSwitchesPerMcycle = per(res.gating.vpuSwitches, mcycles);
    res.bpuSwitchesPerMcycle = per(res.gating.bpuSwitches, mcycles);
    res.mlcSwitchesPerMcycle = per(res.gating.mlcSwitches, mcycles);

    res.pvtLookups = pchop.pvt().lookups();
    res.pvtHits = pchop.pvt().hits();

    // Resilience observability: what the fault injector actually did
    // and how often the QoS watchdog had to roll back. All zero (and
    // absent from renderings) in a fault-free run.
    res.faults = injector.stats();
    const QosStats &qos = pchop.qos().stats();
    res.safeModeActivations = qos.safeModeActivations;
    res.safeModeWindowFraction = qos.windowsObserved
        ? static_cast<double>(qos.safeModeWindows) /
              qos.windowsObserved
        : 0.0;
    res.translationsExecuted = pchop.translationsSeen();
    res.pvtMissPerTranslation = res.translationsExecuted
        ? static_cast<double>(pchop.pvt().misses()) /
              res.translationsExecuted
        : 0.0;

    res.l1HitRate = mem.l1().hitRate();
    res.mlcHitRate = mem.mlc().hitRate();
    res.mlcAccesses = mlc_accesses;
    res.mlcAccessesPerKilo =
        per(1000.0 * mlc_accesses, res.instructions);

    res.branchLookups = branch_lookups;
    res.branchMispredicts = branch_mispredicts;
    res.branchMispredictRate =
        per(branch_mispredicts, branch_lookups);
    res.branchesPerKilo =
        per(1000.0 * branch_lookups, res.instructions);

    res.simdOps = vpu.nativeOps();
    res.simdEmulated = vpu.emulatedOps();

    if (use_drowsy) {
        res.mlcDrowsyFraction = drowsy.avgDrowsyFraction();
        res.drowsyWakes = mem.mlc().drowsyWakes();
        act.mlcDrowsyFraction = res.mlcDrowsyFraction;
        act.drowsyLeakageFraction =
            machine.drowsy.drowsyLeakageFraction;
    }

    // --- Energy --------------------------------------------------------------
    act.cycles = cycles;
    act.instructions += res.instructions;
    act.vpuOps = static_cast<double>(vpu.nativeOps());
    act.bpuLargeLookups = static_cast<double>(bpu_large_lookups);
    act.vpuGatedCycles = res.gating.vpuGatedCycles;
    act.bpuGatedCycles = res.gating.bpuGatedCycles;
    act.mlcFullCycles = res.gating.mlcFullCycles;
    act.mlcHalfCycles = res.gating.mlcHalfCycles;
    act.mlcQuarterCycles = res.gating.mlcQuarterCycles;
    act.mlcOneWayCycles = res.gating.mlcOneWayCycles;
    if (use_timeout) {
        act.vpuGatedCycles = timeout.gatedCycles();
        act.vpuSwitches = static_cast<double>(timeout.switches());
        act.mlcFullCycles = cycles;
    } else {
        act.vpuSwitches = static_cast<double>(res.gating.vpuSwitches);
    }
    act.bpuSwitches = static_cast<double>(res.gating.bpuSwitches);
    act.mlcSwitches = static_cast<double>(res.gating.mlcSwitches);

    res.slotOps = act.instructions;
    res.activity = act;
    res.energy = accumulateEnergy(power_model, act, machine.mlc.assoc);

    if (opts.audit) {
        verify::InvariantAuditor auditor;
        verify::AuditReport audit = auditor.audit(res, machine);
        if (trace) {
            for (const auto &v : auditor.auditTrace(*trace).violations)
                audit.violations.push_back(v);
        }
        if (!audit.ok()) {
            throw verify::InvariantViolationError(csprintf(
                "simulate(%s on %s, %s): %s", workload.name.c_str(),
                machine.name.c_str(), simModeName(opts.mode),
                audit.toString().c_str()));
        }
    }

    instructionTally.fetch_add(res.instructions,
                               std::memory_order_relaxed);
    return res;
}

} // namespace powerchop
