/**
 * @file
 * The simulator: executes a synthetic workload on a machine design
 * point under one of the operating modes and produces a SimResult.
 *
 * The loop follows the hybrid-processor execution model: the workload
 * generator supplies the guest dynamic instruction stream; the BT
 * layer decides at each region head whether the region runs from the
 * region cache or through the interpreter; the timing model charges
 * issue slots plus penalties from the BPU, MLC and VPU models; and
 * PowerChop (or a baseline gater) manages the units' power states.
 */

#ifndef POWERCHOP_SIM_SIMULATOR_HH
#define POWERCHOP_SIM_SIMULATOR_HH

#include <functional>
#include <memory>

#include "sim/machine_config.hh"
#include "sim/sim_result.hh"
#include "workload/generator.hh"

namespace powerchop
{

/** Per-run options. */
struct SimOptions
{
    SimMode mode = SimMode::FullPower;

    /** Instructions to simulate. */
    InsnCount maxInstructions = 10'000'000;

    /** Restrict PowerChop to a subset of units (Section V-C). @{ */
    bool manageVpu = true;
    bool manageBpu = true;
    bool manageMlc = true;
    /** @} */

    /** Override the timeout period (TimeoutVpu mode). 0 = config. */
    double timeoutCycles = 0;

    /** The fixed policy applied in StaticPolicy mode. */
    GatingPolicy staticPolicy = GatingPolicy::fullPower();

    /** Optional per-window observer (receives every HTB window
     *  report; PowerChop mode only). */
    std::function<void(const WindowReport &)> windowObserver;

    /**
     * Optional per-interval sampler for time-series figures: called
     * every sampleInterval instructions with (insns so far, cycles so
     * far). 0 disables.
     */
    InsnCount sampleInterval = 0;
    std::function<void(InsnCount, Cycles)> sampler;
};

/**
 * Run one simulation.
 *
 * @param machine  The design point.
 * @param workload The application model.
 * @param opts     Mode and instrumentation options.
 * @return the measured result.
 */
SimResult simulate(const MachineConfig &machine,
                   const WorkloadSpec &workload, const SimOptions &opts);

/**
 * Process-wide count of guest instructions simulated by completed
 * simulate() calls, across all threads. The parallel job runner
 * snapshots it around a batch to compute aggregate MIPS.
 */
InsnCount simulatedInstructionTally();

} // namespace powerchop

#endif // POWERCHOP_SIM_SIMULATOR_HH
