/**
 * @file
 * The simulator: executes a synthetic workload on a machine design
 * point under one of the operating modes and produces a SimResult.
 *
 * The loop follows the hybrid-processor execution model: the workload
 * generator supplies the guest dynamic instruction stream; the BT
 * layer decides at each region head whether the region runs from the
 * region cache or through the interpreter; the timing model charges
 * issue slots plus penalties from the BPU, MLC and VPU models; and
 * PowerChop (or a baseline gater) manages the units' power states.
 */

#ifndef POWERCHOP_SIM_SIMULATOR_HH
#define POWERCHOP_SIM_SIMULATOR_HH

#include <atomic>
#include <functional>
#include <memory>
#include <stdexcept>

#include "sim/machine_config.hh"
#include "sim/sim_result.hh"
#include "workload/generator.hh"

namespace powerchop
{

namespace telemetry
{
class TraceRecorder;
class MetricsRegistry;
class StageProfiler;
} // namespace telemetry

class TranslationMetadataCache;

/**
 * Thrown by simulate() when its cancel flag is raised mid-run (the
 * robust job runner uses this for per-job wall-clock timeouts).
 * Deliberately not a FatalError/PanicError: cancellation is neither a
 * user mistake nor a simulator bug.
 */
class SimCancelledError : public std::runtime_error
{
  public:
    explicit SimCancelledError(const std::string &msg)
        : std::runtime_error(msg)
    {
    }
};

/** Per-run options. */
struct SimOptions
{
    SimMode mode = SimMode::FullPower;

    /** Instructions to simulate. */
    InsnCount maxInstructions = 10'000'000;

    /** Restrict PowerChop to a subset of units (Section V-C). @{ */
    bool manageVpu = true;
    bool manageBpu = true;
    bool manageMlc = true;
    /** @} */

    /** Override the timeout period (TimeoutVpu mode). 0 = config. */
    double timeoutCycles = 0;

    /** The fixed policy applied in StaticPolicy mode. */
    GatingPolicy staticPolicy = GatingPolicy::fullPower();

    /** Optional per-window observer (receives every HTB window
     *  report; PowerChop mode only). */
    std::function<void(const WindowReport &)> windowObserver;

    /**
     * Optional per-interval sampler for time-series figures: called
     * every sampleInterval instructions with (insns so far, cycles so
     * far). 0 disables.
     */
    InsnCount sampleInterval = 0;
    std::function<void(InsnCount, Cycles)> sampler;

    /**
     * Optional cooperative-cancellation flag, polled at every basic-
     * block head and additionally every ~64K instructions inside a
     * burst (so giant blocks cannot defer cancellation indefinitely).
     * When another thread sets it, simulate() stops at the next poll
     * by throwing SimCancelledError. The flag must outlive the call.
     */
    const std::atomic<bool> *cancelFlag = nullptr;

    /**
     * Optional shared cache of per-workload translation metadata
     * (bt/translation_cache.hh). When set, simulate() acquires the
     * workload's pre-derived metadata set (building it on first use)
     * and routes it to the translator, so jobs of the same workload
     * within a batch share one derivation. Results are bit-identical
     * with or without the cache, at any worker count. The cache must
     * outlive the call; SimJobRunner wires its own cache in here when
     * the job didn't bring one.
     */
    TranslationMetadataCache *translationCache = nullptr;

    /**
     * Optional trace recorder (see telemetry/trace.hh). When set,
     * gate-state transitions, window edges, CDE decisions, QoS
     * activity and injected faults are recorded as typed events under
     * MachineConfig::telemetry's switches. Recording never feeds back
     * into simulation, so results are bit-identical either way. One
     * recorder per call; must outlive the call.
     */
    telemetry::TraceRecorder *trace = nullptr;

    /**
     * Optional metrics registry (see telemetry/metrics.hh): PowerChop
     * mode snapshots the canonical per-window series into it. The
     * registry must be empty (fresh) and outlive the call; its probe
     * callbacks are detached before simulate() returns.
     */
    telemetry::MetricsRegistry *metrics = nullptr;

    /**
     * Optional wall-clock stage profiler; simulate() records its
     * construction ("translate") and execution ("simulate") stages.
     * Shared across jobs and internally locked.
     */
    telemetry::StageProfiler *profiler = nullptr;

    /**
     * Run the invariant auditor (verify/invariant_auditor.hh) on the
     * finished result before returning; a violated conservation law
     * throws verify::InvariantViolationError naming every broken
     * invariant. The job runner turns this on for every job when
     * POWERCHOP_AUDIT is set.
     */
    bool audit = false;
};

/**
 * Run one simulation.
 *
 * @param machine  The design point.
 * @param workload The application model.
 * @param opts     Mode and instrumentation options.
 * @return the measured result.
 */
SimResult simulate(const MachineConfig &machine,
                   const WorkloadSpec &workload, const SimOptions &opts);

/**
 * Process-wide count of guest instructions simulated by completed
 * simulate() calls, across all threads. The parallel job runner
 * snapshots it around a batch to compute aggregate MIPS.
 */
InsnCount simulatedInstructionTally();

} // namespace powerchop

#endif // POWERCHOP_SIM_SIMULATOR_HH
