#include "sim/statusboard.hh"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ctime>

#include "common/atomic_file.hh"
#include "common/clock.hh"
#include "common/json.hh"
#include "common/logging.hh"

namespace powerchop
{

const char *const kStatusSchema = "powerchop-status-v1";

namespace
{

/** Doubles in snapshots: fixed six decimals, locale-independent. */
std::string
fmtDouble(double v)
{
    return csprintf("%.6f", v);
}

/**
 * Clamp an ETA estimate to the −1 "unknown" sentinel.
 *
 * Early in a run (first cadence interval, a just-restarted worker)
 * realized MIPS is still 0 and remaining/rate arithmetic can yield
 * negative, Inf, or NaN estimates. fmtDouble would serialize those
 * as "inf"/"nan" — not valid JSON — so the whole snapshot would turn
 * unparseable. Every publisher and parser funnels ETAs through here
 * so all three renderers (table, --json, --prom) agree on one
 * sentinel and show `?` uniformly.
 */
double
sanitizeEta(double eta)
{
    return std::isfinite(eta) && eta >= 0.0 ? eta : -1.0;
}

/** Inline quantile cell for table rows: `—` when nothing sampled. */
std::string
quantilesCell(const stats::Quantiles &q)
{
    if (q.samples == 0)
        return "—";
    return csprintf("p50=%.3f p90=%.3f p99=%.3f", q.p50, q.p90,
                    q.p99);
}

/** Wall-clock now with sub-second precision (file-age display only;
 *  deadlines elsewhere stay on the monotonic clock). */
double
wallNow()
{
    struct timespec ts;
    if (clock_gettime(CLOCK_REALTIME, &ts) != 0)
        return static_cast<double>(std::time(nullptr));
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
}

/** Render one Quantiles block ("key":{...}) or "" when empty. */
std::string
quantilesJson(const char *key, const stats::Quantiles &q)
{
    if (q.samples == 0)
        return std::string();
    return csprintf(
        ",\"%s\":{\"samples\":%llu,\"p50\":%s,\"p90\":%s,\"p99\":%s}",
        key, static_cast<unsigned long long>(q.samples),
        fmtDouble(q.p50).c_str(), fmtDouble(q.p90).c_str(),
        fmtDouble(q.p99).c_str());
}

void
parseQuantiles(const json::Value &obj, const char *key,
               stats::Quantiles &out)
{
    const json::Value *v = obj.find(key);
    if (!v || !v->isObject())
        return;
    out.samples = v->getUint64("samples");
    out.p50 = v->getDouble("p50");
    out.p90 = v->getDouble("p90");
    out.p99 = v->getDouble("p99");
}

/** Whole-file read; false on any error (reader is best-effort). */
bool
readWholeFile(const std::string &path, std::string &out)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    out.clear();
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    const bool ok = std::ferror(f) == 0;
    std::fclose(f);
    return ok;
}

} // namespace

std::string
StatusSnapshot::toJson() const
{
    std::string s = csprintf(
        "{\"schema\":\"%s\",\"role\":\"%s\",\"label\":\"%s\","
        "\"pid\":%d,\"update_seq\":%llu,\"uptime_seconds\":%s",
        kStatusSchema, json::escape(role).c_str(),
        json::escape(label).c_str(), pid,
        static_cast<unsigned long long>(updateSeq),
        fmtDouble(uptimeSeconds).c_str());
    s += csprintf(
        ",\"jobs_total\":%zu,\"jobs_done\":%zu,\"jobs_ok\":%zu,"
        "\"jobs_failed\":%zu,\"jobs_retried\":%zu",
        jobsTotal, jobsDone, jobsOk, jobsFailed, jobsRetried);

    s += ",\"in_flight\":[";
    for (std::size_t i = 0; i < inFlight.size(); ++i) {
        s += csprintf("%s\"%016llx\"", i ? "," : "",
                      static_cast<unsigned long long>(inFlight[i]));
    }
    s += "]";

    s += csprintf(",\"mips\":%s,\"restarts\":%zu,"
                  "\"eta_seconds\":%s,\"finished\":%s",
                  fmtDouble(mips).c_str(), restarts,
                  fmtDouble(sanitizeEta(etaSeconds)).c_str(),
                  finished ? "true" : "false");

    s += quantilesJson("job_latency_ms", jobLatencyMs);
    s += quantilesJson("fsync_latency_ms", fsyncLatencyMs);
    s += quantilesJson("restart_backoff_ms", restartBackoffMs);

    if (!stages.empty()) {
        s += ",\"stages\":[";
        for (std::size_t i = 0; i < stages.size(); ++i) {
            s += csprintf(
                "%s{\"name\":\"%s\",\"seconds\":%s,\"count\":%llu}",
                i ? "," : "", json::escape(stages[i].name).c_str(),
                fmtDouble(stages[i].seconds).c_str(),
                static_cast<unsigned long long>(stages[i].count));
        }
        s += "]";
    }

    if (!shards.empty()) {
        s += ",\"shards\":[";
        for (std::size_t i = 0; i < shards.size(); ++i) {
            const ShardStatus &sh = shards[i];
            s += csprintf(
                "%s{\"shard\":%u,\"total\":%zu,\"done\":%zu,"
                "\"restarts\":%u,\"helpers\":%u,\"active\":%s,"
                "\"heartbeat_age_seconds\":%s,\"failed\":%s}",
                i ? "," : "", sh.shard, sh.total, sh.done,
                sh.restarts, sh.helpers, sh.active ? "true" : "false",
                fmtDouble(sh.heartbeatAgeSeconds).c_str(),
                sh.failed ? "true" : "false");
        }
        s += "]";
    }

    if (serve.present()) {
        s += csprintf(
            ",\"serve\":{\"requests\":%llu,\"hits\":%llu,"
            "\"misses\":%llu,\"evictions\":%llu,\"entries\":%llu,"
            "\"bytes\":%llu,\"qps\":%s",
            static_cast<unsigned long long>(serve.requests),
            static_cast<unsigned long long>(serve.hits),
            static_cast<unsigned long long>(serve.misses),
            static_cast<unsigned long long>(serve.evictions),
            static_cast<unsigned long long>(serve.entries),
            static_cast<unsigned long long>(serve.bytes),
            fmtDouble(serve.qps).c_str());
        s += csprintf(
            ",\"shed_connections\":%llu,\"shed_requests\":%llu,"
            "\"deadline_cancels\":%llu,\"compactions\":%llu",
            static_cast<unsigned long long>(serve.shedConnections),
            static_cast<unsigned long long>(serve.shedRequests),
            static_cast<unsigned long long>(serve.deadlineCancels),
            static_cast<unsigned long long>(serve.compactions));
        s += quantilesJson("request_latency_ms",
                           serve.requestLatencyMs);
        s += "}";
    }

    s += "}";
    return s;
}

bool
StatusSnapshot::fromJson(const std::string &text, StatusSnapshot &out)
{
    json::Value doc;
    if (!json::parse(text, doc) || !doc.isObject())
        return false;
    // Accept any v1-lineage schema ("powerchop-status-v1", future
    // "-v1.1"): the reader tolerates unknown fields anyway.
    if (doc.getString("schema").rfind("powerchop-status", 0) != 0)
        return false;

    out = StatusSnapshot();
    out.role = doc.getString("role");
    out.label = doc.getString("label");
    out.pid = static_cast<int>(doc.getDouble("pid"));
    out.updateSeq = doc.getUint64("update_seq");
    out.uptimeSeconds = doc.getDouble("uptime_seconds");
    out.jobsTotal = doc.getUint64("jobs_total");
    out.jobsDone = doc.getUint64("jobs_done");
    out.jobsOk = doc.getUint64("jobs_ok");
    out.jobsFailed = doc.getUint64("jobs_failed");
    out.jobsRetried = doc.getUint64("jobs_retried");
    out.mips = doc.getDouble("mips");
    out.restarts = doc.getUint64("restarts");
    // Normalize on the way in too: a snapshot written by an older
    // publisher (or edited by hand) may carry an arbitrary negative
    // value; readers must not distinguish "-3" from "unknown".
    out.etaSeconds = sanitizeEta(doc.getDouble("eta_seconds", -1));
    out.finished = doc.getBool("finished");

    if (const json::Value *arr = doc.find("in_flight");
        arr && arr->isArray()) {
        for (const json::Value &v : arr->elements()) {
            if (v.isString()) {
                out.inFlight.push_back(std::strtoull(
                    v.asString().c_str(), nullptr, 16));
            }
        }
    }

    parseQuantiles(doc, "job_latency_ms", out.jobLatencyMs);
    parseQuantiles(doc, "fsync_latency_ms", out.fsyncLatencyMs);
    parseQuantiles(doc, "restart_backoff_ms", out.restartBackoffMs);

    if (const json::Value *arr = doc.find("stages");
        arr && arr->isArray()) {
        for (const json::Value &v : arr->elements()) {
            if (!v.isObject())
                continue;
            telemetry::StageTime st;
            st.name = v.getString("name");
            st.seconds = v.getDouble("seconds");
            st.count = v.getUint64("count");
            out.stages.push_back(std::move(st));
        }
    }

    if (const json::Value *arr = doc.find("shards");
        arr && arr->isArray()) {
        for (const json::Value &v : arr->elements()) {
            if (!v.isObject())
                continue;
            ShardStatus sh;
            sh.shard = static_cast<unsigned>(v.getUint64("shard"));
            sh.total = v.getUint64("total");
            sh.done = v.getUint64("done");
            sh.restarts =
                static_cast<unsigned>(v.getUint64("restarts"));
            sh.helpers =
                static_cast<unsigned>(v.getUint64("helpers"));
            sh.active = v.getBool("active");
            sh.heartbeatAgeSeconds =
                v.getDouble("heartbeat_age_seconds", -1);
            sh.failed = v.getBool("failed");
            out.shards.push_back(sh);
        }
    }

    if (const json::Value *sv = doc.find("serve");
        sv && sv->isObject()) {
        out.serve.requests = sv->getUint64("requests");
        out.serve.hits = sv->getUint64("hits");
        out.serve.misses = sv->getUint64("misses");
        out.serve.evictions = sv->getUint64("evictions");
        out.serve.entries = sv->getUint64("entries");
        out.serve.bytes = sv->getUint64("bytes");
        out.serve.qps = sv->getDouble("qps");
        out.serve.shedConnections = sv->getUint64("shed_connections");
        out.serve.shedRequests = sv->getUint64("shed_requests");
        out.serve.deadlineCancels = sv->getUint64("deadline_cancels");
        out.serve.compactions = sv->getUint64("compactions");
        parseQuantiles(*sv, "request_latency_ms",
                       out.serve.requestLatencyMs);
    }
    return true;
}

StatusPublisher::StatusPublisher(std::string path,
                                 double minIntervalSeconds)
    : path_(std::move(path)), minInterval_(minIntervalSeconds),
      startedAt_(monotonicSeconds()),
      // Far enough in the virtual past that the first publish always
      // passes the cadence gate.
      lastPublish_(monotonicSeconds() - 2 * minIntervalSeconds - 1)
{
}

bool
StatusPublisher::publish(StatusSnapshot snap, bool force)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const double now = monotonicSeconds();
        if (!force && now - lastPublish_ < minInterval_)
            return false;
        lastPublish_ = now;
        snap.updateSeq = ++seq_;
        snap.uptimeSeconds = now - startedAt_;
    }
    if (snap.pid == 0)
        snap.pid = static_cast<int>(::getpid());
    // The publisher is the single choke point every snapshot passes
    // through: clamp unstable early-run ETA estimates here so no
    // renderer ever sees a negative/Inf/NaN value.
    snap.etaSeconds = sanitizeEta(snap.etaSeconds);
    atomicWriteFileOk(path_, snap.toJson() + "\n");
    return true;
}

std::uint64_t
StatusPublisher::published() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return seq_;
}

std::string
statusDirPath(const std::string &campaignDir)
{
    return campaignDir + "/status";
}

std::string
campaignStatusPath(const std::string &campaignDir)
{
    return statusDirPath(campaignDir) + "/campaign.json";
}

std::vector<StatusEntry>
readStatusDir(const std::string &campaignDir)
{
    std::vector<StatusEntry> entries;
    const std::string dir = statusDirPath(campaignDir);
    DIR *d = opendir(dir.c_str());
    if (!d)
        return entries;

    const double now = wallNow();
    while (const struct dirent *ent = readdir(d)) {
        const std::string name = ent->d_name;
        if (name.size() < 6 ||
            name.compare(name.size() - 5, 5, ".json") != 0)
            continue;
        const std::string path = dir + "/" + name;

        StatusEntry entry;
        entry.file = name;
        if (!readWholeFile(path, entry.rawJson))
            continue;
        // Trim the trailing newline so --json can embed the document
        // inline without breaking its own line structure.
        while (!entry.rawJson.empty() &&
               (entry.rawJson.back() == '\n' ||
                entry.rawJson.back() == '\r'))
            entry.rawJson.pop_back();

        struct stat st;
        if (stat(path.c_str(), &st) == 0) {
            const double mtime =
                static_cast<double>(st.st_mtim.tv_sec) +
                static_cast<double>(st.st_mtim.tv_nsec) * 1e-9;
            entry.ageSeconds = std::max(0.0, now - mtime);
        }
        entry.parsed =
            StatusSnapshot::fromJson(entry.rawJson, entry.snap);
        entries.push_back(std::move(entry));
    }
    closedir(d);

    // Aggregate first, then shard workers in name order, so the table
    // reads top-down from whole-campaign to detail.
    std::sort(entries.begin(), entries.end(),
              [](const StatusEntry &a, const StatusEntry &b) {
                  const bool aTop = a.file == "campaign.json";
                  const bool bTop = b.file == "campaign.json";
                  if (aTop != bTop)
                      return aTop;
                  return a.file < b.file;
              });
    return entries;
}

std::string
renderStatusTable(const std::vector<StatusEntry> &entries)
{
    std::string out = csprintf(
        "%-14s %-12s %6s %11s %5s %6s %4s %8s %4s %7s %s\n", "ENTRY",
        "ROLE", "AGE", "DONE/TOTAL", "FAIL", "RETRY", "FLY", "MIPS",
        "RST", "ETA", "STATE");
    for (const StatusEntry &e : entries) {
        std::string name = e.file;
        if (name.size() > 5 &&
            name.compare(name.size() - 5, 5, ".json") == 0)
            name.resize(name.size() - 5);
        if (!e.parsed) {
            out += csprintf("%-14s %-12s %6s %s\n", name.c_str(),
                            "?", "-", "<unparseable>");
            continue;
        }
        const StatusSnapshot &s = e.snap;
        const std::string age =
            e.ageSeconds < 0 ? "-" : csprintf("%.1fs", e.ageSeconds);
        const std::string eta =
            s.finished ? "-"
            : s.etaSeconds < 0
                ? "?"
                : csprintf("%.1fs", s.etaSeconds);
        out += csprintf(
            "%-14s %-12s %6s %5zu/%-5zu %5zu %6zu %4zu %8.2f "
            "%4zu %7s %s\n",
            name.c_str(), s.role.c_str(), age.c_str(), s.jobsDone,
            s.jobsTotal, s.jobsFailed, s.jobsRetried,
            s.inFlight.size(), s.mips, s.restarts, eta.c_str(),
            s.finished ? "finished" : "running");
        if (s.jobLatencyMs.samples > 0) {
            out += csprintf(
                "%-14s   job latency ms p50=%.3f p90=%.3f p99=%.3f "
                "(%llu samples)\n",
                "", s.jobLatencyMs.p50, s.jobLatencyMs.p90,
                s.jobLatencyMs.p99,
                static_cast<unsigned long long>(
                    s.jobLatencyMs.samples));
        }
        if (s.serve.present()) {
            out += csprintf(
                "%-14s   serve: %llu req (%llu hit / %llu miss), "
                "%llu evict, %llu keys, %.1f KiB, qps %.1f, "
                "lat ms %s\n",
                "",
                static_cast<unsigned long long>(s.serve.requests),
                static_cast<unsigned long long>(s.serve.hits),
                static_cast<unsigned long long>(s.serve.misses),
                static_cast<unsigned long long>(s.serve.evictions),
                static_cast<unsigned long long>(s.serve.entries),
                static_cast<double>(s.serve.bytes) / 1024.0,
                s.serve.qps,
                quantilesCell(s.serve.requestLatencyMs).c_str());
            if (s.serve.shedConnections || s.serve.shedRequests ||
                s.serve.deadlineCancels || s.serve.compactions) {
                out += csprintf(
                    "%-14s   hardening: %llu conn + %llu req shed, "
                    "%llu deadline-cancelled, %llu compactions\n",
                    "",
                    static_cast<unsigned long long>(
                        s.serve.shedConnections),
                    static_cast<unsigned long long>(
                        s.serve.shedRequests),
                    static_cast<unsigned long long>(
                        s.serve.deadlineCancels),
                    static_cast<unsigned long long>(
                        s.serve.compactions));
            }
        }
        for (const ShardStatus &sh : s.shards) {
            out += csprintf(
                "%-14s   shard %04u %zu/%zu done, %u restart(s), "
                "%u helper(s), %s%s\n",
                "", sh.shard, sh.done, sh.total, sh.restarts,
                sh.helpers,
                sh.failed ? "FAILED"
                          : (sh.active ? "active" : "idle"),
                sh.active && sh.heartbeatAgeSeconds >= 0
                    ? csprintf(", hb %.1fs ago",
                               sh.heartbeatAgeSeconds)
                          .c_str()
                    : "");
        }
    }
    if (entries.empty())
        out += "(no status files; campaign not started or "
               "observability disabled)\n";
    return out;
}

std::string
renderStatusJson(const std::string &campaignDir,
                 const std::vector<StatusEntry> &entries)
{
    std::string out = csprintf(
        "{\"schema\":\"%s\",\"dir\":\"%s\",\"entries\":[", kStatusSchema,
        json::escape(campaignDir).c_str());
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const StatusEntry &e = entries[i];
        out += csprintf("%s\n  {\"file\":\"%s\",\"age_seconds\":%s,"
                        "\"parsed\":%s,\"status\":",
                        i ? "," : "", json::escape(e.file).c_str(),
                        fmtDouble(e.ageSeconds).c_str(),
                        e.parsed ? "true" : "false");
        // The snapshot document is embedded verbatim: what the
        // publisher wrote is what the consumer sees.
        out += e.parsed ? e.rawJson : std::string("null");
        out += "}";
    }
    out += entries.empty() ? "]}\n" : "\n]}\n";
    return out;
}

namespace
{

/** Prometheus text-format writer emitting HELP/TYPE once per metric. */
class PromWriter
{
  public:
    void
    gauge(const std::string &metric, const char *help,
          const std::string &labels, double value)
    {
        if (std::find(declared_.begin(), declared_.end(), metric) ==
            declared_.end()) {
            declared_.push_back(metric);
            out_ += csprintf("# HELP %s %s\n# TYPE %s gauge\n",
                             metric.c_str(), help, metric.c_str());
        }
        out_ += csprintf("%s{%s} %s\n", metric.c_str(),
                         labels.c_str(), fmtDouble(value).c_str());
    }

    const std::string &text() const { return out_; }

  private:
    std::string out_;
    std::vector<std::string> declared_;
};

void
promQuantiles(PromWriter &w, const std::string &metric,
              const char *help, const std::string &labels,
              const stats::Quantiles &q)
{
    if (q.samples == 0)
        return;
    w.gauge(metric, help, labels + ",quantile=\"0.5\"", q.p50);
    w.gauge(metric, help, labels + ",quantile=\"0.9\"", q.p90);
    w.gauge(metric, help, labels + ",quantile=\"0.99\"", q.p99);
    w.gauge(metric + "_samples", "Samples behind the quantiles",
            labels, static_cast<double>(q.samples));
}

} // namespace

std::string
renderStatusPrometheus(const std::vector<StatusEntry> &entries)
{
    PromWriter w;
    for (const StatusEntry &e : entries) {
        if (!e.parsed)
            continue;
        const StatusSnapshot &s = e.snap;
        std::string name = e.file;
        if (name.size() > 5 &&
            name.compare(name.size() - 5, 5, ".json") == 0)
            name.resize(name.size() - 5);
        const std::string labels = csprintf(
            "entry=\"%s\",role=\"%s\"", json::escape(name).c_str(),
            json::escape(s.role).c_str());

        w.gauge("powerchop_status_age_seconds",
                "Seconds since the snapshot file was written", labels,
                e.ageSeconds);
        w.gauge("powerchop_jobs_total", "Jobs owned by this process",
                labels, static_cast<double>(s.jobsTotal));
        w.gauge("powerchop_jobs_done", "Jobs in a terminal state",
                labels, static_cast<double>(s.jobsDone));
        w.gauge("powerchop_jobs_failed", "Jobs that failed terminally",
                labels, static_cast<double>(s.jobsFailed));
        w.gauge("powerchop_jobs_retried", "Extra attempts granted",
                labels, static_cast<double>(s.jobsRetried));
        w.gauge("powerchop_jobs_in_flight", "Jobs executing now",
                labels, static_cast<double>(s.inFlight.size()));
        w.gauge("powerchop_mips",
                "Realized simulated MIPS since process start", labels,
                s.mips);
        w.gauge("powerchop_restarts", "Worker restarts performed",
                labels, static_cast<double>(s.restarts));
        w.gauge("powerchop_finished",
                "1 when the campaign/worker has finished", labels,
                s.finished ? 1 : 0);
        w.gauge("powerchop_eta_seconds",
                "Estimated seconds to completion (-1 = unknown)",
                labels, s.etaSeconds);
        if (s.serve.present()) {
            w.gauge("powerchop_serve_requests",
                    "Requests handled by powerchopd", labels,
                    static_cast<double>(s.serve.requests));
            w.gauge("powerchop_serve_hits",
                    "Result-cache key hits", labels,
                    static_cast<double>(s.serve.hits));
            w.gauge("powerchop_serve_misses",
                    "Result-cache key misses (simulated fresh)",
                    labels, static_cast<double>(s.serve.misses));
            w.gauge("powerchop_serve_evictions",
                    "LRU entries evicted for space", labels,
                    static_cast<double>(s.serve.evictions));
            w.gauge("powerchop_serve_entries",
                    "Cache keys resident", labels,
                    static_cast<double>(s.serve.entries));
            w.gauge("powerchop_serve_bytes",
                    "Cache payload bytes resident", labels,
                    static_cast<double>(s.serve.bytes));
            w.gauge("powerchop_serve_qps",
                    "Requests per second since daemon start", labels,
                    s.serve.qps);
            w.gauge("powerchop_serve_shed_connections",
                    "Connections shed BUSY at the accept gate",
                    labels,
                    static_cast<double>(s.serve.shedConnections));
            w.gauge("powerchop_serve_shed_requests",
                    "SIM requests shed BUSY at admission", labels,
                    static_cast<double>(s.serve.shedRequests));
            w.gauge("powerchop_serve_deadline_cancels",
                    "Requests cancelled by the wall deadline",
                    labels,
                    static_cast<double>(s.serve.deadlineCancels));
            w.gauge("powerchop_serve_compactions",
                    "Cache journal compactions", labels,
                    static_cast<double>(s.serve.compactions));
            promQuantiles(w, "powerchop_serve_request_latency_ms",
                          "Request wall latency quantiles (ms)",
                          labels, s.serve.requestLatencyMs);
        }
        promQuantiles(w, "powerchop_job_latency_ms",
                      "Per-job wall latency quantiles (ms)", labels,
                      s.jobLatencyMs);
        promQuantiles(w, "powerchop_fsync_latency_ms",
                      "Journal append fsync latency quantiles (ms)",
                      labels, s.fsyncLatencyMs);
        promQuantiles(w, "powerchop_restart_backoff_ms",
                      "Worker restart backoff quantiles (ms)", labels,
                      s.restartBackoffMs);
    }
    return w.text();
}

} // namespace powerchop
