/**
 * @file
 * The campaign statusboard: live, crash-safe status snapshots.
 *
 * A long `--shards N` campaign used to be a black box between launch
 * and report.json. The statusboard opens it up without any control
 * channel: every campaign process (the in-process campaign, each
 * shard worker, the supervisor) periodically publishes a small JSON
 * snapshot of its progress into `<dir>/status/` via atomicWriteFile,
 * and any number of readers — `powerchop status`, a Prometheus
 * textfile scraper, a test — parse the files at their own pace. The
 * rename-based write means a reader racing a writer always sees a
 * complete document, so polling needs no locking protocol.
 *
 * Publishing is bounded-cadence (default one write per 250ms per
 * publisher, forced snapshots excepted) so even a campaign finishing
 * thousands of jobs per second costs a handful of small writes per
 * second. Snapshots carry monotonic-clock uptimes, never wall-clock
 * deadlines; *staleness* is judged by the reader from the file's
 * mtime, which the atomic rename refreshes on every publish.
 *
 * The statusboard is a write-only side channel: nothing in it feeds
 * back into simulation or reports, so campaigns with it disabled
 * (POWERCHOP_NO_STATUS=1) produce byte-identical report.json output.
 */

#ifndef POWERCHOP_SIM_STATUSBOARD_HH
#define POWERCHOP_SIM_STATUSBOARD_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "telemetry/profiler.hh"

namespace powerchop
{

/** Schema tag every snapshot carries (readers check the prefix). */
extern const char *const kStatusSchema;

/** Per-shard health line inside a supervisor snapshot. */
struct ShardStatus
{
    unsigned shard = 0;
    std::size_t total = 0;     ///< Keys the shard owns.
    std::size_t done = 0;      ///< Keys with terminal records.
    unsigned restarts = 0;
    unsigned helpers = 0;      ///< Re-dispatch helpers spawned.
    bool active = false;       ///< A worker process is running.
    double heartbeatAgeSeconds = -1; ///< Since last output; -1 n/a.
    bool failed = false;       ///< Restart budget exhausted.
};

/** Live serving-plane counters (powerchopd "server" snapshots only).
 *  All counters are cumulative since daemon start. */
struct ServeStats
{
    std::uint64_t requests = 0;   ///< Requests handled (all verbs).
    std::uint64_t hits = 0;       ///< Result-cache key hits.
    std::uint64_t misses = 0;     ///< Key misses (simulated fresh).
    std::uint64_t evictions = 0;  ///< LRU entries evicted for space.
    std::uint64_t entries = 0;    ///< Keys resident right now.
    std::uint64_t bytes = 0;      ///< Payload bytes resident.
    double qps = 0;               ///< Requests / uptime.
    std::uint64_t shedConnections = 0; ///< BUSY at the accept gate.
    std::uint64_t shedRequests = 0;    ///< BUSY at SIM admission.
    std::uint64_t deadlineCancels = 0; ///< Wall-deadline cancels.
    std::uint64_t compactions = 0;     ///< Cache journal rewrites.

    /** Request wall latency; rendered as `—` when samples == 0. */
    stats::Quantiles requestLatencyMs;

    /** True when any request has been counted (gates the JSON block
     *  so non-server snapshots stay byte-identical). */
    bool present() const { return requests > 0; }
};

/** One process's published status. */
struct StatusSnapshot
{
    /** Who is publishing: "campaign" (in-process), "supervisor",
     *  "shard-worker", or "server" (powerchopd). */
    std::string role;

    /** Display name ("campaign", "shard-0000", "shard-0001h1"). */
    std::string label;

    int pid = 0;

    /** Publisher-assigned: monotone per publisher. @{ */
    std::uint64_t updateSeq = 0;
    double uptimeSeconds = 0;
    /** @} */

    /** Job progress. done = ok + failed (terminal either way);
     *  retried counts extra attempts granted so far. @{ */
    std::size_t jobsTotal = 0;
    std::size_t jobsDone = 0;
    std::size_t jobsOk = 0;
    std::size_t jobsFailed = 0;
    std::size_t jobsRetried = 0;
    /** @} */

    /** Content keys currently executing (bounded by worker count). */
    std::vector<std::uint64_t> inFlight;

    /** Realized throughput since this process started. */
    double mips = 0;

    /** Worker restarts performed (supervisor) or restarts of this
     *  worker so far as told by the supervisor (0 for others). */
    std::size_t restarts = 0;

    /** Naive completion estimate: remaining * (elapsed / done).
     *  The −1 sentinel means unknown (nothing finished yet, realized
     *  MIPS still 0). StatusPublisher::publish clamps any negative or
     *  non-finite estimate to −1 before the snapshot is written, so
     *  every renderer sees the same sentinel and shows `?`. */
    double etaSeconds = -1;

    bool finished = false;

    /** Latency quantiles in milliseconds; rendered when samples > 0.
     *  @{ */
    stats::Quantiles jobLatencyMs;
    stats::Quantiles fsyncLatencyMs;
    stats::Quantiles restartBackoffMs;
    /** @} */

    /** Stage-profiler table, included when the profiler is armed
     *  (POWERCHOP_PROFILE / --profile). */
    std::vector<telemetry::StageTime> stages;

    /** Per-shard health (supervisor snapshots only). */
    std::vector<ShardStatus> shards;

    /** Serving-plane counters (powerchopd snapshots only; emitted in
     *  the JSON only when serve.present()). */
    ServeStats serve;

    /** Render as a single-line JSON object. */
    std::string toJson() const;

    /**
     * Parse a snapshot back from its JSON text (any field may be
     * missing; missing fields keep their defaults).
     * @return false when the text is not a snapshot (bad JSON or
     *         wrong schema tag).
     */
    static bool fromJson(const std::string &text, StatusSnapshot &out);
};

/**
 * Cadence-bounded atomic snapshot writer.
 *
 * publish() stamps the snapshot (updateSeq, uptime) and writes it
 * via atomicWriteFileOk — best-effort by design: a full disk must
 * never take down the campaign it is observing. Writes within
 * minInterval of the previous one are skipped unless forced, so call
 * sites can publish from per-job callbacks without thinking about
 * rate. Thread-safe.
 */
class StatusPublisher
{
  public:
    explicit StatusPublisher(std::string path,
                             double minIntervalSeconds = 0.25);

    /**
     * Publish a snapshot (cadence-gated).
     *
     * @param snap  The snapshot; role/label/progress are the
     *              caller's, updateSeq/uptime/pid are stamped here.
     * @param force Bypass the cadence gate (terminal states, crash
     *              events — anything a reader must not miss).
     * @return true when a write was attempted.
     */
    bool publish(StatusSnapshot snap, bool force = false);

    const std::string &path() const { return path_; }

    /** Writes attempted (after cadence gating). */
    std::uint64_t published() const;

  private:
    std::string path_;
    double minInterval_;
    mutable std::mutex mutex_;
    double startedAt_;
    double lastPublish_;
    std::uint64_t seq_ = 0;
};

/** One parsed file of a campaign's status directory. */
struct StatusEntry
{
    std::string file;        ///< File name within status/.
    std::string rawJson;     ///< Verbatim single-line document.
    double ageSeconds = -1;  ///< Now - mtime (display only); -1 n/a.
    bool parsed = false;
    StatusSnapshot snap;     ///< Valid when parsed.
};

/**
 * Read every `*.json` under `<campaignDir>/status/`, sorted with the
 * aggregate (campaign.json) first then by name. Unparseable files
 * are kept with parsed = false so the renderer can surface them.
 * An absent status directory yields an empty vector.
 */
std::vector<StatusEntry> readStatusDir(const std::string &campaignDir);

/** Human table for the terminal (one line per entry + header). */
std::string renderStatusTable(const std::vector<StatusEntry> &entries);

/** Machine output for `powerchop status --json`: a single JSON
 *  document embedding each entry's raw snapshot verbatim. */
std::string renderStatusJson(const std::string &campaignDir,
                             const std::vector<StatusEntry> &entries);

/** Prometheus text exposition (textfile-collector compatible). */
std::string
renderStatusPrometheus(const std::vector<StatusEntry> &entries);

/** The conventional status path helpers. @{ */
std::string statusDirPath(const std::string &campaignDir);
std::string campaignStatusPath(const std::string &campaignDir);
/** @} */

} // namespace powerchop

#endif // POWERCHOP_SIM_STATUSBOARD_HH
