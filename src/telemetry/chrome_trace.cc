#include "telemetry/chrome_trace.hh"

#include <cstdio>

#include "common/atomic_file.hh"
#include "common/logging.hh"

namespace powerchop
{
namespace telemetry
{

namespace
{

// Track ("thread") ids inside one run's process.
constexpr int tidVpu = 1;
constexpr int tidBpu = 2;
constexpr int tidMlc = 3;
constexpr int tidPhase = 4;
constexpr int tidWindow = 5;
constexpr int tidCde = 6;
constexpr int tidQos = 7;
constexpr int tidFault = 8;

/** Display name of a gate-state value on a unit track. */
const char *
stateName(TraceEventKind kind, std::uint64_t state)
{
    if (kind == TraceEventKind::GateMlc) {
        // Raw MlcPolicy encodings (core/policy.hh).
        switch (state) {
          case 0b11:
            return "all";
          case 0b10:
            return "quarter";
          case 0b01:
            return "half";
          default:
            return "1-way";
        }
    }
    return state ? "on" : "gated";
}

/** Emitter that joins trace-event objects with commas. */
class EventSink
{
  public:
    explicit EventSink(std::string &out) : out_(out) {}

    void
    add(const std::string &object)
    {
        if (!first_)
            out_ += ",\n";
        first_ = false;
        out_ += object;
    }

  private:
    std::string &out_;
    bool first_ = true;
};

/** One open span on a track, closed at the next state change. */
struct OpenSpan
{
    bool open = false;
    double startUs = 0;
    std::string name;
    std::string args; ///< Pre-rendered args object ("" = none).
};

void
closeSpan(EventSink &sink, int pid, int tid, OpenSpan &span,
          double end_us)
{
    if (!span.open)
        return;
    span.open = false;
    if (end_us <= span.startUs)
        return; // zero-width span (e.g. a policy applied at cycle 0)
    std::string ev = csprintf(
        "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":%d,\"tid\":%d,"
        "\"ts\":%.3f,\"dur\":%.3f",
        span.name.c_str(), pid, tid, span.startUs,
        end_us - span.startUs);
    if (!span.args.empty())
        ev += ",\"args\":" + span.args;
    ev += "}";
    sink.add(ev);
}

void
openSpan(OpenSpan &span, double start_us, std::string name,
         std::string args = "")
{
    span.open = true;
    span.startUs = start_us;
    span.name = std::move(name);
    span.args = std::move(args);
}

std::string
instant(const char *name, int pid, int tid, double ts_us,
        const std::string &args = "")
{
    std::string ev = csprintf(
        "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,"
        "\"tid\":%d,\"ts\":%.3f",
        name, pid, tid, ts_us);
    if (!args.empty())
        ev += ",\"args\":" + args;
    ev += "}";
    return ev;
}

std::string
metadata(const char *kind, int pid, int tid, const std::string &name)
{
    return csprintf("{\"name\":\"%s\",\"ph\":\"M\",\"pid\":%d,"
                    "\"tid\":%d,\"args\":{\"name\":\"%s\"}}",
                    kind, pid, tid, jsonEscape(name).c_str());
}

void
exportRun(EventSink &sink, int pid, const TraceRecorder &run)
{
    const std::string title = run.workload() + " on " + run.machine() +
                              " [" + run.mode() + "]";
    sink.add(metadata("process_name", pid, 0, title));
    sink.add(metadata("thread_name", pid, tidVpu, "VPU gate"));
    sink.add(metadata("thread_name", pid, tidBpu, "BPU gate"));
    sink.add(metadata("thread_name", pid, tidMlc, "MLC ways"));
    sink.add(metadata("thread_name", pid, tidPhase, "phase"));
    sink.add(metadata("thread_name", pid, tidWindow, "windows"));
    sink.add(metadata("thread_name", pid, tidCde, "CDE"));
    sink.add(metadata("thread_name", pid, tidQos, "QoS"));
    sink.add(metadata("thread_name", pid, tidFault, "faults"));

    // Every unit starts the run full-power (the controller's initial
    // state); a mode that immediately applies another policy emits
    // transition events at cycle 0 which replace these zero-width
    // spans.
    OpenSpan vpu, bpu, mlc, phase, safe;
    openSpan(vpu, 0, "on");
    openSpan(bpu, 0, "on");
    openSpan(mlc, 0, "all");

    std::uint64_t cur_phase = 0;
    bool have_phase = false;

    for (const TraceEvent &ev : run.events()) {
        const double ts = ev.cycles; // 1 cycle == 1 us of trace time
        switch (ev.kind) {
          case TraceEventKind::GateVpu:
          case TraceEventKind::GateBpu:
          case TraceEventKind::GateMlc: {
            OpenSpan *span = &vpu;
            int tid = tidVpu;
            if (ev.kind == TraceEventKind::GateBpu) {
                span = &bpu;
                tid = tidBpu;
            } else if (ev.kind == TraceEventKind::GateMlc) {
                span = &mlc;
                tid = tidMlc;
            }
            closeSpan(sink, pid, tid, *span, ts);
            openSpan(*span, ts, stateName(ev.kind, ev.a0),
                     csprintf("{\"stall_cycles\":%.3f}", ev.d));
            break;
          }
          case TraceEventKind::Window:
            sink.add(instant(
                "window", pid, tidWindow, ts,
                csprintf("{\"index\":%llu,\"instructions\":%llu,"
                         "\"ipc\":%.6g}",
                         static_cast<unsigned long long>(ev.a0),
                         static_cast<unsigned long long>(ev.a1),
                         ev.d)));
            sink.add(csprintf("{\"name\":\"window IPC\",\"ph\":\"C\","
                              "\"pid\":%d,\"tid\":%d,\"ts\":%.3f,"
                              "\"args\":{\"ipc\":%.6g}}",
                              pid, tidWindow, ts, ev.d));
            break;
          case TraceEventKind::Phase:
            if (!have_phase || ev.a0 != cur_phase) {
                closeSpan(sink, pid, tidPhase, phase, ts);
                openSpan(phase, ts,
                         csprintf("phase-%llx",
                                  static_cast<unsigned long long>(
                                      ev.a0)));
                cur_phase = ev.a0;
                have_phase = true;
            }
            break;
          case TraceEventKind::Cde: {
            const CdeEvent what = static_cast<CdeEvent>(ev.a0);
            std::string args;
            if (what == CdeEvent::PvtHit ||
                what == CdeEvent::Install ||
                what == CdeEvent::Reregister) {
                args = csprintf(
                    "{\"policy\":\"0x%llx\"}",
                    static_cast<unsigned long long>(ev.a1));
            }
            sink.add(instant(cdeEventName(what), pid, tidCde, ts,
                             args));
            break;
          }
          case TraceEventKind::QosViolation:
            sink.add(instant("violation", pid, tidQos, ts));
            break;
          case TraceEventKind::SafeModeEnter:
            closeSpan(sink, pid, tidQos, safe, ts);
            openSpan(safe, ts, "safe-mode");
            break;
          case TraceEventKind::SafeModeExit:
            closeSpan(sink, pid, tidQos, safe, ts);
            break;
          case TraceEventKind::Fault:
            sink.add(instant(
                faultEventName(static_cast<FaultEvent>(ev.a0)), pid,
                tidFault, ts));
            break;
        }
    }

    const double end_ts = run.endCycles();
    closeSpan(sink, pid, tidVpu, vpu, end_ts);
    closeSpan(sink, pid, tidBpu, bpu, end_ts);
    closeSpan(sink, pid, tidMlc, mlc, end_ts);
    closeSpan(sink, pid, tidPhase, phase, end_ts);
    closeSpan(sink, pid, tidQos, safe, end_ts);

    if (run.droppedEvents() > 0) {
        sink.add(instant(
            "dropped-events", pid, tidWindow, end_ts,
            csprintf("{\"count\":%llu}",
                     static_cast<unsigned long long>(
                         run.droppedEvents()))));
    }
}

} // namespace

std::string
chromeTraceJson(const std::vector<const TraceRecorder *> &runs)
{
    std::string out;
    out += "{\"displayTimeUnit\":\"ms\",";
    out += "\"otherData\":{\"generator\":\"powerchop\","
           "\"cycles_per_us\":1},";
    out += "\"traceEvents\":[\n";

    EventSink sink(out);
    int pid = 0;
    for (const TraceRecorder *run : runs) {
        ++pid;
        if (run)
            exportRun(sink, pid, *run);
    }

    out += "\n]}\n";
    return out;
}

std::string
chromeTraceJson(const TraceRecorder &run)
{
    return chromeTraceJson(std::vector<const TraceRecorder *>{&run});
}

bool
writeChromeTrace(const std::string &path,
                 const std::vector<const TraceRecorder *> &runs)
{
    // Crash-safe replace: a trace viewer pointed at the path never
    // loads a half-written JSON array.
    return atomicWriteFileOk(path, chromeTraceJson(runs));
}

} // namespace telemetry
} // namespace powerchop
