/**
 * @file
 * Chrome trace-event JSON export of recorded gating traces.
 *
 * Renders one or more TraceRecorders (one per simulation job, in
 * submission order) into the Chrome trace-event format [1], which
 * opens directly in Perfetto (ui.perfetto.dev) and chrome://tracing.
 *
 * Layout: each run becomes one "process" (pid = 1 + run index) named
 * "<workload> on <machine> [<mode>]". Inside a process, fixed
 * "threads" are the tracks:
 *
 *   tid 1  VPU gate   — spans: "on" / "gated"
 *   tid 2  BPU gate   — spans: "on" / "gated"
 *   tid 3  MLC ways   — spans: "all" / "half" / "quarter" / "1-way"
 *   tid 4  phase      — spans: one per contiguous phase-signature run
 *   tid 5  windows    — instants per HTB window + "window IPC" counter
 *   tid 6  CDE        — instants: pvt-hit / profile-start / ...
 *   tid 7  QoS        — "safe-mode" spans + violation instants
 *   tid 8  faults     — instants, one per injected fault
 *
 * Timestamps map one simulated cycle to one microsecond of trace
 * time, so "1 ms" on the Perfetto timeline is 1000 cycles. All values
 * derive from simulation state only, making exported traces
 * byte-identical across worker counts and repeat runs.
 *
 * [1] https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
 */

#ifndef POWERCHOP_TELEMETRY_CHROME_TRACE_HH
#define POWERCHOP_TELEMETRY_CHROME_TRACE_HH

#include <string>
#include <vector>

#include "telemetry/trace.hh"

namespace powerchop
{
namespace telemetry
{

/**
 * Render runs as a complete Chrome trace-event JSON document.
 *
 * @param runs Recorders in deterministic (submission) order; null
 *             entries are skipped.
 * @return the JSON document ({"traceEvents":[...], ...}).
 */
std::string
chromeTraceJson(const std::vector<const TraceRecorder *> &runs);

/** Single-run convenience overload. */
std::string chromeTraceJson(const TraceRecorder &run);

/**
 * Write runs to a trace file.
 *
 * @param path Output file path.
 * @param runs Recorders in deterministic order.
 * @return true on success; false (with a warning) when the file
 *         cannot be written.
 */
bool writeChromeTrace(const std::string &path,
                      const std::vector<const TraceRecorder *> &runs);

} // namespace telemetry
} // namespace powerchop

#endif // POWERCHOP_TELEMETRY_CHROME_TRACE_HH
