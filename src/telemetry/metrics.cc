#include "telemetry/metrics.hh"

#include <cstdio>

#include "common/atomic_file.hh"
#include "common/logging.hh"
#include "core/gating_controller.hh"
#include "core/htb.hh"
#include "core/perf_monitor.hh"
#include "power/core_power_model.hh"
#include "telemetry/trace.hh"

namespace powerchop
{
namespace telemetry
{

void
MetricsRegistry::addProbe(const std::string &name, Probe fn)
{
    panicIf(!rows_.empty(),
            "MetricsRegistry: cannot add a probe after the first "
            "snapshot froze the schema");
    panicIf(!fn, "MetricsRegistry: probe callback must be callable");
    for (const auto &c : columns_) {
        if (c == name)
            panic("MetricsRegistry: duplicate column '%s'",
                  name.c_str());
    }
    columns_.push_back(name);
    probes_.push_back(std::move(fn));
}

void
MetricsRegistry::addGroup(const stats::Group &g)
{
    for (const auto &[name, s] : g.scalars()) {
        addProbe(g.name() + "." + name, [s] {
            return static_cast<double>(s->value());
        });
    }
    for (const auto &[name, a] : g.averages())
        addProbe(g.name() + "." + name, [a] { return a->mean(); });
}

void
MetricsRegistry::snapshot(std::uint64_t window, InsnCount instructions,
                          Cycles cycles)
{
    panicIf(probes_.empty() && columns_.empty(),
            "MetricsRegistry: snapshot with no registered probes");
    panicIf(probes_.size() != columns_.size(),
            "MetricsRegistry: snapshot after detachProbes()");
    Row row;
    row.window = window;
    row.instructions = instructions;
    row.cycles = cycles;
    row.values.reserve(probes_.size());
    for (const auto &p : probes_)
        row.values.push_back(p());
    rows_.push_back(std::move(row));
}

void
MetricsRegistry::detachProbes()
{
    probes_.clear();
}

double
MetricsRegistry::value(std::size_t row, std::size_t col) const
{
    if (row >= rows_.size() || col >= rows_[row].values.size())
        panic("MetricsRegistry: cell (%zu, %zu) out of range", row,
              col);
    return rows_[row].values[col];
}

std::size_t
MetricsRegistry::columnIndex(const std::string &name) const
{
    for (std::size_t i = 0; i < columns_.size(); ++i) {
        if (columns_[i] == name)
            return i;
    }
    panic("MetricsRegistry: no column named '%s'", name.c_str());
}

std::string
MetricsRegistry::toCsv() const
{
    std::string out = "window,instructions,cycles";
    for (const auto &c : columns_)
        out += "," + c;
    out += "\n";
    for (const auto &row : rows_) {
        out += csprintf("%llu,%llu,%.10g",
                        static_cast<unsigned long long>(row.window),
                        static_cast<unsigned long long>(
                            row.instructions),
                        row.cycles);
        for (double v : row.values)
            out += csprintf(",%.10g", v);
        out += "\n";
    }
    return out;
}

std::string
MetricsRegistry::toJsonl() const
{
    std::string out;
    for (const auto &row : rows_) {
        out += csprintf("{\"window\":%llu,\"instructions\":%llu,"
                        "\"cycles\":%.10g",
                        static_cast<unsigned long long>(row.window),
                        static_cast<unsigned long long>(
                            row.instructions),
                        row.cycles);
        for (std::size_t i = 0; i < row.values.size(); ++i) {
            out += csprintf(",\"%s\":%.10g",
                            jsonEscape(columns_[i]).c_str(),
                            row.values[i]);
        }
        out += "}\n";
    }
    return out;
}

namespace
{

bool
writeFile(const std::string &path, const std::string &content,
          const char *what)
{
    // Crash-safe: readers see the old file or the new one, never a
    // torn mix. atomicWriteFileOk warns (naming the path) on error.
    (void)what;
    return atomicWriteFileOk(path, content);
}

} // namespace

bool
MetricsRegistry::writeCsv(const std::string &path) const
{
    return writeFile(path, toCsv(), "metrics CSV");
}

bool
MetricsRegistry::writeJsonl(const std::string &path) const
{
    return writeFile(path, toJsonl(), "metrics JSONL");
}

WindowMetricsCollector::WindowMetricsCollector(
    MetricsRegistry &registry, const CorePowerModel *power,
    double frequencyHz, unsigned mlcAssoc)
    : registry_(registry), power_(power), frequencyHz_(frequencyHz),
      mlcAssoc_(mlcAssoc)
{
    panicIf(frequencyHz_ <= 0,
            "WindowMetricsCollector: frequencyHz must be positive");
    panicIf(mlcAssoc_ == 0,
            "WindowMetricsCollector: mlcAssoc must be non-zero");

    registry_.addProbe("window_instructions",
                       [this] { return cur_.windowInsns; });
    registry_.addProbe("window_cycles",
                       [this] { return cur_.windowCycles; });
    registry_.addProbe("window_ipc", [this] { return cur_.ipc; });
    registry_.addProbe("crit_vpu", [this] { return cur_.critVpu; });
    registry_.addProbe("crit_bpu", [this] { return cur_.critBpu; });
    registry_.addProbe("crit_mlc", [this] { return cur_.critMlc; });
    registry_.addProbe("mispred_large",
                       [this] { return cur_.mispredLarge; });
    registry_.addProbe("mispred_small",
                       [this] { return cur_.mispredSmall; });
    registry_.addProbe("l2_hits_per_kinsn",
                       [this] { return cur_.l2HitsPerKilo; });
    registry_.addProbe("vpu_on", [this] { return cur_.vpuOn; });
    registry_.addProbe("bpu_on", [this] { return cur_.bpuOn; });
    registry_.addProbe("mlc_active_frac",
                       [this] { return cur_.mlcActiveFrac; });
    registry_.addProbe("stall_cycles",
                       [this] { return cur_.stallCycles; });
    registry_.addProbe("vpu_gated_frac",
                       [this] { return cur_.vpuGatedFrac; });
    registry_.addProbe("bpu_gated_frac",
                       [this] { return cur_.bpuGatedFrac; });
    if (power_) {
        registry_.addProbe("vpu_leakage_j",
                           [this] { return cur_.vpuLeakageJ; });
        registry_.addProbe("bpu_leakage_j",
                           [this] { return cur_.bpuLeakageJ; });
        registry_.addProbe("mlc_leakage_j",
                           [this] { return cur_.mlcLeakageJ; });
    }
}

void
WindowMetricsCollector::onWindow(const WindowReport &rep,
                                 const WindowProfile &profile,
                                 Cycles now,
                                 const GatingController &controller)
{
    if (now < 0)
        now = lastEdge_; // unknown edge time: zero-length window

    const double wc = now - lastEdge_;
    const double wi = static_cast<double>(rep.instructions);

    cur_.windowInsns = wi;
    cur_.windowCycles = wc;
    cur_.ipc = wc > 0 ? wi / wc : 0.0;

    cur_.critVpu = profile.vpuCriticality();
    cur_.critBpu = profile.mispredSmall - profile.mispredLarge;
    cur_.critMlc = profile.mlcCriticality();
    cur_.mispredLarge = profile.mispredLarge;
    cur_.mispredSmall = profile.mispredSmall;
    cur_.l2HitsPerKilo = profile.totalInsns
        ? 1000.0 * profile.l2Hits / profile.totalInsns
        : 0.0;

    const GatingPolicy &pol = controller.current();
    cur_.vpuOn = pol.vpuOn ? 1.0 : 0.0;
    cur_.bpuOn = pol.bpuOn ? 1.0 : 0.0;
    cur_.mlcActiveFrac =
        static_cast<double>(mlcActiveWays(pol.mlc, mlcAssoc_)) /
        mlcAssoc_;

    const GatingStats &gs = controller.stats();
    cur_.stallCycles = gs.stallCycles - prevStall_;
    const double vpu_gated = gs.vpuGatedCycles - prevVpuGated_;
    const double bpu_gated = gs.bpuGatedCycles - prevBpuGated_;
    cur_.vpuGatedFrac = wc > 0 ? vpu_gated / wc : 0.0;
    cur_.bpuGatedFrac = wc > 0 ? bpu_gated / wc : 0.0;

    if (power_) {
        const double inv_hz = 1.0 / frequencyHz_;
        cur_.vpuLeakageJ = power_->leakageEnergy(
            Unit::Vpu, (wc - vpu_gated) * inv_hz,
            vpu_gated * inv_hz);
        cur_.bpuLeakageJ = power_->leakageEnergy(
            Unit::Bpu, (wc - bpu_gated) * inv_hz,
            bpu_gated * inv_hz);

        auto frac = [this](MlcPolicy p) {
            return static_cast<double>(mlcActiveWays(p, mlcAssoc_)) /
                   mlcAssoc_;
        };
        cur_.mlcLeakageJ = power_->mlcLeakageEnergy(
            (gs.mlcFullCycles - prevMlcFull_) * inv_hz,
            (gs.mlcHalfCycles - prevMlcHalf_) * inv_hz,
            (gs.mlcQuarterCycles - prevMlcQuarter_) * inv_hz,
            (gs.mlcOneWayCycles - prevMlcOne_) * inv_hz,
            frac(MlcPolicy::OneWay), frac(MlcPolicy::HalfWays),
            frac(MlcPolicy::QuarterWays));
    }

    prevStall_ = gs.stallCycles;
    prevVpuGated_ = gs.vpuGatedCycles;
    prevBpuGated_ = gs.bpuGatedCycles;
    prevMlcFull_ = gs.mlcFullCycles;
    prevMlcHalf_ = gs.mlcHalfCycles;
    prevMlcQuarter_ = gs.mlcQuarterCycles;
    prevMlcOne_ = gs.mlcOneWayCycles;

    cumInsns_ += rep.instructions;
    lastEdge_ = now;
    ++windowIndex_;
    registry_.snapshot(windowIndex_, cumInsns_, now);
}

} // namespace telemetry
} // namespace powerchop
