/**
 * @file
 * Metrics registry: per-window time series for one simulation run.
 *
 * Layered on the stats package: columns are named probes (callbacks
 * returning the current value of some counter or derived metric), and
 * a whole stats::Group can be registered as one probe per stat. At
 * every execution-window edge the owner calls snapshot(), which
 * evaluates all probes into one row stamped with the window index,
 * cumulative instruction count and cycle time. Rows serialize to CSV
 * (one header + one line per window) or JSONL (one object per
 * window).
 *
 * Like the trace recorder, a registry is a per-run, single-threaded
 * object: parallel batches give each job its own registry and merge
 * or write them in submission order, so outputs are byte-identical
 * on any worker count.
 *
 * WindowMetricsCollector is the standard wiring for PowerChop runs:
 * attached by simulate() when SimOptions::metrics is set, it derives
 * the canonical per-window series (IPC, mispredict rates, L2 hits,
 * criticality scores, gate residency, per-unit leakage energy) from
 * each window report and snapshots the registry.
 */

#ifndef POWERCHOP_TELEMETRY_METRICS_HH
#define POWERCHOP_TELEMETRY_METRICS_HH

#include <functional>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace powerchop
{

class CorePowerModel;
class GatingController;
struct GatingStats;
struct WindowReport;
struct WindowProfile;

namespace telemetry
{

/**
 * Named per-window time series.
 */
class MetricsRegistry
{
  public:
    using Probe = std::function<double()>;

    /** One snapshot row. */
    struct Row
    {
        std::uint64_t window = 0;
        InsnCount instructions = 0; ///< Cumulative at the edge.
        Cycles cycles = 0;          ///< Cumulative at the edge.
        std::vector<double> values; ///< One per column.
    };

    /**
     * Register one probe column. The schema freezes at the first
     * snapshot(); registering after that is a panic.
     *
     * @param name Column name (CSV header / JSONL key).
     * @param fn   Evaluated at every snapshot.
     */
    void addProbe(const std::string &name, Probe fn);

    /** Register every stat of a group as a probe, named
     *  "<group>.<stat>". The group must outlive the probes. */
    void addGroup(const stats::Group &g);

    /** Evaluate all probes into one row. */
    void snapshot(std::uint64_t window, InsnCount instructions,
                  Cycles cycles);

    /**
     * Drop the probe callbacks, keeping columns and rows. Called when
     * the probed objects are about to die (end of simulate()) so the
     * registry can safely outlive the run it measured.
     */
    void detachProbes();

    const std::vector<std::string> &columnNames() const
    {
        return columns_;
    }
    const std::vector<Row> &rows() const { return rows_; }

    /** Value of one cell (row-major). */
    double value(std::size_t row, std::size_t col) const;

    /** Column index by name; panics when absent. */
    std::size_t columnIndex(const std::string &name) const;

    /** CSV document: "window,instructions,cycles,<columns...>". */
    std::string toCsv() const;

    /** JSONL document: one JSON object per row. */
    std::string toJsonl() const;

    /** Write toCsv()/toJsonl() to a file; false + warning on I/O
     *  failure. @{ */
    bool writeCsv(const std::string &path) const;
    bool writeJsonl(const std::string &path) const;
    /** @} */

  private:
    std::vector<std::string> columns_;
    std::vector<Probe> probes_;
    std::vector<Row> rows_;
};

/**
 * Standard per-window metrics wiring for a PowerChop-mode run.
 *
 * Owned by simulate(); receives every window edge from the PowerChop
 * unit with the window report, the window's performance profile and
 * the gating controller, computes the canonical series and snapshots
 * the registry. The power model pointer is optional; without it the
 * per-unit leakage-energy columns are omitted.
 */
class WindowMetricsCollector
{
  public:
    /**
     * @param registry    Sink; must outlive the collector.
     * @param power       Power model for the leakage columns (may be
     *                    null).
     * @param frequencyHz Core frequency (cycles -> seconds).
     * @param mlcAssoc    MLC associativity (way-fraction arithmetic).
     */
    WindowMetricsCollector(MetricsRegistry &registry,
                           const CorePowerModel *power,
                           double frequencyHz, unsigned mlcAssoc);

    /** Observe one window edge. */
    void onWindow(const WindowReport &rep, const WindowProfile &profile,
                  Cycles now, const GatingController &controller);

    std::uint64_t windowsObserved() const { return windowIndex_; }

  private:
    /** The last window's derived values, read by the probes. */
    struct Current
    {
        double windowInsns = 0;
        double windowCycles = 0;
        double ipc = 0;
        double critVpu = 0;
        double critBpu = 0;
        double critMlc = 0;
        double mispredLarge = 0;
        double mispredSmall = 0;
        double l2HitsPerKilo = 0;
        double vpuOn = 1;
        double bpuOn = 1;
        double mlcActiveFrac = 1;
        double stallCycles = 0;
        double vpuGatedFrac = 0;
        double bpuGatedFrac = 0;
        double vpuLeakageJ = 0;
        double bpuLeakageJ = 0;
        double mlcLeakageJ = 0;
    };

    MetricsRegistry &registry_;
    const CorePowerModel *power_;
    double frequencyHz_;
    unsigned mlcAssoc_;

    Current cur_;
    std::uint64_t windowIndex_ = 0;
    InsnCount cumInsns_ = 0;
    Cycles lastEdge_ = 0;

    // Previous-edge gating stats, for per-window deltas. Kept as
    // plain numbers to avoid a GatingStats include dependency here.
    double prevStall_ = 0;
    double prevVpuGated_ = 0;
    double prevBpuGated_ = 0;
    double prevMlcFull_ = 0;
    double prevMlcHalf_ = 0;
    double prevMlcQuarter_ = 0;
    double prevMlcOne_ = 0;
};

} // namespace telemetry
} // namespace powerchop

#endif // POWERCHOP_TELEMETRY_METRICS_HH
