#include "telemetry/profiler.hh"

#include "common/env.hh"

namespace powerchop
{
namespace telemetry
{

void
StageProfiler::record(const std::string &stage, double seconds)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    StageTime &st = stages_[stage];
    if (st.name.empty())
        st.name = stage;
    st.seconds += seconds;
    ++st.count;
}

std::vector<StageTime>
StageProfiler::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<StageTime> out;
    out.reserve(stages_.size());
    for (const auto &[name, st] : stages_)
        out.push_back(st);
    return out;
}

void
StageProfiler::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    stages_.clear();
}

bool
StageProfiler::enabledByEnv()
{
    return envUint64("POWERCHOP_PROFILE", 0, 1).value_or(0) != 0;
}

StageProfiler &
StageProfiler::global()
{
    static StageProfiler instance(enabledByEnv());
    return instance;
}

} // namespace telemetry
} // namespace powerchop
