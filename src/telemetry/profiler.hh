/**
 * @file
 * Wall-clock stage profiling for the simulation job runner.
 *
 * A StageProfiler accumulates wall-clock seconds per named stage
 * ("translate", "simulate", "retry") so the runner report can break
 * total busy time down by where it went. Unlike the trace recorder
 * and metrics registry — whose contents are deterministic simulation
 * state — stage times are host measurements: they never appear in
 * simulation results or traces, only in the (already wall-clock-
 * bearing) runner report, so determinism guarantees are unaffected.
 *
 * The profiler is shared by all worker threads of one runner and is
 * therefore internally locked; a disabled profiler (the default, see
 * POWERCHOP_PROFILE) costs one branch per scope.
 */

#ifndef POWERCHOP_TELEMETRY_PROFILER_HH
#define POWERCHOP_TELEMETRY_PROFILER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace powerchop
{
namespace telemetry
{

/** Accumulated wall-clock time of one named stage. */
struct StageTime
{
    std::string name;
    double seconds = 0;
    std::uint64_t count = 0; ///< Scopes recorded into this stage.
};

/**
 * Thread-safe per-stage wall-clock accumulator.
 */
class StageProfiler
{
  public:
    /** @param enabled A disabled profiler ignores record() calls. */
    explicit StageProfiler(bool enabled = false) : enabled_(enabled) {}

    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Arm or disarm the profiler at runtime: the --profile CLI flag
     *  is parity for POWERCHOP_PROFILE, which global() latched at
     *  first use. Atomic, so drivers may flip it while workers run
     *  (scopes in flight record or not — stage *totals* are host
     *  measurements either way, never simulation state). */
    void
    setEnabled(bool enabled)
    {
        enabled_.store(enabled, std::memory_order_relaxed);
    }

    /** Add one timed scope to a stage. No-op when disabled. */
    void record(const std::string &stage, double seconds);

    /** All stages with recorded time, sorted by name. */
    std::vector<StageTime> snapshot() const;

    /** Drop all recorded stages. */
    void reset();

    /** @return true when POWERCHOP_PROFILE is set to a non-zero
     *  value (the runner's enable knob). */
    static bool enabledByEnv();

    /**
     * The process-wide profiler, enabled by POWERCHOP_PROFILE at
     * first use. simulate() records into it when no per-run profiler
     * is attached, and the job runner snapshots it into the runner
     * report — so stage times cover every simulation of the process,
     * including ones driven through generic runTasks() closures that
     * build their own SimOptions.
     */
    static StageProfiler &global();

  private:
    std::atomic<bool> enabled_;
    mutable std::mutex mutex_;
    std::map<std::string, StageTime> stages_;
};

/**
 * RAII timer recording one scope into a profiler stage.
 *
 * The profiler pointer may be null (records nothing), so call sites
 * need no conditional scoping.
 */
class ScopedStageTimer
{
  public:
    ScopedStageTimer(StageProfiler *profiler, std::string stage)
        : profiler_(profiler), stage_(std::move(stage)),
          start_(std::chrono::steady_clock::now())
    {
    }

    ScopedStageTimer(const ScopedStageTimer &) = delete;
    ScopedStageTimer &operator=(const ScopedStageTimer &) = delete;

    ~ScopedStageTimer() { stop(); }

    /** Record the elapsed time now; the destructor becomes a no-op. */
    void
    stop()
    {
        if (!profiler_)
            return;
        const auto end = std::chrono::steady_clock::now();
        profiler_->record(
            stage_,
            std::chrono::duration<double>(end - start_).count());
        profiler_ = nullptr;
    }

  private:
    StageProfiler *profiler_;
    std::string stage_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace telemetry
} // namespace powerchop

#endif // POWERCHOP_TELEMETRY_PROFILER_HH
