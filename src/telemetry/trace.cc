#include "telemetry/trace.hh"

#include "common/logging.hh"

namespace powerchop
{
namespace telemetry
{

void
TelemetryParams::validate(const std::string &who) const
{
    if (maxEvents == 0)
        fatal("%s: telemetry.maxEvents must be non-zero", who.c_str());
}

void
TraceRecorder::beginRun(const std::string &workload,
                        const std::string &machine,
                        const std::string &mode,
                        const TelemetryParams &params)
{
    params_ = params;
    workload_ = workload;
    machine_ = machine;
    mode_ = mode;
    events_.clear();
    dropped_ = 0;
    nowInsns_ = 0;
    nowCycles_ = 0;
    endInsns_ = 0;
    endCycles_ = 0;
}

void
TraceRecorder::endRun(InsnCount insns, Cycles cycles)
{
    endInsns_ = insns;
    endCycles_ = cycles;
}

void
TraceRecorder::push(TraceEventKind kind, std::uint64_t a0,
                    std::uint64_t a1, double d)
{
    if (events_.size() >= params_.maxEvents) {
        ++dropped_;
        return;
    }
    events_.push_back({kind, nowInsns_, nowCycles_, a0, a1, d});
}

void
TraceRecorder::gateState(GateUnit unit, std::uint64_t state,
                         double stall_cycles)
{
    if (!params_.traceGating)
        return;
    TraceEventKind kind;
    switch (unit) {
      case GateUnit::Vpu:
        kind = TraceEventKind::GateVpu;
        break;
      case GateUnit::Bpu:
        kind = TraceEventKind::GateBpu;
        break;
      case GateUnit::Mlc:
        kind = TraceEventKind::GateMlc;
        break;
      default:
        panic("gateState: unknown unit %d", static_cast<int>(unit));
    }
    push(kind, state, 0, stall_cycles);
}

void
TraceRecorder::window(std::uint64_t index, InsnCount window_insns,
                      double window_ipc)
{
    if (params_.traceWindows)
        push(TraceEventKind::Window, index, window_insns, window_ipc);
}

void
TraceRecorder::phase(std::uint64_t signature_hash)
{
    if (params_.tracePhases)
        push(TraceEventKind::Phase, signature_hash, 0, 0);
}

void
TraceRecorder::cde(CdeEvent what, std::uint8_t policy_bits)
{
    if (params_.traceCde) {
        push(TraceEventKind::Cde, static_cast<std::uint64_t>(what),
             policy_bits, 0);
    }
}

void
TraceRecorder::qosViolation()
{
    if (params_.traceQos)
        push(TraceEventKind::QosViolation, 0, 0, 0);
}

void
TraceRecorder::safeMode(bool enter)
{
    if (params_.traceQos) {
        push(enter ? TraceEventKind::SafeModeEnter
                   : TraceEventKind::SafeModeExit,
             0, 0, 0);
    }
}

void
TraceRecorder::fault(FaultEvent what)
{
    if (params_.traceFaults)
        push(TraceEventKind::Fault, static_cast<std::uint64_t>(what),
             0, 0);
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += csprintf("\\u%04x", c);
            else
                out += c;
        }
    }
    return out;
}

const char *
gateUnitName(GateUnit u)
{
    switch (u) {
      case GateUnit::Vpu:
        return "VPU";
      case GateUnit::Bpu:
        return "BPU";
      case GateUnit::Mlc:
        return "MLC";
    }
    panic("unknown GateUnit %d", static_cast<int>(u));
}

const char *
cdeEventName(CdeEvent e)
{
    switch (e) {
      case CdeEvent::PvtHit:
        return "pvt-hit";
      case CdeEvent::ProfileStart:
        return "profile-start";
      case CdeEvent::Profiling:
        return "profiling";
      case CdeEvent::Install:
        return "install";
      case CdeEvent::Reregister:
        return "reregister";
    }
    panic("unknown CdeEvent %d", static_cast<int>(e));
}

const char *
faultEventName(FaultEvent e)
{
    switch (e) {
      case FaultEvent::PolicyCorrupt:
        return "policy-corrupt";
      case FaultEvent::HtbDrop:
        return "htb-drop";
      case FaultEvent::HtbAlias:
        return "htb-alias";
      case FaultEvent::ControllerFlip:
        return "controller-flip";
      case FaultEvent::WakeupStretch:
        return "wakeup-stretch";
    }
    panic("unknown FaultEvent %d", static_cast<int>(e));
}

} // namespace telemetry
} // namespace powerchop
