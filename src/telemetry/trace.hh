/**
 * @file
 * Structured gating-event tracing for the PowerChop simulator.
 *
 * A TraceRecorder is a per-run (and therefore per-job: one recorder
 * per simulate() call, never shared across threads) append-only buffer
 * of typed events, each stamped with the instruction count and cycle
 * time at which it occurred. The components of the gating stack emit
 * into it through observer hooks that are null by default, so a run
 * without a recorder attached pays nothing and produces bit-identical
 * results; a run with one attached also produces bit-identical
 * results, because recording never feeds back into simulation state.
 *
 * Recorded event classes (each gated by a TelemetryParams flag):
 *  - gate-state transitions of the VPU / BPU / MLC with their stall
 *    cycles (from the gating controller);
 *  - HTB window reports and phase-signature changes;
 *  - CDE activity: PVT hits, profiling starts/continues, policy
 *    installs and capacity-miss re-registrations;
 *  - QoS watchdog violations and safe-mode entry/exit;
 *  - fault-injector activations, one event per injected fault.
 *
 * Timestamps come exclusively from simulation state (instructions,
 * cycles) — never from wall clocks — so the same (config, workload,
 * seed) produces a byte-identical trace on any worker count.
 * chrome_trace.hh turns recorders into Chrome trace-event JSON that
 * opens directly in Perfetto / chrome://tracing.
 */

#ifndef POWERCHOP_TELEMETRY_TRACE_HH
#define POWERCHOP_TELEMETRY_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace powerchop
{
namespace telemetry
{

/** Telemetry configuration carried by MachineConfig. Only consulted
 *  when a recorder is actually attached to the run. */
struct TelemetryParams
{
    /** Hard cap on recorded events per run; once reached, further
     *  events are dropped (and counted) instead of growing the buffer
     *  without bound on pathological configs. */
    std::size_t maxEvents = 1u << 20;

    /** Per-class recording switches. @{ */
    bool traceGating = true;
    bool traceWindows = true;
    bool tracePhases = true;
    bool traceCde = true;
    bool traceQos = true;
    bool traceFaults = true;
    /** @} */

    /** fatal() on out-of-range values, naming the bad field.
     *  @param who Owner name used in the error message. */
    void validate(const std::string &who) const;
};

/** The three gateable units, as trace track identities. */
enum class GateUnit : std::uint8_t
{
    Vpu,
    Bpu,
    Mlc,
};

/** CDE decision classes distinguished in the trace. */
enum class CdeEvent : std::uint8_t
{
    PvtHit,       ///< PVT hit; policy applied in hardware.
    ProfileStart, ///< New phase began profiling.
    Profiling,    ///< Known phase still collecting windows.
    Install,      ///< Policy scored and registered with the PVT.
    Reregister,   ///< Capacity miss; stored policy re-registered.
};

/** Fault-injector activation classes. */
enum class FaultEvent : std::uint8_t
{
    PolicyCorrupt,
    HtbDrop,
    HtbAlias,
    ControllerFlip,
    WakeupStretch,
};

/** Typed event kinds stored in the buffer. */
enum class TraceEventKind : std::uint8_t
{
    GateVpu,      ///< a0 = new state (1 on / 0 gated), d = stall cyc.
    GateBpu,      ///< a0 = new state (1 on / 0 gated), d = stall cyc.
    GateMlc,      ///< a0 = MlcPolicy value, d = stall cycles.
    Window,       ///< a0 = window index, a1 = window insns, d = IPC.
    Phase,        ///< a0 = phase-signature hash.
    Cde,          ///< a0 = CdeEvent, a1 = policy encode (when known).
    QosViolation, ///< one slow window observed by the watchdog.
    SafeModeEnter,
    SafeModeExit,
    Fault,        ///< a0 = FaultEvent.
};

/** One recorded event. Payload meaning depends on `kind`. */
struct TraceEvent
{
    TraceEventKind kind;
    InsnCount insns = 0;
    Cycles cycles = 0;
    std::uint64_t a0 = 0;
    std::uint64_t a1 = 0;
    double d = 0;
};

/**
 * Per-run event buffer.
 *
 * Lifecycle: beginRun() (called by simulate() when attached) stamps
 * the run's identity and resets the buffer; the components emit
 * through the typed helpers; endRun() records the final timestamp so
 * the exporter can close open state spans. A recorder is single-
 * threaded by construction — one per job — and merged traces are
 * ordered by job submission index at export time.
 */
class TraceRecorder
{
  public:
    TraceRecorder() = default;

    /** Reset the buffer and stamp the run's identity. */
    void beginRun(const std::string &workload,
                  const std::string &machine, const std::string &mode,
                  const TelemetryParams &params);

    /** Record the end-of-run timestamp. */
    void endRun(InsnCount insns, Cycles cycles);

    /** Advance the recorder's notion of "now"; every subsequent event
     *  is stamped with these values. Called by the simulator at
     *  translation heads (the resolution of gating activity). */
    void
    setNow(InsnCount insns, Cycles cycles)
    {
        nowInsns_ = insns;
        nowCycles_ = cycles;
    }

    /** Advance only the cycle component of "now" by a stall that the
     *  emitting component just charged (nucleus interrupts, CDE work,
     *  gating transitions). Events recorded while a translation-head
     *  window is serviced would otherwise all carry the head's stamp;
     *  the components that know the stall but not the global
     *  instruction count use this to keep the trace clock honest.
     *  Negative deltas are ignored — the clock never rewinds. */
    void
    advanceCycles(double delta)
    {
        if (delta > 0)
            nowCycles_ += delta;
    }

    /** The recorder's current clock (for advancing components). @{ */
    InsnCount nowInsns() const { return nowInsns_; }
    Cycles nowCycles() const { return nowCycles_; }
    /** @} */

    /** Typed emitters; each checks its class switch and the cap. @{ */
    void gateState(GateUnit unit, std::uint64_t state,
                   double stall_cycles);
    void window(std::uint64_t index, InsnCount window_insns,
                double window_ipc);
    void phase(std::uint64_t signature_hash);
    void cde(CdeEvent what, std::uint8_t policy_bits);
    void qosViolation();
    void safeMode(bool enter);
    void fault(FaultEvent what);
    /** @} */

    /** Run identity and boundaries. @{ */
    const std::string &workload() const { return workload_; }
    const std::string &machine() const { return machine_; }
    const std::string &mode() const { return mode_; }
    InsnCount endInsns() const { return endInsns_; }
    Cycles endCycles() const { return endCycles_; }
    /** @} */

    const std::vector<TraceEvent> &events() const { return events_; }

    /** Events discarded after the maxEvents cap was hit. */
    std::uint64_t droppedEvents() const { return dropped_; }

  private:
    void push(TraceEventKind kind, std::uint64_t a0, std::uint64_t a1,
              double d);

    TelemetryParams params_;
    std::string workload_;
    std::string machine_;
    std::string mode_;
    std::vector<TraceEvent> events_;
    std::uint64_t dropped_ = 0;
    InsnCount nowInsns_ = 0;
    Cycles nowCycles_ = 0;
    InsnCount endInsns_ = 0;
    Cycles endCycles_ = 0;
};

/** Escape a string for embedding in a JSON string literal. */
std::string jsonEscape(const std::string &s);

/** @return display name of a gate unit ("VPU"/"BPU"/"MLC"). */
const char *gateUnitName(GateUnit u);

/** @return display name of a CDE event ("pvt-hit", "install", ...). */
const char *cdeEventName(CdeEvent e);

/** @return display name of a fault event ("policy-corrupt", ...). */
const char *faultEventName(FaultEvent e);

} // namespace telemetry
} // namespace powerchop

#endif // POWERCHOP_TELEMETRY_TRACE_HH
