#include "uarch/agree.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace powerchop
{

AgreePredictor::AgreePredictor(unsigned entries, unsigned bias_entries,
                               unsigned history_bits)
    : agreeTable_(entries, SatCounter(2, 2)),
      biasTable_(bias_entries),
      patternMask_(entries - 1),
      biasMask_(bias_entries - 1),
      historyMask_((1ull << history_bits) - 1)
{
    if (!isPowerOf2(entries) || !isPowerOf2(bias_entries))
        fatal("agree predictor table sizes must be powers of two");
    if (history_bits == 0 || history_bits > 24)
        fatal("agree history bits (%u) out of range", history_bits);
}

std::size_t
AgreePredictor::patternIndex(Addr pc) const
{
    return (history_ ^ (pc >> 2)) & patternMask_;
}

std::size_t
AgreePredictor::biasIndex(Addr pc) const
{
    return (pc >> 2) & biasMask_;
}

bool
AgreePredictor::lookup(Addr pc)
{
    const BiasEntry &b = biasTable_[biasIndex(pc)];
    // Until the bias is set the predictor guesses taken (the common
    // static heuristic).
    bool bias = b.set ? b.bias : true;
    bool agrees = agreeTable_[patternIndex(pc)].isSet();
    return agrees ? bias : !bias;
}

void
AgreePredictor::train(Addr pc, bool taken)
{
    BiasEntry &b = biasTable_[biasIndex(pc)];
    if (!b.set) {
        // First resolution fixes the bias bit.
        b.set = true;
        b.bias = taken;
    }

    SatCounter &ctr = agreeTable_[patternIndex(pc)];
    if (taken == b.bias)
        ctr.increment();
    else
        ctr.decrement();

    history_ = ((history_ << 1) | (taken ? 1u : 0u)) & historyMask_;
}

void
AgreePredictor::reset()
{
    for (auto &c : agreeTable_)
        c.reset(2);
    for (auto &b : biasTable_)
        b = BiasEntry{};
    history_ = 0;
}

} // namespace powerchop
