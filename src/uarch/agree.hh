/**
 * @file
 * Agree predictor (Sprangle et al., ISCA 1997).
 *
 * One of the predictor families the paper's Section III lists as
 * tournament ingredients. Each branch carries a bias bit (set from
 * its first resolved outcome); a gshare-indexed pattern table then
 * predicts whether the outcome *agrees* with the bias. Because most
 * branches agree with their bias most of the time, aliasing between
 * unrelated branches in the pattern table becomes constructive
 * instead of destructive.
 */

#ifndef POWERCHOP_UARCH_AGREE_HH
#define POWERCHOP_UARCH_AGREE_HH

#include <vector>

#include "common/sat_counter.hh"
#include "uarch/direction_predictor.hh"

namespace powerchop
{

/** Agree predictor. */
class AgreePredictor : public DirectionPredictor
{
  public:
    /**
     * @param entries      Agree pattern-table entries (power of two).
     * @param bias_entries Bias-bit table entries (power of two).
     * @param history_bits Global history length.
     */
    explicit AgreePredictor(unsigned entries = 4096,
                            unsigned bias_entries = 2048,
                            unsigned history_bits = 8);

    void reset() override;

  protected:
    bool lookup(Addr pc) override;
    void train(Addr pc, bool taken) override;

  private:
    std::size_t patternIndex(Addr pc) const;
    std::size_t biasIndex(Addr pc) const;

    struct BiasEntry
    {
        bool set = false;
        bool bias = false;
    };

    /** Counters predict "agrees with bias" in the upper half. */
    std::vector<SatCounter> agreeTable_;
    std::vector<BiasEntry> biasTable_;
    std::size_t patternMask_;
    std::size_t biasMask_;
    std::uint64_t history_ = 0;
    std::uint64_t historyMask_;
};

} // namespace powerchop

#endif // POWERCHOP_UARCH_AGREE_HH
