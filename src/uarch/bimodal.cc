#include "uarch/bimodal.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace powerchop
{

BimodalPredictor::BimodalPredictor(unsigned entries)
    : table_(entries, SatCounter(2, 1)), mask_(entries - 1)
{
    if (!isPowerOf2(entries))
        fatal("bimodal predictor entries (%u) must be a power of two",
              entries);
}

std::size_t
BimodalPredictor::index(Addr pc) const
{
    return (pc >> 2) & mask_;
}

bool
BimodalPredictor::lookup(Addr pc)
{
    return table_[index(pc)].isSet();
}

void
BimodalPredictor::train(Addr pc, bool taken)
{
    SatCounter &ctr = table_[index(pc)];
    if (taken)
        ctr.increment();
    else
        ctr.decrement();
}

void
BimodalPredictor::reset()
{
    for (auto &c : table_)
        c.reset(1);
}

} // namespace powerchop
