#include "uarch/bimodal.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace powerchop
{

BimodalPredictor::BimodalPredictor(unsigned entries)
    : table_(entries, SatCounter(2, 1)), mask_(entries - 1)
{
    if (!isPowerOf2(entries))
        fatal("bimodal predictor entries (%u) must be a power of two",
              entries);
}

void
BimodalPredictor::reset()
{
    for (auto &c : table_)
        c.reset(1);
}

} // namespace powerchop
