/**
 * @file
 * Bimodal (per-PC 2-bit counter) direction predictor.
 */

#ifndef POWERCHOP_UARCH_BIMODAL_HH
#define POWERCHOP_UARCH_BIMODAL_HH

#include <vector>

#include "common/sat_counter.hh"
#include "uarch/direction_predictor.hh"

namespace powerchop
{

/**
 * The classic bimodal predictor: a table of 2-bit saturating counters
 * indexed by the branch PC.
 */
class BimodalPredictor : public DirectionPredictor
{
  public:
    /**
     * @param entries Table size; must be a power of two.
     */
    explicit BimodalPredictor(unsigned entries = 1024);

    void reset() override;

    unsigned numEntries() const { return table_.size(); }

    /**
     * Non-virtual inline predict-and-train for the BPU complex's hot
     * path; identical to predictAndTrain() through the virtuals.
     */
    bool
    predictAndTrainFast(Addr pc, bool taken)
    {
        SatCounter &ctr = table_[index(pc)];
        const bool pred = ctr.isSet();
        noteOutcome(pred, taken);
        if (taken)
            ctr.increment();
        else
            ctr.decrement();
        return pred;
    }

  protected:
    bool lookup(Addr pc) override { return table_[index(pc)].isSet(); }

    void
    train(Addr pc, bool taken) override
    {
        SatCounter &ctr = table_[index(pc)];
        if (taken)
            ctr.increment();
        else
            ctr.decrement();
    }

  private:
    std::size_t index(Addr pc) const { return (pc >> 2) & mask_; }

    std::vector<SatCounter> table_;
    std::size_t mask_;
};

} // namespace powerchop

#endif // POWERCHOP_UARCH_BIMODAL_HH
