#include "uarch/bpu_complex.hh"

#include "common/logging.hh"
#include "uarch/agree.hh"
#include "uarch/perceptron.hh"

namespace powerchop
{

const char *
largePredictorKindName(LargePredictorKind k)
{
    switch (k) {
      case LargePredictorKind::Tournament:
        return "tournament";
      case LargePredictorKind::Agree:
        return "agree";
      case LargePredictorKind::Perceptron:
        return "perceptron";
    }
    panic("unknown LargePredictorKind %d", static_cast<int>(k));
}

std::unique_ptr<DirectionPredictor>
BpuComplex::makeLarge(const BpuParams &params)
{
    switch (params.largeKind) {
      case LargePredictorKind::Tournament:
        return std::make_unique<TournamentPredictor>(params.large);
      case LargePredictorKind::Agree:
        return std::make_unique<AgreePredictor>(
            params.large.globalEntries,
            params.large.localPatternEntries,
            params.large.globalHistoryBits);
      case LargePredictorKind::Perceptron:
        return std::make_unique<PerceptronPredictor>(
            params.large.localHistoryEntries,
            params.large.globalHistoryBits * 2);
    }
    panic("unknown LargePredictorKind %d",
          static_cast<int>(params.largeKind));
}

BpuComplex::BpuComplex(const BpuParams &params)
    : params_(params),
      large_(makeLarge(params)),
      shadowLarge_(makeLarge(params)),
      small_(params.smallPredictorEntries),
      largeBtb_(params.largeBtbEntries, params.btbAssoc),
      smallBtb_(params.smallBtbEntries, params.btbAssoc)
{
    if (params.largeKind == LargePredictorKind::Tournament) {
        tournamentLarge_ =
            static_cast<TournamentPredictor *>(large_.get());
        tournamentShadow_ =
            static_cast<TournamentPredictor *>(shadowLarge_.get());
    }
}

void
BpuComplex::gateLargeOff()
{
    if (!largeOn_)
        return;
    largeOn_ = false;
    // Global, chooser and BTB state is lost when the supply voltage is
    // cut (Table I "Gated Off State").
    large_->reset();
    largeBtb_.reset();
}

void
BpuComplex::gateLargeOn()
{
    largeOn_ = true;
    // Nothing to restore: the unit re-warms from scratch.
}

double
BpuComplex::largeWindowMispredictRate() const
{
    // Profiling reads the never-gated shadow so a freshly regated
    // (cold) large predictor does not masquerade as non-critical.
    return shadowLarge_->windowMispredictRate();
}

double
BpuComplex::smallWindowMispredictRate() const
{
    return small_.windowMispredictRate();
}

void
BpuComplex::resetWindowStats()
{
    large_->resetWindow();
    shadowLarge_->resetWindow();
    small_.resetWindow();
}

} // namespace powerchop
