/**
 * @file
 * The branch prediction unit complex managed by PowerChop.
 *
 * Table I models the BPU as a large tournament (local/global with
 * chooser and big BTB) that can be power gated down to a small
 * local-only predictor with a small BTB. Both predictors are always
 * simulated so the Criticality Decision Engine can read both
 * mispredict rates from "hardware performance monitors" during its
 * profiling windows; only the active one determines timing. Gating
 * the large side off loses its global, chooser and BTB state, which
 * must re-warm after regating (Section IV-D).
 *
 * Profiling additionally uses a never-gated *shadow* copy of the
 * large predictor so MisPred_Large reflects the steady-state benefit
 * of the unit rather than its post-regate re-warm transient. This is
 * the predictor-side analogue of shadow-tag cache monitors and is
 * what a robust implementation of the paper's "hardware performance
 * monitors" requires (see DESIGN.md).
 */

#ifndef POWERCHOP_UARCH_BPU_COMPLEX_HH
#define POWERCHOP_UARCH_BPU_COMPLEX_HH

#include <cstdint>
#include <memory>

#include "common/types.hh"
#include "uarch/bimodal.hh"
#include "uarch/btb.hh"
#include "uarch/direction_predictor.hh"
#include "uarch/tournament.hh"

namespace powerchop
{

/** Organization of the large (gateable) predictor. The paper's
 *  Section III lists local/global/hybrid/adaptive/agree/neural as the
 *  families tournaments draw from; the tournament is Table I's
 *  configuration and the others are selectable alternatives. */
enum class LargePredictorKind : std::uint8_t
{
    Tournament,
    Agree,
    Perceptron,
};

/** @return a display name for a large-predictor organization. */
const char *largePredictorKindName(LargePredictorKind k);

/** Geometry of the BPU complex (Table I). */
struct BpuParams
{
    LargePredictorKind largeKind = LargePredictorKind::Tournament;
    TournamentParams large;
    unsigned largeBtbEntries = 4096;
    unsigned smallPredictorEntries = 1024;
    unsigned smallBtbEntries = 1024;
    unsigned btbAssoc = 4;
};

/** Result of predicting one branch through the active predictor. */
struct BpuOutcome
{
    bool directionMispredict = false;
    bool targetMiss = false;
};

/**
 * The gateable BPU complex: large tournament + small local predictor.
 */
class BpuComplex
{
  public:
    explicit BpuComplex(const BpuParams &params = {});

    /**
     * Predict a branch through the currently active predictor and
     * train both (the inactive one trains as a shadow for profiling;
     * while the large unit is physically gated its shadow stats are
     * still defined because profiling windows only run when it is on).
     *
     * The default tournament organization takes a devirtualized
     * inline path (predictAndTrainFast); other organizations go
     * through the DirectionPredictor interface. Results are identical
     * either way.
     *
     * @param pc     Branch PC.
     * @param taken  Resolved direction.
     * @param target Resolved target (used when taken).
     * @return the active predictor's outcome quality.
     */
    BpuOutcome
    predict(Addr pc, bool taken, Addr target)
    {
        ++branches_;

        // Both predictors observe every branch so that profiling
        // windows can compare their accuracies; this mirrors the
        // paper's use of hardware performance monitors for
        // MisPred_Large/MisPred_Small.
        bool large_pred;
        if (tournamentLarge_) {
            large_pred = tournamentLarge_->predictAndTrainFast(pc, taken);
            tournamentShadow_->predictAndTrainFast(pc, taken);
        } else {
            large_pred = large_->predictAndTrain(pc, taken);
            shadowLarge_->predictAndTrain(pc, taken);
        }
        bool small_pred = small_.predictAndTrainFast(pc, taken);

        BpuOutcome out;
        bool active_pred = largeOn_ ? large_pred : small_pred;
        out.directionMispredict = (active_pred != taken);

        if (taken) {
            bool large_hit = largeBtb_.predictAndUpdate(pc, target);
            bool small_hit = smallBtb_.predictAndUpdate(pc, target);
            out.targetMiss = largeOn_ ? !large_hit : !small_hit;
        }

        if (out.directionMispredict)
            ++activeMispredicts_;
        if (out.targetMiss)
            ++activeTargetMisses_;
        return out;
    }

    /**
     * Predict an indirect region-chaining jump: BTB target prediction
     * only, no direction prediction (the jump is always taken).
     *
     * @param pc     Jump PC.
     * @param target Resolved target.
     * @return targetMiss set when the active BTB lacked the target.
     */
    BpuOutcome
    predictIndirect(Addr pc, Addr target)
    {
        BpuOutcome out;
        bool large_hit = largeBtb_.predictAndUpdate(pc, target);
        bool small_hit = smallBtb_.predictAndUpdate(pc, target);
        out.targetMiss = largeOn_ ? !large_hit : !small_hit;
        if (out.targetMiss)
            ++activeTargetMisses_;
        return out;
    }

    /** Gate the large side off: timing falls back to the small
     *  predictor and all large-side state is lost. */
    void gateLargeOff();

    /** Gate the large side back on; it restarts cold (re-warm). */
    void gateLargeOn();

    bool largeOn() const { return largeOn_; }

    /** Window mispredict rates for CDE profiling. @{ */
    double largeWindowMispredictRate() const;
    double smallWindowMispredictRate() const;
    void resetWindowStats();
    /** @} */

    /** Lifetime stats. @{ */
    std::uint64_t branches() const { return branches_; }
    std::uint64_t activeMispredicts() const { return activeMispredicts_; }
    std::uint64_t activeTargetMisses() const { return activeTargetMisses_; }
    /** @} */

    const DirectionPredictor &large() const { return *large_; }
    const BimodalPredictor &small() const { return small_; }

  private:
    /** Build a large predictor of the configured organization. */
    static std::unique_ptr<DirectionPredictor>
    makeLarge(const BpuParams &params);

    BpuParams params_;
    std::unique_ptr<DirectionPredictor> large_;
    /** Never-reset shadow of the large predictor; profiling only. */
    std::unique_ptr<DirectionPredictor> shadowLarge_;
    /** Concrete aliases of large_/shadowLarge_ when the organization
     *  is the default tournament; enables the inline fast path. @{ */
    TournamentPredictor *tournamentLarge_ = nullptr;
    TournamentPredictor *tournamentShadow_ = nullptr;
    /** @} */
    BimodalPredictor small_;
    Btb largeBtb_;
    Btb smallBtb_;
    bool largeOn_ = true;

    std::uint64_t branches_ = 0;
    std::uint64_t activeMispredicts_ = 0;
    std::uint64_t activeTargetMisses_ = 0;
};

} // namespace powerchop

#endif // POWERCHOP_UARCH_BPU_COMPLEX_HH
