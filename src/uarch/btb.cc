#include "uarch/btb.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace powerchop
{

Btb::Btb(unsigned entries, unsigned assoc)
    : entries_(entries), assoc_(assoc),
      numSets_(assoc ? entries / assoc : 0), table_(entries)
{
    if (!isPowerOf2(entries) || assoc == 0 || entries % assoc != 0)
        fatal("BTB geometry invalid: %u entries, %u-way", entries, assoc);
    if (!isPowerOf2(numSets_))
        fatal("BTB set count must be a power of two");
}

bool
Btb::predictAndUpdate(Addr pc, Addr target)
{
    ++lookups_;
    ++tick_;

    const std::size_t set = (pc >> 2) & (numSets_ - 1);
    Entry *base = &table_[set * assoc_];

    // Full match scan first, then victim selection: prefer the first
    // invalid way, else the LRU way.
    Entry *match = nullptr;
    for (unsigned w = 0; w < assoc_; ++w) {
        Entry &e = base[w];
        if (e.valid && e.pc == pc) {
            match = &e;
            break;
        }
    }
    Entry *victim = &base[0];
    if (!match) {
        for (unsigned w = 0; w < assoc_; ++w) {
            Entry &e = base[w];
            if (!e.valid) {
                victim = &e;
                break;
            }
            if (e.lruStamp < victim->lruStamp)
                victim = &e;
        }
    }

    bool hit = false;
    if (match) {
        hit = (match->target == target);
        match->target = target;
        match->lruStamp = tick_;
    } else {
        victim->valid = true;
        victim->pc = pc;
        victim->target = target;
        victim->lruStamp = tick_;
    }

    if (!hit)
        ++misses_;
    return hit;
}

void
Btb::reset()
{
    for (auto &e : table_)
        e.valid = false;
}

} // namespace powerchop
