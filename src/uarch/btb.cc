#include "uarch/btb.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace powerchop
{

Btb::Btb(unsigned entries, unsigned assoc)
    : entries_(entries), assoc_(assoc),
      numSets_(assoc ? entries / assoc : 0), table_(entries)
{
    if (!isPowerOf2(entries) || assoc == 0 || entries % assoc != 0)
        fatal("BTB geometry invalid: %u entries, %u-way", entries, assoc);
    if (!isPowerOf2(numSets_))
        fatal("BTB set count must be a power of two");
}

void
Btb::reset()
{
    for (auto &e : table_)
        e.valid = false;
}

} // namespace powerchop
