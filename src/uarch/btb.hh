/**
 * @file
 * Branch target buffer: a set-associative cache of branch targets.
 *
 * The paper's Table I gives the small BPU a 1K-entry (mobile: 512)
 * BTB and the large BPU a 4K-entry (mobile: 2K) BTB. Taken branches
 * whose targets miss in the active BTB cost a fetch bubble.
 */

#ifndef POWERCHOP_UARCH_BTB_HH
#define POWERCHOP_UARCH_BTB_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace powerchop
{

/** Set-associative branch target buffer with LRU replacement. */
class Btb
{
  public:
    /**
     * @param entries Total entries (power of two).
     * @param assoc   Associativity (divides entries).
     */
    explicit Btb(unsigned entries = 1024, unsigned assoc = 4);

    /**
     * Look up the predicted target for a branch, then install the
     * actual target.
     *
     * @param pc     Branch PC.
     * @param target Actual resolved target.
     * @return true if the BTB held the correct target (hit).
     */
    bool
    predictAndUpdate(Addr pc, Addr target)
    {
        ++lookups_;
        ++tick_;

        const std::size_t set = (pc >> 2) & (numSets_ - 1);
        Entry *base = &table_[set * assoc_];

        // Full match scan first, then victim selection: prefer the
        // first invalid way, else the LRU way.
        Entry *match = nullptr;
        for (unsigned w = 0; w < assoc_; ++w) {
            Entry &e = base[w];
            if (e.valid && e.pc == pc) {
                match = &e;
                break;
            }
        }
        Entry *victim = &base[0];
        if (!match) {
            for (unsigned w = 0; w < assoc_; ++w) {
                Entry &e = base[w];
                if (!e.valid) {
                    victim = &e;
                    break;
                }
                if (e.lruStamp < victim->lruStamp)
                    victim = &e;
            }
        }

        bool hit = false;
        if (match) {
            hit = (match->target == target);
            match->target = target;
            match->lruStamp = tick_;
        } else {
            victim->valid = true;
            victim->pc = pc;
            victim->target = target;
            victim->lruStamp = tick_;
        }

        if (!hit)
            ++misses_;
        return hit;
    }

    /** Drop all entries (state loss from power gating). */
    void reset();

    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t targetMisses() const { return misses_; }
    unsigned numEntries() const { return entries_; }

  private:
    struct Entry
    {
        bool valid = false;
        Addr pc = 0;
        Addr target = 0;
        std::uint64_t lruStamp = 0;
    };

    unsigned entries_;
    unsigned assoc_;
    unsigned numSets_;
    std::vector<Entry> table_;
    std::uint64_t tick_ = 0;
    std::uint64_t lookups_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace powerchop

#endif // POWERCHOP_UARCH_BTB_HH
