/**
 * @file
 * Branch target buffer: a set-associative cache of branch targets.
 *
 * The paper's Table I gives the small BPU a 1K-entry (mobile: 512)
 * BTB and the large BPU a 4K-entry (mobile: 2K) BTB. Taken branches
 * whose targets miss in the active BTB cost a fetch bubble.
 */

#ifndef POWERCHOP_UARCH_BTB_HH
#define POWERCHOP_UARCH_BTB_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace powerchop
{

/** Set-associative branch target buffer with LRU replacement. */
class Btb
{
  public:
    /**
     * @param entries Total entries (power of two).
     * @param assoc   Associativity (divides entries).
     */
    explicit Btb(unsigned entries = 1024, unsigned assoc = 4);

    /**
     * Look up the predicted target for a branch, then install the
     * actual target.
     *
     * @param pc     Branch PC.
     * @param target Actual resolved target.
     * @return true if the BTB held the correct target (hit).
     */
    bool predictAndUpdate(Addr pc, Addr target);

    /** Drop all entries (state loss from power gating). */
    void reset();

    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t targetMisses() const { return misses_; }
    unsigned numEntries() const { return entries_; }

  private:
    struct Entry
    {
        bool valid = false;
        Addr pc = 0;
        Addr target = 0;
        std::uint64_t lruStamp = 0;
    };

    unsigned entries_;
    unsigned assoc_;
    unsigned numSets_;
    std::vector<Entry> table_;
    std::uint64_t tick_ = 0;
    std::uint64_t lookups_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace powerchop

#endif // POWERCHOP_UARCH_BTB_HH
