#include "uarch/cache.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace powerchop
{

SetAssocCache::SetAssocCache(const CacheParams &params)
    : params_(params)
{
    if (params.lineBytes == 0 || !isPowerOf2(params.lineBytes))
        fatal("cache line size must be a power of two");
    if (params.assoc == 0)
        fatal("cache associativity must be non-zero");
    std::uint64_t lines = params.sizeBytes / params.lineBytes;
    if (lines == 0 || lines % params.assoc != 0)
        fatal("cache size/assoc/line geometry inconsistent");
    numSets_ = static_cast<unsigned>(lines / params.assoc);
    if (!isPowerOf2(numSets_))
        fatal("cache set count (%u) must be a power of two", numSets_);

    activeWays_ = params.assoc;
    lineShift_ = floorLog2(params.lineBytes);
    setShift_ = floorLog2(numSets_);
    tags_.assign(lines, 0);
    flags_.assign(lines, 0);
    lru_.assign(lines, 0);
}

std::uint64_t
SetAssocCache::drowseAll()
{
    std::uint64_t slept = 0;
    for (auto &f : flags_) {
        if ((f & (kValid | kDrowsy)) == kValid) {
            f = static_cast<std::uint8_t>(f | kDrowsy);
            ++slept;
        }
    }
    return slept;
}

std::uint64_t
SetAssocCache::awakeLineCount() const
{
    std::uint64_t n = 0;
    for (auto f : flags_)
        if ((f & (kValid | kDrowsy)) == kValid)
            ++n;
    return n;
}

std::uint64_t
SetAssocCache::setActiveWays(unsigned ways)
{
    if (ways == 0 || ways > params_.assoc)
        fatal("active ways %u out of [1, %u]", ways, params_.assoc);

    std::uint64_t dirty_writebacks = 0;
    if (ways < activeWays_) {
        // Ways [ways, activeWays_) power down: dirty lines are written
        // back to the LLC, clean lines are simply lost.
        for (unsigned set = 0; set < numSets_; ++set) {
            std::uint8_t *base =
                &flags_[static_cast<std::size_t>(set) * params_.assoc];
            for (unsigned w = ways; w < activeWays_; ++w) {
                std::uint8_t &f = base[w];
                if ((f & (kValid | kDirty)) == (kValid | kDirty)) {
                    ++dirty_writebacks;
                    ++writebacks_;
                }
                f = static_cast<std::uint8_t>(f & ~(kValid | kDirty));
            }
        }
    }
    // Ways powering up come back empty and re-warm through misses.
    activeWays_ = ways;
    return dirty_writebacks;
}

std::uint64_t
SetAssocCache::invalidateAll()
{
    std::uint64_t dirty = 0;
    for (auto &f : flags_) {
        if ((f & (kValid | kDirty)) == (kValid | kDirty)) {
            ++dirty;
            ++writebacks_;
        }
        f = static_cast<std::uint8_t>(f & ~(kValid | kDirty));
    }
    return dirty;
}

std::uint64_t
SetAssocCache::validLineCount() const
{
    std::uint64_t n = 0;
    for (auto f : flags_)
        if (f & kValid)
            ++n;
    return n;
}

} // namespace powerchop
