#include "uarch/cache.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace powerchop
{

SetAssocCache::SetAssocCache(const CacheParams &params)
    : params_(params)
{
    if (params.lineBytes == 0 || !isPowerOf2(params.lineBytes))
        fatal("cache line size must be a power of two");
    if (params.assoc == 0)
        fatal("cache associativity must be non-zero");
    std::uint64_t lines = params.sizeBytes / params.lineBytes;
    if (lines == 0 || lines % params.assoc != 0)
        fatal("cache size/assoc/line geometry inconsistent");
    numSets_ = static_cast<unsigned>(lines / params.assoc);
    if (!isPowerOf2(numSets_))
        fatal("cache set count (%u) must be a power of two", numSets_);

    activeWays_ = params.assoc;
    lines_.resize(lines);
}

std::size_t
SetAssocCache::setIndex(Addr addr) const
{
    return (addr / params_.lineBytes) & (numSets_ - 1);
}

Addr
SetAssocCache::tagOf(Addr addr) const
{
    return (addr / params_.lineBytes) >> floorLog2(numSets_);
}

CacheAccessResult
SetAssocCache::access(Addr addr, bool write)
{
    ++tick_;
    ++windowAccesses_;

    const std::size_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    Line *base = &lines_[set * params_.assoc];

    // Full match scan first, then victim selection: prefer the first
    // invalid way, else the LRU way among the active ways.
    Line *match = nullptr;
    for (unsigned w = 0; w < activeWays_; ++w) {
        Line &l = base[w];
        if (l.valid && l.tag == tag) {
            match = &l;
            break;
        }
    }
    Line *victim = &base[0];
    if (!match) {
        for (unsigned w = 0; w < activeWays_; ++w) {
            Line &l = base[w];
            if (!l.valid) {
                victim = &l;
                break;
            }
            if (l.lruStamp < victim->lruStamp)
                victim = &l;
        }
    }

    CacheAccessResult res;
    if (match) {
        res.hit = true;
        ++hits_;
        ++windowHits_;
        if (match->drowsy) {
            match->drowsy = false;
            res.wokeDrowsy = true;
            ++drowsyWakes_;
        }
        match->lruStamp = tick_;
        if (write)
            match->dirty = true;
        return res;
    }

    ++misses_;
    if (victim->valid && victim->dirty) {
        res.dirtyEviction = true;
        ++writebacks_;
    }
    victim->valid = true;
    victim->dirty = write;
    victim->drowsy = false;
    victim->tag = tag;
    victim->lruStamp = tick_;
    return res;
}

std::uint64_t
SetAssocCache::drowseAll()
{
    std::uint64_t slept = 0;
    for (auto &l : lines_) {
        if (l.valid && !l.drowsy) {
            l.drowsy = true;
            ++slept;
        }
    }
    return slept;
}

std::uint64_t
SetAssocCache::awakeLineCount() const
{
    std::uint64_t n = 0;
    for (const auto &l : lines_)
        if (l.valid && !l.drowsy)
            ++n;
    return n;
}

std::uint64_t
SetAssocCache::setActiveWays(unsigned ways)
{
    if (ways == 0 || ways > params_.assoc)
        fatal("active ways %u out of [1, %u]", ways, params_.assoc);

    std::uint64_t dirty_writebacks = 0;
    if (ways < activeWays_) {
        // Ways [ways, activeWays_) power down: dirty lines are written
        // back to the LLC, clean lines are simply lost.
        for (unsigned set = 0; set < numSets_; ++set) {
            Line *base = &lines_[static_cast<std::size_t>(set) *
                                 params_.assoc];
            for (unsigned w = ways; w < activeWays_; ++w) {
                Line &l = base[w];
                if (l.valid && l.dirty) {
                    ++dirty_writebacks;
                    ++writebacks_;
                }
                l.valid = false;
                l.dirty = false;
            }
        }
    }
    // Ways powering up come back empty and re-warm through misses.
    activeWays_ = ways;
    return dirty_writebacks;
}

std::uint64_t
SetAssocCache::invalidateAll()
{
    std::uint64_t dirty = 0;
    for (auto &l : lines_) {
        if (l.valid && l.dirty) {
            ++dirty;
            ++writebacks_;
        }
        l.valid = false;
        l.dirty = false;
    }
    return dirty;
}

std::uint64_t
SetAssocCache::validLineCount() const
{
    std::uint64_t n = 0;
    for (const auto &l : lines_)
        if (l.valid)
            ++n;
    return n;
}

} // namespace powerchop
