/**
 * @file
 * Set-associative write-back cache with way-level power gating.
 *
 * The middle-level cache (MLC) of the paper is way-gated to three
 * states: all ways on, half the ways on, or one way on (Section
 * IV-B3). Deactivating ways writes back their dirty lines and loses
 * clean lines; the cache then re-warms through normal misses.
 */

#ifndef POWERCHOP_UARCH_CACHE_HH
#define POWERCHOP_UARCH_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/intmath.hh"
#include "common/types.hh"

namespace powerchop
{

/** Geometry of a set-associative cache. */
struct CacheParams
{
    std::uint64_t sizeBytes = 1024 * 1024;
    unsigned assoc = 8;
    unsigned lineBytes = 64;
};

/** Result of one cache access. */
struct CacheAccessResult
{
    bool hit = false;
    /** A dirty line was evicted to make room (write-back traffic). */
    bool dirtyEviction = false;
    /** The hit line was drowsy and had to be woken (costs a short
     *  wake penalty; drowsy-cache baseline only). */
    bool wokeDrowsy = false;
};

/**
 * Set-associative LRU write-back, write-allocate cache.
 *
 * Ways [activeWays, assoc) are powered off: they hold no lines and
 * are skipped by lookup and replacement.
 */
class SetAssocCache
{
  public:
    explicit SetAssocCache(const CacheParams &params);

    /**
     * Access one address.
     *
     * Defined inline below: the access path is the single hottest
     * function of the whole simulator (every load/store runs it one
     * to three times), so it must inline into the simulation loop.
     *
     * @param addr  Byte address.
     * @param write true for stores (sets the dirty bit).
     * @return hit/miss and write-back information.
     */
    CacheAccessResult access(Addr addr, bool write);

    /**
     * Reconfigure the number of powered ways.
     *
     * Lines in deactivated ways are lost; dirty ones are written back.
     *
     * @param ways New active way count in [1, assoc].
     * @return the number of dirty lines written back.
     */
    std::uint64_t setActiveWays(unsigned ways);

    /** Invalidate everything (dirty lines counted as write-backs). */
    std::uint64_t invalidateAll();

    /**
     * Drowsy-cache support (Flautner et al., the paper's Section VI
     * alternative for cache energy): put every valid line into the
     * low-voltage drowsy state. Lines retain contents; the next
     * access to a drowsy line wakes it at a small latency cost.
     *
     * @return the number of lines put to sleep.
     */
    std::uint64_t drowseAll();

    /** Valid lines currently awake (non-drowsy). */
    std::uint64_t awakeLineCount() const;

    /** Lifetime count of drowsy-line wakeups. */
    std::uint64_t drowsyWakes() const { return drowsyWakes_; }

    unsigned activeWays() const { return activeWays_; }
    const CacheParams &params() const { return params_; }
    unsigned numSets() const { return numSets_; }

    /** @return number of currently valid lines (for tests). */
    std::uint64_t validLineCount() const;

    /** Lifetime statistics. @{ */
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t accesses() const { return hits_ + misses_; }
    std::uint64_t writebacks() const { return writebacks_; }
    double
    hitRate() const
    {
        auto a = accesses();
        return a ? static_cast<double>(hits_) / a : 0.0;
    }
    /** @} */

    /** Per-window statistics for CDE profiling. @{ */
    std::uint64_t windowHits() const { return windowHits_; }
    std::uint64_t windowAccesses() const { return windowAccesses_; }
    void
    resetWindowStats()
    {
        windowHits_ = 0;
        windowAccesses_ = 0;
    }
    /** @} */

  private:
    /** Per-line state flags, packed for the tag-scan path. */
    enum LineFlag : std::uint8_t
    {
        kValid = 1u << 0,
        kDirty = 1u << 1,
        kDrowsy = 1u << 2,
    };

    // Line size and set count are powers of two (checked at
    // construction), so indexing is shifts and masks; a division per
    // access would dominate the lookup cost.
    std::size_t
    setIndex(Addr addr) const
    {
        return (addr >> lineShift_) & (numSets_ - 1);
    }

    Addr
    tagOf(Addr addr) const
    {
        return (addr >> lineShift_) >> setShift_;
    }

    CacheParams params_;
    unsigned numSets_;
    unsigned activeWays_;
    unsigned lineShift_ = 0;
    unsigned setShift_ = 0;

    // Structure-of-arrays line state: the hit path scans only tags_
    // (one host cache line covers a whole 8-way set) and flags_;
    // lru_ is touched on the hit update and the victim scan.
    std::vector<Addr> tags_;
    std::vector<std::uint8_t> flags_;
    std::vector<std::uint64_t> lru_;
    std::uint64_t tick_ = 0;

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t writebacks_ = 0;
    std::uint64_t drowsyWakes_ = 0;
    std::uint64_t windowHits_ = 0;
    std::uint64_t windowAccesses_ = 0;
};

inline CacheAccessResult
SetAssocCache::access(Addr addr, bool write)
{
    ++tick_;
    ++windowAccesses_;

    const std::size_t set = setIndex(addr);
    const Addr tag = tagOf(addr);
    const std::size_t base = set * params_.assoc;
    const Addr *tags = &tags_[base];
    std::uint8_t *flags = &flags_[base];

    // Full match scan first, then victim selection: prefer the first
    // invalid way, else the LRU way among the active ways.
    const unsigned ways = activeWays_;
    unsigned match = ways;
    for (unsigned w = 0; w < ways; ++w) {
        if ((flags[w] & kValid) && tags[w] == tag) {
            match = w;
            break;
        }
    }

    CacheAccessResult res;
    if (match != ways) {
        res.hit = true;
        ++hits_;
        ++windowHits_;
        if (flags[match] & kDrowsy) {
            flags[match] = static_cast<std::uint8_t>(
                flags[match] & ~kDrowsy);
            res.wokeDrowsy = true;
            ++drowsyWakes_;
        }
        lru_[base + match] = tick_;
        if (write)
            flags[match] = flags[match] | kDirty;
        return res;
    }

    const std::uint64_t *lru = &lru_[base];
    unsigned victim = 0;
    for (unsigned w = 0; w < ways; ++w) {
        if (!(flags[w] & kValid)) {
            victim = w;
            break;
        }
        if (lru[w] < lru[victim])
            victim = w;
    }

    ++misses_;
    if ((flags[victim] & (kValid | kDirty)) == (kValid | kDirty)) {
        res.dirtyEviction = true;
        ++writebacks_;
    }
    flags[victim] = static_cast<std::uint8_t>(
        kValid | (write ? kDirty : 0));
    tags_[base + victim] = tag;
    lru_[base + victim] = tick_;
    return res;
}

} // namespace powerchop

#endif // POWERCHOP_UARCH_CACHE_HH
