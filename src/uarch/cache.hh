/**
 * @file
 * Set-associative write-back cache with way-level power gating.
 *
 * The middle-level cache (MLC) of the paper is way-gated to three
 * states: all ways on, half the ways on, or one way on (Section
 * IV-B3). Deactivating ways writes back their dirty lines and loses
 * clean lines; the cache then re-warms through normal misses.
 */

#ifndef POWERCHOP_UARCH_CACHE_HH
#define POWERCHOP_UARCH_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace powerchop
{

/** Geometry of a set-associative cache. */
struct CacheParams
{
    std::uint64_t sizeBytes = 1024 * 1024;
    unsigned assoc = 8;
    unsigned lineBytes = 64;
};

/** Result of one cache access. */
struct CacheAccessResult
{
    bool hit = false;
    /** A dirty line was evicted to make room (write-back traffic). */
    bool dirtyEviction = false;
    /** The hit line was drowsy and had to be woken (costs a short
     *  wake penalty; drowsy-cache baseline only). */
    bool wokeDrowsy = false;
};

/**
 * Set-associative LRU write-back, write-allocate cache.
 *
 * Ways [activeWays, assoc) are powered off: they hold no lines and
 * are skipped by lookup and replacement.
 */
class SetAssocCache
{
  public:
    explicit SetAssocCache(const CacheParams &params);

    /**
     * Access one address.
     *
     * @param addr  Byte address.
     * @param write true for stores (sets the dirty bit).
     * @return hit/miss and write-back information.
     */
    CacheAccessResult access(Addr addr, bool write);

    /**
     * Reconfigure the number of powered ways.
     *
     * Lines in deactivated ways are lost; dirty ones are written back.
     *
     * @param ways New active way count in [1, assoc].
     * @return the number of dirty lines written back.
     */
    std::uint64_t setActiveWays(unsigned ways);

    /** Invalidate everything (dirty lines counted as write-backs). */
    std::uint64_t invalidateAll();

    /**
     * Drowsy-cache support (Flautner et al., the paper's Section VI
     * alternative for cache energy): put every valid line into the
     * low-voltage drowsy state. Lines retain contents; the next
     * access to a drowsy line wakes it at a small latency cost.
     *
     * @return the number of lines put to sleep.
     */
    std::uint64_t drowseAll();

    /** Valid lines currently awake (non-drowsy). */
    std::uint64_t awakeLineCount() const;

    /** Lifetime count of drowsy-line wakeups. */
    std::uint64_t drowsyWakes() const { return drowsyWakes_; }

    unsigned activeWays() const { return activeWays_; }
    const CacheParams &params() const { return params_; }
    unsigned numSets() const { return numSets_; }

    /** @return number of currently valid lines (for tests). */
    std::uint64_t validLineCount() const;

    /** Lifetime statistics. @{ */
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t accesses() const { return hits_ + misses_; }
    std::uint64_t writebacks() const { return writebacks_; }
    double
    hitRate() const
    {
        auto a = accesses();
        return a ? static_cast<double>(hits_) / a : 0.0;
    }
    /** @} */

    /** Per-window statistics for CDE profiling. @{ */
    std::uint64_t windowHits() const { return windowHits_; }
    std::uint64_t windowAccesses() const { return windowAccesses_; }
    void
    resetWindowStats()
    {
        windowHits_ = 0;
        windowAccesses_ = 0;
    }
    /** @} */

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        bool drowsy = false;
        Addr tag = 0;
        std::uint64_t lruStamp = 0;
    };

    std::size_t setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;

    CacheParams params_;
    unsigned numSets_;
    unsigned activeWays_;
    std::vector<Line> lines_;
    std::uint64_t tick_ = 0;

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t writebacks_ = 0;
    std::uint64_t drowsyWakes_ = 0;
    std::uint64_t windowHits_ = 0;
    std::uint64_t windowAccesses_ = 0;
};

} // namespace powerchop

#endif // POWERCHOP_UARCH_CACHE_HH
