#include "uarch/core_params.hh"

#include "common/logging.hh"

namespace powerchop
{

void
CoreParams::validate() const
{
    if (issueWidth == 0 || issueWidth > 8)
        fatal("%s: issue width %u out of range", name.c_str(), issueWidth);
    if (frequencyHz <= 0)
        fatal("%s: non-positive frequency", name.c_str());
    if (mispredictPenalty < 0 || btbMissPenalty < 0 ||
        mlcHitPenalty < 0 || memoryPenalty < 0) {
        fatal("%s: negative penalty", name.c_str());
    }
    if (storeStallFraction < 0 || storeStallFraction > 1)
        fatal("%s: storeStallFraction out of [0,1]", name.c_str());
    if (interpreterCpi < 1)
        fatal("%s: interpreter CPI below 1", name.c_str());
    if (hotThreshold == 0)
        fatal("%s: hot threshold must be non-zero", name.c_str());
}

} // namespace powerchop
