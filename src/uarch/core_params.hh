/**
 * @file
 * Core pipeline timing parameters.
 *
 * The timing model is an issue-slot accumulator: every instruction
 * consumes 1/width cycles at the front end, plus penalty cycles for
 * branch mispredictions, BTB target misses, cache misses and scalar
 * emulation of SIMD work. This captures exactly the effects the paper
 * attributes to the three managed units without modelling the rest of
 * an out-of-order pipeline.
 */

#ifndef POWERCHOP_UARCH_CORE_PARAMS_HH
#define POWERCHOP_UARCH_CORE_PARAMS_HH

#include <string>

#include "common/types.hh"

namespace powerchop
{

/** Timing parameters of one core design point. */
struct CoreParams
{
    std::string name = "core";

    /** Superscalar issue width. */
    unsigned issueWidth = 4;

    /** Core clock, used to convert cycles to time for power. */
    double frequencyHz = 3.0e9;

    /** Direction-misprediction penalty (pipeline refill). */
    double mispredictPenalty = 15.0;

    /** Fetch bubble on a taken branch whose target misses the BTB. */
    double btbMissPenalty = 4.0;

    /** Extra latency of an L1 miss that hits the MLC, after the
     *  portion hidden by out-of-order overlap. */
    double mlcHitPenalty = 10.0;

    /** Extra latency of a reference serviced by memory. */
    double memoryPenalty = 120.0;

    /** Fraction of the memory penalty charged when the miss is part
     *  of a detected sequential stream (MLP + stream prefetch hide
     *  most of the latency of adjacent-line misses). */
    double streamMissFactor = 0.35;

    /** Fraction of a store's miss latency that stalls the core
     *  (stores mostly retire through buffers). */
    double storeStallFraction = 0.3;

    /** Cycles per guest instruction while interpreting (the BT
     *  interpreter decodes and executes sequentially). */
    double interpreterCpi = 8.0;

    /** One-time cost of producing a translation (translator runs). */
    double translationCost = 4000.0;

    /** Dynamic executions of a region before it is translated. */
    unsigned hotThreshold = 24;

    /** Validate parameter ranges (fatal() on violation). */
    void validate() const;
};

} // namespace powerchop

#endif // POWERCHOP_UARCH_CORE_PARAMS_HH
