/**
 * @file
 * Abstract conditional-branch direction predictor interface.
 *
 * Predictors combine lookup and training in one call: the timing model
 * presents the actual outcome and receives the direction the predictor
 * would have guessed. Each predictor keeps lifetime and per-window
 * counters; the window counters feed the Criticality Decision Engine's
 * profiling (Section IV-C2 of the paper).
 */

#ifndef POWERCHOP_UARCH_DIRECTION_PREDICTOR_HH
#define POWERCHOP_UARCH_DIRECTION_PREDICTOR_HH

#include <cstdint>

#include "common/types.hh"

namespace powerchop
{

/**
 * Base class for direction predictors.
 *
 * Derived classes implement lookup() and train(); the base supplies
 * the predict-and-train protocol and the accuracy bookkeeping.
 */
class DirectionPredictor
{
  public:
    virtual ~DirectionPredictor() = default;

    /**
     * Predict the branch at pc, then train on the actual outcome.
     *
     * @param pc    Branch program counter.
     * @param taken Actual resolved direction.
     * @return the predicted direction.
     */
    bool
    predictAndTrain(Addr pc, bool taken)
    {
        bool pred = lookup(pc);
        ++lookups_;
        ++windowLookups_;
        if (pred != taken) {
            ++mispredicts_;
            ++windowMispredicts_;
        }
        train(pc, taken);
        return pred;
    }

    /** Drop all predictor state (e.g. after power gating). */
    virtual void reset() = 0;

    /** Lifetime lookup count. */
    std::uint64_t lookups() const { return lookups_; }

    /** Lifetime mispredict count. */
    std::uint64_t mispredicts() const { return mispredicts_; }

    /** Lifetime mispredict rate. */
    double
    mispredictRate() const
    {
        return lookups_ ? static_cast<double>(mispredicts_) / lookups_
                        : 0.0;
    }

    /** Per-window counters used by phase profiling. @{ */
    std::uint64_t windowLookups() const { return windowLookups_; }
    std::uint64_t windowMispredicts() const { return windowMispredicts_; }

    double
    windowMispredictRate() const
    {
        return windowLookups_
            ? static_cast<double>(windowMispredicts_) / windowLookups_
            : 0.0;
    }

    void
    resetWindow()
    {
        windowLookups_ = 0;
        windowMispredicts_ = 0;
    }
    /** @} */

  protected:
    /**
     * Accuracy bookkeeping shared with the concrete predictors'
     * non-virtual fast paths: exactly the counter updates
     * predictAndTrain() performs between lookup() and train().
     */
    void
    noteOutcome(bool pred, bool taken)
    {
        ++lookups_;
        ++windowLookups_;
        if (pred != taken) {
            ++mispredicts_;
            ++windowMispredicts_;
        }
    }

    /** @return the predicted direction for pc. */
    virtual bool lookup(Addr pc) = 0;

    /** Update predictor state with the resolved outcome. */
    virtual void train(Addr pc, bool taken) = 0;

  private:
    std::uint64_t lookups_ = 0;
    std::uint64_t mispredicts_ = 0;
    std::uint64_t windowLookups_ = 0;
    std::uint64_t windowMispredicts_ = 0;
};

} // namespace powerchop

#endif // POWERCHOP_UARCH_DIRECTION_PREDICTOR_HH
