#include "uarch/gshare.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace powerchop
{

GsharePredictor::GsharePredictor(unsigned entries, unsigned history_bits)
    : table_(entries, SatCounter(2, 1)), mask_(entries - 1),
      historyMask_((1ull << history_bits) - 1)
{
    if (!isPowerOf2(entries))
        fatal("gshare entries (%u) must be a power of two", entries);
    if (history_bits == 0 || history_bits > 24)
        fatal("gshare history bits (%u) out of range", history_bits);
}

void
GsharePredictor::reset()
{
    for (auto &c : table_)
        c.reset(1);
    history_ = 0;
}

} // namespace powerchop
