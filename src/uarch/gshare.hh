/**
 * @file
 * Gshare global-history direction predictor.
 *
 * The "global" side of the tournament predictor: the global outcome
 * history XORed with the PC indexes a table of 2-bit counters,
 * capturing cross-branch correlation that local predictors cannot.
 */

#ifndef POWERCHOP_UARCH_GSHARE_HH
#define POWERCHOP_UARCH_GSHARE_HH

#include <vector>

#include "common/sat_counter.hh"
#include "uarch/direction_predictor.hh"

namespace powerchop
{

/** Gshare predictor (McFarling). */
class GsharePredictor : public DirectionPredictor
{
  public:
    /**
     * @param entries      Pattern table entries (power of two).
     * @param history_bits Global history length.
     */
    explicit GsharePredictor(unsigned entries = 4096,
                             unsigned history_bits = 12);

    void reset() override;

    /** @return the current global history register. */
    std::uint64_t history() const { return history_; }

    /**
     * Non-virtual inline lookup/train, used by the tournament
     * predictor's hot path; identical to the virtual overrides. @{
     */
    bool
    peekFast(Addr pc) const
    {
        return table_[index(pc)].isSet();
    }

    void
    learnFast(Addr pc, bool taken)
    {
        SatCounter &ctr = table_[index(pc)];
        if (taken)
            ctr.increment();
        else
            ctr.decrement();
        history_ = ((history_ << 1) | (taken ? 1u : 0u)) & historyMask_;
    }
    /** @} */

  protected:
    bool lookup(Addr pc) override { return peekFast(pc); }
    void train(Addr pc, bool taken) override { learnFast(pc, taken); }

  private:
    std::size_t
    index(Addr pc) const
    {
        return (history_ ^ (pc >> 2)) & mask_;
    }

    std::vector<SatCounter> table_;
    std::size_t mask_;
    std::uint64_t history_ = 0;
    std::uint64_t historyMask_;
};

} // namespace powerchop

#endif // POWERCHOP_UARCH_GSHARE_HH
