#include "uarch/local_predictor.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace powerchop
{

LocalPredictor::LocalPredictor(unsigned history_entries,
                               unsigned history_bits,
                               unsigned pattern_entries)
    : historyTable_(history_entries, 0),
      patternTable_(pattern_entries, SatCounter(2, 1)),
      historyMask_(history_entries - 1),
      patternMask_(pattern_entries - 1),
      localHistMask_((1u << history_bits) - 1)
{
    if (!isPowerOf2(history_entries) || !isPowerOf2(pattern_entries))
        fatal("local predictor table sizes must be powers of two");
    if (history_bits == 0 || history_bits > 16)
        fatal("local history bits (%u) out of range", history_bits);
}

void
LocalPredictor::reset()
{
    for (auto &h : historyTable_)
        h = 0;
    for (auto &c : patternTable_)
        c.reset(1);
}

} // namespace powerchop
