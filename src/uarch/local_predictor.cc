#include "uarch/local_predictor.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace powerchop
{

LocalPredictor::LocalPredictor(unsigned history_entries,
                               unsigned history_bits,
                               unsigned pattern_entries)
    : historyTable_(history_entries, 0),
      patternTable_(pattern_entries, SatCounter(2, 1)),
      historyMask_(history_entries - 1),
      patternMask_(pattern_entries - 1),
      localHistMask_((1u << history_bits) - 1)
{
    if (!isPowerOf2(history_entries) || !isPowerOf2(pattern_entries))
        fatal("local predictor table sizes must be powers of two");
    if (history_bits == 0 || history_bits > 16)
        fatal("local history bits (%u) out of range", history_bits);
}

std::size_t
LocalPredictor::historyIndex(Addr pc) const
{
    return (pc >> 2) & historyMask_;
}

std::size_t
LocalPredictor::patternIndex(Addr pc) const
{
    // Hash the local history with the PC so unrelated branches with
    // the same history do not fully alias.
    std::uint32_t hist = historyTable_[historyIndex(pc)];
    return (hist ^ ((pc >> 2) * 0x9e3779b1u)) & patternMask_;
}

bool
LocalPredictor::lookup(Addr pc)
{
    return patternTable_[patternIndex(pc)].isSet();
}

void
LocalPredictor::train(Addr pc, bool taken)
{
    SatCounter &ctr = patternTable_[patternIndex(pc)];
    if (taken)
        ctr.increment();
    else
        ctr.decrement();

    std::uint32_t &hist = historyTable_[historyIndex(pc)];
    hist = ((hist << 1) | (taken ? 1u : 0u)) & localHistMask_;
}

void
LocalPredictor::reset()
{
    for (auto &h : historyTable_)
        h = 0;
    for (auto &c : patternTable_)
        c.reset(1);
}

} // namespace powerchop
