/**
 * @file
 * Two-level local-history direction predictor.
 *
 * This is the "local" side of the tournament predictor: a per-branch
 * history table feeding a pattern table of 2-bit counters, which
 * captures short repeating per-branch patterns the bimodal predictor
 * cannot.
 */

#ifndef POWERCHOP_UARCH_LOCAL_PREDICTOR_HH
#define POWERCHOP_UARCH_LOCAL_PREDICTOR_HH

#include <vector>

#include "common/sat_counter.hh"
#include "uarch/direction_predictor.hh"

namespace powerchop
{

/** Two-level local predictor (Yeh/Patt PAg style). */
class LocalPredictor : public DirectionPredictor
{
  public:
    /**
     * @param history_entries Entries in the per-branch history table
     *                        (power of two).
     * @param history_bits    Local history length.
     * @param pattern_entries Entries in the pattern table (power of
     *                        two, at least 2^history_bits is typical).
     */
    LocalPredictor(unsigned history_entries = 1024,
                   unsigned history_bits = 10,
                   unsigned pattern_entries = 1024);

    void reset() override;

    /**
     * Non-virtual inline lookup/train, used by the tournament
     * predictor's hot path; identical to the virtual overrides. @{
     */
    bool
    peekFast(Addr pc) const
    {
        return patternTable_[patternIndex(pc)].isSet();
    }

    void
    learnFast(Addr pc, bool taken)
    {
        SatCounter &ctr = patternTable_[patternIndex(pc)];
        if (taken)
            ctr.increment();
        else
            ctr.decrement();

        std::uint32_t &hist = historyTable_[historyIndex(pc)];
        hist = ((hist << 1) | (taken ? 1u : 0u)) & localHistMask_;
    }
    /** @} */

  protected:
    bool lookup(Addr pc) override { return peekFast(pc); }
    void train(Addr pc, bool taken) override { learnFast(pc, taken); }

  private:
    std::size_t
    historyIndex(Addr pc) const
    {
        return (pc >> 2) & historyMask_;
    }

    std::size_t
    patternIndex(Addr pc) const
    {
        // Hash the local history with the PC so unrelated branches
        // with the same history do not fully alias.
        std::uint32_t hist = historyTable_[historyIndex(pc)];
        return (hist ^ ((pc >> 2) * 0x9e3779b1u)) & patternMask_;
    }

    std::vector<std::uint32_t> historyTable_;
    std::vector<SatCounter> patternTable_;
    std::size_t historyMask_;
    std::size_t patternMask_;
    std::uint32_t localHistMask_;
};

} // namespace powerchop

#endif // POWERCHOP_UARCH_LOCAL_PREDICTOR_HH
