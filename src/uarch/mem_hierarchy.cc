#include "uarch/mem_hierarchy.hh"

namespace powerchop
{

MemHierarchy::MemHierarchy(const CacheParams &l1, const CacheParams &mlc)
    : l1_(l1), mlc_(mlc), shadowMlc_(mlc)
{
}

std::uint64_t
MemHierarchy::setMlcActiveWays(unsigned ways)
{
    return mlc_.setActiveWays(ways);
}

void
MemHierarchy::resetWindowStats()
{
    l1_.resetWindowStats();
    mlc_.resetWindowStats();
    shadowMlc_.resetWindowStats();
}

} // namespace powerchop
