#include "uarch/mem_hierarchy.hh"

namespace powerchop
{

MemHierarchy::MemHierarchy(const CacheParams &l1, const CacheParams &mlc)
    : l1_(l1), mlc_(mlc), shadowMlc_(mlc)
{
}

MemAccessResult
MemHierarchy::access(Addr addr, bool write)
{
    MemAccessResult res;

    CacheAccessResult l1r = l1_.access(addr, write);
    if (l1r.hit) {
        res.level = MemLevel::L1;
        return res;
    }

    // L1 victim write-backs also pass through the MLC; modelling them
    // as MLC writes keeps dirty state in the MLC realistic.
    CacheAccessResult l2r = mlc_.access(addr, write || l1r.dirtyEviction);
    // The shadow tag array sees the same filtered stream but is never
    // gated; its hits feed criticality profiling.
    shadowMlc_.access(addr, false);
    res.level = l2r.hit ? MemLevel::Mlc : MemLevel::Memory;
    res.mlcWriteback = l2r.dirtyEviction;
    res.mlcWokeDrowsy = l2r.wokeDrowsy;
    return res;
}

std::uint64_t
MemHierarchy::setMlcActiveWays(unsigned ways)
{
    return mlc_.setActiveWays(ways);
}

void
MemHierarchy::resetWindowStats()
{
    l1_.resetWindowStats();
    mlc_.resetWindowStats();
    shadowMlc_.resetWindowStats();
}

} // namespace powerchop
