/**
 * @file
 * The data memory hierarchy: a fixed L1 in front of the way-gateable
 * MLC, backed by main memory (the LLC/memory side is modelled as a
 * flat latency).
 */

#ifndef POWERCHOP_UARCH_MEM_HIERARCHY_HH
#define POWERCHOP_UARCH_MEM_HIERARCHY_HH

#include <cstdint>

#include "common/types.hh"
#include "uarch/cache.hh"

namespace powerchop
{

/** Where a memory access was serviced. */
enum class MemLevel : std::uint8_t
{
    L1,      ///< Hit in the (always-on) L1.
    Mlc,     ///< Hit in the middle-level cache.
    Memory,  ///< Missed everywhere; serviced by memory.
};

/** Result of one memory reference through the hierarchy. */
struct MemAccessResult
{
    MemLevel level = MemLevel::L1;
    /** Dirty line written back from the MLC on this access. */
    bool mlcWriteback = false;
    /** The MLC hit woke a drowsy line (drowsy baseline). */
    bool mlcWokeDrowsy = false;
};

/**
 * Two-level data hierarchy (L1 + MLC) with way gating on the MLC.
 *
 * The L1 is not managed by PowerChop and is always fully powered;
 * it exists so the MLC sees a realistic filtered reference stream
 * (Section III: MLC accesses occur roughly once per 100-200
 * instructions).
 *
 * Criticality profiling reads a *shadow tag array*: a tag-only copy
 * of the MLC at full associativity that is never way-gated, in the
 * style of UCP-like shadow-tag monitors. The CDE's Phase_L2Hit
 * counter therefore measures the hits the full MLC *would* provide,
 * independent of its current gating state — otherwise a way-gated
 * phase measures few hits and stays gated forever (see DESIGN.md).
 */
class MemHierarchy
{
  public:
    /**
     * @param l1  L1 geometry.
     * @param mlc MLC geometry (the unit PowerChop manages).
     */
    MemHierarchy(const CacheParams &l1, const CacheParams &mlc);

    /** Run one reference through L1 then (on miss) the MLC. Defined
     *  inline below so the whole lookup chain folds into the
     *  simulation loop's memory pass. */
    MemAccessResult access(Addr addr, bool write);

    /**
     * Set the active way count of the MLC.
     * @return the number of dirty lines written back.
     */
    std::uint64_t setMlcActiveWays(unsigned ways);

    const SetAssocCache &l1() const { return l1_; }
    const SetAssocCache &mlc() const { return mlc_; }
    SetAssocCache &mlc() { return mlc_; }

    /** Window counters for CDE profiling (MLC side): hits in the
     *  never-gated shadow tag array. @{ */
    std::uint64_t mlcWindowHits() const { return shadowMlc_.windowHits(); }
    void resetWindowStats();
    /** @} */

    /** The shadow tag array (exposed for tests). */
    const SetAssocCache &shadowMlc() const { return shadowMlc_; }

  private:
    SetAssocCache l1_;
    SetAssocCache mlc_;
    /** Tag-only shadow of the MLC at full ways; profiling only. */
    SetAssocCache shadowMlc_;
};

inline MemAccessResult
MemHierarchy::access(Addr addr, bool write)
{
    MemAccessResult res;

    CacheAccessResult l1r = l1_.access(addr, write);
    if (l1r.hit) {
        res.level = MemLevel::L1;
        return res;
    }

    // L1 victim write-backs also pass through the MLC; modelling them
    // as MLC writes keeps dirty state in the MLC realistic.
    CacheAccessResult l2r = mlc_.access(addr, write || l1r.dirtyEviction);
    // The shadow tag array sees the same filtered stream but is never
    // gated; its hits feed criticality profiling.
    shadowMlc_.access(addr, false);
    res.level = l2r.hit ? MemLevel::Mlc : MemLevel::Memory;
    res.mlcWriteback = l2r.dirtyEviction;
    res.mlcWokeDrowsy = l2r.wokeDrowsy;
    return res;
}

} // namespace powerchop

#endif // POWERCHOP_UARCH_MEM_HIERARCHY_HH
