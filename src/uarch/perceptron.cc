#include "uarch/perceptron.hh"

#include <cmath>

#include "common/intmath.hh"
#include "common/logging.hh"

namespace powerchop
{

PerceptronPredictor::PerceptronPredictor(unsigned entries,
                                         unsigned history_bits)
    : historyBits_(history_bits),
      // Jimenez & Lin's empirically optimal training threshold.
      threshold_(static_cast<int>(1.93 * history_bits + 14)),
      weightClamp_(127),
      weights_(static_cast<std::size_t>(entries) * (history_bits + 1), 0),
      mask_(entries - 1)
{
    if (!isPowerOf2(entries))
        fatal("perceptron entries (%u) must be a power of two", entries);
    if (history_bits == 0 || history_bits > 40)
        fatal("perceptron history bits (%u) out of range", history_bits);
}

std::size_t
PerceptronPredictor::index(Addr pc) const
{
    return ((pc >> 2) * 0x9e3779b1u) & mask_;
}

int
PerceptronPredictor::output(Addr pc) const
{
    const std::int16_t *w = &weights_[index(pc) * (historyBits_ + 1)];
    int y = w[0];  // bias weight
    for (unsigned i = 0; i < historyBits_; ++i) {
        bool h = (history_ >> i) & 1;
        y += h ? w[i + 1] : -w[i + 1];
    }
    return y;
}

bool
PerceptronPredictor::lookup(Addr pc)
{
    lastOutput_ = output(pc);
    return lastOutput_ >= 0;
}

void
PerceptronPredictor::train(Addr pc, bool taken)
{
    const bool predicted = lastOutput_ >= 0;
    if (predicted != taken || std::abs(lastOutput_) <= threshold_) {
        std::int16_t *w = &weights_[index(pc) * (historyBits_ + 1)];
        const int t = taken ? 1 : -1;
        auto bump = [&](std::int16_t &weight, int dir) {
            int v = weight + dir;
            if (v > weightClamp_)
                v = weightClamp_;
            if (v < -weightClamp_)
                v = -weightClamp_;
            weight = static_cast<std::int16_t>(v);
        };
        bump(w[0], t);
        for (unsigned i = 0; i < historyBits_; ++i) {
            bool h = (history_ >> i) & 1;
            bump(w[i + 1], (h ? 1 : -1) * t);
        }
    }
    history_ = (history_ << 1) | (taken ? 1u : 0u);
}

void
PerceptronPredictor::reset()
{
    for (auto &w : weights_)
        w = 0;
    history_ = 0;
    lastOutput_ = 0;
}

} // namespace powerchop
