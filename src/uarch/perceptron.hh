/**
 * @file
 * Perceptron predictor (Jimenez & Lin, HPCA 2001).
 *
 * The "neural" family from the paper's Section III list. A table of
 * perceptrons indexed by PC; each holds signed weights over the
 * global history bits plus a bias weight. The prediction is the sign
 * of the dot product; training nudges weights when the prediction was
 * wrong or under-confident. Captures long linearly separable
 * correlations that saturating-counter tables cannot, but (like any
 * single-layer perceptron) not parity-style functions.
 */

#ifndef POWERCHOP_UARCH_PERCEPTRON_HH
#define POWERCHOP_UARCH_PERCEPTRON_HH

#include <cstdint>
#include <vector>

#include "uarch/direction_predictor.hh"

namespace powerchop
{

/** Perceptron predictor. */
class PerceptronPredictor : public DirectionPredictor
{
  public:
    /**
     * @param entries      Perceptron table entries (power of two).
     * @param history_bits History length (weights per perceptron).
     */
    explicit PerceptronPredictor(unsigned entries = 512,
                                 unsigned history_bits = 16);

    void reset() override;

  protected:
    bool lookup(Addr pc) override;
    void train(Addr pc, bool taken) override;

  private:
    std::size_t index(Addr pc) const;
    int output(Addr pc) const;

    unsigned historyBits_;
    int threshold_;
    int weightClamp_;
    /** entries x (historyBits + 1 bias) signed weights. */
    std::vector<std::int16_t> weights_;
    std::size_t mask_;
    std::uint64_t history_ = 0;

    // Latched between lookup and train (the usual one-branch-in-
    // flight simplification).
    int lastOutput_ = 0;
};

} // namespace powerchop

#endif // POWERCHOP_UARCH_PERCEPTRON_HH
