#include "uarch/tournament.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace powerchop
{

TournamentPredictor::TournamentPredictor(const TournamentParams &params)
    : params_(params),
      local_(params.localHistoryEntries, params.localHistoryBits,
             params.localPatternEntries),
      global_(params.globalEntries, params.globalHistoryBits),
      // Chooser starts weakly toward the local side: on heavily
      // biased code the cold gshare side would otherwise drag the
      // tournament below its own local component.
      chooser_(params.chooserEntries, SatCounter(2, 1)),
      chooserMask_(params.chooserEntries - 1)
{
    if (!isPowerOf2(params.chooserEntries))
        fatal("tournament chooser entries must be a power of two");
}

void
TournamentPredictor::reset()
{
    local_.reset();
    global_.reset();
    for (auto &c : chooser_)
        c.reset(1);
}

} // namespace powerchop
