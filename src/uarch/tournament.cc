#include "uarch/tournament.hh"

#include "common/intmath.hh"
#include "common/logging.hh"

namespace powerchop
{

TournamentPredictor::TournamentPredictor(const TournamentParams &params)
    : params_(params),
      local_(params.localHistoryEntries, params.localHistoryBits,
             params.localPatternEntries),
      global_(params.globalEntries, params.globalHistoryBits),
      // Chooser starts weakly toward the local side: on heavily
      // biased code the cold gshare side would otherwise drag the
      // tournament below its own local component.
      chooser_(params.chooserEntries, SatCounter(2, 1)),
      chooserMask_(params.chooserEntries - 1)
{
    if (!isPowerOf2(params.chooserEntries))
        fatal("tournament chooser entries must be a power of two");
}

std::size_t
TournamentPredictor::chooserIndex(Addr pc) const
{
    return (pc >> 2) & chooserMask_;
}

bool
TournamentPredictor::lookup(Addr pc)
{
    lastLocalPred_ = local_.peek(pc);
    lastGlobalPred_ = global_.peek(pc);
    bool use_global = chooser_[chooserIndex(pc)].isSet();
    return use_global ? lastGlobalPred_ : lastLocalPred_;
}

void
TournamentPredictor::train(Addr pc, bool taken)
{
    // Train the chooser only when the components disagree.
    bool local_right = (lastLocalPred_ == taken);
    bool global_right = (lastGlobalPred_ == taken);
    if (local_right != global_right) {
        SatCounter &c = chooser_[chooserIndex(pc)];
        if (global_right)
            c.increment();
        else
            c.decrement();
    }
    local_.learn(pc, taken);
    global_.learn(pc, taken);
}

void
TournamentPredictor::reset()
{
    local_.reset();
    global_.reset();
    for (auto &c : chooser_)
        c.reset(1);
}

} // namespace powerchop
