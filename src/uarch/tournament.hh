/**
 * @file
 * Tournament (local/global with chooser) direction predictor.
 *
 * This is the "large BPU" of Table I: a two-level local predictor and
 * a gshare global predictor arbitrated by a chooser table of 2-bit
 * counters trained toward whichever component was correct.
 */

#ifndef POWERCHOP_UARCH_TOURNAMENT_HH
#define POWERCHOP_UARCH_TOURNAMENT_HH

#include <vector>

#include "common/sat_counter.hh"
#include "uarch/direction_predictor.hh"
#include "uarch/gshare.hh"
#include "uarch/local_predictor.hh"

namespace powerchop
{

/** Configuration of a tournament predictor. */
struct TournamentParams
{
    unsigned localHistoryEntries = 1024;
    unsigned localHistoryBits = 10;
    unsigned localPatternEntries = 1024;
    unsigned globalEntries = 4096;
    unsigned globalHistoryBits = 12;
    unsigned chooserEntries = 4096;
};

/** Tournament predictor in the Alpha 21264 style. */
class TournamentPredictor final : public DirectionPredictor
{
  public:
    explicit TournamentPredictor(const TournamentParams &params = {});

    void reset() override;

    const TournamentParams &params() const { return params_; }

    /**
     * Non-virtual inline predict-and-train for the BPU complex's hot
     * path; identical to predictAndTrain() through the virtuals.
     */
    bool
    predictAndTrainFast(Addr pc, bool taken)
    {
        const bool pred = lookupFast(pc);
        noteOutcome(pred, taken);
        trainFast(pc, taken);
        return pred;
    }

  protected:
    bool lookup(Addr pc) override { return lookupFast(pc); }
    void train(Addr pc, bool taken) override { trainFast(pc, taken); }

  private:
    std::size_t
    chooserIndex(Addr pc) const
    {
        return (pc >> 2) & chooserMask_;
    }

    bool
    lookupFast(Addr pc)
    {
        lastLocalPred_ = local_.peekFast(pc);
        lastGlobalPred_ = global_.peekFast(pc);
        bool use_global = chooser_[chooserIndex(pc)].isSet();
        return use_global ? lastGlobalPred_ : lastLocalPred_;
    }

    void
    trainFast(Addr pc, bool taken)
    {
        // Train the chooser only when the components disagree.
        bool local_right = (lastLocalPred_ == taken);
        bool global_right = (lastGlobalPred_ == taken);
        if (local_right != global_right) {
            SatCounter &c = chooser_[chooserIndex(pc)];
            if (global_right)
                c.increment();
            else
                c.decrement();
        }
        local_.learnFast(pc, taken);
        global_.learnFast(pc, taken);
    }

    TournamentParams params_;
    LocalPredictor local_;
    GsharePredictor global_;
    /** Chooser: high half selects the global component. */
    std::vector<SatCounter> chooser_;
    std::size_t chooserMask_;

    // Component predictions latched between lookup() and train().
    bool lastLocalPred_ = false;
    bool lastGlobalPred_ = false;
};

} // namespace powerchop

#endif // POWERCHOP_UARCH_TOURNAMENT_HH
