/**
 * @file
 * Tournament (local/global with chooser) direction predictor.
 *
 * This is the "large BPU" of Table I: a two-level local predictor and
 * a gshare global predictor arbitrated by a chooser table of 2-bit
 * counters trained toward whichever component was correct.
 */

#ifndef POWERCHOP_UARCH_TOURNAMENT_HH
#define POWERCHOP_UARCH_TOURNAMENT_HH

#include <vector>

#include "common/sat_counter.hh"
#include "uarch/direction_predictor.hh"
#include "uarch/gshare.hh"
#include "uarch/local_predictor.hh"

namespace powerchop
{

/** Configuration of a tournament predictor. */
struct TournamentParams
{
    unsigned localHistoryEntries = 1024;
    unsigned localHistoryBits = 10;
    unsigned localPatternEntries = 1024;
    unsigned globalEntries = 4096;
    unsigned globalHistoryBits = 12;
    unsigned chooserEntries = 4096;
};

/** Tournament predictor in the Alpha 21264 style. */
class TournamentPredictor : public DirectionPredictor
{
  public:
    explicit TournamentPredictor(const TournamentParams &params = {});

    void reset() override;

    const TournamentParams &params() const { return params_; }

  protected:
    bool lookup(Addr pc) override;
    void train(Addr pc, bool taken) override;

  private:
    /** Thin subclasses exposing lookup/train to the container. */
    class OpenLocal : public LocalPredictor
    {
      public:
        using LocalPredictor::LocalPredictor;
        bool peek(Addr pc) { return lookup(pc); }
        void learn(Addr pc, bool t) { train(pc, t); }
    };

    class OpenGshare : public GsharePredictor
    {
      public:
        using GsharePredictor::GsharePredictor;
        bool peek(Addr pc) { return lookup(pc); }
        void learn(Addr pc, bool t) { train(pc, t); }
    };

    std::size_t chooserIndex(Addr pc) const;

    TournamentParams params_;
    OpenLocal local_;
    OpenGshare global_;
    /** Chooser: high half selects the global component. */
    std::vector<SatCounter> chooser_;
    std::size_t chooserMask_;

    // Component predictions latched between lookup() and train().
    bool lastLocalPred_ = false;
    bool lastGlobalPred_ = false;
};

} // namespace powerchop

#endif // POWERCHOP_UARCH_TOURNAMENT_HH
