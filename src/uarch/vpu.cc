#include "uarch/vpu.hh"

namespace powerchop
{

Vpu::Vpu(const VpuParams &params) : params_(params)
{
}

double
Vpu::executeSimd()
{
    if (on_) {
        ++nativeOps_;
        return 1.0;
    }
    ++emulatedOps_;
    return emulatedSlots();
}

} // namespace powerchop
