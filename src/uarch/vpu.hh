/**
 * @file
 * Vector processing unit model.
 *
 * The VPU holds an architecturally visible register file that must be
 * saved to memory when the unit is gated off and restored when it is
 * gated on (Section IV-D: a 500-cycle penalty per transition). While
 * the unit is off, SIMD instructions are emulated by scalar sequences
 * the binary translator emits along alternate code paths.
 */

#ifndef POWERCHOP_UARCH_VPU_HH
#define POWERCHOP_UARCH_VPU_HH

#include <cstdint>

namespace powerchop
{

/** Geometry of the VPU (Table I). */
struct VpuParams
{
    /** SIMD lanes ("4-wide SIMD" server / "2-wide" mobile). */
    unsigned width = 4;

    /** Architectural vector registers (saved/restored on gating). */
    unsigned numRegisters = 16;

    /** Scalar operations needed to emulate one SIMD op when gated:
     *  one per lane plus packing/unpacking overhead. */
    double emulationExpansion = 1.25;
};

/**
 * The gateable vector unit.
 *
 * Tracks its power state and the dynamic SIMD work routed to it or to
 * scalar emulation.
 */
class Vpu
{
  public:
    explicit Vpu(const VpuParams &params = {});

    /**
     * Execute one SIMD instruction.
     *
     * @return the number of issue slots consumed: 1 when the VPU is
     *         on, width * expansion when it is emulated.
     */
    double executeSimd();

    void gateOff() { on_ = false; }
    void gateOn() { on_ = true; }
    bool on() const { return on_; }

    const VpuParams &params() const { return params_; }

    /** Scalar issue slots that one emulated SIMD op costs. */
    double
    emulatedSlots() const
    {
        return params_.width * params_.emulationExpansion;
    }

    std::uint64_t nativeOps() const { return nativeOps_; }
    std::uint64_t emulatedOps() const { return emulatedOps_; }

  private:
    VpuParams params_;
    bool on_ = true;
    std::uint64_t nativeOps_ = 0;
    std::uint64_t emulatedOps_ = 0;
};

} // namespace powerchop

#endif // POWERCHOP_UARCH_VPU_HH
