#include "verify/differential.hh"

#include <sstream>

#include "common/logging.hh"
#include "verify/invariant_auditor.hh"
#include "verify/reference_simulator.hh"
#include "workload/suites.hh"

namespace powerchop
{
namespace verify
{

std::string
DifferentialCase::toString() const
{
    std::string s =
        workload + " on " + machine + ", " + simModeName(mode);
    if (faultSeed)
        s += csprintf(", fault seed %llu",
                      static_cast<unsigned long long>(faultSeed));
    return s;
}

std::string
DifferentialOutcome::toString() const
{
    if (ok())
        return diffCase.toString() + ": ok";
    std::ostringstream out;
    out << diffCase.toString() << ": FAIL";
    if (!mismatches.empty()) {
        out << " [diverged:";
        for (const auto &m : mismatches)
            out << " " << m.key << " (" << m.detail << ")";
        out << "]";
    }
    if (!violations.empty()) {
        out << " [invariants:";
        for (const auto &v : violations)
            out << " " << v.invariant << " (" << v.detail << ")";
        out << "]";
    }
    return out.str();
}

std::size_t
DifferentialReport::failures() const
{
    std::size_t n = 0;
    for (const auto &o : outcomes)
        if (!o.ok())
            ++n;
    return n;
}

std::string
DifferentialReport::toString() const
{
    if (ok())
        return csprintf("all %zu cases ok", outcomes.size());
    std::ostringstream out;
    out << failures() << " of " << outcomes.size()
        << " cases failed:\n";
    for (const auto &o : outcomes)
        if (!o.ok())
            out << "  " << o.toString() << "\n";
    return out.str();
}

namespace
{

MachineConfig
machineByName(const std::string &name)
{
    if (name == "server")
        return serverConfig();
    if (name == "mobile")
        return mobileConfig();
    fatal("differential: unknown machine '%s' (want server|mobile)",
          name.c_str());
}

/** The default fault mix a non-zero seed enables: every fault class
 *  at a rate that fires tens of times in a 200k-instruction run. */
void
enableFaults(MachineConfig &machine, std::uint64_t seed)
{
    machine.faults.enabled = true;
    machine.faults.seed = seed;
    machine.faults.policyCorruptRate = 0.02;
    machine.faults.htbDropRate = 0.01;
    machine.faults.htbAliasRate = 0.01;
    machine.faults.controllerFlipRate = 0.02;
    machine.faults.wakeupStretchRate = 0.05;
}

} // namespace

DifferentialOutcome
runDifferentialCase(const DifferentialCase &diffCase, InsnCount insns)
{
    DifferentialOutcome out;
    out.diffCase = diffCase;

    MachineConfig machine = machineByName(diffCase.machine);
    if (diffCase.faultSeed)
        enableFaults(machine, diffCase.faultSeed);
    WorkloadSpec workload = findWorkload(diffCase.workload);

    SimOptions opts;
    opts.mode = diffCase.mode;
    opts.maxInstructions = insns;

    SimResult optimized = simulate(machine, workload, opts);
    SimResult reference = referenceSimulate(machine, workload, opts);

    // The oracle's contract is bit-exactness: same arithmetic in the
    // same order, so tolerance zero.
    out.mismatches = compareResults(optimized, reference, 0.0);

    InvariantAuditor auditor;
    for (const auto &v : auditor.audit(optimized, machine).violations)
        out.violations.push_back(
            {"optimized/" + v.invariant, v.detail});
    for (const auto &v : auditor.audit(reference, machine).violations)
        out.violations.push_back(
            {"reference/" + v.invariant, v.detail});

    return out;
}

DifferentialReport
runDifferentialMatrix(
    const DifferentialMatrix &matrix,
    const std::function<void(const DifferentialCase &)> &progress)
{
    // One representative per suite keeps the default matrix small
    // enough for CI while still crossing every workload generator
    // path (SIMD-heavy, branchy, cache-resident, phased).
    std::vector<std::string> workloads = matrix.workloads;
    if (workloads.empty())
        workloads = {"perlbench", "namd", "canneal", "msn"};

    std::vector<std::string> machines = matrix.machines;
    if (machines.empty())
        machines = {"server", "mobile"};

    std::vector<SimMode> modes = matrix.modes;
    if (modes.empty())
        modes = {SimMode::FullPower,  SimMode::PowerChop,
                 SimMode::MinPower,   SimMode::TimeoutVpu,
                 SimMode::StaticPolicy, SimMode::DrowsyMlc};

    std::vector<std::uint64_t> seeds = matrix.faultSeeds;
    if (seeds.empty())
        seeds = {0};

    DifferentialReport report;
    for (const auto &w : workloads) {
        for (const auto &m : machines) {
            for (SimMode mode : modes) {
                for (std::uint64_t seed : seeds) {
                    DifferentialCase c{w, m, mode, seed};
                    if (progress)
                        progress(c);
                    report.outcomes.push_back(
                        runDifferentialCase(c, matrix.insns));
                }
            }
        }
    }
    return report;
}

} // namespace verify
} // namespace powerchop
