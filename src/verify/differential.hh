/**
 * @file
 * The differential check: hold the optimized simulate() loop to the
 * reference simulator's output, bit for bit, across a matrix of
 * (workload, machine, mode, fault seed) points.
 *
 * One case runs both loops on identical inputs and feeds the pair to
 * compareResults() at tolerance zero; both results are additionally
 * run through the invariant auditor, so a case fails either when the
 * loops diverge or when either loop's books don't balance. The
 * matrix runner expands a compact spec (workload names x machines x
 * modes x seeds) into cases and aggregates a report; the CLI's
 * `powerchop verify` subcommand and the CI verify job are thin
 * wrappers around it.
 */

#ifndef POWERCHOP_VERIFY_DIFFERENTIAL_HH
#define POWERCHOP_VERIFY_DIFFERENTIAL_HH

#include <functional>
#include <string>
#include <vector>

#include "sim/simulator.hh"
#include "verify/golden.hh"
#include "verify/invariant_auditor.hh"

namespace powerchop
{
namespace verify
{

/** One point of the differential matrix. */
struct DifferentialCase
{
    std::string workload;
    std::string machine; // "server" or "mobile"
    SimMode mode = SimMode::PowerChop;

    /** Fault-injection seed; 0 leaves the config's fault settings
     *  untouched (fault-free by default). Non-zero enables the
     *  config's default fault mix under this seed. */
    std::uint64_t faultSeed = 0;

    std::string toString() const;
};

/** Outcome of one case. */
struct DifferentialOutcome
{
    DifferentialCase diffCase;

    /** Field mismatches between optimized and reference results. */
    std::vector<GoldenMismatch> mismatches;

    /** Invariant violations found in either loop's result. */
    std::vector<AuditViolation> violations;

    bool ok() const { return mismatches.empty() && violations.empty(); }

    std::string toString() const;
};

/** Aggregate over a matrix. */
struct DifferentialReport
{
    std::vector<DifferentialOutcome> outcomes;

    std::size_t failures() const;
    bool ok() const { return failures() == 0; }

    /** One line per failing case (or "all N cases ok"). */
    std::string toString() const;
};

/**
 * Run one differential case.
 *
 * @param diffCase The matrix point.
 * @param insns    Instruction budget per run.
 * @return the outcome (mismatches + audit violations).
 */
DifferentialOutcome runDifferentialCase(const DifferentialCase &diffCase,
                                        InsnCount insns);

/** Compact matrix spec. */
struct DifferentialMatrix
{
    /** Instruction budget per run; small enough for CI, large enough
     *  to cross many HTB windows and phase changes. */
    InsnCount insns = 200'000;

    /** Workload names (findWorkload()); empty = a representative
     *  default set spanning the four suites. */
    std::vector<std::string> workloads;

    /** Machines ("server"/"mobile"); empty = both. */
    std::vector<std::string> machines;

    /** Modes; empty = all six. */
    std::vector<SimMode> modes;

    /** Fault seeds (0 = fault-free); empty = {0}. */
    std::vector<std::uint64_t> faultSeeds;
};

/**
 * Expand a matrix spec and run every case.
 *
 * @param matrix The spec (empty dimensions get defaults).
 * @param progress Optional per-case progress callback (CLI printing);
 *        called before each case runs.
 */
DifferentialReport runDifferentialMatrix(
    const DifferentialMatrix &matrix,
    const std::function<void(const DifferentialCase &)> &progress = {});

} // namespace verify
} // namespace powerchop

#endif // POWERCHOP_VERIFY_DIFFERENTIAL_HH
