#include "verify/golden.hh"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/atomic_file.hh"
#include "common/logging.hh"

namespace powerchop
{
namespace verify
{

namespace
{

/** Cursor over JSON text with the few scanning helpers the flat
 *  grammar needs. */
struct Scanner
{
    const std::string &text;
    const std::string &who;
    std::size_t pos = 0;

    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw GoldenParseError(
            csprintf("%s: offset %zu: %s", who.c_str(), pos, what.c_str()));
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    char
    peek()
    {
        skipWs();
        if (pos >= text.size())
            fail("unexpected end of input");
        return text[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(csprintf("expected '%c', found '%c'", c, text[pos]));
        ++pos;
    }

    /** Parse a JSON string literal (escape sequences are passed
     *  through verbatim except \" and \\ — golden values are metric
     *  names and mode strings, never exotic text). */
    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (pos < text.size() && text[pos] != '"') {
            if (text[pos] == '\\' && pos + 1 < text.size()) {
                ++pos;
                switch (text[pos]) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  default: out += '\\'; out += text[pos]; break;
                }
            } else {
                out += text[pos];
            }
            ++pos;
        }
        if (pos >= text.size())
            fail("unterminated string");
        ++pos; // closing quote
        return out;
    }

    double
    parseNumber()
    {
        skipWs();
        const char *start = text.c_str() + pos;
        char *end = nullptr;
        double v = std::strtod(start, &end);
        if (end == start)
            fail("expected a number");
        pos += end - start;
        return v;
    }
};

} // namespace

FlatJson
parseFlatJson(const std::string &text, const std::string &who)
{
    Scanner s{text, who};
    FlatJson out;

    s.expect('{');
    if (s.peek() == '}') {
        ++s.pos;
        return out;
    }
    for (;;) {
        std::string key = s.parseString();
        s.expect(':');
        if (s.peek() == '"')
            out.strings[key] = s.parseString();
        else
            out.numbers[key] = s.parseNumber();
        char c = s.peek();
        ++s.pos;
        if (c == '}')
            break;
        if (c != ',')
            s.fail(csprintf("expected ',' or '}', found '%c'", c));
    }
    return out;
}

std::string
GoldenDiff::toString() const
{
    if (mismatches.empty())
        return "ok";
    std::ostringstream out;
    out << mismatches.size() << " mismatch"
        << (mismatches.size() == 1 ? "" : "es") << ": ";
    for (std::size_t i = 0; i < mismatches.size(); ++i) {
        if (i)
            out << "; ";
        out << mismatches[i].key << " (" << mismatches[i].detail << ")";
    }
    return out.str();
}

namespace
{

bool
near(double a, double b, double rel_tol)
{
    if (a == b)
        return true;
    const double scale =
        std::max(1.0, std::max(std::fabs(a), std::fabs(b)));
    return std::fabs(a - b) <= rel_tol * scale;
}

} // namespace

GoldenDiff
diffGolden(const FlatJson &golden, const FlatJson &candidate,
           double rel_tol)
{
    GoldenDiff diff;

    for (const auto &[key, want] : golden.strings) {
        auto it = candidate.strings.find(key);
        if (it == candidate.strings.end()) {
            diff.mismatches.push_back(
                {key, "missing from candidate"});
        } else if (it->second != want) {
            diff.mismatches.push_back(
                {key, csprintf("\"%s\" != golden \"%s\"",
                               it->second.c_str(), want.c_str())});
        }
    }
    for (const auto &[key, want] : golden.numbers) {
        auto it = candidate.numbers.find(key);
        if (it == candidate.numbers.end()) {
            diff.mismatches.push_back(
                {key, "missing from candidate"});
        } else if (!near(it->second, want, rel_tol)) {
            diff.mismatches.push_back(
                {key, csprintf("%.12g != golden %.12g (diff %.3g, tol "
                               "%g)",
                               it->second, want, it->second - want,
                               rel_tol)});
        }
    }
    return diff;
}

std::string
goldenFileName(const std::string &workload, const std::string &machine,
               const std::string &mode)
{
    return workload + "-" + machine + "-" + mode + ".json";
}

bool
loadGolden(const std::string &path, FlatJson &out)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    out = parseFlatJson(buf.str(), path);
    return true;
}

void
saveGolden(const std::string &path, const std::string &json_text)
{
    // Crash-safe replace: an interrupted save can never leave a
    // truncated golden that silently passes or garbles comparisons.
    atomicWriteFile(path, json_text + "\n");
}

std::vector<GoldenMismatch>
compareResults(const SimResult &a, const SimResult &b, double rel_tol)
{
    std::vector<GoldenMismatch> out;

    auto str = [&](const char *key, const std::string &x,
                   const std::string &y) {
        if (x != y)
            out.push_back({key, csprintf("\"%s\" != \"%s\"", x.c_str(),
                                         y.c_str())});
    };
    auto num = [&](const char *key, double x, double y) {
        if (!near(x, y, rel_tol))
            out.push_back(
                {key, csprintf("%.17g != %.17g (diff %.3g)", x, y,
                               x - y)});
    };
    auto cnt = [&](const char *key, std::uint64_t x, std::uint64_t y) {
        if (x != y)
            out.push_back(
                {key, csprintf("%llu != %llu",
                               static_cast<unsigned long long>(x),
                               static_cast<unsigned long long>(y))});
    };

    str("workload", a.workload, b.workload);
    str("machine", a.machine, b.machine);
    str("mode", simModeName(a.mode), simModeName(b.mode));

    cnt("instructions", a.instructions, b.instructions);
    num("cycles", a.cycles, b.cycles);
    num("seconds", a.seconds, b.seconds);
    num("slotOps", a.slotOps, b.slotOps);

    cnt("gating.vpuSwitches", a.gating.vpuSwitches,
        b.gating.vpuSwitches);
    cnt("gating.bpuSwitches", a.gating.bpuSwitches,
        b.gating.bpuSwitches);
    cnt("gating.mlcSwitches", a.gating.mlcSwitches,
        b.gating.mlcSwitches);
    num("gating.vpuGatedCycles", a.gating.vpuGatedCycles,
        b.gating.vpuGatedCycles);
    num("gating.bpuGatedCycles", a.gating.bpuGatedCycles,
        b.gating.bpuGatedCycles);
    num("gating.mlcFullCycles", a.gating.mlcFullCycles,
        b.gating.mlcFullCycles);
    num("gating.mlcHalfCycles", a.gating.mlcHalfCycles,
        b.gating.mlcHalfCycles);
    num("gating.mlcQuarterCycles", a.gating.mlcQuarterCycles,
        b.gating.mlcQuarterCycles);
    num("gating.mlcOneWayCycles", a.gating.mlcOneWayCycles,
        b.gating.mlcOneWayCycles);
    cnt("gating.mlcDirtyWritebacks", a.gating.mlcDirtyWritebacks,
        b.gating.mlcDirtyWritebacks);
    num("gating.stallCycles", a.gating.stallCycles,
        b.gating.stallCycles);

    num("vpuGatedFraction", a.vpuGatedFraction, b.vpuGatedFraction);
    num("bpuGatedFraction", a.bpuGatedFraction, b.bpuGatedFraction);
    num("mlcHalfFraction", a.mlcHalfFraction, b.mlcHalfFraction);
    num("mlcQuarterFraction", a.mlcQuarterFraction,
        b.mlcQuarterFraction);
    num("mlcOneWayFraction", a.mlcOneWayFraction, b.mlcOneWayFraction);
    num("vpuSwitchesPerMcycle", a.vpuSwitchesPerMcycle,
        b.vpuSwitchesPerMcycle);
    num("bpuSwitchesPerMcycle", a.bpuSwitchesPerMcycle,
        b.bpuSwitchesPerMcycle);
    num("mlcSwitchesPerMcycle", a.mlcSwitchesPerMcycle,
        b.mlcSwitchesPerMcycle);

    cnt("pvtLookups", a.pvtLookups, b.pvtLookups);
    cnt("pvtHits", a.pvtHits, b.pvtHits);
    cnt("translationsExecuted", a.translationsExecuted,
        b.translationsExecuted);
    num("pvtMissPerTranslation", a.pvtMissPerTranslation,
        b.pvtMissPerTranslation);

    num("l1HitRate", a.l1HitRate, b.l1HitRate);
    num("mlcHitRate", a.mlcHitRate, b.mlcHitRate);
    cnt("mlcAccesses", a.mlcAccesses, b.mlcAccesses);
    num("mlcAccessesPerKilo", a.mlcAccessesPerKilo,
        b.mlcAccessesPerKilo);

    cnt("branchLookups", a.branchLookups, b.branchLookups);
    cnt("branchMispredicts", a.branchMispredicts, b.branchMispredicts);
    num("branchMispredictRate", a.branchMispredictRate,
        b.branchMispredictRate);
    num("branchesPerKilo", a.branchesPerKilo, b.branchesPerKilo);

    cnt("simdOps", a.simdOps, b.simdOps);
    cnt("simdEmulated", a.simdEmulated, b.simdEmulated);

    num("mlcDrowsyFraction", a.mlcDrowsyFraction, b.mlcDrowsyFraction);
    cnt("drowsyWakes", a.drowsyWakes, b.drowsyWakes);

    cnt("faults.policyCorruptions", a.faults.policyCorruptions,
        b.faults.policyCorruptions);
    cnt("faults.htbDrops", a.faults.htbDrops, b.faults.htbDrops);
    cnt("faults.htbAliases", a.faults.htbAliases, b.faults.htbAliases);
    cnt("faults.controllerFlips", a.faults.controllerFlips,
        b.faults.controllerFlips);
    cnt("faults.wakeupStretches", a.faults.wakeupStretches,
        b.faults.wakeupStretches);
    cnt("safeModeActivations", a.safeModeActivations,
        b.safeModeActivations);
    num("safeModeWindowFraction", a.safeModeWindowFraction,
        b.safeModeWindowFraction);

    num("activity.cycles", a.activity.cycles, b.activity.cycles);
    num("activity.instructions", a.activity.instructions,
        b.activity.instructions);
    num("activity.vpuOps", a.activity.vpuOps, b.activity.vpuOps);
    num("activity.bpuLargeLookups", a.activity.bpuLargeLookups,
        b.activity.bpuLargeLookups);
    num("activity.mlcAccessesFull", a.activity.mlcAccessesFull,
        b.activity.mlcAccessesFull);
    num("activity.mlcAccessesHalf", a.activity.mlcAccessesHalf,
        b.activity.mlcAccessesHalf);
    num("activity.mlcAccessesQuarter", a.activity.mlcAccessesQuarter,
        b.activity.mlcAccessesQuarter);
    num("activity.mlcAccessesOne", a.activity.mlcAccessesOne,
        b.activity.mlcAccessesOne);
    num("activity.vpuGatedCycles", a.activity.vpuGatedCycles,
        b.activity.vpuGatedCycles);
    num("activity.bpuGatedCycles", a.activity.bpuGatedCycles,
        b.activity.bpuGatedCycles);
    num("activity.mlcFullCycles", a.activity.mlcFullCycles,
        b.activity.mlcFullCycles);
    num("activity.mlcHalfCycles", a.activity.mlcHalfCycles,
        b.activity.mlcHalfCycles);
    num("activity.mlcQuarterCycles", a.activity.mlcQuarterCycles,
        b.activity.mlcQuarterCycles);
    num("activity.mlcOneWayCycles", a.activity.mlcOneWayCycles,
        b.activity.mlcOneWayCycles);
    num("activity.mlcDrowsyFraction", a.activity.mlcDrowsyFraction,
        b.activity.mlcDrowsyFraction);
    num("activity.vpuSwitches", a.activity.vpuSwitches,
        b.activity.vpuSwitches);
    num("activity.bpuSwitches", a.activity.bpuSwitches,
        b.activity.bpuSwitches);
    num("activity.mlcSwitches", a.activity.mlcSwitches,
        b.activity.mlcSwitches);

    num("energy.seconds", a.energy.seconds, b.energy.seconds);
    for (unsigned u = 0; u < numUnits; ++u) {
        const Unit unit = static_cast<Unit>(u);
        const std::string base =
            std::string("energy.") + unitName(unit) + ".";
        num((base + "leakage").c_str(), a.energy.unit(unit).leakage,
            b.energy.unit(unit).leakage);
        num((base + "dynamic").c_str(), a.energy.unit(unit).dynamic,
            b.energy.unit(unit).dynamic);
        num((base + "gatingOverhead").c_str(),
            a.energy.unit(unit).gatingOverhead,
            b.energy.unit(unit).gatingOverhead);
    }

    return out;
}

} // namespace verify
} // namespace powerchop
