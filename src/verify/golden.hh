/**
 * @file
 * Golden snapshot store: known-good SimResult renderings pinned as
 * flat JSON files (tests/goldens/) plus a tolerance-aware differ.
 *
 * A golden file is exactly SimResult::toJson() output — one flat
 * object of string and numeric leaves — captured from a known-good
 * build by `powerchop verify --update-goldens` (or the
 * tools/update_goldens wrapper). The differ compares key-by-key:
 *
 *  - every key present in the golden must exist in the candidate;
 *    a missing key fails (a silently dropped metric is a regression);
 *  - extra candidate keys are tolerated, so adding new metrics does
 *    not invalidate existing goldens;
 *  - string values compare exactly; numeric values compare to a
 *    relative tolerance, because goldens cross compiler and flag
 *    boundaries (-ffp-contract and friends) where the last few ULPs
 *    of a long residency sum legitimately drift. CI uses ~1e-6 —
 *    far above FP drift, far below any real accounting bug.
 *
 * compareResults() is the differential-testing sibling: an exhaustive
 * field-by-field comparison of two in-memory SimResults at tolerance
 * zero (bit-exactness), used to hold the optimized simulate() to the
 * reference simulator's output.
 */

#ifndef POWERCHOP_VERIFY_GOLDEN_HH
#define POWERCHOP_VERIFY_GOLDEN_HH

#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/sim_result.hh"

namespace powerchop
{
namespace verify
{

/** Thrown on malformed golden JSON. */
class GoldenParseError : public std::runtime_error
{
  public:
    explicit GoldenParseError(const std::string &msg)
        : std::runtime_error(msg)
    {
    }
};

/** A parsed flat JSON object: one level of string/number leaves. */
struct FlatJson
{
    std::map<std::string, std::string> strings;
    std::map<std::string, double> numbers;

    bool
    has(const std::string &key) const
    {
        return strings.count(key) || numbers.count(key);
    }

    std::size_t size() const { return strings.size() + numbers.size(); }
};

/**
 * Parse a flat JSON object (no nesting, no arrays — the shape
 * SimResult::toJson() emits).
 *
 * @param text The JSON text.
 * @param who  Origin for error messages (file name).
 * @return the parsed object.
 * @throws GoldenParseError on malformed input.
 */
FlatJson parseFlatJson(const std::string &text,
                       const std::string &who = "<json>");

/** One key that failed to match. */
struct GoldenMismatch
{
    std::string key;
    std::string detail;
};

/** Outcome of one golden comparison. */
struct GoldenDiff
{
    std::vector<GoldenMismatch> mismatches;

    bool ok() const { return mismatches.empty(); }

    /** "ok" or a per-key listing. */
    std::string toString() const;
};

/**
 * Compare a candidate against a golden.
 *
 * @param golden    The pinned snapshot (all its keys are required).
 * @param candidate The freshly produced object.
 * @param rel_tol   Relative tolerance for numeric leaves.
 */
GoldenDiff diffGolden(const FlatJson &golden, const FlatJson &candidate,
                      double rel_tol);

/** Canonical golden file name for a run: <workload>-<machine>-<mode>.json */
std::string goldenFileName(const std::string &workload,
                           const std::string &machine,
                           const std::string &mode);

/**
 * Load a golden file.
 *
 * @param path  File path.
 * @param out   Parsed contents on success.
 * @return false when the file does not exist (a missing golden is the
 *         caller's policy decision); malformed contents throw.
 */
bool loadGolden(const std::string &path, FlatJson &out);

/** Write a golden file (the exact JSON text plus a trailing newline). */
void saveGolden(const std::string &path, const std::string &json_text);

/**
 * Exhaustive field-by-field comparison of two SimResults.
 *
 * @param a, b    The results (conventionally: optimized, reference).
 * @param rel_tol 0 demands bit-exact equality — the differential
 *                oracle's contract; golden-style uses are free to
 *                pass a tolerance.
 * @return one mismatch per differing field, empty when identical.
 */
std::vector<GoldenMismatch> compareResults(const SimResult &a,
                                           const SimResult &b,
                                           double rel_tol = 0.0);

} // namespace verify
} // namespace powerchop

#endif // POWERCHOP_VERIFY_GOLDEN_HH
