#include "verify/invariant_auditor.hh"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "common/logging.hh"
#include "power/accumulator.hh"
#include "telemetry/trace.hh"

namespace powerchop
{
namespace verify
{

bool
AuditReport::has(const std::string &invariant) const
{
    for (const auto &v : violations) {
        if (v.invariant == invariant)
            return true;
    }
    return false;
}

std::string
AuditReport::toString() const
{
    if (violations.empty())
        return csprintf("ok (%zu checks)", checks);
    std::ostringstream out;
    out << violations.size() << " invariant violation"
        << (violations.size() == 1 ? "" : "s") << ": ";
    for (std::size_t i = 0; i < violations.size(); ++i) {
        if (i)
            out << "; ";
        out << "[" << violations[i].invariant << "] "
            << violations[i].detail;
    }
    return out.str();
}

InvariantAuditor::InvariantAuditor(double rel_tol) : relTol_(rel_tol)
{
    if (!(rel_tol >= 0))
        fatal("InvariantAuditor: negative tolerance %f", rel_tol);
}

namespace
{

/** Checker bound to one report: counts every evaluated check and
 *  records failures by invariant id. */
class Checker
{
  public:
    Checker(AuditReport &rep, double rel_tol)
        : rep_(rep), relTol_(rel_tol)
    {
    }

    /** a == b up to relTol * max(1, |a|, |b|). */
    bool
    near(double a, double b) const
    {
        const double scale =
            std::max(1.0, std::max(std::fabs(a), std::fabs(b)));
        return std::fabs(a - b) <= relTol_ * scale;
    }

    void
    require(bool ok, const char *invariant, const std::string &detail)
    {
        ++rep_.checks;
        if (!ok)
            rep_.violations.push_back({invariant, detail});
    }

    /** Equality check with the standard "name: a != b" detail. */
    void
    equal(double a, double b, const char *invariant, const char *what)
    {
        require(near(a, b), invariant,
                csprintf("%s: %.12g != %.12g (diff %.3g)", what, a, b,
                         a - b));
    }

    void
    finite(double v, const char *what)
    {
        require(std::isfinite(v), "finite-values",
                csprintf("%s is not finite (%g)", what, v));
    }

    void
    inUnitRange(double v, const char *what)
    {
        require(v >= 0 && v <= 1 + relTol_, "unit-range",
                csprintf("%s = %.12g outside [0, 1]", what, v));
    }

  private:
    AuditReport &rep_;
    double relTol_;
};

} // namespace

void
InvariantAuditor::auditInternal(const SimResult &res,
                                AuditReport &rep) const
{
    Checker c(rep, relTol_);
    const GatingStats &g = res.gating;
    const ActivityRecord &a = res.activity;
    const double cycles = res.cycles;
    const double insns = static_cast<double>(res.instructions);

    // Nothing divides sensibly in an all-zero (default-constructed or
    // failed-job) result; it is vacuously consistent.
    c.finite(res.cycles, "cycles");
    c.finite(res.seconds, "seconds");
    c.finite(res.slotOps, "slotOps");
    for (const double *v :
         {&res.vpuGatedFraction, &res.bpuGatedFraction,
          &res.mlcHalfFraction, &res.mlcQuarterFraction,
          &res.mlcOneWayFraction, &res.vpuSwitchesPerMcycle,
          &res.bpuSwitchesPerMcycle, &res.mlcSwitchesPerMcycle,
          &res.pvtMissPerTranslation, &res.l1HitRate, &res.mlcHitRate,
          &res.mlcAccessesPerKilo, &res.branchMispredictRate,
          &res.branchesPerKilo, &res.mlcDrowsyFraction,
          &res.safeModeWindowFraction})
        c.finite(*v, "derived metric");

    c.require(cycles >= 0, "nonnegative-time",
              csprintf("cycles = %.12g", cycles));
    c.require(res.seconds >= 0, "nonnegative-time",
              csprintf("seconds = %.12g", res.seconds));

    // --- Residency conservation ---------------------------------------
    // The MLC is always in exactly one of its four states, so the four
    // residencies partition the run.
    const double mlc_residency = g.mlcFullCycles + g.mlcHalfCycles +
                                 g.mlcQuarterCycles + g.mlcOneWayCycles;
    c.equal(mlc_residency, cycles, "mlc-residency-conservation",
            "sum of MLC state residencies vs total cycles");

    // The VPU/BPU are on or gated; gated residency never exceeds the
    // run (the ungated remainder is implicit).
    c.require(g.vpuGatedCycles >= 0 &&
                  g.vpuGatedCycles <= cycles * (1 + relTol_) + relTol_,
              "residency-bound",
              csprintf("vpuGatedCycles = %.12g of %.12g cycles",
                       g.vpuGatedCycles, cycles));
    c.require(g.bpuGatedCycles >= 0 &&
                  g.bpuGatedCycles <= cycles * (1 + relTol_) + relTol_,
              "residency-bound",
              csprintf("bpuGatedCycles = %.12g of %.12g cycles",
                       g.bpuGatedCycles, cycles));

    // --- Derived fractions and rates match their raw counters ---------
    auto per = [](double num, double den) {
        return den > 0 ? num / den : 0.0;
    };

    c.equal(res.vpuGatedFraction, per(g.vpuGatedCycles, cycles),
            "fraction-consistency", "vpuGatedFraction");
    c.equal(res.bpuGatedFraction, per(g.bpuGatedCycles, cycles),
            "fraction-consistency", "bpuGatedFraction");
    c.equal(res.mlcHalfFraction, per(g.mlcHalfCycles, cycles),
            "fraction-consistency", "mlcHalfFraction");
    c.equal(res.mlcQuarterFraction, per(g.mlcQuarterCycles, cycles),
            "fraction-consistency", "mlcQuarterFraction");
    c.equal(res.mlcOneWayFraction, per(g.mlcOneWayCycles, cycles),
            "fraction-consistency", "mlcOneWayFraction");

    const double mcycles = cycles / 1e6;
    c.equal(res.vpuSwitchesPerMcycle,
            per(static_cast<double>(g.vpuSwitches), mcycles),
            "switch-rate-consistency", "vpuSwitchesPerMcycle");
    c.equal(res.bpuSwitchesPerMcycle,
            per(static_cast<double>(g.bpuSwitches), mcycles),
            "switch-rate-consistency", "bpuSwitchesPerMcycle");
    c.equal(res.mlcSwitchesPerMcycle,
            per(static_cast<double>(g.mlcSwitches), mcycles),
            "switch-rate-consistency", "mlcSwitchesPerMcycle");

    const std::pair<double, const char *> unit_ranged[] = {
        {res.vpuGatedFraction, "vpuGatedFraction"},
        {res.bpuGatedFraction, "bpuGatedFraction"},
        {res.mlcHalfFraction, "mlcHalfFraction"},
        {res.mlcQuarterFraction, "mlcQuarterFraction"},
        {res.mlcOneWayFraction, "mlcOneWayFraction"},
        {res.l1HitRate, "l1HitRate"},
        {res.mlcHitRate, "mlcHitRate"},
        {res.branchMispredictRate, "branchMispredictRate"},
        {res.mlcDrowsyFraction, "mlcDrowsyFraction"},
        {res.safeModeWindowFraction, "safeModeWindowFraction"},
    };
    for (const auto &[v, what] : unit_ranged)
        c.inUnitRange(v, what);

    // --- Canonical instruction-count denominators ---------------------
    // Every per-kilo / per-cycle rate divides by `instructions`, the
    // committed guest count (see SimResult), never by slotOps.
    c.equal(res.mlcAccessesPerKilo,
            per(1000.0 * static_cast<double>(res.mlcAccesses), insns),
            "rate-denominator", "mlcAccessesPerKilo");
    c.equal(res.branchesPerKilo,
            per(1000.0 * static_cast<double>(res.branchLookups), insns),
            "rate-denominator", "branchesPerKilo");
    c.equal(res.branchMispredictRate,
            per(static_cast<double>(res.branchMispredicts),
                static_cast<double>(res.branchLookups)),
            "rate-denominator", "branchMispredictRate");
    c.require(res.branchMispredicts <= res.branchLookups,
              "counter-bound",
              csprintf("branchMispredicts %llu > branchLookups %llu",
                       static_cast<unsigned long long>(
                           res.branchMispredicts),
                       static_cast<unsigned long long>(
                           res.branchLookups)));

    c.require(res.pvtHits <= res.pvtLookups, "counter-bound",
              csprintf("pvtHits %llu > pvtLookups %llu",
                       static_cast<unsigned long long>(res.pvtHits),
                       static_cast<unsigned long long>(
                           res.pvtLookups)));
    c.equal(res.pvtMissPerTranslation,
            per(static_cast<double>(res.pvtLookups - res.pvtHits),
                static_cast<double>(res.translationsExecuted)),
            "rate-denominator", "pvtMissPerTranslation");

    // --- SimResult vs ActivityRecord cross-consistency ----------------
    c.equal(a.cycles, cycles, "activity-consistency",
            "activity.cycles vs result cycles");
    c.equal(a.vpuOps, static_cast<double>(res.simdOps),
            "activity-consistency", "activity.vpuOps vs simdOps");
    c.equal(a.vpuGatedCycles, g.vpuGatedCycles, "activity-consistency",
            "activity.vpuGatedCycles vs gating");
    c.equal(a.bpuGatedCycles, g.bpuGatedCycles, "activity-consistency",
            "activity.bpuGatedCycles vs gating");
    c.equal(a.vpuSwitches, static_cast<double>(g.vpuSwitches),
            "activity-consistency", "activity.vpuSwitches vs gating");
    c.equal(a.bpuSwitches, static_cast<double>(g.bpuSwitches),
            "activity-consistency", "activity.bpuSwitches vs gating");
    c.equal(a.mlcSwitches, static_cast<double>(g.mlcSwitches),
            "activity-consistency", "activity.mlcSwitches vs gating");
    // The energy model also partitions the MLC's residency; TimeoutVpu
    // forces activity.mlcFullCycles = cycles, which the conservation
    // law above already makes equivalent to the gating view.
    const double act_mlc_residency =
        a.mlcFullCycles + a.mlcHalfCycles + a.mlcQuarterCycles +
        a.mlcOneWayCycles;
    c.equal(act_mlc_residency, cycles, "mlc-residency-conservation",
            "sum of activity MLC residencies vs total cycles");

    // MLC accesses are bucketed by the way-state they were served
    // under; the buckets partition the raw access count.
    const double act_mlc_accesses = a.mlcAccessesFull +
                                    a.mlcAccessesHalf +
                                    a.mlcAccessesQuarter +
                                    a.mlcAccessesOne;
    c.equal(act_mlc_accesses, static_cast<double>(res.mlcAccesses),
            "mlc-access-partition",
            "sum of per-state MLC access buckets vs mlcAccesses");

    c.require(a.bpuLargeLookups <=
                  static_cast<double>(res.branchLookups) *
                      (1 + relTol_),
              "counter-bound",
              csprintf("bpuLargeLookups %.12g > branchLookups %llu",
                       a.bpuLargeLookups,
                       static_cast<unsigned long long>(
                           res.branchLookups)));

    // --- SIMD and slot-op accounting ----------------------------------
    // Every SIMD instruction ran natively or emulated, and both are
    // guest instructions.
    c.require(res.simdOps + res.simdEmulated <= res.instructions,
              "counter-bound",
              csprintf("simdOps %llu + simdEmulated %llu > "
                       "instructions %llu",
                       static_cast<unsigned long long>(res.simdOps),
                       static_cast<unsigned long long>(
                           res.simdEmulated),
                       static_cast<unsigned long long>(
                           res.instructions)));
    c.equal(res.slotOps, a.instructions, "slot-op-consistency",
            "slotOps vs activity.instructions");
    c.require(res.slotOps >= insns * (1 - relTol_) || insns == 0,
              "slot-op-consistency",
              csprintf("slotOps %.12g < instructions %.12g",
                       res.slotOps, insns));
}

AuditReport
InvariantAuditor::audit(const SimResult &res) const
{
    AuditReport rep;
    auditInternal(res, rep);
    return rep;
}

AuditReport
InvariantAuditor::audit(const SimResult &res,
                        const MachineConfig &machine) const
{
    AuditReport rep;
    auditInternal(res, rep);
    Checker c(rep, relTol_);

    const double cycles = res.cycles;
    const double insns = static_cast<double>(res.instructions);

    // --- Design-point recomputations ----------------------------------
    c.equal(res.seconds,
            cycles > 0 ? cycles / machine.core.frequencyHz : 0.0,
            "seconds-consistency", "seconds vs cycles / frequency");

    // No instruction retires in less than one issue slot.
    c.require(res.ipc() <=
                  machine.core.issueWidth * (1 + relTol_),
              "ipc-bound",
              csprintf("ipc %.12g exceeds issue width %u", res.ipc(),
                       machine.core.issueWidth));

    // Emulated SIMD expansion is the only source of extra issue slots.
    const double emulated_extra =
        static_cast<double>(res.simdEmulated) *
        (machine.vpu.width * machine.vpu.emulationExpansion - 1.0);
    c.equal(res.slotOps, insns + emulated_extra, "slot-op-consistency",
            "slotOps vs instructions + emulated SIMD expansion");

    // The reported energy must be exactly what the accumulator makes
    // of the reported activity — no side-channel adjustments. Same
    // code, same inputs, so the bound is far below relTol.
    CorePowerModel model(machine.power);
    EnergyBreakdown want =
        accumulateEnergy(model, res.activity, machine.mlc.assoc);
    Checker tight(rep, 1e-12);
    tight.equal(res.energy.seconds, want.seconds, "energy-recompute",
                "energy.seconds");
    for (unsigned u = 0; u < numUnits; ++u) {
        const Unit unit = static_cast<Unit>(u);
        tight.equal(res.energy.unit(unit).leakage,
                    want.unit(unit).leakage, "energy-recompute",
                    csprintf("%s leakage energy", unitName(unit))
                        .c_str());
        tight.equal(res.energy.unit(unit).dynamic,
                    want.unit(unit).dynamic, "energy-recompute",
                    csprintf("%s dynamic energy", unitName(unit))
                        .c_str());
        tight.equal(res.energy.unit(unit).gatingOverhead,
                    want.unit(unit).gatingOverhead, "energy-recompute",
                    csprintf("%s gating overhead", unitName(unit))
                        .c_str());
    }

    // --- Mode-specific laws -------------------------------------------
    if (res.mode == SimMode::FullPower) {
        const GatingStats &g = res.gating;
        c.require(g.vpuSwitches == 0 && g.bpuSwitches == 0 &&
                      g.mlcSwitches == 0,
                  "full-power-never-gates",
                  csprintf("switches in FullPower mode: vpu %llu bpu "
                           "%llu mlc %llu",
                           static_cast<unsigned long long>(
                               g.vpuSwitches),
                           static_cast<unsigned long long>(
                               g.bpuSwitches),
                           static_cast<unsigned long long>(
                               g.mlcSwitches)));
        c.equal(g.vpuGatedCycles + g.bpuGatedCycles + g.mlcHalfCycles +
                    g.mlcQuarterCycles + g.mlcOneWayCycles,
                0.0, "full-power-never-gates",
                "gated residency in FullPower mode");
        c.equal(g.mlcFullCycles, cycles, "full-power-never-gates",
                "mlcFullCycles vs cycles in FullPower mode");
    }

    return rep;
}

AuditReport
InvariantAuditor::auditTrace(
    const telemetry::TraceRecorder &trace) const
{
    AuditReport rep;
    Checker c(rep, relTol_);

    InsnCount prev_insns = 0;
    Cycles prev_cycles = 0;
    std::size_t idx = 0;
    for (const auto &ev : trace.events()) {
        c.require(std::isfinite(ev.cycles) && ev.cycles >= 0,
                  "trace-timestamp-range",
                  csprintf("event %zu cycles = %g", idx, ev.cycles));
        c.require(ev.insns >= prev_insns, "trace-monotonic-insns",
                  csprintf("event %zu insns %llu < previous %llu", idx,
                           static_cast<unsigned long long>(ev.insns),
                           static_cast<unsigned long long>(
                               prev_insns)));
        c.require(ev.cycles >= prev_cycles - relTol_,
                  "trace-monotonic-cycles",
                  csprintf("event %zu cycles %.12g < previous %.12g",
                           idx, ev.cycles, prev_cycles));
        prev_insns = ev.insns;
        prev_cycles = std::max(prev_cycles, ev.cycles);
        ++idx;
    }

    if (!trace.events().empty()) {
        c.require(trace.endInsns() >= prev_insns,
                  "trace-end-bound",
                  csprintf("endInsns %llu < last event insns %llu",
                           static_cast<unsigned long long>(
                               trace.endInsns()),
                           static_cast<unsigned long long>(
                               prev_insns)));
        c.require(trace.endCycles() >= prev_cycles - relTol_,
                  "trace-end-bound",
                  csprintf("endCycles %.12g < last event cycles %.12g",
                           trace.endCycles(), prev_cycles));
    }

    return rep;
}

} // namespace verify
} // namespace powerchop
