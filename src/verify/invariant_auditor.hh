/**
 * @file
 * The invariant auditor: conservation-law checks over finished
 * simulation results.
 *
 * The gating simulator's books must balance — per-unit gated and
 * ungated cycles sum to the run's total, MLC residency fractions sum
 * to one, the energy breakdown is exactly what accumulateEnergy()
 * produces from the recorded activity, derived rates match their raw
 * numerators and the canonical instruction count, and telemetry
 * timestamps never run backwards. Power-state accounting is exactly
 * where gating simulators silently go wrong, so every one of those
 * laws is checked explicitly and violations are reported by name.
 *
 * Three entry points:
 *  - audit(res): internal consistency of one SimResult (cross-checks
 *    between SimResult, GatingStats and ActivityRecord);
 *  - audit(res, machine): everything above plus the recomputations
 *    that need the design point (energy == accumulateEnergy(activity),
 *    seconds == cycles / frequency, IPC <= issue width);
 *  - auditTrace(trace): monotonic timestamp order of a telemetry
 *    trace.
 *
 * simulate() runs the (res, machine) audit on every call when
 * SimOptions::audit is set (POWERCHOP_AUDIT=1 turns it on for every
 * job the runner executes) and throws InvariantViolationError naming
 * each broken invariant.
 */

#ifndef POWERCHOP_VERIFY_INVARIANT_AUDITOR_HH
#define POWERCHOP_VERIFY_INVARIANT_AUDITOR_HH

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/machine_config.hh"
#include "sim/sim_result.hh"

namespace powerchop
{

namespace telemetry
{
class TraceRecorder;
} // namespace telemetry

namespace verify
{

/** One broken conservation law. */
struct AuditViolation
{
    /** Stable invariant identifier (e.g. "mlc-residency-conservation");
     *  tests and CI match on this, the detail is for humans. */
    std::string invariant;

    /** Human-readable account of the imbalance. */
    std::string detail;
};

/** Outcome of one audit pass. */
struct AuditReport
{
    /** Individual checks evaluated. */
    std::size_t checks = 0;

    std::vector<AuditViolation> violations;

    bool ok() const { return violations.empty(); }

    /** @return true when a violation with this invariant id exists. */
    bool has(const std::string &invariant) const;

    /** "ok (N checks)" or a per-violation listing. */
    std::string toString() const;
};

/** Thrown by simulate() when SimOptions::audit finds a violation. */
class InvariantViolationError : public std::runtime_error
{
  public:
    explicit InvariantViolationError(const std::string &msg)
        : std::runtime_error(msg)
    {
    }
};

/**
 * Checks a SimResult's conservation laws.
 *
 * Tolerances: residency integrals are sums of ~budget/blocksize
 * floating point additions, so equalities are checked relative to
 * relTol * max(1, |a|, |b|). The default 1e-6 is ~7 orders of
 * magnitude above the drift a 10M-instruction run accumulates and
 * ~10 below any genuine accounting bug (a lost block, window or
 * stall is whole cycles). Integer counters are compared exactly.
 */
class InvariantAuditor
{
  public:
    explicit InvariantAuditor(double rel_tol = 1e-6);

    /** Internal consistency of one result. */
    AuditReport audit(const SimResult &res) const;

    /** Internal consistency plus design-point recomputations
     *  (energy breakdown, wall-clock seconds, IPC bound). */
    AuditReport audit(const SimResult &res,
                      const MachineConfig &machine) const;

    /** Monotonic timestamp order of a recorded trace. */
    AuditReport auditTrace(const telemetry::TraceRecorder &trace) const;

    double relTol() const { return relTol_; }

  private:
    void auditInternal(const SimResult &res, AuditReport &rep) const;

    double relTol_;
};

} // namespace verify
} // namespace powerchop

#endif // POWERCHOP_VERIFY_INVARIANT_AUDITOR_HH
