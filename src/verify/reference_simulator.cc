#include "verify/reference_simulator.hh"

#include "common/logging.hh"
#include "core/drowsy_mlc.hh"
#include "core/perf_monitor.hh"
#include "telemetry/trace.hh"

namespace powerchop
{
namespace verify
{

SimResult
referenceSimulate(const MachineConfig &machine,
                  const WorkloadSpec &workload, const SimOptions &opts)
{
    machine.validate();
    if (opts.maxInstructions == 0)
        fatal("referenceSimulate: zero instruction budget");

    // --- Build the machine (identical to simulate()) -------------------
    WorkloadGenerator gen(workload);
    BtParams bt_params = machine.bt;
    BtSystem bt(gen.program(), bt_params);
    BpuComplex bpu(machine.bpu);
    MemHierarchy mem(machine.l1, machine.mlc);
    Vpu vpu(machine.vpu);
    GatingController controller(vpu, bpu, mem, machine.penalties);
    PerfMonitor monitor(bpu, mem);
    PowerChopUnit pchop(machine.powerChop, controller, bt.nucleus(),
                        monitor);

    FaultInjector injector(machine.faults);
    if (injector.active()) {
        controller.setFaultInjector(&injector);
        pchop.setFaultInjector(&injector);
    }

    TimeoutParams to_params = machine.timeout;
    if (opts.timeoutCycles > 0)
        to_params.timeoutCycles = opts.timeoutCycles;
    TimeoutGater timeout(vpu, to_params);
    DrowsyMlc drowsy(mem, machine.drowsy);

    CorePowerModel power_model(machine.power);

    const CoreParams &core = machine.core;
    const double slot = 1.0 / core.issueWidth;

    const bool use_powerchop = opts.mode == SimMode::PowerChop;
    const bool use_timeout = opts.mode == SimMode::TimeoutVpu;
    const bool use_drowsy = opts.mode == SimMode::DrowsyMlc;

    if (use_powerchop) {
        pchop.setManagedUnits(opts.manageVpu, opts.manageBpu,
                              opts.manageMlc);
        if (opts.windowObserver)
            pchop.setWindowObserver(opts.windowObserver);
    }

    telemetry::TraceRecorder *trace = opts.trace;
    if (trace) {
        trace->beginRun(workload.name, machine.name,
                        simModeName(opts.mode), machine.telemetry);
        controller.setTrace(trace);
        pchop.setTrace(trace);
        if (injector.active())
            injector.setTrace(trace);
    }

    SimResult res;
    res.workload = workload.name;
    res.machine = machine.name;
    res.mode = opts.mode;

    Cycles cycles = 0;
    Cycles last_accrue = 0;

    if (opts.mode == SimMode::MinPower) {
        cycles += controller.applyPolicy(GatingPolicy::minPower());
    } else if (opts.mode == SimMode::StaticPolicy) {
        cycles += controller.applyPolicy(opts.staticPolicy);
    }

    ActivityRecord act;
    std::uint64_t branch_lookups = 0;
    std::uint64_t branch_mispredicts = 0;
    std::uint64_t bpu_large_lookups = 0;
    std::uint64_t mlc_accesses = 0;

    TranslationId last_trans = invalidTranslationId;
    std::uint64_t insns_since_head = 0;

    const Translation *cur_trace = nullptr;
    std::size_t trace_idx = 0;

    Addr last_miss_line = ~static_cast<Addr>(0);
    const Addr line_shift = 6;

    bool interpreting = true;

    auto accrue = [&]() {
        if (cycles > last_accrue) {
            controller.accrue(cycles - last_accrue);
            last_accrue = cycles;
        }
    };

    // --- The reference loop --------------------------------------------
    // Strictly one instruction per iteration. Head work runs whenever
    // the generator sits at a block head; the execution mode, sampler
    // decision and MLC counter destination are all re-derived from
    // first principles at each instruction instead of being hoisted,
    // counted down or cached.
    const InsnCount max_insns = opts.maxInstructions;
    const std::atomic<bool> *cancel = opts.cancelFlag;
    for (InsnCount n = 0; n < max_insns; ++n) {
        if (gen.atBlockHead()) {
            if (cancel && cancel->load(std::memory_order_relaxed)) {
                throw SimCancelledError(csprintf(
                    "referenceSimulate(%s on %s): cancelled after "
                    "%llu of %llu instructions",
                    workload.name.c_str(), machine.name.c_str(),
                    static_cast<unsigned long long>(n),
                    static_cast<unsigned long long>(max_insns)));
            }

            const BlockId blk = gen.currentBlock();

            if (cur_trace && trace_idx < cur_trace->blocks.size() &&
                cur_trace->blocks[trace_idx] == blk) {
                ++trace_idx;
                interpreting = false;
            } else {
                cur_trace = nullptr;
                RegionEntry entry = bt.enterRegion(blk);
                cycles += entry.extraCycles;
                interpreting = (entry.mode == ExecMode::Interpreted);

                if (entry.mode == ExecMode::Translated) {
                    if (use_powerchop &&
                        last_trans != invalidTranslationId) {
                        accrue();
                        if (trace)
                            trace->setNow(n, cycles);
                        cycles += pchop.onTranslationHead(
                            last_trans, insns_since_head, cycles);
                    }
                    last_trans = entry.translation->id;
                    insns_since_head = 0;
                    cur_trace = entry.translation;
                    trace_idx = 1;
                } else {
                    last_trans = invalidTranslationId;
                    insns_since_head = 0;
                }
            }

            if (use_timeout) {
                accrue();
                cycles += timeout.checkIdle(cycles);
            }
            if (use_drowsy)
                drowsy.tick(cycles);
        }

        const DynInst &di = gen.next();
        const OpClass op = di.op();
        monitor.onCommit(op);
        ++insns_since_head;

        cycles += interpreting ? core.interpreterCpi : slot;

        switch (op) {
          case OpClass::SimdOp: {
            if (use_timeout)
                cycles += timeout.onSimdUse(cycles);
            double slots = vpu.executeSimd();
            if (slots > 1.0) {
                cycles += (slots - 1.0) * slot;
                act.instructions += slots - 1.0;
            }
            break;
          }
          case OpClass::Load:
          case OpClass::Store: {
            const bool is_store = (op == OpClass::Store);
            MemAccessResult r = mem.access(di.effAddr, is_store);
            double scale = is_store ? core.storeStallFraction : 1.0;
            if (r.level == MemLevel::Mlc) {
                cycles += core.mlcHitPenalty * scale;
                if (r.mlcWokeDrowsy)
                    cycles += machine.drowsy.wakePenaltyCycles * scale;
            } else if (r.level == MemLevel::Memory) {
                Addr line = di.effAddr >> line_shift;
                Addr delta = line > last_miss_line
                    ? line - last_miss_line : last_miss_line - line;
                bool streamed = delta <= 2;
                last_miss_line = line;
                cycles += core.memoryPenalty * scale *
                          (streamed ? core.streamMissFactor : 1.0);
            }
            if (r.level != MemLevel::L1) {
                ++mlc_accesses;
                // Re-dispatch on the live policy at every access.
                switch (controller.current().mlc) {
                  case MlcPolicy::AllWays:
                    act.mlcAccessesFull += 1;
                    break;
                  case MlcPolicy::HalfWays:
                    act.mlcAccessesHalf += 1;
                    break;
                  case MlcPolicy::QuarterWays:
                    act.mlcAccessesQuarter += 1;
                    break;
                  case MlcPolicy::OneWay:
                    act.mlcAccessesOne += 1;
                    break;
                }
            }
            break;
          }
          case OpClass::Branch: {
            if (di.isTerminator) {
                BpuOutcome o = bpu.predictIndirect(di.pc(), di.target);
                if (o.targetMiss)
                    cycles += core.btbMissPenalty;
                break;
            }
            BpuOutcome o = bpu.predict(di.pc(), di.taken, di.target);
            ++branch_lookups;
            if (bpu.largeOn())
                ++bpu_large_lookups;
            if (o.directionMispredict) {
                cycles += core.mispredictPenalty;
                ++branch_mispredicts;
            } else if (o.targetMiss) {
                cycles += core.btbMissPenalty;
            }
            break;
          }
          case OpClass::IntAlu:
          case OpClass::FpAlu:
            break;
        }

        if (opts.sampleInterval &&
            (n + 1) % opts.sampleInterval == 0)
            opts.sampler(n + 1, cycles);
    }

    // Flush the trailing attribution, exactly as simulate() does.
    if (use_powerchop && last_trans != invalidTranslationId &&
        insns_since_head > 0) {
        accrue();
        if (trace)
            trace->setNow(max_insns, cycles);
        cycles +=
            pchop.onTranslationHead(last_trans, insns_since_head, cycles);
        insns_since_head = 0;
    }

    accrue();
    if (use_timeout)
        timeout.finish(cycles);
    if (use_drowsy)
        drowsy.finish(cycles);

    if (trace) {
        trace->setNow(max_insns, cycles);
        trace->endRun(max_insns, cycles);
    }

    // --- Collect results (identical arithmetic to simulate()) ----------
    auto per = [](double num, double den) {
        return den > 0 ? num / den : 0.0;
    };

    res.instructions = max_insns;
    res.cycles = cycles;
    res.seconds = per(cycles, core.frequencyHz);

    res.gating = controller.stats();
    if (use_timeout) {
        res.gating.vpuSwitches = timeout.switches();
        res.gating.vpuGatedCycles = timeout.gatedCycles();
    }

    res.vpuGatedFraction = per(res.gating.vpuGatedCycles, cycles);
    res.bpuGatedFraction = per(res.gating.bpuGatedCycles, cycles);
    res.mlcHalfFraction = per(res.gating.mlcHalfCycles, cycles);
    res.mlcQuarterFraction = per(res.gating.mlcQuarterCycles, cycles);
    res.mlcOneWayFraction = per(res.gating.mlcOneWayCycles, cycles);

    const double mcycles = cycles / 1e6;
    res.vpuSwitchesPerMcycle = per(res.gating.vpuSwitches, mcycles);
    res.bpuSwitchesPerMcycle = per(res.gating.bpuSwitches, mcycles);
    res.mlcSwitchesPerMcycle = per(res.gating.mlcSwitches, mcycles);

    res.pvtLookups = pchop.pvt().lookups();
    res.pvtHits = pchop.pvt().hits();

    res.faults = injector.stats();
    const QosStats &qos = pchop.qos().stats();
    res.safeModeActivations = qos.safeModeActivations;
    res.safeModeWindowFraction = qos.windowsObserved
        ? static_cast<double>(qos.safeModeWindows) /
              qos.windowsObserved
        : 0.0;
    res.translationsExecuted = pchop.translationsSeen();
    res.pvtMissPerTranslation = res.translationsExecuted
        ? static_cast<double>(pchop.pvt().misses()) /
              res.translationsExecuted
        : 0.0;

    res.l1HitRate = mem.l1().hitRate();
    res.mlcHitRate = mem.mlc().hitRate();
    res.mlcAccesses = mlc_accesses;
    res.mlcAccessesPerKilo =
        per(1000.0 * mlc_accesses, res.instructions);

    res.branchLookups = branch_lookups;
    res.branchMispredicts = branch_mispredicts;
    res.branchMispredictRate =
        per(branch_mispredicts, branch_lookups);
    res.branchesPerKilo =
        per(1000.0 * branch_lookups, res.instructions);

    res.simdOps = vpu.nativeOps();
    res.simdEmulated = vpu.emulatedOps();

    if (use_drowsy) {
        res.mlcDrowsyFraction = drowsy.avgDrowsyFraction();
        res.drowsyWakes = mem.mlc().drowsyWakes();
        act.mlcDrowsyFraction = res.mlcDrowsyFraction;
        act.drowsyLeakageFraction =
            machine.drowsy.drowsyLeakageFraction;
    }

    act.cycles = cycles;
    act.instructions += res.instructions;
    act.vpuOps = static_cast<double>(vpu.nativeOps());
    act.bpuLargeLookups = static_cast<double>(bpu_large_lookups);
    act.vpuGatedCycles = res.gating.vpuGatedCycles;
    act.bpuGatedCycles = res.gating.bpuGatedCycles;
    act.mlcFullCycles = res.gating.mlcFullCycles;
    act.mlcHalfCycles = res.gating.mlcHalfCycles;
    act.mlcQuarterCycles = res.gating.mlcQuarterCycles;
    act.mlcOneWayCycles = res.gating.mlcOneWayCycles;
    if (use_timeout) {
        act.vpuGatedCycles = timeout.gatedCycles();
        act.vpuSwitches = static_cast<double>(timeout.switches());
        act.mlcFullCycles = cycles;
    } else {
        act.vpuSwitches = static_cast<double>(res.gating.vpuSwitches);
    }
    act.bpuSwitches = static_cast<double>(res.gating.bpuSwitches);
    act.mlcSwitches = static_cast<double>(res.gating.mlcSwitches);

    res.slotOps = act.instructions;
    res.activity = act;
    res.energy = accumulateEnergy(power_model, act, machine.mlc.assoc);

    return res;
}

} // namespace verify
} // namespace powerchop
