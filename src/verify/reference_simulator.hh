/**
 * @file
 * The reference simulator: a deliberately simple re-implementation of
 * simulate() used as a differential oracle for the optimized core.
 *
 * The production loop in sim/simulator.cc earns its speed from three
 * structural tricks: whole-block burst execution with the per-
 * instruction head checks hoisted out, a countdown-based sampler
 * (one decrement-and-test per instruction instead of a modulo), and an
 * epoch-cached destination pointer for the per-policy MLC access
 * counters. Each of those is a place where an optimization bug could
 * silently skew results.
 *
 * referenceSimulate() takes the other side of every one of those
 * trades: it advances strictly one instruction at a time, re-evaluates
 * the execution mode per instruction, fires the sampler from an
 * explicit modulo, and re-dispatches the MLC access counter on the
 * controller's live policy at every access. It shares the component
 * models (BT, BPU, MLC, VPU, gating controller, PowerChop unit) —
 * those have their own unit tests — so what the differential check
 * isolates is exactly the driver loop's bookkeeping.
 *
 * The contract is bit-identical results: same (machine, workload,
 * options) must produce a SimResult whose every field matches
 * simulate()'s exactly, including floating-point state, because both
 * loops apply the same arithmetic in the same order. Any divergence,
 * however small, is a bug in one of the two loops.
 *
 * Unsupported instrumentation: opts.metrics and opts.profiler are
 * ignored (they never feed back into results); opts.audit is ignored
 * (the oracle is the thing audits are checked against). Traces,
 * window observers, samplers and cancellation behave as in
 * simulate().
 */

#ifndef POWERCHOP_VERIFY_REFERENCE_SIMULATOR_HH
#define POWERCHOP_VERIFY_REFERENCE_SIMULATOR_HH

#include "sim/simulator.hh"

namespace powerchop
{
namespace verify
{

/**
 * Run one simulation through the reference (unoptimized) loop.
 *
 * @param machine  The design point.
 * @param workload The application model.
 * @param opts     Mode and instrumentation options.
 * @return the measured result, bit-identical to simulate()'s.
 */
SimResult referenceSimulate(const MachineConfig &machine,
                            const WorkloadSpec &workload,
                            const SimOptions &opts);

} // namespace verify
} // namespace powerchop

#endif // POWERCHOP_VERIFY_REFERENCE_SIMULATOR_HH
