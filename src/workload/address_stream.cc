#include "workload/address_stream.hh"

#include "common/logging.hh"

namespace powerchop
{

namespace
{

bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

AddressStream::AddressStream(const AddressStreamSpec &spec)
    : spec_(spec), cursor_(0), hotCursor_(0),
      wsLines_(spec.workingSetBytes / spec.strideBytes),
      hotMask_(isPow2(spec.hotRegionBytes) ? spec.hotRegionBytes - 1 : 0),
      wsMask_(isPow2(spec.workingSetBytes) ? spec.workingSetBytes - 1 : 0)
{
    if (spec_.workingSetBytes < spec_.strideBytes)
        fatal("working set (%llu B) smaller than stride",
              static_cast<unsigned long long>(spec_.workingSetBytes));
    if (spec_.hotRegionFrac < 0.0 || spec_.hotRegionFrac > 1.0)
        fatal("hotRegionFrac out of [0,1]");
}

void
AddressStream::reset()
{
    cursor_ = 0;
    hotCursor_ = 0;
}

} // namespace powerchop
