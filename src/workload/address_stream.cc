#include "workload/address_stream.hh"

#include "common/logging.hh"

namespace powerchop
{

AddressStream::AddressStream(const AddressStreamSpec &spec)
    : spec_(spec), cursor_(0), hotCursor_(0)
{
    if (spec_.workingSetBytes < spec_.strideBytes)
        fatal("working set (%llu B) smaller than stride",
              static_cast<unsigned long long>(spec_.workingSetBytes));
    if (spec_.hotRegionFrac < 0.0 || spec_.hotRegionFrac > 1.0)
        fatal("hotRegionFrac out of [0,1]");
}

void
AddressStream::reset()
{
    cursor_ = 0;
    hotCursor_ = 0;
}

Addr
AddressStream::next(Rng &rng)
{
    if (rng.bernoulli(spec_.hotRegionFrac)) {
        // Stack-like traffic: small region, sequential-ish, always
        // resident in L1. The hot region sits just below the phase's
        // data region.
        hotCursor_ = (hotCursor_ + spec_.strideBytes) % spec_.hotRegionBytes;
        return spec_.base - spec_.hotRegionBytes + hotCursor_;
    }

    const std::uint64_t ws = spec_.workingSetBytes;
    if (rng.bernoulli(spec_.randomFrac)) {
        std::uint64_t line = rng.below(ws / spec_.strideBytes);
        std::uint64_t off = spec_.streaming
            ? (cursor_ / ws) * ws  // random within the current window
            : 0;
        return spec_.base + off + line * spec_.strideBytes;
    }

    Addr a;
    if (spec_.streaming) {
        // Forward walk without reuse; wrap at 1 GiB to keep addresses
        // bounded while never re-touching lines soon enough to hit.
        a = spec_.base + (cursor_ % (1ull << 30));
    } else {
        a = spec_.base + (cursor_ % ws);
    }
    cursor_ += spec_.strideBytes;
    return a;
}

} // namespace powerchop
