/**
 * @file
 * Per-phase memory address generation.
 *
 * MLC criticality in the paper (Section III, Figure 3) is driven by
 * how the phase's working set relates to the cache hierarchy: sets
 * that fit in L1 make the MLC non-critical, sets that fit only in the
 * full MLC make it critical, and streaming sets that fit nowhere make
 * it non-critical again. The address stream reproduces those regimes
 * with three knobs: working-set size, streaming vs. looping reuse, and
 * a hot-region fraction modelling stack/local traffic that always hits
 * in L1 (keeping MLC access rates near the paper's ~1 per 100-200
 * instructions).
 */

#ifndef POWERCHOP_WORKLOAD_ADDRESS_STREAM_HH
#define POWERCHOP_WORKLOAD_ADDRESS_STREAM_HH

#include <cstdint>

#include "common/random.hh"
#include "common/types.hh"

namespace powerchop
{

/** Parameters of one phase's memory behaviour. */
struct AddressStreamSpec
{
    /** Base address of this phase's data region. Distinct phases use
     *  disjoint regions so recurring phases re-touch their own data. */
    Addr base = 0x10000000;

    /** Bytes of the primary working set. */
    std::uint64_t workingSetBytes = 64 * 1024;

    /** If true the stream walks forward without reuse (e.g. lbm-style
     *  streaming); if false it loops over the working set. */
    bool streaming = false;

    /** Fraction of working-set accesses that are random within the set
     *  rather than the sequential walk. */
    double randomFrac = 0.1;

    /** Fraction of all accesses that go to a small always-L1-resident
     *  hot region (stack/locals). */
    double hotRegionFrac = 0.9;

    /** Size of the hot region in bytes. */
    std::uint64_t hotRegionBytes = 4 * 1024;

    /** Access granularity (stride of the sequential walk). */
    unsigned strideBytes = 64;
};

/**
 * Generates the effective addresses of a phase's loads and stores.
 *
 * State (the sequential cursor) persists across phase recurrences so a
 * looping phase keeps re-touching the same lines, which is what lets
 * the MLC re-warm after way gating.
 */
class AddressStream
{
  public:
    explicit AddressStream(const AddressStreamSpec &spec);

    /** @return the effective address of the next memory reference.
     *  Defined inline below: one call per dynamic load/store. */
    Addr next(Rng &rng);

    const AddressStreamSpec &spec() const { return spec_; }

    /** Reset the sequential cursor to the region base. */
    void reset();

  private:
    AddressStreamSpec spec_;
    /** Sequential cursor offset within the working set (or the
     *  unbounded streaming offset). */
    std::uint64_t cursor_;
    /** Cursor within the hot region. */
    std::uint64_t hotCursor_;

    /** Precomputed per-access constants: the working set in stride
     *  lines, and wrap masks (size - 1) when the respective region
     *  size is a power of two, 0 to fall back to the modulo. The
     *  masked and modulo forms produce identical addresses; the mask
     *  just avoids a hardware divide per reference. @{ */
    std::uint64_t wsLines_;
    std::uint64_t hotMask_;
    std::uint64_t wsMask_;
    /** @} */
};

inline Addr
AddressStream::next(Rng &rng)
{
    if (rng.bernoulli(spec_.hotRegionFrac)) {
        // Stack-like traffic: small region, sequential-ish, always
        // resident in L1. The hot region sits just below the phase's
        // data region.
        std::uint64_t hc = hotCursor_ + spec_.strideBytes;
        hotCursor_ = hotMask_ ? (hc & hotMask_)
                              : (hc % spec_.hotRegionBytes);
        return spec_.base - spec_.hotRegionBytes + hotCursor_;
    }

    const std::uint64_t ws = spec_.workingSetBytes;
    if (rng.bernoulli(spec_.randomFrac)) {
        std::uint64_t line = rng.below(wsLines_);
        std::uint64_t off = 0;
        if (spec_.streaming) {
            // Random within the current window.
            off = wsMask_ ? (cursor_ & ~wsMask_) : (cursor_ / ws) * ws;
        }
        return spec_.base + off + line * spec_.strideBytes;
    }

    Addr a;
    if (spec_.streaming) {
        // Forward walk without reuse; wrap at 1 GiB to keep addresses
        // bounded while never re-touching lines soon enough to hit.
        a = spec_.base + (cursor_ & ((1ull << 30) - 1));
    } else {
        a = spec_.base + (wsMask_ ? (cursor_ & wsMask_) : cursor_ % ws);
    }
    cursor_ += spec_.strideBytes;
    return a;
}

} // namespace powerchop

#endif // POWERCHOP_WORKLOAD_ADDRESS_STREAM_HH
