/**
 * @file
 * Structure-of-arrays view of a basic block for the hot loop.
 *
 * The pull-model generator (WorkloadGenerator::next()) re-derives the
 * same static facts for every dynamic instruction: the block lookup,
 * the op-class dispatch, the terminator test, and — for internal
 * branches — a hash-map probe for the branch's outcome process. All of
 * that is a pure function of the block, so the generator materializes
 * each block ONCE into a flat slot stream at decode time and the
 * simulator iterates the stream directly:
 *
 *  - Runs of issue-slot-only ops (IntAlu/FpAlu) collapse into a single
 *    AluRun slot: the simulator's fast path executes the whole run
 *    with zero per-instruction dispatch.
 *  - Memory, SIMD and internal-branch ops keep one slot each; branch
 *    slots carry resolved pointers to their outcome process and
 *    runtime state, eliminating the per-execution map probes.
 *  - The terminator is implicit (every block ends with the
 *    region-chaining jump); DecodedBlock carries its PC.
 *
 * Only static structure is pre-decoded. Effective addresses and branch
 * outcomes still come from the generator's RNG streams at execution
 * time, in exact program order, so the dynamic stream is bit-identical
 * to the one next() produces.
 *
 * Slot arrays live in the generator's arena (common/arena.hh):
 * contiguous in decode order, freed wholesale with the job.
 */

#ifndef POWERCHOP_WORKLOAD_BLOCK_BATCH_HH
#define POWERCHOP_WORKLOAD_BLOCK_BATCH_HH

#include <cstdint>

#include "common/types.hh"
#include "workload/branch_behavior.hh"

namespace powerchop
{

/** What one decoded slot executes. */
enum class SlotKind : std::uint8_t
{
    AluRun,  ///< `count` consecutive IntAlu/FpAlu instructions.
    Load,    ///< One load (effective address drawn at execution).
    Store,   ///< One store.
    Simd,    ///< One SIMD op.
    Branch,  ///< One internal conditional branch (not the terminator).
};

/** One slot of a decoded block's instruction stream. */
struct DecodedSlot
{
    SlotKind kind = SlotKind::AluRun;

    /** Instructions covered: the run length for AluRun, 1 otherwise. */
    std::uint32_t count = 1;

    /** Branch only: the branch PC (predictor index). */
    Addr pc = 0;

    /** Branch only: the branch's static outcome process. */
    const BranchBehavior *behavior = nullptr;

    /** Branch only: the branch's mutable runtime state. */
    BranchRuntime *runtime = nullptr;
};

/** The decoded (structure-of-arrays) form of one basic block. */
struct DecodedBlock
{
    /** Slots in program order, covering the body (terminator
     *  excluded). Arena-resident; owned by the generator. */
    const DecodedSlot *slots = nullptr;
    std::uint32_t numSlots = 0;

    /** Total instructions including the terminator. */
    std::uint32_t numInsns = 0;

    /** PC of the terminating region-chaining jump. */
    Addr termPc = 0;
};

} // namespace powerchop

#endif // POWERCHOP_WORKLOAD_BLOCK_BATCH_HH
