#include "workload/branch_behavior.hh"

#include <bit>

#include "common/logging.hh"

namespace powerchop
{

const char *
branchKindName(BranchKind k)
{
    switch (k) {
      case BranchKind::Biased:
        return "Biased";
      case BranchKind::Pattern:
        return "Pattern";
      case BranchKind::GlobalCorrelated:
        return "GlobalCorrelated";
      case BranchKind::Random:
        return "Random";
    }
    panic("unknown BranchKind %d", static_cast<int>(k));
}

BranchOutcomeEngine::BranchOutcomeEngine(std::uint64_t seed)
    : globalHist_(0), rng_(seed)
{
}

void
BranchOutcomeEngine::reset(std::uint64_t seed)
{
    globalHist_ = 0;
    rng_.seed(seed);
}

} // namespace powerchop
