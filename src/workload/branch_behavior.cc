#include "workload/branch_behavior.hh"

#include <bit>

#include "common/logging.hh"

namespace powerchop
{

const char *
branchKindName(BranchKind k)
{
    switch (k) {
      case BranchKind::Biased:
        return "Biased";
      case BranchKind::Pattern:
        return "Pattern";
      case BranchKind::GlobalCorrelated:
        return "GlobalCorrelated";
      case BranchKind::Random:
        return "Random";
    }
    panic("unknown BranchKind %d", static_cast<int>(k));
}

BranchOutcomeEngine::BranchOutcomeEngine(std::uint64_t seed)
    : globalHist_(0), rng_(seed)
{
}

void
BranchOutcomeEngine::reset(std::uint64_t seed)
{
    globalHist_ = 0;
    rng_.seed(seed);
}

bool
BranchOutcomeEngine::nextOutcome(const BranchBehavior &b, BranchRuntime &rt)
{
    bool taken = false;
    switch (b.kind) {
      case BranchKind::Biased:
        taken = rng_.bernoulli(b.biasTaken);
        break;
      case BranchKind::Pattern:
        taken = (b.patternBits >> rt.patternPos) & 1u;
        rt.patternPos = (rt.patternPos + 1) % b.patternLen;
        break;
      case BranchKind::GlobalCorrelated:
        taken = std::popcount(globalHist_ & b.historyMask) & 1u;
        break;
      case BranchKind::Random:
        taken = rng_.bernoulli(0.5);
        break;
    }

    if (b.noise > 0.0 && rng_.bernoulli(b.noise))
        taken = !taken;

    globalHist_ = (globalHist_ << 1) | (taken ? 1u : 0u);
    return taken;
}

} // namespace powerchop
