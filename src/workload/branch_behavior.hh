/**
 * @file
 * Conditional-branch outcome models for synthetic workloads.
 *
 * BPU criticality in the paper (Section IV-C2) is the accuracy gap
 * between a small local predictor and a large tournament predictor.
 * To reproduce that gap the synthetic branches must actually differ in
 * how predictable they are *to different predictor organizations*, so
 * each static branch is assigned one of four outcome processes:
 *
 *  - Biased:            taken with fixed probability; any predictor
 *                       with a 2-bit counter captures it.
 *  - Pattern:           a short repeating taken/not-taken pattern; a
 *                       two-level local-history predictor captures it,
 *                       a bimodal counter only gets the majority bias.
 *  - GlobalCorrelated:  outcome is the parity of selected bits of the
 *                       global outcome history; gshare-style global
 *                       predictors capture it, local ones cannot.
 *  - Random:            50/50; nothing captures it.
 */

#ifndef POWERCHOP_WORKLOAD_BRANCH_BEHAVIOR_HH
#define POWERCHOP_WORKLOAD_BRANCH_BEHAVIOR_HH

#include <bit>
#include <cstdint>

#include "common/random.hh"

namespace powerchop
{

/** Outcome-process kinds for synthetic conditional branches. */
enum class BranchKind : std::uint8_t
{
    Biased,
    Pattern,
    GlobalCorrelated,
    Random,
};

/** @return a short human-readable name for a branch kind. */
const char *branchKindName(BranchKind k);

/**
 * Static description of one synthetic branch's outcome process.
 * Assigned at program-build time and immutable afterwards.
 */
struct BranchBehavior
{
    BranchKind kind = BranchKind::Biased;

    /** Biased: probability of taken. */
    double biasTaken = 0.9;

    /** Pattern: the repeating outcome bits (LSB first). */
    std::uint32_t patternBits = 0b0111;

    /** Pattern: pattern period in bits (1..32). */
    unsigned patternLen = 4;

    /** GlobalCorrelated: mask over the global history; the outcome is
     *  the parity of the masked bits. */
    std::uint64_t historyMask = 0b1011;

    /** Noise probability: chance the modelled outcome is flipped,
     *  bounding the best achievable prediction accuracy. */
    double noise = 0.01;
};

/** Per-branch mutable runtime state (pattern position). */
struct BranchRuntime
{
    unsigned patternPos = 0;
};

/**
 * Generates dynamic outcomes for synthetic branches and maintains the
 * global outcome history the GlobalCorrelated process reads.
 */
class BranchOutcomeEngine
{
  public:
    explicit BranchOutcomeEngine(std::uint64_t seed = 1);

    /**
     * Produce the next outcome of a branch.
     *
     * Updates both the branch's runtime state and the global history.
     * Defined inline below: one call per dynamic conditional branch.
     *
     * @param behavior The branch's static outcome process.
     * @param rt       The branch's mutable runtime state.
     * @return true if taken.
     */
    bool nextOutcome(const BranchBehavior &behavior, BranchRuntime &rt);

    /** @return the global outcome history (most recent in bit 0). */
    std::uint64_t globalHistory() const { return globalHist_; }

    /** Reset global history and the RNG to a seed. */
    void reset(std::uint64_t seed);

  private:
    std::uint64_t globalHist_;
    Rng rng_;
};

inline bool
BranchOutcomeEngine::nextOutcome(const BranchBehavior &b, BranchRuntime &rt)
{
    bool taken = false;
    switch (b.kind) {
      case BranchKind::Biased:
        taken = rng_.bernoulli(b.biasTaken);
        break;
      case BranchKind::Pattern:
        taken = (b.patternBits >> rt.patternPos) & 1u;
        rt.patternPos = (rt.patternPos + 1) % b.patternLen;
        break;
      case BranchKind::GlobalCorrelated:
        taken = std::popcount(globalHist_ & b.historyMask) & 1u;
        break;
      case BranchKind::Random:
        taken = rng_.bernoulli(0.5);
        break;
    }

    if (b.noise > 0.0 && rng_.bernoulli(b.noise))
        taken = !taken;

    globalHist_ = (globalHist_ << 1) | (taken ? 1u : 0u);
    return taken;
}

} // namespace powerchop

#endif // POWERCHOP_WORKLOAD_BRANCH_BEHAVIOR_HH
