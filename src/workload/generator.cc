#include "workload/generator.hh"
#include <cmath>

#include <algorithm>
#include <array>
#include <unordered_map>

#include "common/logging.hh"
#include "workload/address_stream.hh"

namespace powerchop
{

/**
 * Runtime state of one phase: its cluster's block lists, the hot-block
 * sampling weights, the memory address stream, and per-branch pattern
 * positions.
 */
struct WorkloadGenerator::PhaseState
{
    std::vector<BlockId> hotBlocks;
    std::vector<BlockId> coldBlocks;

    /** Cumulative distribution over hotBlocks for weighted sampling. */
    std::vector<double> hotCdf;

    std::unique_ptr<AddressStream> mem;

    /** Outcome process of each internal branch, keyed by branch PC. */
    std::unordered_map<Addr, BranchBehavior> behaviors;

    /** Mutable pattern positions, keyed by branch PC. */
    std::unordered_map<Addr, BranchRuntime> runtime;
};

WorkloadGenerator::WorkloadGenerator(const WorkloadSpec &spec)
    : spec_(spec), program_(std::make_unique<Program>()),
      rng_(spec.seed), branchEngine_(spec.seed ^ 0xb5297a4d)
{
    spec_.validate();
    buildProgram();

    // Prime the schedule and execution cursors.
    schedPos_ = 0;
    schedRemaining_ = spec_.schedule[0].insns;
    curPhaseIdx_ = spec_.schedule[0].phase;
    curBlock_ = phaseStates_[curPhaseIdx_]->hotBlocks[0];
    instPos_ = 0;
    curMem_ = phaseStates_[curPhaseIdx_]->mem.get();
}

WorkloadGenerator::~WorkloadGenerator() = default;

void
WorkloadGenerator::buildProgram()
{
    // Each cluster gets a disjoint 16 MiB code slice and a disjoint
    // 256 MiB data slice, so distinct phases never alias in caches,
    // BTBs or the region cache.
    constexpr Addr codeSlice = 16ull << 20;
    constexpr Addr codeBase = 0x00400000;

    phaseStates_.resize(spec_.phases.size());
    for (unsigned i = 0; i < spec_.phases.size(); ++i)
        buildCluster(i, codeBase + i * codeSlice);
}

void
WorkloadGenerator::buildCluster(unsigned phase_idx, Addr base)
{
    const PhaseSpec &ps = spec_.phases[phase_idx];
    auto state = std::make_unique<PhaseState>();

    // Data region: disjoint per phase.
    AddressStreamSpec mem_spec = ps.mem;
    mem_spec.base = 0x40000000ull + phase_idx * (256ull << 20);
    state->mem = std::make_unique<AddressStream>(mem_spec);

    const unsigned total_blocks = ps.hotBlocks + ps.coldBlocks;
    Addr next_head = base;
    std::vector<BlockId> ids;
    ids.reserve(total_blocks);

    // Pass 1: choose block lengths and execution weights. The
    // *dynamic* instruction mix is the weight-weighted average of the
    // per-block static mixes, so op placement must track the weighted
    // cumulative target — naive per-block dithering lets one hot
    // block's rounding error dominate the realized mix (e.g. a single
    // dithered SIMD op in the hottest block inflates a 0.4% SIMD
    // phase to 3%).
    std::vector<unsigned> lens(total_blocks);
    std::vector<double> bweights(total_blocks);
    for (unsigned b = 0; b < total_blocks; ++b) {
        double len_d = rng_.normal(ps.avgBlockLen, ps.avgBlockLen * 0.25);
        lens[b] = static_cast<unsigned>(std::max(4.0, len_d));
        bweights[b] = b < ps.hotBlocks
            ? std::pow(ps.hotWeightDecay, static_cast<double>(b))
            : ps.coldEscapeProb / std::max(1u, ps.coldBlocks);

    }

    // Pass 2: per-class weighted-quota placement. Rare classes
    // (fractional weighted targets) end up in light (cold) blocks,
    // where one op contributes little to the dynamic rate — which is
    // also how rare vector ops appear in real code (namd's sparse
    // uniform SIMD, Section V-E).
    struct ClassQuota
    {
        OpClass op;
        double frac;
        double placed = 0;  // weighted ops placed so far
    };
    std::array<ClassQuota, 4> quotas = {{
        {OpClass::SimdOp, ps.simdFrac},
        {OpClass::Branch, ps.branchFrac},
        {OpClass::FpAlu, ps.fpFrac},
        {OpClass::Load, ps.memFrac},  // split into loads/stores below
    }};

    std::vector<std::vector<OpClass>> bodies(total_blocks);
    double cum_weighted = 0;
    for (unsigned b = 0; b < total_blocks; ++b) {
        const unsigned len = lens[b];
        const double w = bweights[b];
        cum_weighted += w * len;

        std::vector<OpClass> &body = bodies[b];
        body.reserve(len);
        unsigned remaining = len;

        for (auto &q : quotas) {
            if (q.frac <= 0.0 || remaining == 0)
                continue;
            // Ops needed so the weighted realized rate tracks the
            // weighted cumulative target.
            double want = (q.frac * cum_weighted - q.placed) / w;
            auto n = static_cast<unsigned>(
                std::max(0.0, std::min<double>(remaining,
                                               std::floor(want + 0.5))));
            for (unsigned k = 0; k < n; ++k) {
                OpClass op = q.op;
                if (op == OpClass::Load && rng_.bernoulli(ps.storeFrac))
                    op = OpClass::Store;
                body.push_back(op);
            }
            q.placed += w * n;
            remaining -= n;
        }
        while (body.size() < len)
            body.push_back(OpClass::IntAlu);
        // Fisher-Yates shuffle for realistic interleaving.
        for (std::size_t k = body.size(); k > 1; --k)
            std::swap(body[k - 1], body[rng_.below(k)]);
    }

    for (unsigned b = 0; b < total_blocks; ++b) {
        const std::vector<OpClass> &body = bodies[b];

        // addBlock() rejects Branch in the body (the terminator is
        // implicit), so temporarily encode internal branches as IntAlu
        // and patch the built block afterwards.
        std::vector<OpClass> masked = body;
        for (auto &op : masked) {
            if (op == OpClass::Branch)
                op = OpClass::IntAlu;
        }

        BlockId id = program_->addBlock(next_head, masked);
        BasicBlock &bb = program_->block(id);
        for (std::size_t k = 0; k < body.size(); ++k) {
            if (body[k] == OpClass::Branch)
                bb.insts[k].op = OpClass::Branch;
        }
        ids.push_back(id);

        // Blocks are laid out back to back within the cluster with a
        // small gap, keeping heads unique and realistically spaced.
        next_head = bb.fallthroughAddr() + 4 * guestInsnBytes;
    }

    state->hotBlocks.assign(ids.begin(), ids.begin() + ps.hotBlocks);
    state->coldBlocks.assign(ids.begin() + ps.hotBlocks, ids.end());

    // Geometric weights over hot blocks -> CDF for sampling.
    double w = 1.0, sum = 0.0;
    std::vector<double> weights;
    for (unsigned i = 0; i < ps.hotBlocks; ++i) {
        weights.push_back(w);
        sum += w;
        w *= ps.hotWeightDecay;
    }
    double acc = 0.0;
    for (double wi : weights) {
        acc += wi / sum;
        state->hotCdf.push_back(acc);
    }
    state->hotCdf.back() = 1.0;

    // Static successor wiring: taken successor is the next hot block,
    // fall-through the one after. Cold blocks fall through back into
    // the hot set. (Actual sequencing is decided dynamically; these
    // give the BTB a dominant target to learn.)
    for (unsigned i = 0; i < ids.size(); ++i) {
        BlockId taken = state->hotBlocks[(i + 1) % ps.hotBlocks];
        BlockId fall = state->hotBlocks[0];
        program_->setSuccessors(ids[i], taken, fall);
    }

    // Assign conditional-branch outcome processes per the phase mix.
    // Branch executions are weighted by their block's hotness, so the
    // assignment uses a weighted largest-deficit quota: per-slot
    // sampling would let the dominant block's branches skew the
    // dynamic predictability mix far from the spec.
    {
        const double share[4] = {
            ps.fracBiased, ps.fracPattern, ps.fracCorrelated,
            1.0 - ps.fracBiased - ps.fracPattern - ps.fracCorrelated};
        double assigned[4] = {0, 0, 0, 0};
        double total_assigned = 0;

        for (std::size_t bi = 0; bi < ids.size(); ++bi) {
            const BasicBlock &bb = program_->block(ids[bi]);
            // Hot blocks carry their sampling weight; cold blocks a
            // nominal trickle matching the escape probability.
            double block_weight = bi < ps.hotBlocks
                ? std::pow(ps.hotWeightDecay, static_cast<double>(bi))
                : ps.coldEscapeProb / std::max(1u, ps.coldBlocks);

            for (std::size_t k = 0; k + 1 < bb.insts.size(); ++k) {
                const StaticInst &si = bb.insts[k];
                if (!si.isBranch())
                    continue;

                // Pick the kind with the largest weighted deficit.
                unsigned best = 0;
                double best_deficit = -1e300;
                for (unsigned kind = 0; kind < 4; ++kind) {
                    double current = total_assigned > 0
                        ? assigned[kind] / total_assigned : 0.0;
                    double deficit = share[kind] - current;
                    // Never assign a kind with zero share.
                    if (share[kind] <= 0.0)
                        continue;
                    if (deficit > best_deficit) {
                        best_deficit = deficit;
                        best = kind;
                    }
                }
                assigned[best] += block_weight;
                total_assigned += block_weight;

                BranchBehavior beh;
                switch (best) {
                  case 0:
                    beh.kind = BranchKind::Biased;
                    beh.biasTaken = rng_.bernoulli(0.5) ? 0.95 : 0.05;
                    break;
                  case 1:
                    beh.kind = BranchKind::Pattern;
                    beh.patternLen =
                        3 + static_cast<unsigned>(rng_.below(6));
                    beh.patternBits = static_cast<std::uint32_t>(
                        rng_.below(1u << beh.patternLen));
                    break;
                  case 2: {
                    beh.kind = BranchKind::GlobalCorrelated;
                    // Parity over 2-4 recent global outcomes within
                    // the last 8, learnable by gshare-style
                    // predictors.
                    beh.historyMask = 0;
                    unsigned taps =
                        2 + static_cast<unsigned>(rng_.below(3));
                    for (unsigned t = 0; t < taps; ++t)
                        beh.historyMask |= 1ull << rng_.below(8);
                    break;
                  }
                  default:
                    beh.kind = BranchKind::Random;
                    break;
                }
                state->behaviors[si.pc] = beh;
                state->runtime[si.pc] = BranchRuntime{};
            }
        }
    }

    phaseStates_[phase_idx] = std::move(state);
}

void
WorkloadGenerator::advanceSchedule()
{
    if (schedRemaining_ > 0)
        return;
    schedPos_ = (schedPos_ + 1) % spec_.schedule.size();
    schedRemaining_ = spec_.schedule[schedPos_].insns;
    unsigned new_phase = spec_.schedule[schedPos_].phase;
    if (new_phase != curPhaseIdx_) {
        curPhaseIdx_ = new_phase;
        // Enter the new phase at its hottest block. The current block
        // finishes mid-phase-change in real systems too; switching at
        // the block boundary keeps translations whole.
        curBlock_ = phaseStates_[curPhaseIdx_]->hotBlocks[0];
        instPos_ = 0;
        curMem_ = phaseStates_[curPhaseIdx_]->mem.get();
    }
}

BlockId
WorkloadGenerator::pickNextBlock()
{
    PhaseState &st = *phaseStates_[curPhaseIdx_];

    if (!st.coldBlocks.empty() &&
        rng_.bernoulli(spec_.phases[curPhaseIdx_].coldEscapeProb)) {
        return st.coldBlocks[rng_.below(st.coldBlocks.size())];
    }

    // First cdf entry >= u (what lower_bound returns). The hotness
    // weights decay geometrically, so a front-to-back scan usually
    // stops within the first few entries — faster than binary search
    // on these small, mass-concentrated tables.
    double u = rng_.uniform();
    const double *cdf = st.hotCdf.data();
    const std::size_t entries = st.hotCdf.size();
    std::size_t idx = 0;
    while (idx < entries && cdf[idx] < u)
        ++idx;
    if (idx >= st.hotBlocks.size())
        idx = st.hotBlocks.size() - 1;
    return st.hotBlocks[idx];
}

const DynInst &
WorkloadGenerator::next()
{
    PhaseState &st = *phaseStates_[curPhaseIdx_];
    const BasicBlock &bb = program_->block(curBlock_);
    const StaticInst &si = bb.insts[instPos_];

    out_.si = &si;
    out_.effAddr = 0;
    out_.taken = false;
    out_.target = 0;

    const bool is_terminator = (instPos_ + 1 == bb.insts.size());
    out_.isTerminator = is_terminator;

    if (si.isMemRef()) {
        out_.effAddr = st.mem->next(rng_);
    } else if (si.isBranch() && !is_terminator) {
        // Internal conditional branch: outcome from its process; no
        // effect on block sequencing (hammock). Target is a short
        // forward skip within the block.
        auto beh_it = st.behaviors.find(si.pc);
        if (beh_it == st.behaviors.end())
            panic("internal branch 0x%llx has no behavior",
                  static_cast<unsigned long long>(si.pc));
        bool taken = branchEngine_.nextOutcome(beh_it->second,
                                               st.runtime[si.pc]);
        out_.taken = taken;
        out_.target = si.pc + 2 * guestInsnBytes;
    } else if (is_terminator) {
        // Region-chaining jump: always taken, target sampled from the
        // cluster's hotness distribution.
        BlockId next_b = pickNextBlock();
        out_.taken = true;
        out_.target = program_->block(next_b).head;
        curBlock_ = next_b;
    }

    ++emitted_;
    --schedRemaining_;

    if (is_terminator) {
        instPos_ = 0;
    } else {
        ++instPos_;
    }

    // Phase changes take effect at the next block boundary so that a
    // translation's instruction run is never torn.
    if (schedRemaining_ == 0 && instPos_ == 0)
        advanceSchedule();
    if (schedRemaining_ == 0 && instPos_ != 0)
        schedRemaining_ = 1;  // stretch to the block boundary

    return out_;
}

void
WorkloadGenerator::prepareBatches()
{
    if (!decoded_.empty())
        return;
    decoded_.resize(program_->numBlocks());
    heads_.resize(program_->numBlocks());
    for (BlockId b = 0; b < program_->numBlocks(); ++b)
        heads_[b] = program_->block(b).head;

    std::vector<DecodedSlot> slots;
    for (unsigned pi = 0; pi < phaseStates_.size(); ++pi) {
        PhaseState &st = *phaseStates_[pi];
        std::vector<BlockId> ids = st.hotBlocks;
        ids.insert(ids.end(), st.coldBlocks.begin(),
                   st.coldBlocks.end());

        for (BlockId id : ids) {
            const BasicBlock &bb = program_->block(id);
            slots.clear();

            // Body slots (terminator excluded): collapse IntAlu/FpAlu
            // runs, resolve branch behavior/runtime pointers once.
            // unordered_map values have stable addresses, so the
            // pointers stay valid for the generator's lifetime.
            for (std::size_t k = 0; k + 1 < bb.insts.size(); ++k) {
                const StaticInst &si = bb.insts[k];
                DecodedSlot s;
                switch (si.op) {
                  case OpClass::IntAlu:
                  case OpClass::FpAlu:
                    if (!slots.empty() &&
                        slots.back().kind == SlotKind::AluRun) {
                        ++slots.back().count;
                        continue;
                    }
                    s.kind = SlotKind::AluRun;
                    break;
                  case OpClass::Load:
                    s.kind = SlotKind::Load;
                    break;
                  case OpClass::Store:
                    s.kind = SlotKind::Store;
                    break;
                  case OpClass::SimdOp:
                    s.kind = SlotKind::Simd;
                    break;
                  case OpClass::Branch: {
                    s.kind = SlotKind::Branch;
                    s.pc = si.pc;
                    auto beh_it = st.behaviors.find(si.pc);
                    if (beh_it == st.behaviors.end())
                        panic("internal branch 0x%llx has no behavior",
                              static_cast<unsigned long long>(si.pc));
                    s.behavior = &beh_it->second;
                    s.runtime = &st.runtime[si.pc];
                    break;
                  }
                }
                slots.push_back(s);
            }

            DecodedBlock &db = decoded_[id];
            db.slots = arena_.copyArray(slots.data(), slots.size());
            db.numSlots = static_cast<std::uint32_t>(slots.size());
            db.numInsns = static_cast<std::uint32_t>(bb.insts.size());
            db.termPc = bb.terminator().pc;
        }
    }
}

Addr
WorkloadGenerator::batchFinishBlock()
{
    // Executed since the block was entered, terminator included.
    const InsnCount executed = decoded_[curBlock_].numInsns - instPos_;

    // The terminator's next-block pick draws from rng_ after the
    // body's address draws and while the old phase is still current —
    // the same order next() produces.
    BlockId next_b = pickNextBlock();
    Addr target = heads_[next_b];
    curBlock_ = next_b;
    emitted_ += executed;
    instPos_ = 0;

    // Collapse the per-instruction schedule decrements: the stretch
    // rule in next() pins schedRemaining_ at 1 until the block
    // boundary, so a block-granular equivalent is: advance iff the
    // entry had <= `executed` instructions left.
    if (schedRemaining_ <= executed) {
        schedRemaining_ = 0;
        advanceSchedule();
    } else {
        schedRemaining_ -= executed;
    }
    return target;
}

void
WorkloadGenerator::batchConsumePartial(InsnCount insns)
{
    emitted_ += insns;
    instPos_ += insns;
    // Same stretch-rule collapse as batchFinishBlock(), mid-block: a
    // spent schedule entry waits at 1 for the block boundary.
    schedRemaining_ =
        schedRemaining_ <= insns ? 1 : schedRemaining_ - insns;
}

} // namespace powerchop
