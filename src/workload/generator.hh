/**
 * @file
 * The workload generator: materializes a WorkloadSpec into a guest
 * Program and produces its dynamic instruction stream.
 *
 * Code layout: each phase gets its own cluster of basic blocks (hot
 * blocks with geometrically decaying execution weights plus a cold
 * tail). Block bodies are sampled from the phase's instruction mix;
 * internal conditional branches get outcome processes from the phase's
 * predictability mix. Block terminators are modelled as indirect
 * region-chaining jumps: always taken, with the target sampled from
 * the hot-weight distribution (occasionally escaping to a cold block).
 * This decouples block hotness (what the HTB sees) from conditional
 * branch predictability (what the BPU criticality score sees), while
 * keeping both derived from one genuine instruction stream.
 */

#ifndef POWERCHOP_WORKLOAD_GENERATOR_HH
#define POWERCHOP_WORKLOAD_GENERATOR_HH

#include <memory>
#include <vector>

#include "common/arena.hh"
#include "common/random.hh"
#include "isa/program.hh"
#include "workload/address_stream.hh"
#include "workload/block_batch.hh"
#include "workload/branch_behavior.hh"
#include "workload/workload.hh"

namespace powerchop
{

/**
 * Generates the dynamic instruction stream of a synthetic workload.
 *
 * Usage: construct from a validated WorkloadSpec, then repeatedly call
 * next() to obtain dynamic instructions. The stream is infinite (the
 * schedule loops); callers bound the run by instruction count.
 */
class WorkloadGenerator
{
  public:
    explicit WorkloadGenerator(const WorkloadSpec &spec);

    ~WorkloadGenerator();
    WorkloadGenerator(const WorkloadGenerator &) = delete;
    WorkloadGenerator &operator=(const WorkloadGenerator &) = delete;

    /** @return the next dynamic instruction. The reference stays valid
     *  until the following call. */
    const DynInst &next();

    /** @return the synthesized guest program. */
    const Program &program() const { return *program_; }

    /** @return the workload spec this generator was built from. */
    const WorkloadSpec &spec() const { return spec_; }

    /** @return the schedule phase index currently executing. */
    unsigned currentPhase() const { return curPhaseIdx_; }

    /** @return total dynamic instructions emitted so far. */
    InsnCount instructionsEmitted() const { return emitted_; }

    /** @return true if the instruction about to be emitted is the
     *  first of a new basic block (a potential translation head). */
    bool atBlockHead() const { return instPos_ == 0; }

    /** @return the id of the block currently executing. */
    BlockId currentBlock() const { return curBlock_; }

    /** @return instructions left in the current block, terminator
     *  included: exactly this many next() calls complete the block
     *  and make atBlockHead() true again. The simulator uses it to
     *  run whole-block bursts without per-instruction head checks. */
    InsnCount
    blockInsnsRemaining() const
    {
        return (decoded_.empty()
                    ? program_->block(curBlock_).insts.size()
                    : decoded_[curBlock_].numInsns) -
            instPos_;
    }

    // --- Batch (structure-of-arrays) execution API ----------------------
    //
    // The simulator's hot loop consumes whole blocks through this API
    // instead of pulling DynInsts one at a time. The dynamic stream is
    // bit-identical to next()'s: static structure is pre-decoded, but
    // every RNG draw (addresses, branch outcomes, next-block picks)
    // happens at consumption time in exact program order. The two
    // styles may even be interleaved (block-aligned): next() and the
    // batch calls maintain the same cursor state.

    /**
     * Decode every block into its flat slot stream (block_batch.hh).
     * Idempotent; must be called before the other batch calls. Split
     * out of the constructor so callers can attribute its cost to a
     * separate profiling stage.
     */
    void prepareBatches();

    /** @return the decoded form of a block (prepareBatches first). */
    const DecodedBlock &
    decodedBlock(BlockId id) const
    {
        return decoded_[id];
    }

    /** @return the next memory effective address (one per Load/Store
     *  slot, consumed in program order). */
    Addr batchMemAddr() { return curMem_->next(rng_); }

    /** @return the next outcome of an internal branch slot. */
    bool
    batchBranchOutcome(const DecodedSlot &slot)
    {
        return branchEngine_.nextOutcome(*slot.behavior, *slot.runtime);
    }

    /**
     * Execute the current block's terminator and complete the block:
     * picks the next block, rolls the schedule (collapsing the
     * per-instruction decrements of every instruction executed since
     * the block was entered), and applies any phase change.
     *
     * @return the terminator's taken target (the next block's head).
     */
    Addr batchFinishBlock();

    /**
     * Account for a partial burst: `insns` body instructions consumed
     * (terminator not reached). Used when the instruction budget
     * clamps a burst mid-block.
     */
    void batchConsumePartial(InsnCount insns);

  private:
    /** Per-phase runtime state. */
    struct PhaseState;

    void buildProgram();
    void buildCluster(unsigned phase_idx, Addr base);

    /** Advance the schedule cursor if the current entry is spent. */
    void advanceSchedule();

    /** Pick the next block within the current phase's cluster. */
    BlockId pickNextBlock();

    WorkloadSpec spec_;
    std::unique_ptr<Program> program_;
    Rng rng_;
    BranchOutcomeEngine branchEngine_;

    /** Per-phase state: block lists, weights, address stream, branch
     *  runtime state. */
    std::vector<std::unique_ptr<PhaseState>> phaseStates_;

    /** Arena holding the decoded slot streams (and other same-lifetime
     *  decode tables); freed wholesale with the generator. */
    Arena arena_;

    /** Decoded form of every block, indexed by BlockId; empty until
     *  prepareBatches(). */
    std::vector<DecodedBlock> decoded_;

    /** Head PC of every block, flattened so the hot batch paths skip
     *  the Program::block indirection; filled by prepareBatches(). */
    std::vector<Addr> heads_;

    /** The current phase's address stream (kept in sync with
     *  curPhaseIdx_ so the batch memory path is one indirect call). */
    AddressStream *curMem_ = nullptr;

    // Schedule cursor.
    unsigned schedPos_ = 0;
    InsnCount schedRemaining_ = 0;
    unsigned curPhaseIdx_ = 0;

    // Execution cursor.
    BlockId curBlock_ = invalidBlockId;
    std::size_t instPos_ = 0;
    /** When a cold block finishes it returns to the hot set. */
    DynInst out_;
    InsnCount emitted_ = 0;
};

} // namespace powerchop

#endif // POWERCHOP_WORKLOAD_GENERATOR_HH
