/**
 * @file
 * The workload generator: materializes a WorkloadSpec into a guest
 * Program and produces its dynamic instruction stream.
 *
 * Code layout: each phase gets its own cluster of basic blocks (hot
 * blocks with geometrically decaying execution weights plus a cold
 * tail). Block bodies are sampled from the phase's instruction mix;
 * internal conditional branches get outcome processes from the phase's
 * predictability mix. Block terminators are modelled as indirect
 * region-chaining jumps: always taken, with the target sampled from
 * the hot-weight distribution (occasionally escaping to a cold block).
 * This decouples block hotness (what the HTB sees) from conditional
 * branch predictability (what the BPU criticality score sees), while
 * keeping both derived from one genuine instruction stream.
 */

#ifndef POWERCHOP_WORKLOAD_GENERATOR_HH
#define POWERCHOP_WORKLOAD_GENERATOR_HH

#include <memory>
#include <vector>

#include "common/random.hh"
#include "isa/program.hh"
#include "workload/branch_behavior.hh"
#include "workload/workload.hh"

namespace powerchop
{

/**
 * Generates the dynamic instruction stream of a synthetic workload.
 *
 * Usage: construct from a validated WorkloadSpec, then repeatedly call
 * next() to obtain dynamic instructions. The stream is infinite (the
 * schedule loops); callers bound the run by instruction count.
 */
class WorkloadGenerator
{
  public:
    explicit WorkloadGenerator(const WorkloadSpec &spec);

    ~WorkloadGenerator();
    WorkloadGenerator(const WorkloadGenerator &) = delete;
    WorkloadGenerator &operator=(const WorkloadGenerator &) = delete;

    /** @return the next dynamic instruction. The reference stays valid
     *  until the following call. */
    const DynInst &next();

    /** @return the synthesized guest program. */
    const Program &program() const { return *program_; }

    /** @return the workload spec this generator was built from. */
    const WorkloadSpec &spec() const { return spec_; }

    /** @return the schedule phase index currently executing. */
    unsigned currentPhase() const { return curPhaseIdx_; }

    /** @return total dynamic instructions emitted so far. */
    InsnCount instructionsEmitted() const { return emitted_; }

    /** @return true if the instruction about to be emitted is the
     *  first of a new basic block (a potential translation head). */
    bool atBlockHead() const { return instPos_ == 0; }

    /** @return the id of the block currently executing. */
    BlockId currentBlock() const { return curBlock_; }

    /** @return instructions left in the current block, terminator
     *  included: exactly this many next() calls complete the block
     *  and make atBlockHead() true again. The simulator uses it to
     *  run whole-block bursts without per-instruction head checks. */
    InsnCount
    blockInsnsRemaining() const
    {
        return program_->block(curBlock_).insts.size() - instPos_;
    }

  private:
    /** Per-phase runtime state. */
    struct PhaseState;

    void buildProgram();
    void buildCluster(unsigned phase_idx, Addr base);

    /** Advance the schedule cursor if the current entry is spent. */
    void advanceSchedule();

    /** Pick the next block within the current phase's cluster. */
    BlockId pickNextBlock();

    WorkloadSpec spec_;
    std::unique_ptr<Program> program_;
    Rng rng_;
    BranchOutcomeEngine branchEngine_;

    /** Per-phase state: block lists, weights, address stream, branch
     *  runtime state. */
    std::vector<std::unique_ptr<PhaseState>> phaseStates_;

    // Schedule cursor.
    unsigned schedPos_ = 0;
    InsnCount schedRemaining_ = 0;
    unsigned curPhaseIdx_ = 0;

    // Execution cursor.
    BlockId curBlock_ = invalidBlockId;
    std::size_t instPos_ = 0;
    /** When a cold block finishes it returns to the hot set. */
    DynInst out_;
    InsnCount emitted_ = 0;
};

} // namespace powerchop

#endif // POWERCHOP_WORKLOAD_GENERATOR_HH
