#include "workload/phase.hh"

#include "common/logging.hh"

namespace powerchop
{

void
PhaseSpec::validate(const std::string &who) const
{
    auto in01 = [](double v) { return v >= 0.0 && v <= 1.0; };

    if (!in01(simdFrac) || !in01(fpFrac) || !in01(memFrac) ||
        !in01(storeFrac) || !in01(branchFrac)) {
        fatal("%s/%s: instruction-mix fraction out of [0,1]",
              who.c_str(), name.c_str());
    }
    if (simdFrac + fpFrac + memFrac + branchFrac > 1.0) {
        fatal("%s/%s: instruction mix sums above 1",
              who.c_str(), name.c_str());
    }
    if (!in01(fracBiased) || !in01(fracPattern) || !in01(fracCorrelated) ||
        fracBiased + fracPattern + fracCorrelated > 1.0) {
        fatal("%s/%s: branch-kind mix invalid", who.c_str(), name.c_str());
    }
    if (hotBlocks < 4) {
        fatal("%s/%s: need at least 4 hot blocks (signature length)",
              who.c_str(), name.c_str());
    }
    if (avgBlockLen < 4)
        fatal("%s/%s: avgBlockLen too small", who.c_str(), name.c_str());
    if (hotWeightDecay <= 0.0 || hotWeightDecay >= 1.0)
        fatal("%s/%s: hotWeightDecay must be in (0,1)",
              who.c_str(), name.c_str());
    if (!in01(coldEscapeProb))
        fatal("%s/%s: coldEscapeProb out of [0,1]",
              who.c_str(), name.c_str());
}

} // namespace powerchop
