/**
 * @file
 * Phase specifications for synthetic workloads.
 *
 * A phase is a period of execution with homogeneous unit-demand
 * characteristics: which code cluster is hot, the instruction mix
 * (including SIMD intensity for VPU criticality), the conditional
 * branch predictability mix (BPU criticality), and the memory
 * behaviour (MLC criticality). Workload schedules sequence phases over
 * time; recurring phases execute the same code cluster and thus yield
 * the same PowerChop phase signatures.
 */

#ifndef POWERCHOP_WORKLOAD_PHASE_HH
#define POWERCHOP_WORKLOAD_PHASE_HH

#include <cstdint>
#include <string>

#include "workload/address_stream.hh"

namespace powerchop
{

/**
 * Static description of one phase's behaviour.
 *
 * The instruction-mix fields are fractions of body instructions; they
 * must not sum above 1 (the remainder is scalar IntAlu work).
 */
struct PhaseSpec
{
    /** Human-readable name, e.g. "vector-burst". */
    std::string name = "phase";

    // --- instruction mix -------------------------------------------------
    /** Fraction of instructions that are SIMD ops (VPU demand). */
    double simdFrac = 0.0;

    /** Fraction of instructions that are scalar FP. */
    double fpFrac = 0.05;

    /** Fraction of instructions that are loads/stores. */
    double memFrac = 0.30;

    /** Of the memory references, fraction that are stores. */
    double storeFrac = 0.30;

    /** Fraction of instructions that are conditional branches. */
    double branchFrac = 0.05;

    // --- branch predictability mix ---------------------------------------
    /** Fractions of static branches assigned each outcome process; the
     *  remainder (1 - sum) is Random. A high correlated/pattern share
     *  makes the large tournament BPU critical. */
    double fracBiased = 0.85;
    double fracPattern = 0.05;
    double fracCorrelated = 0.05;

    // --- memory behaviour -------------------------------------------------
    AddressStreamSpec mem;

    // --- code shape --------------------------------------------------------
    /** Number of hot blocks in this phase's cluster. Their execution
     *  weights decay geometrically so the top-4 hottest translations
     *  are stable (the paper's signature length N = 4): the gap
     *  between the 4th and 5th hottest must exceed the per-window
     *  sampling noise, which bounds both the block count and the
     *  decay from above. */
    unsigned hotBlocks = 6;

    /** Number of rarely executed cold blocks in the cluster. */
    unsigned coldBlocks = 16;

    /** Probability that a block transition escapes to a cold block. */
    double coldEscapeProb = 0.02;

    /** Geometric decay of hot-block execution weights. */
    double hotWeightDecay = 0.55;

    /** Mean body length (instructions) of this cluster's blocks. */
    unsigned avgBlockLen = 14;

    /**
     * Validate field ranges; calls fatal() on violation.
     *
     * @param who Context string for the error message.
     */
    void validate(const std::string &who) const;
};

} // namespace powerchop

#endif // POWERCHOP_WORKLOAD_PHASE_HH
