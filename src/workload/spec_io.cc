#include "workload/spec_io.hh"

#include <fstream>
#include <map>
#include <sstream>

#include "common/atomic_file.hh"
#include "common/hash.hh"
#include "common/logging.hh"

namespace powerchop
{

namespace
{

std::string
trim(const std::string &s)
{
    std::size_t a = s.find_first_not_of(" \t\r");
    if (a == std::string::npos)
        return "";
    std::size_t b = s.find_last_not_of(" \t\r");
    return s.substr(a, b - a + 1);
}

[[noreturn]] void
parseError(const std::string &origin, int line, const std::string &msg)
{
    fatal("%s:%d: %s", origin.c_str(), line, msg.c_str());
}

double
toDouble(const std::string &origin, int line, const std::string &v)
{
    char *end = nullptr;
    double d = std::strtod(v.c_str(), &end);
    if (end == v.c_str() || *end != '\0')
        parseError(origin, line, "expected a number, got '" + v + "'");
    return d;
}

std::uint64_t
toU64(const std::string &origin, int line, const std::string &v)
{
    char *end = nullptr;
    unsigned long long u = std::strtoull(v.c_str(), &end, 10);
    if (end == v.c_str() || *end != '\0')
        parseError(origin, line,
                   "expected an integer, got '" + v + "'");
    return u;
}

bool
toBool(const std::string &origin, int line, const std::string &v)
{
    if (v == "true" || v == "1")
        return true;
    if (v == "false" || v == "0")
        return false;
    parseError(origin, line, "expected true/false, got '" + v + "'");
}

Suite
toSuite(const std::string &origin, int line, const std::string &v)
{
    for (Suite s : {Suite::SpecInt, Suite::SpecFp, Suite::Parsec,
                    Suite::MobileBench}) {
        if (v == suiteName(s))
            return s;
    }
    parseError(origin, line, "unknown suite '" + v + "'");
}

/** Apply one phase-section key. @return false if the key is unknown. */
bool
applyPhaseKey(PhaseSpec &p, const std::string &key, const std::string &v,
              const std::string &origin, int line)
{
    auto d = [&] { return toDouble(origin, line, v); };
    auto u = [&] { return toU64(origin, line, v); };
    auto b = [&] { return toBool(origin, line, v); };

    if (key == "simd_frac")
        p.simdFrac = d();
    else if (key == "fp_frac")
        p.fpFrac = d();
    else if (key == "mem_frac")
        p.memFrac = d();
    else if (key == "store_frac")
        p.storeFrac = d();
    else if (key == "branch_frac")
        p.branchFrac = d();
    else if (key == "frac_biased")
        p.fracBiased = d();
    else if (key == "frac_pattern")
        p.fracPattern = d();
    else if (key == "frac_correlated")
        p.fracCorrelated = d();
    else if (key == "working_set_kb")
        p.mem.workingSetBytes = u() * 1024;
    else if (key == "streaming")
        p.mem.streaming = b();
    else if (key == "random_frac")
        p.mem.randomFrac = d();
    else if (key == "hot_region_frac")
        p.mem.hotRegionFrac = d();
    else if (key == "hot_region_kb")
        p.mem.hotRegionBytes = u() * 1024;
    else if (key == "hot_blocks")
        p.hotBlocks = static_cast<unsigned>(u());
    else if (key == "cold_blocks")
        p.coldBlocks = static_cast<unsigned>(u());
    else if (key == "cold_escape_prob")
        p.coldEscapeProb = d();
    else if (key == "hot_weight_decay")
        p.hotWeightDecay = d();
    else if (key == "avg_block_len")
        p.avgBlockLen = static_cast<unsigned>(u());
    else
        return false;
    return true;
}

} // namespace

WorkloadSpec
parseWorkloadSpec(const std::string &text, const std::string &origin)
{
    WorkloadSpec w;
    w.phases.clear();
    w.schedule.clear();

    std::map<std::string, unsigned> phase_index;
    enum class Section { Top, Phase, Schedule };
    Section section = Section::Top;
    PhaseSpec *cur_phase = nullptr;

    std::istringstream in(text);
    std::string raw;
    int line_no = 0;
    while (std::getline(in, raw)) {
        ++line_no;
        std::string line = trim(raw);
        if (line.empty() || line[0] == '#')
            continue;

        if (line.front() == '[') {
            if (line.back() != ']')
                parseError(origin, line_no, "unterminated section");
            std::string head = trim(line.substr(1, line.size() - 2));
            if (head == "schedule") {
                section = Section::Schedule;
                cur_phase = nullptr;
                continue;
            }
            if (head.rfind("phase ", 0) == 0) {
                std::string pname = trim(head.substr(6));
                if (pname.empty())
                    parseError(origin, line_no, "phase needs a name");
                if (phase_index.count(pname))
                    parseError(origin, line_no,
                               "duplicate phase '" + pname + "'");
                phase_index[pname] =
                    static_cast<unsigned>(w.phases.size());
                w.phases.emplace_back();
                w.phases.back().name = pname;
                cur_phase = &w.phases.back();
                section = Section::Phase;
                continue;
            }
            parseError(origin, line_no, "unknown section '" + head + "'");
        }

        if (section == Section::Schedule) {
            // "<phase-name> <instructions>"
            std::istringstream ls(line);
            std::string pname;
            std::string count;
            ls >> pname >> count;
            if (pname.empty() || count.empty())
                parseError(origin, line_no,
                           "schedule entries are '<phase> <insns>'");
            auto it = phase_index.find(pname);
            if (it == phase_index.end())
                parseError(origin, line_no,
                           "schedule references unknown phase '" +
                               pname + "'");
            w.schedule.push_back(
                {it->second, toU64(origin, line_no, count)});
            continue;
        }

        auto eq = line.find('=');
        if (eq == std::string::npos)
            parseError(origin, line_no, "expected 'key = value'");
        std::string key = trim(line.substr(0, eq));
        std::string value = trim(line.substr(eq + 1));
        if (key.empty() || value.empty())
            parseError(origin, line_no, "empty key or value");

        if (section == Section::Top) {
            if (key == "name")
                w.name = value;
            else if (key == "suite")
                w.suite = toSuite(origin, line_no, value);
            else if (key == "seed")
                w.seed = toU64(origin, line_no, value);
            else
                parseError(origin, line_no,
                           "unknown top-level key '" + key + "'");
        } else {
            if (!applyPhaseKey(*cur_phase, key, value, origin, line_no))
                parseError(origin, line_no,
                           "unknown phase key '" + key + "'");
        }
    }

    w.validate();
    return w;
}

WorkloadSpec
loadWorkloadSpec(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open workload spec '%s'", path.c_str());
    std::ostringstream buf;
    buf << in.rdbuf();
    return parseWorkloadSpec(buf.str(), path);
}

std::string
formatWorkloadSpec(const WorkloadSpec &w)
{
    std::ostringstream out;
    out << "# PowerChop workload specification\n";
    out << "name = " << w.name << "\n";
    out << "suite = " << suiteName(w.suite) << "\n";
    out << "seed = " << w.seed << "\n";

    for (const auto &p : w.phases) {
        out << "\n[phase " << p.name << "]\n";
        out << "simd_frac = " << p.simdFrac << "\n";
        out << "fp_frac = " << p.fpFrac << "\n";
        out << "mem_frac = " << p.memFrac << "\n";
        out << "store_frac = " << p.storeFrac << "\n";
        out << "branch_frac = " << p.branchFrac << "\n";
        out << "frac_biased = " << p.fracBiased << "\n";
        out << "frac_pattern = " << p.fracPattern << "\n";
        out << "frac_correlated = " << p.fracCorrelated << "\n";
        out << "working_set_kb = " << p.mem.workingSetBytes / 1024
            << "\n";
        out << "streaming = " << (p.mem.streaming ? "true" : "false")
            << "\n";
        out << "random_frac = " << p.mem.randomFrac << "\n";
        out << "hot_region_frac = " << p.mem.hotRegionFrac << "\n";
        out << "hot_region_kb = " << p.mem.hotRegionBytes / 1024 << "\n";
        out << "hot_blocks = " << p.hotBlocks << "\n";
        out << "cold_blocks = " << p.coldBlocks << "\n";
        out << "cold_escape_prob = " << p.coldEscapeProb << "\n";
        out << "hot_weight_decay = " << p.hotWeightDecay << "\n";
        out << "avg_block_len = " << p.avgBlockLen << "\n";
    }

    out << "\n[schedule]\n";
    for (const auto &e : w.schedule)
        out << w.phases[e.phase].name << " " << e.insns << "\n";
    return out.str();
}

std::uint64_t
workloadContentKey(const WorkloadSpec &spec)
{
    return fnv1a64("powerchop-workload-v1\n" + formatWorkloadSpec(spec));
}

void
saveWorkloadSpec(const WorkloadSpec &w, const std::string &path)
{
    // Crash-safe replace; IoError carries the path and errno text.
    atomicWriteFile(path, formatWorkloadSpec(w));
}

} // namespace powerchop
