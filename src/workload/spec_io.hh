/**
 * @file
 * Text serialization of workload specifications.
 *
 * Lets users define application models in a small INI-style format
 * and run them without recompiling (see tools/powerchop_cli). The
 * format is line-based:
 *
 * @code
 *   # comment
 *   name = mykernel
 *   suite = SPEC-INT
 *   seed = 42
 *
 *   [phase compute]
 *   simd_frac = 0.05
 *   mem_frac = 0.30
 *   working_set_kb = 256
 *   streaming = false
 *
 *   [schedule]
 *   compute 500000
 *   memory  300000
 * @endcode
 *
 * Unknown keys are fatal (typos should not silently become defaults);
 * omitted keys keep the PhaseSpec defaults. parse/format round-trip.
 */

#ifndef POWERCHOP_WORKLOAD_SPEC_IO_HH
#define POWERCHOP_WORKLOAD_SPEC_IO_HH

#include <cstdint>
#include <string>

#include "workload/workload.hh"

namespace powerchop
{

/**
 * Parse a workload spec from its text form.
 *
 * @param text The spec document.
 * @param origin Name used in error messages (e.g. the file path).
 * @return the validated spec; calls fatal() on malformed input.
 */
WorkloadSpec parseWorkloadSpec(const std::string &text,
                               const std::string &origin = "<string>");

/**
 * Load a workload spec from a file.
 *
 * @param path File to read.
 * @return the validated spec; calls fatal() if unreadable/malformed.
 */
WorkloadSpec loadWorkloadSpec(const std::string &path);

/** Render a spec to its text form (parseWorkloadSpec round-trips). */
std::string formatWorkloadSpec(const WorkloadSpec &spec);

/**
 * Deterministic 64-bit content key of a workload spec: FNV-1a over
 * the canonical text form. Two specs share a key iff every field that
 * shapes the generated program (including the seed) is equal, so the
 * key can index caches of per-workload derived state (e.g. the
 * translation-metadata cache) safely.
 */
std::uint64_t workloadContentKey(const WorkloadSpec &spec);

/** Write a spec to a file; calls fatal() on I/O failure. */
void saveWorkloadSpec(const WorkloadSpec &spec, const std::string &path);

} // namespace powerchop

#endif // POWERCHOP_WORKLOAD_SPEC_IO_HH
